"""Tests for Bloom filters and the multi-core RSS-sharding simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import nitro_countsketch
from repro.sketches import BloomFilter, CountingBloomFilter, optimal_parameters
from repro.switchsim import (
    IntegrationMode,
    MeasurementDaemon,
    MultiCoreSimulator,
    OVSDPDKPipeline,
    SwitchSimulator,
    UNLIMITED,
)
from repro.traffic import caida_like, min_sized_stress


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(1000, 0.01, seed=1)
        for key in range(500):
            bloom.add(key)
        assert all(key in bloom for key in range(500))

    @given(st.lists(st.integers(0, 2**40), min_size=1, max_size=200, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_no_false_negatives_property(self, keys):
        bloom = BloomFilter.for_capacity(max(len(keys), 10), 0.01, seed=2)
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        target = 0.02
        bloom = BloomFilter.for_capacity(2000, target, seed=3)
        for key in range(2000):
            bloom.add(key)
        probes = range(10**6, 10**6 + 20000)
        false_positives = sum(1 for key in probes if key in bloom)
        assert false_positives / 20000 < 4 * target

    def test_expected_fp_rate_tracks_fill(self):
        bloom = BloomFilter(1024, hashes=4, seed=4)
        empty_rate = bloom.expected_false_positive_rate()
        for key in range(200):
            bloom.add(key)
        assert bloom.expected_false_positive_rate() > empty_rate

    def test_optimal_parameters_shape(self):
        bits, hashes = optimal_parameters(1000, 0.01)
        assert bits == pytest.approx(9586, rel=0.01)  # ~9.6 bits/item at 1%
        assert hashes == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(10, hashes=0)
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(100, 1.5)

    def test_reset(self):
        bloom = BloomFilter(256, seed=5)
        bloom.add(1)
        bloom.reset()
        assert 1 not in bloom
        assert bloom.items_added == 0

    def test_memory(self):
        assert BloomFilter(8000).memory_bytes() == 1000


class TestCountingBloomFilter:
    def test_add_then_remove(self):
        cbf = CountingBloomFilter(1024, hashes=4, seed=6)
        cbf.add(42)
        assert 42 in cbf
        cbf.remove(42)
        assert 42 not in cbf

    def test_multiset_semantics(self):
        cbf = CountingBloomFilter(1024, hashes=4, seed=7)
        cbf.add(9)
        cbf.add(9)
        cbf.remove(9)
        assert 9 in cbf  # one insertion remains
        cbf.remove(9)
        assert 9 not in cbf

    def test_counter_saturation(self):
        cbf = CountingBloomFilter(64, hashes=2, seed=8, counter_bits=2)
        for _ in range(10):
            cbf.add(5)  # counters cap at 3, no overflow wrap
        assert 5 in cbf

    @given(st.lists(st.integers(0, 2**30), min_size=1, max_size=100, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives_property(self, keys):
        cbf = CountingBloomFilter(4096, hashes=4, seed=9)
        for key in keys:
            cbf.add(key)
        assert all(key in cbf for key in keys)

    def test_memory(self):
        assert CountingBloomFilter(1000, counter_bits=4).memory_bytes() == 500


class TestMultiCore:
    def test_shards_partition_trace(self):
        trace = caida_like(20000, n_flows=3000, seed=1)
        simulator = MultiCoreSimulator(lambda core: OVSDPDKPipeline(), cores=4)
        shards = simulator.shard(trace)
        assert sum(len(shard) for shard in shards) == len(trace)

    def test_flows_stay_core_local(self):
        trace = caida_like(20000, n_flows=500, seed=2)
        simulator = MultiCoreSimulator(lambda core: OVSDPDKPipeline(), cores=4)
        shards = simulator.shard(trace)
        seen = {}
        for core, shard in enumerate(shards):
            for key in set(shard.keys.tolist()):
                assert seen.setdefault(key, core) == core

    def test_capacity_scales_with_cores(self):
        trace = min_sized_stress(30000, seed=3)
        single = MultiCoreSimulator(
            lambda core: OVSDPDKPipeline(), cores=1, nic=UNLIMITED
        ).run(trace)
        quad = MultiCoreSimulator(
            lambda core: OVSDPDKPipeline(), cores=4, nic=UNLIMITED
        ).run(trace)
        efficiency = quad.scaling_efficiency(single.capacity_mpps)
        assert 0.85 < efficiency <= 1.1

    def test_nic_ceiling_binds(self):
        trace = min_sized_stress(30000, seed=4)
        result = MultiCoreSimulator(lambda core: OVSDPDKPipeline(), cores=8).run(trace)
        assert result.achieved_mpps <= 42.0 + 1e-6  # XL710 small-packet cap

    def test_with_measurement_daemons(self):
        trace = caida_like(20000, n_flows=3000, seed=5)
        simulator = MultiCoreSimulator(
            lambda core: OVSDPDKPipeline(),
            daemon_factory=lambda core: MeasurementDaemon(
                nitro_countsketch(probability=0.05, seed=5),
                IntegrationMode.ALL_IN_ONE,
            ),
            cores=2,
        )
        result = simulator.run(trace)
        assert len(result.per_core) == 2
        assert all(r.sketch_cycles_per_packet > 0 for r in result.per_core)

    def test_core_validation(self):
        with pytest.raises(ValueError):
            MultiCoreSimulator(lambda core: OVSDPDKPipeline(), cores=0)


class TestMultiCoreShardEdgeCases:
    def test_empty_shards_skipped_and_core_ids_carried(self):
        from repro.traffic.traces import Trace

        # One flow -> RSS lands every packet on a single core; the other
        # three shards are empty and must be skipped without building
        # daemons for cores that never run.
        packets = 2000
        trace = Trace(
            name="single-flow",
            keys=np.full(packets, 1234, dtype=np.int64),
            sizes=np.full(packets, 64, dtype=np.int32),
            timestamps=np.arange(packets, dtype=np.float64) * 1e-6,
        )
        built = []

        def daemon_factory(core):
            built.append(core)
            return MeasurementDaemon(
                nitro_countsketch(probability=0.05, seed=5),
                IntegrationMode.ALL_IN_ONE,
            )

        simulator = MultiCoreSimulator(
            lambda core: OVSDPDKPipeline(), daemon_factory=daemon_factory, cores=4
        )
        result = simulator.run(trace)
        assert len(result.per_core) == 1
        assert result.per_core[0].core == built[0]
        assert built == [result.per_core[0].core]

    def test_core_ids_label_every_result(self):
        trace = caida_like(20000, n_flows=3000, seed=6)
        simulator = MultiCoreSimulator(lambda core: OVSDPDKPipeline(), cores=3)
        result = simulator.run(trace)
        assert sorted(r.core for r in result.per_core) == [0, 1, 2]
