"""Tests for the multiprocess parallel ingest plane.

Covers the sharding/seed-derivation contracts (pure functions, always
run) and the live engine (skipped wholesale on hosts without a usable
``multiprocessing.shared_memory`` mount): merge bit-exactness against
the sequential oracle, shared-bank bit-exactness against a whole-trace
sketch, two-run determinism, crash recovery, corruption detection, the
epoch-frame wire format, and the control-plane / multicore-simulator
integrations.
"""

import numpy as np
import pytest

from repro.control.export import (
    deserialize_epoch_frame,
    serialize_epoch_frame,
    serialize_monitor,
)
from repro.control.plane import ControlPlane
from repro.control.tasks import HeavyHitterTask
from repro.core.config import NitroConfig
from repro.faults import FrameCorruptionPlan, WorkerCrashPlan, flip_bytes
from repro.hashing.prng import derive_stream_seed
from repro.parallel import (
    MERGE_SHARD,
    NitroFactory,
    ParallelIngestEngine,
    ShardCorruptionError,
    VanillaFactory,
    WorkerCrashError,
    epoch_bounds,
    parallel_unavailable_reason,
    rss_assignments,
    shard_counts,
)
from repro.sketches.countsketch import CountSketch
from repro.switchsim import MultiCoreSimulator, OVSDPDKPipeline
from repro.traffic.traces import caida_like

needs_shm = pytest.mark.skipif(
    parallel_unavailable_reason() is not None,
    reason=parallel_unavailable_reason() or "",
)


@pytest.fixture(scope="module")
def trace():
    return caida_like(12_000, n_flows=600, seed=11)


# -- sharding and seed derivation (no processes involved) -----------------


class TestSharding:
    def test_rss_matches_multicore_simulator(self, trace):
        """The engine and the modeled simulator must shard identically."""
        sim = MultiCoreSimulator(
            lambda core: OVSDPDKPipeline(), cores=4, rss_seed=7
        )
        modeled = sim._rss.batch(trace.keys).astype(np.uint8)
        engine_side = rss_assignments(trace.keys, 4, 7)
        assert np.array_equal(modeled, engine_side)

    def test_assignments_are_flow_consistent(self, trace):
        assignments = rss_assignments(trace.keys, 3, 0)
        by_flow = {}
        for key, shard in zip(trace.keys.tolist(), assignments.tolist()):
            assert by_flow.setdefault(key, shard) == shard

    def test_shard_counts_cover_trace(self, trace):
        assignments = rss_assignments(trace.keys, 5, 1)
        counts = shard_counts(assignments, 5)
        assert counts.sum() == len(trace.keys)
        assert (counts > 0).all()  # 600 flows over 5 shards: none empty

    def test_epoch_bounds(self):
        assert epoch_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert epoch_bounds(10, None) == [(0, 10)]
        assert epoch_bounds(0, 4) == [(0, 0)]


class TestSeedDerivation:
    def test_derived_streams_deterministic_and_distinct(self):
        seeds = [derive_stream_seed(42, shard) for shard in range(64)]
        assert seeds == [derive_stream_seed(42, shard) for shard in range(64)]
        assert len(set(seeds)) == 64
        assert all(seed != 0 for seed in seeds)

    def test_for_shard_varies_only_sampler_seed(self):
        base = NitroConfig(probability=0.05, top_k=16, seed=9)
        shard0 = base.for_shard(0)
        shard1 = base.for_shard(1)
        assert shard0.seed != shard1.seed
        assert shard0.probability == shard1.probability == 0.05
        assert base.for_shard(MERGE_SHARD).seed == base.seed

    def test_factories_share_sketch_seed(self):
        """Sketch hashes must agree across shards or merging is garbage."""
        factory = NitroFactory(sketch="countsketch", width=512, seed=5)
        a, b = factory(0), factory(1)
        assert a.sketch.seed == b.sketch.seed
        keys = np.arange(64, dtype=np.uint64)
        a.sketch.update_batch(keys)
        b.sketch.update_batch(keys)
        assert np.array_equal(a.sketch.counters, b.sketch.counters)
        # ...while the sampler streams are private and distinct.
        assert a.config.seed != b.config.seed


# -- epoch-frame wire format ----------------------------------------------


class TestEpochFrames:
    def test_roundtrip_with_monitor(self):
        monitor = NitroFactory(sketch="countsketch", width=512, seed=3)(2)
        monitor.update_batch(np.arange(500, dtype=np.uint64))
        meta = {"worker": 2, "epoch": 1, "final": False}
        frame = serialize_epoch_frame(meta, monitor)
        out_meta, out_monitor = deserialize_epoch_frame(frame)
        assert out_meta == meta
        assert serialize_monitor(out_monitor) == serialize_monitor(monitor)

    def test_roundtrip_meta_only(self):
        frame = serialize_epoch_frame({"worker": 0, "epoch": 3})
        meta, monitor = deserialize_epoch_frame(frame)
        assert meta["epoch"] == 3 and monitor is None

    def test_flipped_bytes_rejected(self):
        frame = serialize_epoch_frame({"worker": 1, "epoch": 0})
        with pytest.raises(ValueError):
            deserialize_epoch_frame(flip_bytes(frame, count=4, seed=1))


# -- the live engine ------------------------------------------------------


def _nitro_factory(seed=17):
    return NitroFactory(
        sketch="countsketch", depth=5, width=1024, probability=0.1, seed=seed
    )


@needs_shm
class TestEngine:
    def test_merge_bit_exact_vs_sequential(self, trace):
        def build():
            return ParallelIngestEngine(
                _nitro_factory(),
                workers=3,
                strategy="merge",
                epoch_packets=4_000,
                batch_size=1024,
            )

        parallel = build().run(trace.keys)
        oracle = build().run_sequential(trace.keys)
        assert parallel.epochs == oracle.epochs == 3
        assert serialize_monitor(parallel.monitor) == serialize_monitor(
            oracle.monitor
        )

    def test_two_runs_identical(self, trace):
        """Determinism regression: scheduling must not leak into results."""

        def run_once():
            engine = ParallelIngestEngine(
                _nitro_factory(), workers=3, strategy="merge", batch_size=1024
            )
            return serialize_monitor(engine.run(trace.keys).monitor)

        assert run_once() == run_once()

    def test_shared_vanilla_bit_exact(self, trace):
        factory = VanillaFactory(sketch="countmin", depth=4, width=1024, seed=2)
        engine = ParallelIngestEngine(
            factory, workers=3, strategy="shared", batch_size=1024
        )
        result = engine.run(trace.keys)
        whole = factory(MERGE_SHARD)
        whole.update_batch(trace.keys)
        assert np.array_equal(result.monitor.counters, whole.counters)
        assert result.packets == len(trace.keys)

    def test_crash_recovery_bit_exact(self, trace):
        def build(crash_plan=None):
            return ParallelIngestEngine(
                _nitro_factory(),
                workers=3,
                strategy="merge",
                epoch_packets=4_000,
                batch_size=1024,
                crash_plan=crash_plan,
            )

        crashed = build(WorkerCrashPlan(worker=1, epoch=1, fraction=0.5)).run(
            trace.keys
        )
        assert crashed.restarts == 1
        assert crashed.worker_stats[1].restarts == 1
        oracle = build().run_sequential(trace.keys)
        assert serialize_monitor(crashed.monitor) == serialize_monitor(
            oracle.monitor
        )

    def test_restart_budget_exhaustion(self, trace):
        engine = ParallelIngestEngine(
            _nitro_factory(),
            workers=2,
            strategy="merge",
            batch_size=1024,
            max_restarts=0,
            crash_plan=WorkerCrashPlan(worker=0, epoch=0, fraction=0.0),
        )
        with pytest.raises(WorkerCrashError):
            engine.run(trace.keys)

    def test_corrupt_frame_raises(self, trace):
        engine = ParallelIngestEngine(
            _nitro_factory(),
            workers=3,
            strategy="merge",
            batch_size=1024,
            corruption_plan=FrameCorruptionPlan(worker=2, epoch=0, count=8),
        )
        with pytest.raises(ShardCorruptionError) as excinfo:
            engine.run(trace.keys)
        assert excinfo.value.worker == 2

    def test_result_reports_all_clocks(self, trace):
        engine = ParallelIngestEngine(
            VanillaFactory(sketch="countmin", depth=4, width=512, seed=1),
            workers=2,
            strategy="shared",
            batch_size=2048,
        )
        result = engine.run(trace.keys)
        assert result.wall_mpps > 0
        assert result.aggregate_cpu_mpps > 0
        assert result.aggregate_busy_mpps > 0
        assert len(result.worker_stats) == 2
        assert sum(s.packets for s in result.worker_stats) == len(trace.keys)

    def test_shared_rejects_epochs(self):
        with pytest.raises(ValueError):
            ParallelIngestEngine(
                VanillaFactory(),
                workers=2,
                strategy="shared",
                epoch_packets=100,
            )


# -- integrations ---------------------------------------------------------


@needs_shm
class TestIntegrations:
    def test_control_plane_parallel_epochs(self, trace):
        engine = ParallelIngestEngine(
            _nitro_factory(),
            workers=3,
            strategy="merge",
            batch_size=1024,
            reset_per_epoch=True,
        )
        plane = ControlPlane(
            lambda epoch: None, [HeavyHitterTask(threshold_fraction=0.002)]
        )
        reports, result = plane.run_parallel_epochs(trace, 4_000, engine)
        assert [report.epoch for report in reports] == [0, 1, 2]
        assert all(report.packets == 4_000 for report in reports)
        assert all("heavy_hitters" in report.reports for report in reports)
        assert result.epochs == 3
        assert len(plane.monitors) == 2  # keep_monitors default

    def test_control_plane_rejects_wrong_engine(self, trace):
        plane = ControlPlane(lambda epoch: None, [])
        shared = ParallelIngestEngine(
            VanillaFactory(), workers=2, strategy="shared"
        )
        with pytest.raises(ValueError):
            plane.run_parallel_epochs(trace, 4_000, shared)
        no_reset = ParallelIngestEngine(
            _nitro_factory(), workers=2, strategy="merge"
        )
        with pytest.raises(ValueError):
            plane.run_parallel_epochs(trace, 4_000, no_reset)

    def test_multicore_measured_alongside_modeled(self, trace):
        sim = MultiCoreSimulator(
            lambda core: OVSDPDKPipeline(), cores=3, rss_seed=4
        )
        result = sim.run(
            trace,
            measure_with=VanillaFactory(
                sketch="countmin", depth=4, width=1024, seed=1
            ),
        )
        assert result.capacity_mpps > 0  # modeled
        assert result.measured is not None
        assert result.measured_wall_mpps > 0
        assert result.measured_aggregate_cpu_mpps > 0
        # measured workers ingested exactly the modeled shards
        modeled_sizes = [len(shard) for shard in sim.shard(trace)]
        measured_sizes = [s.packets for s in result.measured.worker_stats]
        assert modeled_sizes == measured_sizes

    def test_multicore_default_has_no_measurement(self, trace):
        sim = MultiCoreSimulator(lambda core: OVSDPDKPipeline(), cores=2)
        result = sim.run(trace)
        assert result.measured is None
        assert result.measured_wall_mpps is None
