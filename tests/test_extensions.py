"""Tests for the extension features: serialization + control link,
Space-Saving, Nitro-accelerated ElasticSketch, and the extra
experiments (adaptation, Theorem-2 validation)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import NitroElasticSketch
from repro.control import (
    ControlLink,
    deserialize_sketch,
    export_cost,
    serialize_sketch,
)
from repro.experiments import adaptive, validation
from repro.sketches import CountMinSketch, CountSketch, KArySketch, SpaceSaving
from repro.traffic import zipf_keys

KEY_LISTS = st.lists(st.integers(0, 100), min_size=1, max_size=300)


class TestSerialization:
    @pytest.mark.parametrize("sketch_cls", [CountMinSketch, CountSketch, KArySketch])
    def test_roundtrip_preserves_queries(self, sketch_cls):
        sketch = sketch_cls(4, 256, seed=5)
        keys = zipf_keys(5000, 300, 1.2, seed=5)
        sketch.update_batch(keys)
        clone = deserialize_sketch(serialize_sketch(sketch))
        assert type(clone) is sketch_cls
        assert np.array_equal(clone.counters, sketch.counters)
        for key in range(50):
            assert clone.query(key) == sketch.query(key)

    def test_kary_total_preserved(self):
        sketch = KArySketch(3, 64, seed=1)
        sketch.update_batch(np.arange(100))
        clone = deserialize_sketch(serialize_sketch(sketch))
        assert clone.total == sketch.total

    def test_clone_is_mergeable_with_original(self):
        sketch = CountSketch(3, 64, seed=2)
        sketch.update(1)
        clone = deserialize_sketch(serialize_sketch(sketch))
        sketch.merge(clone)  # same seed/shape: distributed aggregation
        assert sketch.query(1) == pytest.approx(2.0, abs=1.0)

    def test_unsupported_class_rejected(self):
        from repro.sketches import OneArrayCountSketch

        with pytest.raises(TypeError):
            serialize_sketch(OneArrayCountSketch(64, seed=1))

    def test_corrupt_class_name_rejected(self):
        sketch = CountSketch(2, 16, seed=3)
        blob = bytearray(serialize_sketch(sketch))
        bad = blob.replace(b"CountSketch", b"UnknownThing")
        with pytest.raises(ValueError):
            deserialize_sketch(bytes(bad))

    def test_payload_size_tracks_counters(self):
        small = serialize_sketch(CountSketch(2, 16, seed=1))
        large = serialize_sketch(CountSketch(2, 1024, seed=1))
        assert len(large) > len(small)


class TestControlLink:
    def test_transfer_time(self):
        link = ControlLink(rate_gbps=1.0, overhead_bytes=0)
        # 1 MB over 1 Gbps = 8 ms.
        assert link.transfer_seconds(10**6) == pytest.approx(0.008)

    def test_epoch_frequency_bound(self):
        link = ControlLink(rate_gbps=1.0, overhead_bytes=0)
        assert link.max_epochs_per_second(10**6) == pytest.approx(125.0)

    def test_export_cost_of_monitor(self):
        sketch = CountSketch(5, 1024, seed=1)
        payload, seconds = export_cost(sketch)
        assert payload == sketch.memory_bytes()
        assert seconds > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlLink().transfer_seconds(-1)


class TestSpaceSaving:
    @given(KEY_LISTS)
    @settings(max_examples=60, deadline=None)
    def test_overestimate_bound(self, keys):
        """f_x <= est <= f_x + m/k for tracked keys."""
        k = 8
        summary = SpaceSaving(k)
        for key in keys:
            summary.update(key)
        truth = Counter(keys)
        bound = len(keys) / k
        for key, count in summary.items():
            true = truth.get(key, 0)
            assert count >= true - 1e-9
            assert count <= true + bound + 1e-9

    def test_guaranteed_is_lower_bound(self):
        summary = SpaceSaving(4)
        keys = zipf_keys(3000, 200, 1.2, seed=4)
        for key in keys.tolist():
            summary.update(key)
        truth = Counter(keys.tolist())
        for key, _ in summary.items():
            assert summary.guaranteed(key) <= truth.get(key, 0) + 1e-9

    def test_dominant_flow_survives(self):
        summary = SpaceSaving(4)
        for key in [1] * 500 + list(range(10, 300)):
            summary.update(key)
        assert summary.query(1) >= 500

    def test_table_bounded(self):
        summary = SpaceSaving(5)
        for key in range(1000):
            summary.update(key)
        assert len(summary.items()) == 5

    def test_heavy_hitters_gated(self):
        summary = SpaceSaving(4)
        for key in [1] * 100 + list(range(2, 80)):
            summary.update(key)
        hitters = dict(summary.heavy_hitters(50))
        assert set(hitters) == {1}

    def test_reset_and_validation(self):
        summary = SpaceSaving(3)
        summary.update(1)
        summary.reset()
        assert summary.query(1) == 0.0
        with pytest.raises(ValueError):
            SpaceSaving(0)


class TestNitroElasticSketch:
    def test_light_updates_sampled(self):
        sketch = NitroElasticSketch(
            heavy_buckets=128, light_counters=2048, probability=0.1, seed=1
        )
        for key in range(20000):
            sketch.update(key % 3000)
        fraction = sketch.light_updates_applied / max(sketch.light_updates_offered, 1)
        assert fraction == pytest.approx(0.1, rel=0.2)

    def test_light_estimates_unbiased(self):
        sketch = NitroElasticSketch(
            heavy_buckets=4, light_counters=8192, probability=0.2, seed=2
        )
        # Key 9's bucket is stolen by heavier flows, pushing it to light.
        keys = ([1] * 50 + [9]) * 400
        for key in keys:
            sketch.update(key)
        total = sketch.query(1) + sketch.query(9)
        assert total == pytest.approx(len(keys), rel=0.25)

    def test_heavy_part_stays_exact(self):
        sketch = NitroElasticSketch(
            heavy_buckets=1024, light_counters=1024, probability=0.05, seed=3
        )
        for _ in range(500):
            sketch.update(7)
        assert sketch.query(7) == pytest.approx(500, abs=1)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            NitroElasticSketch(probability=0)

    def test_reset(self):
        sketch = NitroElasticSketch(
            heavy_buckets=16, light_counters=64, probability=0.5, seed=4
        )
        sketch.update(1)
        sketch.reset()
        assert sketch.light_updates_offered == 0
        assert sketch.query(1) == 0.0


class TestExtraExperiments:
    def test_adaptation_ladder(self):
        result = adaptive.run(scale=0.5)
        by_phase = {}
        for row in result.rows:
            by_phase.setdefault(row["phase"], []).append(row)
        assert by_phase["idle"][-1]["probability"] == 1.0
        assert by_phase["burst"][-1]["probability"] == 1 / 64  # Figure 6
        assert (
            by_phase["burst"][-1]["counter_updates_per_packet"]
            < by_phase["idle"][-1]["counter_updates_per_packet"]
        )
        # Recovery after the burst.
        assert by_phase["cooldown"][-1]["probability"] > 1 / 64

    def test_theorem2_validation_within_bound(self):
        result = validation.run(scale=0.5, trials=15)
        assert all(row["within_bound"] for row in result.rows)
