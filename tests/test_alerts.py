"""Tests for the alert plane, anomaly detectors, and their wiring.

Covers :class:`HistoryStore.window` (including post-compaction reads),
the threshold / for-duration / hysteresis state machine against a golden
transition log, the multi-window burn-rate rule, repeat-interval dedup,
notification sinks (including real-HTTP webhook delivery and failure
accounting), ``ALERTS`` exposition conformance, the health/alert
unification invariant (503 ⇔ firing), the sketch-driven DDoS scenario
(fires then resolves, deterministically), and the daemon / control-plane
/ parallel-engine / dashboard / CLI wiring.
"""

import json
import os
import re
import socket
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.control import ControlPlane, HeavyHitterTask
from repro.core import NitroSketch, nitro_kary
from repro.parallel import (
    ParallelIngestEngine,
    VanillaFactory,
    parallel_unavailable_reason,
)
from repro.sketches import CountSketch
from repro.switchsim import MeasurementDaemon
from repro.telemetry import (
    AlertManager,
    BurnRateRule,
    HistoryStore,
    JsonlSink,
    LogSink,
    ManualClock,
    MemorySink,
    Notification,
    Telemetry,
    TelemetryServer,
    ThresholdRule,
    WebhookReceiver,
    WebhookSink,
)
from repro.telemetry.anomaly import (
    SketchAnomalyDetectors,
    ddos_onset_trace,
    default_alert_rules,
)
from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.demo import run_alert_demo, validate_alert_demo
from repro.telemetry.health import HealthEvaluator, default_rules
from repro.traffic import caida_like
from repro.traffic.replay import Batch

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

needs_shm = pytest.mark.skipif(
    parallel_unavailable_reason() is not None,
    reason=parallel_unavailable_reason() or "",
)


def _golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name)) as handle:
        return handle.read()


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# -- HistoryStore.window ----------------------------------------------------


def _gauge_snapshot(value, **labels):
    return {
        "metrics": {
            "speed": {
                "type": "gauge",
                "samples": [{"labels": labels, "value": float(value)}],
            }
        }
    }


class TestHistoryWindow:
    def test_trailing_range_anchored_at_newest(self):
        store = HistoryStore()
        for t in range(10):
            store.record(_gauge_snapshot(t), timestamp=float(t))
        window = store.window("speed", 3.0)
        assert window == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]

    def test_explicit_now_excludes_future_samples(self):
        store = HistoryStore()
        for t in range(10):
            store.record(_gauge_snapshot(t), timestamp=float(t))
        assert store.window("speed", 2.0, now=5.0) == [
            (3.0, 3.0),
            (4.0, 4.0),
            (5.0, 5.0),
        ]

    def test_label_addressing(self):
        store = HistoryStore()
        store.record(_gauge_snapshot(1.0, worker="0"), timestamp=1.0)
        store.record(_gauge_snapshot(2.0, worker="0"), timestamp=2.0)
        assert store.window("speed", 10.0, worker="0") == [(1.0, 1.0), (2.0, 2.0)]
        assert store.window("speed", 10.0, worker="1") == []

    def test_empty_store_and_negative_range(self):
        store = HistoryStore()
        assert store.window("speed", 5.0) == []
        with pytest.raises(ValueError):
            store.window("speed", -1.0)

    def test_window_survives_compaction(self):
        """After downsampling, the window has coarser but correct points."""
        store = HistoryStore(capacity=8)
        for t in range(40):
            store.record(_gauge_snapshot(t), timestamp=float(t))
        assert store.compactions > 0
        window = store.window("speed", 1000.0)
        # Every surviving point is still (t, t) -- never interpolated --
        # and the newest sample always survives compaction.
        assert all(stamp == value for stamp, value in window)
        assert window[-1][0] == float(
            max(t for t in range(40) if t % store.stride == 0 or t == 39)
        ) or window[-1][1] == window[-1][0]
        assert window == sorted(window)


# -- the state machine vs the golden transition log -------------------------


def _scripted_lifecycle():
    """Queue backlog: 0,12,12,12,7,3,... with for=2s and hysteresis."""
    telemetry = Telemetry()
    sink = MemorySink()
    manager = AlertManager(
        telemetry,
        rules=[
            ThresholdRule(
                "queue_backlog",
                "queue_depth",
                threshold=10.0,
                clear_threshold=5.0,
                for_seconds=2.0,
                severity="warning",
                labels={"component": "ingest"},
            )
        ],
        sinks=[sink],
        repeat_interval=0.0,
        resolved_retention=3.0,
        clock=ManualClock(),
    )
    for value in (0.0, 12.0, 12.0, 12.0, 7.0, 3.0, 3.0, 3.0, 3.0):
        telemetry.gauge("queue_depth", value, component="ingest")
        manager.evaluate()
    return telemetry, manager, sink


class TestLifecycleGolden:
    def test_transitions_match_golden(self):
        _, manager, _ = _scripted_lifecycle()
        assert manager.transitions_jsonl() == _golden("alert_transitions.jsonl")

    def test_lifecycle_shape(self):
        _, manager, sink = _scripted_lifecycle()
        moves = [(e["from"], e["to"]) for e in manager.transitions]
        assert moves == [
            ("inactive", "pending"),  # t=1: first active sample
            ("pending", "firing"),  # t=3: held for 2s
            ("firing", "resolved"),  # t=5: crossed the clear threshold
            ("resolved", "inactive"),  # t=8: retention expired
        ]
        # Value 7 at t=4 is inside the hysteresis band: still firing.
        assert [n.state for n in sink.notifications] == ["firing", "resolved"]

    def test_counters_exported(self):
        telemetry, manager, _ = _scripted_lifecycle()
        snap = telemetry.snapshot()
        samples = snap["metrics"]["alerts_transitions_total"]["samples"]
        by_to = {s["labels"]["to"]: s["value"] for s in samples}
        assert by_to == {"pending": 1.0, "firing": 1.0, "resolved": 1.0, "inactive": 1.0}
        assert manager.evaluations == 9
        assert (
            snap["metrics"]["alerts_evaluations_total"]["samples"][0]["value"] == 9.0
        )

    def test_trace_events_recorded(self):
        telemetry, _, _ = _scripted_lifecycle()
        events = telemetry.tracer.events("alert.transition")
        assert [e.fields["state"] for e in events] == [
            "pending",
            "firing",
            "resolved",
            "inactive",
        ]


class TestClockDiscipline:
    """For-duration timing must ride a monotonic clock, never wall time."""

    def test_default_clock_is_monotonic(self):
        import time as _time

        manager = AlertManager(Telemetry(), rules=[])
        assert manager.clock is _time.monotonic
        assert manager.wall_clock is _time.time

    def test_injected_manual_clock_governs_both(self):
        # A test-injected clock is both the timer and the timestamp
        # source: event "time" fields equal the evaluation instants.
        clock = ManualClock()
        manager = AlertManager(Telemetry(), rules=[], clock=clock)
        assert manager.wall_clock is clock

    def test_backwards_wall_jump_does_not_mistransition(self):
        # Regression: the state machine used to time for-duration with
        # time.time(), so an NTP step backwards made "held for N
        # seconds" unreachable (elapsed went negative).  With the
        # monotonic/wall split, the pending alert must still promote on
        # schedule while display timestamps follow the (jumped) wall.
        telemetry = Telemetry()
        # One reading per transition/notification: pending stamps at
        # wall 1000, then the wall steps back to 400 before the firing
        # transition and its notification.
        wall_readings = iter([1_000.0, 400.0, 400.5, 401.0])
        manager = AlertManager(
            telemetry,
            rules=[
                ThresholdRule(
                    "stuck_backlog",
                    "queue_depth",
                    threshold=10.0,
                    for_seconds=2.0,
                )
            ],
            repeat_interval=0.0,
            clock=ManualClock(),
            wall_clock=lambda: next(wall_readings),
        )
        telemetry.gauge("queue_depth", 12.0)
        for _ in range(4):  # monotonic t = 0, 1, 2, 3
            manager.evaluate()
        moves = [(e["from"], e["to"]) for e in manager.transitions]
        assert moves == [("inactive", "pending"), ("pending", "firing")]
        # The firing transition landed after the wall clock jumped from
        # 1000.5 back to 400: its display timestamp is the jumped wall
        # reading, and the hold was still measured as 2 monotonic
        # seconds.
        assert manager.transitions[-1]["time"] == 400.0

    def test_forwards_wall_jump_does_not_fire_early(self):
        # The dual failure: a wall jump *forwards* used to promote a
        # pending alert instantly, before the condition really held.
        telemetry = Telemetry()
        wall_readings = iter([1_000.0, 999_999.0, 999_999.5])
        manager = AlertManager(
            telemetry,
            rules=[
                ThresholdRule(
                    "stuck_backlog",
                    "queue_depth",
                    threshold=10.0,
                    for_seconds=5.0,
                )
            ],
            clock=ManualClock(),
            wall_clock=lambda: next(wall_readings),
        )
        telemetry.gauge("queue_depth", 12.0)
        manager.evaluate()  # monotonic t=0: pending
        manager.evaluate()  # monotonic t=1: only 1s held despite the wall leap
        states = {state.state for state in manager._states.values()}
        assert states == {"pending"}


class TestHysteresisProperty:
    def test_band_oscillation_cannot_flap(self):
        """A series oscillating inside the band causes exactly one cycle."""
        rng = np.random.default_rng(11)
        telemetry = Telemetry()
        manager = AlertManager(
            telemetry,
            rules=[
                ThresholdRule(
                    "flappy",
                    "signal",
                    threshold=10.0,
                    clear_threshold=5.0,
                )
            ],
            repeat_interval=0.0,
            resolved_retention=1e9,
            clock=ManualClock(),
        )
        telemetry.gauge("signal", 12.0)
        manager.evaluate()  # -> firing (no for-duration)
        for _ in range(200):
            telemetry.gauge("signal", float(rng.uniform(5.0, 15.0)))
            manager.evaluate()
        # Values in [5, 15) never cross below clear=5: still firing, and
        # the only transition ever taken is the initial one.
        assert [s.state for s in manager.firing()] == ["firing"]
        assert len(manager.transitions) == 1

    def test_without_band_the_same_series_flaps(self):
        rng = np.random.default_rng(11)
        telemetry = Telemetry()
        manager = AlertManager(
            telemetry,
            rules=[ThresholdRule("flappy", "signal", threshold=10.0)],
            repeat_interval=0.0,
            resolved_retention=1e9,
            clock=ManualClock(),
        )
        telemetry.gauge("signal", 12.0)
        manager.evaluate()
        for _ in range(200):
            telemetry.gauge("signal", float(rng.uniform(5.0, 15.0)))
            manager.evaluate()
        assert len(manager.transitions) > 10

    def test_clear_threshold_orientation_validated(self):
        with pytest.raises(ValueError):
            ThresholdRule("x", "m", threshold=10.0, clear_threshold=20.0)
        with pytest.raises(ValueError):
            ThresholdRule("x", "m", threshold=10.0, op="<=", clear_threshold=5.0)


# -- burn rate --------------------------------------------------------------


class TestBurnRate:
    def _manager(self, rule):
        telemetry = Telemetry()
        history = HistoryStore()
        manager = AlertManager(
            telemetry,
            rules=[rule],
            history=history,
            repeat_interval=0.0,
            resolved_retention=1e9,
            clock=ManualClock(),
        )
        return telemetry, manager

    def test_fires_when_both_windows_burn_and_resolves_on_short(self):
        rule = BurnRateRule(
            "budget_burn",
            "ratio",
            budget=1.0,
            long_seconds=10.0,
            short_seconds=2.0,
            factor=0.9,
        )
        telemetry, manager = self._manager(rule)
        for value in (0.95, 0.95, 0.95, 0.95):
            telemetry.gauge("ratio", value)
            manager.evaluate()
        assert [s.name for s in manager.firing()] == ["budget_burn"]
        # Short window cools below factor -> hysteresis clears.
        for value in (0.1, 0.1, 0.1):
            telemetry.gauge("ratio", value)
            manager.evaluate()
        assert manager.firing() == []
        moves = [(e["from"], e["to"]) for e in manager.transitions]
        assert ("firing", "resolved") in moves

    def test_long_window_alone_does_not_fire(self):
        rule = BurnRateRule(
            "budget_burn",
            "ratio",
            long_seconds=10.0,
            short_seconds=2.0,
            factor=0.9,
        )
        telemetry, manager = self._manager(rule)
        # Long history of burning, but the short window has cooled off
        # by the time it could fire: never fires.
        for value in (0.95, 0.95, 0.2, 0.2):
            telemetry.gauge("ratio", value)
            manager.evaluate()
        assert manager.firing() == []

    def test_no_history_reports_nothing(self):
        telemetry = Telemetry()
        manager = AlertManager(
            telemetry,
            rules=[BurnRateRule("b", "ratio")],
            clock=ManualClock(),
        )
        telemetry.gauge("ratio", 5.0)
        assert manager.evaluate() == []
        assert manager.states() == []


# -- dedup / repeat-interval ------------------------------------------------


class TestRepeatInterval:
    def test_still_firing_renotifies_only_after_interval(self):
        telemetry = Telemetry()
        sink = MemorySink()
        manager = AlertManager(
            telemetry,
            rules=[ThresholdRule("hot", "signal", threshold=1.0)],
            sinks=[sink],
            repeat_interval=5.0,
            clock=ManualClock(),
        )
        telemetry.gauge("signal", 2.0)
        for _ in range(12):
            manager.evaluate()
        # Fired at t=0; repeats at t>=5 and t>=10 -- not every second.
        assert len(sink.notifications) == 3
        assert all(n.state == "firing" for n in sink.notifications)

    def test_zero_interval_disables_renotification(self):
        telemetry = Telemetry()
        sink = MemorySink()
        manager = AlertManager(
            telemetry,
            rules=[ThresholdRule("hot", "signal", threshold=1.0)],
            sinks=[sink],
            repeat_interval=0.0,
            clock=ManualClock(),
        )
        telemetry.gauge("signal", 2.0)
        for _ in range(12):
            manager.evaluate()
        assert len(sink.notifications) == 1


# -- notification sinks -----------------------------------------------------


def _notification(state="firing"):
    return Notification(
        alert="demo",
        state=state,
        severity="warning",
        labels={"component": "test"},
        value=1.5,
        detail="detail",
        timestamp=10.0,
    )


class TestSinks:
    def test_memory_log_and_jsonl_sinks(self, tmp_path):
        import io

        stream = io.StringIO()
        path = str(tmp_path / "alerts.jsonl")
        telemetry = Telemetry()
        sinks = [MemorySink(), LogSink(stream=stream), JsonlSink(path)]
        for sink in sinks:
            sink.telemetry = telemetry
            sink.notify(_notification())
        assert sinks[0].notifications[0].alert == "demo"
        assert "[FIRING] demo" in stream.getvalue()
        with open(path) as handle:
            record = json.loads(handle.readline())
        assert record["alert"] == "demo" and record["state"] == "firing"
        snap = telemetry.snapshot()
        sent = snap["metrics"]["notifications_sent_total"]["samples"]
        assert {s["labels"]["sink"] for s in sent} == {"memory", "log", "jsonl"}

    def test_webhook_delivers_over_real_http(self):
        telemetry = Telemetry()
        with WebhookReceiver() as receiver:
            sink = WebhookSink(receiver.url)
            sink.telemetry = telemetry
            sink.notify(_notification())
            assert sink.sent == 1 and sink.failed == 0
        assert receiver.received[0]["alert"] == "demo"
        snap = telemetry.snapshot()
        sent = snap["metrics"]["notifications_sent_total"]["samples"]
        assert sent[0]["labels"]["sink"] == "webhook" and sent[0]["value"] == 1.0

    def test_webhook_failure_is_counted_not_raised(self):
        telemetry = Telemetry()
        sink = WebhookSink("http://127.0.0.1:%d/hook" % _free_port(), timeout=0.5)
        sink.telemetry = telemetry
        sink.notify(_notification())  # must not raise
        assert sink.sent == 0 and sink.failed == 1
        assert sink.last_error
        snap = telemetry.snapshot()
        failed = snap["metrics"]["notifications_failed_total"]["samples"]
        assert failed[0]["labels"]["sink"] == "webhook"
        assert failed[0]["value"] == 1.0

    def test_webhook_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            WebhookSink("ftp://example.com/hook")

    def test_failing_sink_does_not_block_others(self):
        telemetry = Telemetry()
        memory = MemorySink()
        manager = AlertManager(
            telemetry,
            rules=[ThresholdRule("hot", "signal", threshold=1.0)],
            sinks=[
                WebhookSink("http://127.0.0.1:%d/x" % _free_port(), timeout=0.5),
                memory,
            ],
            clock=ManualClock(),
        )
        telemetry.gauge("signal", 2.0)
        manager.evaluate()
        assert len(memory.notifications) == 1


# -- ALERTS exposition conformance ------------------------------------------

_ALERTS_LINE = re.compile(
    r'^ALERTS\{alertname="(?P<name>[^"]+)",alertstate="(?P<state>[^"]+)"'
    r',labelset="(?P<labelset>[^"]*)",severity="[^"]+"\} (?P<value>\d+)$',
    re.MULTILINE,
)


class TestExpositionConformance:
    def test_one_hot_per_alert_and_labelset(self):
        telemetry, manager, _ = _scripted_lifecycle()
        text = telemetry.render_prometheus()
        rows = _ALERTS_LINE.findall(text)
        assert rows, "no ALERTS samples rendered"
        per_alert = {}
        for name, state, labelset, value in rows:
            per_alert.setdefault((name, labelset), []).append((state, value))
        for (name, labelset), states in per_alert.items():
            ones = [state for state, value in states if value == "1"]
            assert len(ones) == 1, (name, labelset, states)
            # All four machine states are present (former states zeroed).
            assert sorted(state for state, _ in states) == [
                "firing",
                "inactive",
                "pending",
                "resolved",
            ]
        # The scripted run ended back at inactive after retention.
        assert per_alert[("queue_backlog", "component=ingest")]
        ones = [
            state
            for state, value in per_alert[("queue_backlog", "component=ingest")]
            if value == "1"
        ]
        assert ones == ["inactive"]

    def test_help_and_type_headers_present(self):
        telemetry, _, _ = _scripted_lifecycle()
        text = telemetry.render_prometheus()
        assert "# TYPE ALERTS gauge" in text
        assert "# TYPE alerts_transitions_total counter" in text

    def test_export_happens_before_transition_callback(self):
        """An on_transition hook must see the new state already exported."""
        telemetry = Telemetry()
        seen = []

        def hook(event):
            text = telemetry.render_prometheus()
            pattern = r'^ALERTS\{alertname="hot",alertstate="%s"[^}]*\} 1$' % (
                event["to"],
            )
            seen.append(bool(re.search(pattern, text, re.MULTILINE)))

        manager = AlertManager(
            telemetry,
            rules=[ThresholdRule("hot", "signal", threshold=1.0)],
            clock=ManualClock(),
            on_transition=hook,
        )
        telemetry.gauge("signal", 2.0)
        manager.evaluate()
        assert seen == [True]


# -- health/alert unification -----------------------------------------------


class TestHealthUnification:
    def test_fail_means_503_and_firing_alert(self):
        telemetry = Telemetry()
        manager = AlertManager(
            telemetry, rules=[], repeat_interval=0.0, clock=ManualClock()
        )
        evaluator = HealthEvaluator(telemetry, default_rules(), alerts=manager)
        telemetry.gauge("daemon_queue_depth", 100.0)  # >= fail_depth 64
        with TelemetryServer(telemetry, port=0, health=evaluator).start() as server:
            url = "http://127.0.0.1:%d/health" % server.port
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url)
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode())
            assert payload["status"] == "fail"
            # The 503 and the firing alert can never disagree.
            assert [s.name for s in manager.firing()] == ["health_queue_depth"]

            # Recovery: the queue drains, /health goes 200, the firing
            # alert resolves in the same evaluation.
            telemetry.gauge("daemon_queue_depth", 0.0)
            with urllib.request.urlopen(url) as response:
                assert response.status == 200
            assert manager.firing() == []
            moves = [
                (e["alert"], e["from"], e["to"]) for e in manager.transitions
            ]
            assert ("health_queue_depth", "firing", "resolved") in moves

    def test_warn_parks_alert_in_pending(self):
        telemetry = Telemetry()
        manager = AlertManager(telemetry, rules=[], clock=ManualClock())
        evaluator = HealthEvaluator(telemetry, default_rules(), alerts=manager)
        telemetry.gauge("daemon_queue_depth", 20.0)  # warn band [16, 64)
        report = evaluator.evaluate()
        assert report.status == "warn"
        states = {s.name: s.state for s in manager.active()}
        assert states["health_queue_depth"] == "pending"

    def test_fail_then_warn_resolves_before_pending(self):
        telemetry = Telemetry()
        manager = AlertManager(telemetry, rules=[], clock=ManualClock())
        evaluator = HealthEvaluator(telemetry, default_rules(), alerts=manager)
        telemetry.gauge("daemon_queue_depth", 100.0)
        evaluator.evaluate()
        telemetry.gauge("daemon_queue_depth", 20.0)
        evaluator.evaluate()
        moves = [
            (e["from"], e["to"])
            for e in manager.transitions
            if e["alert"] == "health_queue_depth"
        ]
        assert moves == [
            ("inactive", "firing"),
            ("firing", "resolved"),
            ("resolved", "pending"),
        ]


# -- sketch-driven anomaly detectors ----------------------------------------


class TestDetectors:
    def test_ddos_trace_collapses_entropy_then_recovers(self):
        telemetry = Telemetry()
        detectors = SketchAnomalyDetectors(telemetry=telemetry)
        monitor = nitro_kary(depth=5, width=8192, probability=0.25, top_k=64, seed=7)
        trace = ddos_onset_trace(60_000, seed=7)
        epochs, step = 12, len(trace) // 12
        drops = []
        for index in range(epochs):
            piece = trace.slice(index * step, (index + 1) * step)
            monitor.update_batch(piece.keys)
            signals = detectors.observe_epoch(monitor, len(piece))
            drops.append(signals["entropy_drop"])
        # Attack window (epochs 4..7 of 12 at onset 1/3, offset 2/3).
        assert max(drops[4:8]) > 0.5
        # Background on both sides sits near the frozen baseline.
        assert max(drops[:4]) < 0.2 and max(drops[9:]) < 0.2

    def test_change_score_spikes_at_onset_and_offset(self):
        telemetry = Telemetry()
        detectors = SketchAnomalyDetectors(telemetry=telemetry)
        monitor = nitro_kary(depth=5, width=8192, probability=0.25, top_k=64, seed=7)
        trace = ddos_onset_trace(60_000, seed=7)
        epochs, step = 12, len(trace) // 12
        scores = []
        for index in range(epochs):
            piece = trace.slice(index * step, (index + 1) * step)
            monitor.update_batch(piece.keys)
            scores.append(
                detectors.observe_epoch(monitor, len(piece))["change_score"]
            )
        assert scores[0] == 0.0  # first epoch: nothing to diff against
        onset, offset = scores[4], scores[8]
        background = max(scores[1:4])
        assert onset > 0.5 and offset > 0.5
        assert background < 0.2

    def test_churn_zero_for_stable_heavy_hitters(self):
        telemetry = Telemetry()
        detectors = SketchAnomalyDetectors(telemetry=telemetry)
        monitor = nitro_kary(depth=5, width=8192, probability=1.0, top_k=32, seed=3)
        trace = caida_like(30_000, n_flows=2_000, skew=1.3, seed=3)
        step = len(trace) // 3
        churns = []
        for index in range(3):
            piece = trace.slice(index * step, (index + 1) * step)
            monitor.update_batch(piece.keys)
            churns.append(detectors.observe_epoch(monitor, len(piece))["hh_churn"])
        assert churns[0] == 0.0
        assert max(churns[1:]) < 0.6  # same elephants every epoch

    def test_exports_gauges_and_epoch_counter(self):
        telemetry = Telemetry()
        detectors = SketchAnomalyDetectors(telemetry=telemetry)
        monitor = nitro_kary(depth=4, width=2048, probability=1.0, top_k=16, seed=1)
        monitor.update_batch(caida_like(5_000, n_flows=500, seed=1).keys)
        detectors.observe_epoch(monitor, 5_000)
        snap = telemetry.snapshot()
        for metric in (
            "anomaly_change_score",
            "anomaly_entropy_bits",
            "anomaly_entropy_drop",
            "anomaly_hh_churn",
            "anomaly_epochs_total",
        ):
            assert metric in snap["metrics"], metric
        assert telemetry.tracer.events("anomaly.epoch")

    def test_non_cumulative_mode_queries_directly(self):
        """Fresh-per-epoch monitors (ControlPlane shape) need no diffing."""
        telemetry = Telemetry()
        detectors = SketchAnomalyDetectors(telemetry=telemetry, cumulative=False)
        trace = caida_like(20_000, n_flows=1_000, skew=1.3, seed=5)
        step = len(trace) // 2
        for index in range(2):
            piece = trace.slice(index * step, (index + 1) * step)
            monitor = nitro_kary(
                depth=4, width=4096, probability=1.0, top_k=32, seed=5
            )
            monitor.update_batch(piece.keys)
            signals = detectors.observe_epoch(monitor, len(piece))
        # Same background both epochs: stable entropy, low churn.
        assert signals["entropy_drop"] < 0.2
        assert signals["hh_churn"] < 0.6


# -- the end-to-end demo ----------------------------------------------------


class TestAlertDemo:
    @pytest.fixture(scope="class")
    def run(self):
        telemetry = Telemetry()
        summary = run_alert_demo(telemetry, packets=30_000, seed=7)
        return telemetry, summary

    def test_full_lifecycle_fires_and_resolves(self, run):
        telemetry, summary = run
        assert summary["fired"] and summary["resolved"]
        assert validate_alert_demo(telemetry, summary) == []

    def test_deterministic_under_fixed_seed(self, run):
        _, first = run
        second = run_alert_demo(Telemetry(), packets=30_000, seed=7)
        strip = lambda events: [
            {k: v for k, v in e.items()} for e in events
        ]
        assert strip(first["transitions"]) == strip(second["transitions"])
        assert first["signals"] == second["signals"]

    def test_webhook_delivery_expected_when_configured(self):
        telemetry = Telemetry()
        with WebhookReceiver() as receiver:
            summary = run_alert_demo(
                telemetry, packets=30_000, seed=7, webhook_url=receiver.url
            )
            problems = validate_alert_demo(telemetry, summary, expect_webhook=True)
            assert problems == []
            assert any(
                body["alert"] == "entropy_collapse" and body["state"] == "firing"
                for body in receiver.received
            )


# -- wiring: daemon, control plane, parallel engine, server, dashboard ------


def _make_batch(keys):
    keys = np.asarray(keys, dtype=np.int64)
    return Batch(
        keys=keys,
        sizes=np.full(len(keys), 64, dtype=np.int64),
        timestamps=np.arange(len(keys), dtype=np.float64) * 1e-6,
    )


class TestDaemonWiring:
    def _daemon(self, telemetry, epoch_batches=2):
        monitor = NitroSketch(CountSketch(4, 2048, seed=0), probability=1.0, top_k=16)
        detectors = SketchAnomalyDetectors(telemetry=telemetry)
        manager = AlertManager(
            telemetry,
            rules=[ThresholdRule("hot", "signal", threshold=1.0)],
            clock=ManualClock(),
        )
        daemon = MeasurementDaemon(
            monitor,
            telemetry=telemetry,
            anomaly=detectors,
            alerts=manager,
            epoch_batches=epoch_batches,
        )
        return daemon, detectors, manager

    def test_epoch_boundary_fires_every_n_batches(self):
        telemetry = Telemetry()
        daemon, detectors, manager = self._daemon(telemetry, epoch_batches=2)
        for _ in range(5):
            daemon.ingest(_make_batch([1, 2, 3]))
        assert daemon.epochs_completed == 2
        assert detectors.epochs == 2
        assert manager.evaluations == 2

    def test_manual_epoch_boundary_and_empty_epoch_noop(self):
        telemetry = Telemetry()
        daemon, detectors, _ = self._daemon(telemetry, epoch_batches=0)
        daemon.epoch_boundary()  # zero packets: no epoch
        assert daemon.epochs_completed == 0
        daemon.ingest(_make_batch([1, 2]))
        daemon.epoch_boundary()
        assert daemon.epochs_completed == 1 and detectors.epochs == 1

    def test_reset_clears_epoch_state(self):
        telemetry = Telemetry()
        daemon, detectors, _ = self._daemon(telemetry, epoch_batches=2)
        daemon.ingest(_make_batch([1, 2, 3]))
        daemon.ingest(_make_batch([1, 2, 3]))
        daemon.reset()
        assert daemon.epochs_completed == 0
        assert detectors.epochs == 0 and detectors.last_signals is None

    def test_epoch_batches_validated(self):
        with pytest.raises(ValueError):
            MeasurementDaemon(CountSketch(4, 64, seed=0), epoch_batches=-1)


class TestControlPlaneWiring:
    def test_plane_drives_detectors_and_rules_per_epoch(self):
        telemetry = Telemetry()
        detectors = SketchAnomalyDetectors(telemetry=telemetry, cumulative=False)
        manager = AlertManager(
            telemetry,
            rules=default_alert_rules(),
            clock=ManualClock(),
        )
        plane = ControlPlane(
            lambda seed: nitro_kary(
                depth=4, width=4096, probability=1.0, top_k=32, seed=seed
            ),
            [HeavyHitterTask(0.01)],
            score=False,
            telemetry=telemetry,
            anomaly=detectors,
            alerts=manager,
        )
        trace = caida_like(12_000, n_flows=1_000, seed=9)
        reports = plane.run_epochs(trace, epoch_packets=4_000)
        assert len(reports) == 3
        assert detectors.epochs == 3
        assert manager.evaluations == 3


@needs_shm
class TestParallelWiring:
    def test_engine_evaluates_alerts_after_fanin(self):
        telemetry = Telemetry()
        manager = AlertManager(
            telemetry,
            rules=default_alert_rules(),
            clock=ManualClock(),
        )
        engine = ParallelIngestEngine(
            VanillaFactory(sketch="countmin", depth=4, width=512, seed=3),
            workers=2,
            strategy="merge",
            epoch_packets=5_000,
            batch_size=1024,
            telemetry=telemetry,
            alerts=manager,
        )
        trace = caida_like(10_000, n_flows=500, seed=21)
        engine.run(trace.keys)
        assert manager.evaluations >= 1


class TestServerRoutes:
    def test_alerts_and_rules_routes(self):
        telemetry, manager, _ = _scripted_lifecycle()
        with TelemetryServer(telemetry, port=0, alerts=manager).start() as server:
            base = "http://127.0.0.1:%d" % server.port
            alerts = json.loads(urllib.request.urlopen(base + "/alerts").read())
            rules = json.loads(urllib.request.urlopen(base + "/rules").read())
        assert alerts["transitions_total"] == 4
        assert {s["alert"] for s in alerts["states"]} == {"queue_backlog"}
        assert rules[0]["name"] == "queue_backlog"
        assert rules[0]["threshold"] == 10.0

    def test_routes_404_without_manager(self):
        with TelemetryServer(Telemetry(), port=0).start() as server:
            base = "http://127.0.0.1:%d" % server.port
            for path in ("/alerts", "/rules"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(base + path)
                assert excinfo.value.code == 404


class TestDashboardPanel:
    def test_firing_alerts_render_in_panel(self):
        telemetry = Telemetry()
        manager = AlertManager(
            telemetry,
            rules=[
                ThresholdRule("hot", "signal", threshold=1.0, severity="critical")
            ],
            clock=ManualClock(),
        )
        telemetry.gauge("signal", 2.0)
        manager.evaluate()
        frame = render_dashboard(telemetry.snapshot())
        assert "alerts      1 active (1 firing)" in frame
        assert "FIRING" in frame and "hot" in frame and "critical" in frame

    def test_none_active_line(self):
        telemetry = Telemetry()
        manager = AlertManager(
            telemetry,
            rules=[ThresholdRule("hot", "signal", threshold=10.0)],
            clock=ManualClock(),
        )
        telemetry.gauge("signal", 0.0)
        manager.evaluate()
        frame = render_dashboard(telemetry.snapshot())
        assert "alerts      none active" in frame

    def test_no_panel_without_alert_plane(self):
        frame = render_dashboard(Telemetry().snapshot())
        assert "alerts " not in frame


class TestCli:
    def test_alerts_demo_exits_zero(self, capsys):
        assert cli_main(["alerts", "--demo", "--packets", "30000"]) == 0
        err = capsys.readouterr().err
        assert "lifecycle verified over HTTP" in err

    def test_alerts_eval_prints_states(self, capsys):
        assert cli_main(["alerts", "--eval", "--packets", "30000"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {s["alert"] for s in payload["states"]} >= {"entropy_collapse"}

    def test_alerts_without_mode_is_usage_error(self):
        assert cli_main(["alerts"]) == 2
