"""Tests for the analysis package (Theorems 1/2/5, Appendix B)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    alwayscorrect_width,
    convergence_threshold,
    countmin_width,
    guaranteed_convergence_packets,
    l2_convergence_requirement,
    linerate_width,
    nitro_space_counters,
    one_array_space_counters,
    expected_sampled_rows_per_packet,
    sketch_depth,
    space_ratio_uniform_vs_nitro,
    uniform_sampling_space_counters,
)
from repro.analysis.theory import caida_l2_growth_coefficient

EPS = st.floats(min_value=0.01, max_value=0.5)
PROB = st.floats(min_value=0.001, max_value=1.0)


class TestSizing:
    def test_theorem2_width(self):
        # w = 8 eps^-2 p^-1
        assert linerate_width(0.05, 0.01) == math.ceil(8 / (0.0025 * 0.01))

    def test_theorem5_width(self):
        assert alwayscorrect_width(0.05, 0.01) == math.ceil(11 / (0.0025 * 0.01))

    def test_theorem1_width(self):
        assert countmin_width(0.05) == 80

    def test_depth_log_delta(self):
        assert sketch_depth(0.5) == 1
        assert sketch_depth(0.25) == 2
        assert sketch_depth(0.01) == 7  # ceil(log2(100)) = 7

    def test_total_counters(self):
        assert nitro_space_counters(0.05, 0.05, 0.01) == linerate_width(
            0.05, 0.01
        ) * sketch_depth(0.05)

    @given(EPS, PROB)
    @settings(max_examples=50)
    def test_alwayscorrect_needs_more_width(self, epsilon, probability):
        assert alwayscorrect_width(epsilon, probability) >= linerate_width(
            epsilon, probability
        )

    @given(EPS, PROB)
    @settings(max_examples=50)
    def test_width_monotone_in_probability(self, epsilon, probability):
        if probability <= 0.5:
            assert linerate_width(epsilon, probability) >= linerate_width(
                epsilon, probability * 2
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            linerate_width(0, 0.1)
        with pytest.raises(ValueError):
            linerate_width(0.1, 0)
        with pytest.raises(ValueError):
            countmin_width(2.0)
        with pytest.raises(ValueError):
            sketch_depth(1.5)


class TestConvergence:
    def test_threshold_formula(self):
        epsilon, probability = 0.05, 0.01
        expected = 121 * (1 + epsilon * math.sqrt(probability)) / (
            epsilon**4 * probability**2
        )
        assert convergence_threshold(epsilon, probability) == pytest.approx(expected)

    def test_l2_requirement(self):
        assert l2_convergence_requirement(0.05, 0.01) == pytest.approx(
            8 / (0.0025 * 0.01)
        )

    def test_caida_fit_reproduces_paper_anchors(self):
        """Section 5: L2 ~= 1.28e6 at 10M packets, 1.03e7 at 100M."""
        coefficient, exponent = caida_l2_growth_coefficient()
        assert coefficient * (10e6**exponent) == pytest.approx(1.28e6, rel=1e-6)
        assert coefficient * (100e6**exponent) == pytest.approx(1.03e7, rel=1e-6)

    def test_convergence_packets_monotone_in_rate(self):
        coefficient, exponent = caida_l2_growth_coefficient()
        slow = guaranteed_convergence_packets(0.03, 0.02, coefficient, exponent)
        fast = guaranteed_convergence_packets(0.03, 0.10, coefficient, exponent)
        assert fast < slow

    def test_convergence_packets_monotone_in_error(self):
        coefficient, exponent = caida_l2_growth_coefficient()
        tight = guaranteed_convergence_packets(0.01, 0.05, coefficient, exponent)
        loose = guaranteed_convergence_packets(0.05, 0.05, coefficient, exponent)
        assert loose < tight

    def test_paper_convergence_example(self):
        """Section 5: pmin = 2^-7 gives eps >= 2.9% after 10M packets."""
        coefficient, exponent = caida_l2_growth_coefficient()
        packets = guaranteed_convergence_packets(
            0.029, 2**-7, coefficient, exponent
        )
        assert packets == pytest.approx(10e6, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            guaranteed_convergence_packets(0.05, 0.01, -1.0)
        with pytest.raises(ValueError):
            guaranteed_convergence_packets(0.05, 0.01, 1.0, 0.0)


class TestSampledRows:
    def test_expected_rows(self):
        assert expected_sampled_rows_per_packet(5, 0.01) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_sampled_rows_per_packet(0, 0.5)
        with pytest.raises(ValueError):
            expected_sampled_rows_per_packet(5, 0)


class TestAppendixB:
    def test_uniform_sampling_needs_more_space(self):
        ratio = space_ratio_uniform_vs_nitro(0.05, 0.001, 0.01, 1e6)
        assert ratio > 1.0

    def test_ratio_grows_with_smaller_delta(self):
        loose = space_ratio_uniform_vs_nitro(0.05, 0.1, 0.01, 1e6)
        tight = space_ratio_uniform_vs_nitro(0.05, 1e-6, 0.01, 1e6)
        assert tight > loose

    def test_uniform_bound_components(self):
        value = uniform_sampling_space_counters(0.05, 0.05, 0.01, 1e9)
        first = (0.05**-2) * 100 * math.log(20)
        assert value >= first

    def test_one_array_counters(self):
        assert one_array_space_counters(0.1, 0.01) == pytest.approx(1e4)

    def test_one_array_50x_at_delta_001(self):
        """Paper Section 4.1: delta = 0.01 costs ~50x more memory than the
        multi-row sketch (eps^-2/delta vs eps^-2 log2(1/delta))."""
        one_array = one_array_space_counters(0.05, 0.01)
        multi_row = (0.05**-2) * math.log2(100)
        assert one_array / multi_row == pytest.approx(100 / math.log2(100), rel=0.01)
        assert 10 < one_array / multi_row < 20

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_sampling_space_counters(0.05, 0.05, 0.01, 0)
        with pytest.raises(ValueError):
            one_array_space_counters(0.05, 2.0)


class TestEmpiricalL2Growth:
    def test_uniform_traffic_sqrt_growth(self):
        from repro.analysis import fit_l2_growth, l2_growth_curve
        from repro.traffic import uniform_keys

        keys = uniform_keys(60000, 50000, seed=1)
        _, exponent = fit_l2_growth(l2_growth_curve(keys))
        assert exponent == pytest.approx(0.5, abs=0.08)

    def test_skewed_traffic_near_linear_growth(self):
        from repro.analysis import fit_l2_growth, l2_growth_curve
        from repro.traffic import zipf_keys

        keys = zipf_keys(60000, 50000, skew=1.3, seed=2)
        _, exponent = fit_l2_growth(l2_growth_curve(keys))
        assert 0.8 < exponent <= 1.05  # paper's CAIDA fit gives ~0.9

    def test_l2_of_prefix_matches_direct(self):
        from collections import Counter

        from repro.analysis import l2_of_prefix
        from repro.traffic import zipf_keys

        keys = zipf_keys(5000, 300, 1.1, seed=3)
        direct = math.sqrt(
            sum(v * v for v in Counter(keys[:2000].tolist()).values())
        )
        assert l2_of_prefix(keys, 2000) == pytest.approx(direct)

    def test_measured_convergence_monotone_in_probability(self):
        from repro.analysis import measured_convergence_packets
        from repro.traffic import zipf_keys

        keys = zipf_keys(40000, 20000, 1.0, seed=4)
        slow = measured_convergence_packets(keys, 0.05, 0.02)
        fast = measured_convergence_packets(keys, 0.05, 0.2)
        assert fast < slow

    def test_fit_validation(self):
        from repro.analysis import fit_l2_growth, l2_growth_curve

        with pytest.raises(ValueError):
            fit_l2_growth([(100, 5.0)])
        with pytest.raises(ValueError):
            l2_growth_curve(np.array([1]))
