"""Tests for repro.sketches.topk.TopK."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.opcount import OpCounter
from repro.sketches.topk import TopK


class TestTopKBasics:
    def test_tracks_up_to_k(self):
        topk = TopK(3)
        for key in range(3):
            assert topk.offer(key, float(key + 1))
        assert len(topk) == 3

    def test_eviction_of_minimum(self):
        topk = TopK(2)
        topk.offer(1, 10.0)
        topk.offer(2, 20.0)
        assert topk.offer(3, 15.0)  # evicts key 1
        assert 1 not in topk
        assert set(topk.keys()) == {2, 3}

    def test_rejects_below_minimum(self):
        topk = TopK(2)
        topk.offer(1, 10.0)
        topk.offer(2, 20.0)
        assert not topk.offer(3, 5.0)
        assert set(topk.keys()) == {1, 2}

    def test_update_existing_key(self):
        topk = TopK(2)
        topk.offer(1, 10.0)
        topk.offer(1, 30.0)
        assert topk.estimate(1) == 30.0
        assert len(topk) == 1

    def test_stale_estimate_not_lowered(self):
        topk = TopK(2)
        topk.offer(1, 30.0)
        topk.offer(1, 10.0)  # lower re-offer keeps the max
        assert topk.estimate(1) == 30.0

    def test_ranked_order(self):
        topk = TopK(5)
        for key, est in ((1, 5.0), (2, 50.0), (3, 20.0)):
            topk.offer(key, est)
        assert [key for key, _ in topk.ranked()] == [2, 3, 1]

    def test_min_estimate(self):
        topk = TopK(3)
        assert topk.min_estimate() == 0.0
        topk.offer(1, 7.0)
        topk.offer(2, 3.0)
        assert topk.min_estimate() == 3.0

    def test_min_estimate_after_updates(self):
        topk = TopK(2)
        topk.offer(1, 1.0)
        topk.offer(2, 2.0)
        topk.offer(1, 5.0)  # stale (1.0, 1) entry must be skipped
        assert topk.min_estimate() == 2.0

    def test_estimate_keyerror(self):
        with pytest.raises(KeyError):
            TopK(2).estimate(1)

    def test_reset(self):
        topk = TopK(2)
        topk.offer(1, 1.0)
        topk.reset()
        assert len(topk) == 0
        assert topk.min_estimate() == 0.0

    def test_items_iterates_pairs(self):
        topk = TopK(3)
        topk.offer(1, 2.0)
        assert list(topk.items()) == [(1, 2.0)]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopK(0)

    def test_memory_positive(self):
        topk = TopK(4)
        topk.offer(1, 1.0)
        assert topk.memory_bytes() > 0

    def test_ops_recording(self):
        topk = TopK(2)
        ops = OpCounter()
        topk.ops = ops
        topk.offer(1, 1.0)
        assert ops.table_lookups == 1
        assert ops.heap_ops == 1  # insertion push


class TestTopKProperty:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.floats(0.1, 1000)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100)
    def test_monotone_offers_match_exact_topk(self, offers):
        """With monotonically growing per-key estimates, the store holds
        exactly the top-k keys by final value."""
        k = 5
        topk = TopK(k)
        best = {}
        for key, value in offers:
            # Make per-key sequences monotone (like growing counters).
            value = max(value, best.get(key, 0.0) + 0.001)
            best[key] = value
            topk.offer(key, value)
        held = set(topk.keys())
        assert len(held) == min(k, len(best))
        # Every held key's estimate matches its final offered value.
        for key in held:
            assert topk.estimate(key) == pytest.approx(best[key])
        # Monotone offers guarantee every held key's final value is >= the
        # k-th largest final value (ties may swap equal-valued keys).
        kth_value = sorted(best.values(), reverse=True)[: k][-1]
        for key in held:
            assert best[key] >= kth_value - 1e-9


class TestHeapCompaction:
    def test_heap_bounded_under_tracked_reoffers(self):
        """Regression: re-offering tracked keys must not grow the heap.

        Updating an already-tracked key never evicts, so nothing lazily
        pops its stale heap entries -- before amortized compaction the
        heap held one tuple per offer and a long-lived monitor re-offering
        its heavy hitters grew without bound.
        """
        from repro.sketches.topk import COMPACT_FACTOR

        k = 16
        topk = TopK(k)
        for index in range(5000):
            topk.offer(index % k, float(index))
        assert len(topk) == k
        assert len(topk._heap) <= COMPACT_FACTOR * k
        assert topk.check_invariants() == []
        # Estimates are the freshest offers despite the compactions.
        for key in range(k):
            expected = max(i for i in range(5000) if i % k == key)
            assert topk.estimate(key) == float(expected)

    def test_compaction_preserves_eviction_order(self):
        from repro.sketches.topk import COMPACT_FACTOR

        k = 4
        topk = TopK(k)
        # Grow stale entries past the compaction trigger...
        for index in range(10 * COMPACT_FACTOR * k):
            topk.offer(index % k, float(index + 10))
        # ...then eviction must still target the true minimum.
        floor = min(topk.estimate(key) for key in topk.keys())
        assert topk.offer(999, floor + 1000.0)
        assert 999 in topk
        assert len(topk) == k

    def test_check_invariants_clean_on_fresh_and_used(self):
        topk = TopK(8)
        assert topk.check_invariants() == []
        for index in range(100):
            topk.offer(index, float(index))
        assert topk.check_invariants() == []
