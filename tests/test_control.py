"""Tests for the control plane: tasks, epochs, and the K-ary adapter."""

import numpy as np
import pytest

from repro.control import (
    ControlPlane,
    DistinctFlowsTask,
    EntropyTask,
    HeavyHitterTask,
    KAryChangeMonitor,
)
from repro.core import nitro_kary, nitro_univmon
from repro.sketches import UnivMon
from repro.traffic import caida_like, remap_flows


def make_univmon_factory(seed=1):
    return lambda epoch: UnivMon(levels=8, depth=5, widths=4096, k=200, seed=seed)


class TestHeavyHitterTask:
    def test_detects_and_scores(self):
        trace = caida_like(50000, n_flows=5000, seed=1)
        monitor = UnivMon(levels=8, depth=5, widths=8192, k=300, seed=1)
        monitor.update_batch(trace.keys)
        task = HeavyHitterTask(0.001)
        report = task.evaluate(monitor, len(trace))
        assert report.detected
        report = task.score(report, trace.counts())
        assert report.recall is not None and report.recall > 0.8
        assert report.error is not None and report.error < 0.2

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterTask(0.0)


class TestScalarTasks:
    def test_entropy_task(self):
        trace = caida_like(50000, n_flows=3000, seed=2)
        monitor = UnivMon(levels=10, depth=5, widths=8192, k=300, seed=2)
        monitor.update_batch(trace.keys)
        task = EntropyTask()
        report = task.score(task.evaluate(monitor, len(trace)), trace.counts())
        assert report.estimate is not None
        assert report.error < 0.5

    def test_distinct_task(self):
        trace = caida_like(50000, n_flows=2000, seed=3)
        monitor = UnivMon(levels=10, depth=5, widths=8192, k=300, seed=3)
        monitor.update_batch(trace.keys)
        task = DistinctFlowsTask()
        report = task.score(task.evaluate(monitor, len(trace)), trace.counts())
        assert report.estimate is not None
        assert report.error < 0.6


class TestControlPlane:
    def test_epoch_slicing(self):
        trace = caida_like(30000, n_flows=2000, seed=4)
        plane = ControlPlane(make_univmon_factory(4), [HeavyHitterTask(0.001)])
        reports = plane.run_epochs(trace, epoch_packets=10000)
        assert len(reports) == 3
        assert all(r.packets == 10000 for r in reports)
        assert all("heavy_hitters" in r.reports for r in reports)

    def test_partial_final_epoch(self):
        trace = caida_like(25000, n_flows=2000, seed=5)
        plane = ControlPlane(make_univmon_factory(5), [HeavyHitterTask(0.001)])
        reports = plane.run_epochs(trace, epoch_packets=10000)
        assert reports[-1].packets == 5000

    def test_scoring_disabled(self):
        trace = caida_like(10000, n_flows=500, seed=6)
        plane = ControlPlane(
            make_univmon_factory(6), [HeavyHitterTask(0.001)], score=False
        )
        reports = plane.run_epochs(trace, epoch_packets=10000)
        assert reports[0].reports["heavy_hitters"].recall is None

    def test_monitors_retained(self):
        trace = caida_like(20000, n_flows=1000, seed=7)
        plane = ControlPlane(make_univmon_factory(7), [])
        plane.run_epochs(trace, epoch_packets=10000)
        assert len(plane.monitors) == 2

    def test_invalid_epoch(self):
        plane = ControlPlane(make_univmon_factory(), [])
        with pytest.raises(ValueError):
            plane.run_epochs(caida_like(100, seed=8), epoch_packets=0)


class TestKAryChangeMonitor:
    def test_detects_new_heavy_flow(self):
        first = caida_like(100000, n_flows=5000, seed=9)
        giant = np.full(8000, 987654321, dtype=np.int64)
        second_keys = np.concatenate([first.keys, giant])
        a = KAryChangeMonitor(nitro_kary(probability=0.05, top_k=200, seed=9))
        b = KAryChangeMonitor(nitro_kary(probability=0.05, top_k=200, seed=9))
        a.update_batch(first.keys)
        b.update_batch(second_keys)
        changes = b.change_detection(a, threshold=3000)
        assert changes
        assert changes[0][0] == 987654321
        assert changes[0][1] == pytest.approx(8000, rel=0.25)

    def test_churn_detection(self):
        trace = caida_like(200000, n_flows=20000, seed=10)
        half = 100000
        first = trace.keys[:half]
        second = remap_flows(trace.keys[half:], 0.4)
        a = KAryChangeMonitor(nitro_kary(probability=0.05, top_k=300, seed=10))
        b = KAryChangeMonitor(nitro_kary(probability=0.05, top_k=300, seed=10))
        a.update_batch(first)
        b.update_batch(second)
        changes = b.change_detection(a, threshold=0.001 * half)
        assert len(changes) > 5

    def test_query_delegates(self):
        monitor = KAryChangeMonitor(nitro_kary(probability=1.0, top_k=50, seed=11))
        for _ in range(100):
            monitor.update(5)
        assert monitor.query(5) == pytest.approx(100, abs=10)

    def test_reset(self):
        monitor = KAryChangeMonitor(nitro_kary(probability=0.5, top_k=50, seed=12))
        monitor.update(1)
        monitor.reset()
        assert monitor.query(1) == pytest.approx(0.0, abs=1.0)
