"""Integration tests: every paper experiment runs and its shape holds.

These use small scales so the whole module stays in CI-friendly time;
the assertions target the scale-invariant *shape* claims of each figure
(orderings, crossovers, monotone trends), not absolute numbers.
"""

import math

import pytest

from repro.experiments import ablation, fig2, fig3, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15, table1, table2


def by(rows, **criteria):
    matched = [
        row
        for row in rows
        if all(row.get(key) == value for key, value in criteria.items())
    ]
    assert matched, "no row matching %r" % (criteria,)
    return matched


class TestFig2:
    def test_ordering(self):
        result = fig2.run(scale=0.01)
        rates = {row["system"]: row["packet_rate_mpps"] for row in result.rows}
        assert rates["UnivMon"] < rates["Count Sketch"] <= rates["Count-Min"]
        assert rates["Count-Min"] < rates["OVS-DPDK"]
        assert rates["UnivMon"] < 3.0  # paper: < 2 Mpps
        assert 18 < rates["OVS-DPDK"] < 26  # paper: ~22


class TestFig3:
    def test_hashtable_collapses_with_flows(self):
        result = fig3.run_fig3a(scale=0.0005)
        hashtable = by(result.rows, system="Hashtable")
        assert hashtable[0]["packet_rate_mpps"] > hashtable[-1]["packet_rate_mpps"]
        assert hashtable[-1]["packet_rate_mpps"] < 10.0  # paper: <10 past 20M

    def test_sketches_flat(self):
        result = fig3.run_fig3a(scale=0.0005)
        univmon = by(result.rows, system="UnivMon (5%)")
        rates = [row["packet_rate_mpps"] for row in univmon]
        assert max(rates) < 2 * min(rates)

    def test_elastic_errors_grow(self):
        result = fig3.run_fig3b(scale=0.0005)
        entropy = [row["entropy_error_pct"] for row in result.rows]
        distinct = [row["distinct_error_pct"] for row in result.rows]
        assert entropy[-1] > entropy[0]
        assert distinct[-1] > 100  # the >100% overflow claim
        assert result.rows[-1]["light_saturated"]


class TestTables:
    def test_table1_nitro_fastest_and_fully_checked(self):
        result = table1.run(scale=0.01)
        rates = {row["solution"]: row["ovs_packet_rate_mpps"] for row in result.rows}
        assert rates["NitroSketch"] == max(rates.values())
        nitro_row = by(result.rows, solution="NitroSketch")[0]
        assert nitro_row["robustness"] == "yes" and nitro_row["generality"] == "yes"

    def test_table2_hashing_dominates(self):
        result = table2.run(scale=0.01)
        shares = {row["function"]: row["cpu_share_pct"] for row in result.rows}
        hash_share = shares["xxhash32 (hash computations)"]
        assert hash_share == max(shares.values())
        assert 25 < hash_share < 65  # paper: 37.3%
        assert abs(sum(shares.values()) - 100) < 1.0


class TestFig8:
    def test_aio_nitro_restores_line_rate(self):
        result = fig8.run_fig8a(scale=0.01)
        for sketch in ("UnivMon", "Count-Min", "Count Sketch", "K-ary"):
            vanilla = by(result.rows, sketch=sketch, variant="vanilla")[0]
            nitro = by(result.rows, sketch=sketch, variant="nitrosketch")[0]
            assert nitro["throughput_gbps"] == pytest.approx(40.0, rel=0.02)
            assert vanilla["throughput_gbps"] < nitro["throughput_gbps"]

    def test_separate_thread_not_bottleneck(self):
        result = fig8.run_fig8b(scale=0.01)
        for platform in ("ovs-dpdk", "vpp", "bess"):
            bare = by(result.rows, platform=platform, sketch="(switch only)")[0]
            for sketch in ("Count-Min", "Count Sketch", "K-ary"):
                row = by(result.rows, platform=platform, sketch=sketch)[0]
                assert row["packet_rate_mpps"] > 0.85 * bare["packet_rate_mpps"]

    def test_datacenter_line_rate_everywhere(self):
        result = fig8.run_fig8c(scale=0.01)
        for row in result.rows:
            assert row["throughput_gbps"] == pytest.approx(40.0, rel=0.02)


class TestFig9:
    def test_throughput_rises_with_memory(self):
        result = fig9.run_fig9a(scale=0.01)
        for target in (3.0, 5.0):
            series = by(result.rows, error_target_pct=target)
            rates = [row["packet_rate_mpps"] for row in series]
            assert rates[-1] > rates[0]
        # Tighter target is slower at equal memory.
        r3 = by(result.rows, error_target_pct=3.0, memory_mb=8.0)[0]
        r5 = by(result.rows, error_target_pct=5.0, memory_mb=8.0)[0]
        assert r3["packet_rate_mpps"] < r5["packet_rate_mpps"]

    def test_ablation_cumulative_gains(self):
        result = fig9.run_fig9b(scale=0.01)
        capacities = [row["capacity_mpps"] for row in result.rows]
        assert all(b >= a * 0.95 for a, b in zip(capacities, capacities[1:]))
        assert result.rows[-1]["throughput_gbps"] == pytest.approx(40.0, rel=0.02)
        assert capacities[-1] > 3 * capacities[0]


class TestFig10:
    def test_aio_cpu_shares(self):
        result = fig10.run_fig10a(scale=0.01)
        for sketch in ("UnivMon", "Count-Min"):
            vanilla = by(result.rows, sketch=sketch, variant="vanilla")[0]
            nitro = by(result.rows, sketch=sketch, variant="nitrosketch-AIO")[0]
            assert nitro["sketch_cpu_pct"] < 20.0  # paper: < 20%
            assert nitro["sketch_cpu_pct"] < vanilla["sketch_cpu_pct"]

    def test_separate_thread_idle_sketch_core(self):
        result = fig10.run_fig10b(scale=0.01)
        for row in result.rows:
            assert row["switch_core_pct"] > 90.0
            if row["sketch"] != "UnivMon":
                assert row["nitrosketch_core_pct"] < 50.0  # paper: < 50%


class TestFig11:
    def test_errors_decay_and_order(self):
        result = fig11.run_fig11a(scale=0.04)
        p01 = by(result.rows, variant="nitro p=0.1")
        errors = [row["hh_error_pct"] for row in p01]
        assert errors[-1] < errors[0]  # converging
        first_epoch = result.rows[0]["epoch_packets"]
        vanilla = by(result.rows, epoch_packets=first_epoch, variant="vanilla")[0]
        nitro_01 = by(result.rows, epoch_packets=first_epoch, variant="nitro p=0.1")[0]
        nitro_001 = by(result.rows, epoch_packets=first_epoch, variant="nitro p=0.01")[0]
        assert vanilla["hh_error_pct"] < nitro_01["hh_error_pct"] < nitro_001["hh_error_pct"]

    def test_alwayscorrect_throughput_step(self):
        result = fig11.run_fig11c(scale=0.05)
        for monitor in ("AC-NitroSketch(Count-Sketch)", "AC-NitroSketch(UnivMon)"):
            series = by(result.rows, monitor=monitor)
            assert not series[0]["converged"]
            assert series[-1]["converged"]
            assert series[-1]["throughput_gbps"] > series[0]["throughput_gbps"]


class TestFig12:
    def test_hh_errors_decay(self):
        result = fig12.run_fig12a(scale=0.04)
        series = by(result.rows, variant="nitro p=0.1")
        errors = [row["cs_hh_error_pct"] for row in series]
        assert errors[-1] < errors[0]

    def test_convergence_theory_monotone(self):
        result = fig12.run_fig12c(scale=0.2)
        for source in ("paper CAIDA anchors", "measured (synthetic CAIDA)"):
            one_pct = by(result.rows, l2_growth_source=source, error_target_pct=1.0)
            packets = [row["convergence_packets"] for row in one_pct]
            assert packets == sorted(packets, reverse=True)  # more sampling = faster
            five_pct = by(result.rows, l2_growth_source=source, error_target_pct=5.0)
            assert five_pct[0]["convergence_packets"] < one_pct[0]["convergence_packets"]


class TestFig13:
    def test_nitro_beats_sketchvisor(self):
        result = fig13.run_fig13a(scale=0.02)
        rates = {row["system"]: row["packet_rate_mpps"] for row in result.rows}
        assert rates["NitroSketch(UnivMon)"] > 2 * rates["SketchVisor(100%)"]
        assert rates["SketchVisor(20%)"] < rates["SketchVisor(100%)"]

    def test_netflow_memory_scales(self):
        result = fig13.run_fig13b(scale=0.02)
        projected = {row["system"]: row["projected_caida_hour_mb"] for row in result.rows}
        assert projected["NetFlow (0.01)"] > projected["NitroSketch (UnivMon)"]


class TestFig14:
    def test_sketchvisor_error_grows_with_fast_fraction(self):
        result = fig14.run(scale=0.01)
        biggest = max(row["epoch_packets"] for row in result.rows)
        for trace in ("CAIDA", "DDoS"):
            sv20 = by(result.rows, trace=trace, epoch_packets=biggest, system="SketchVisor(20%)")[0]
            sv100 = by(result.rows, trace=trace, epoch_packets=biggest, system="SketchVisor(100%)")[0]
            assert sv100["hh_error_pct"] > sv20["hh_error_pct"]

    def test_sketchvisor_accurate_on_dc(self):
        result = fig14.run(scale=0.01)
        biggest = max(row["epoch_packets"] for row in result.rows)
        dc = by(result.rows, trace="DC", epoch_packets=biggest, system="SketchVisor(100%)")[0]
        assert dc["hh_error_pct"] < 5.0


class TestFig15:
    def test_recall_ordering(self):
        result = fig15.run(scale=0.02)
        biggest = max(row["epoch_packets"] for row in result.rows)
        for trace in ("CAIDA", "DDoS", "DC"):
            nitro = by(result.rows, trace=trace, epoch_packets=biggest, system="NitroSketch (0.01)")[0]
            nf_high = by(result.rows, trace=trace, epoch_packets=biggest, system="NetFlow (0.01)")[0]
            nf_low = by(result.rows, trace=trace, epoch_packets=biggest, system="NetFlow (0.001)")[0]
            assert nitro["recall_pct"] >= nf_high["recall_pct"] - 1e-9
            assert nf_high["recall_pct"] > nf_low["recall_pct"]


class TestAblation:
    def test_design_ordering(self):
        result = ablation.run(scale=0.05)
        rates = {row["variant"]: row["packet_rate_mpps"] for row in result.rows}
        assert rates["nitro-geometric"] > rates["nitro-bernoulli"]
        assert rates["nitro-geometric"] > rates["uniform-sampling"]
        assert rates["nitro-geometric"] > rates["vanilla"]
        errors = {row["variant"]: row["hh_error_pct"] for row in result.rows}
        # Same memory, same p: uniform packet sampling is less accurate
        # than counter-array sampling (the Appendix-B separation).
        assert errors["uniform-sampling"] > errors["nitro-geometric"]
