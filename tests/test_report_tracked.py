"""Tests for the experiment report helpers and TrackedSketch."""

import math

import numpy as np
import pytest

from repro.experiments.report import ExperimentResult, format_table
from repro.metrics.opcount import OpCounter
from repro.sketches import CountSketch, TrackedSketch
from repro.traffic import zipf_keys


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_header(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 20000.0}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert len(lines) == 4  # header, separator, 2 rows

    def test_mixed_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert "-" in text  # missing values rendered as '-'

    def test_special_floats(self):
        text = format_table([{"x": float("inf"), "y": float("nan"), "z": 0.12345}])
        assert "inf" in text
        assert "nan" in text
        assert "0.1235" in text or "0.1234" in text

    def test_large_numbers_unrounded_integers(self):
        text = format_table([{"n": 1234567.0}])
        assert "1234567" in text


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult(name="X", description="desc")
        result.rows = [
            {"system": "a", "mpps": 1.0},
            {"system": "b", "mpps": 2.0},
        ]
        result.notes.append("a note")
        return result

    def test_column(self):
        assert self._result().column("mpps") == [1.0, 2.0]

    def test_column_missing(self):
        assert self._result().column("nope") == [None, None]

    def test_filter(self):
        rows = self._result().filter(system="b")
        assert len(rows) == 1 and rows[0]["mpps"] == 2.0

    def test_render_contains_everything(self):
        text = self._result().render()
        assert "== X ==" in text
        assert "desc" in text
        assert "a note" in text
        assert "mpps" in text


class TestTrackedSketch:
    def test_scalar_and_batch_same_counters(self):
        keys = zipf_keys(5000, 500, 1.2, seed=1)
        a = TrackedSketch(CountSketch(4, 512, seed=2), k=50)
        b = TrackedSketch(CountSketch(4, 512, seed=2), k=50)
        for key in keys.tolist():
            a.update(key)
        b.update_batch(keys)
        assert np.allclose(a.sketch.counters, b.sketch.counters)

    def test_heavy_hitters_fresh_and_sorted(self):
        keys = zipf_keys(20000, 800, 1.3, seed=3)
        monitor = TrackedSketch(CountSketch(5, 2048, seed=3), k=100)
        monitor.update_batch(keys)
        hitters = monitor.heavy_hitters(20)
        estimates = [est for _, est in hitters]
        assert estimates == sorted(estimates, reverse=True)
        for key, estimate in hitters[:5]:
            assert estimate == monitor.query(key)

    def test_batch_bills_per_packet_probes(self):
        monitor = TrackedSketch(CountSketch(3, 256, seed=4), k=10)
        ops = OpCounter()
        monitor.ops = ops
        keys = np.array([7] * 100)  # one flow, many packets
        monitor.update_batch(keys)
        # 100 packets must bill ~100 heap probes even though only one
        # distinct key is offered (scalar-path fidelity).
        assert ops.table_lookups >= 100

    def test_empty_batch(self):
        monitor = TrackedSketch(CountSketch(3, 256, seed=5), k=10)
        monitor.update_batch(np.empty(0, dtype=np.int64))
        assert len(monitor.topk) == 0

    def test_memory_and_reset(self):
        monitor = TrackedSketch(CountSketch(3, 256, seed=6), k=10)
        monitor.update(1)
        assert monitor.memory_bytes() > 3 * 256 * 4 - 1
        monitor.reset()
        assert monitor.query(1) == pytest.approx(0.0)
        assert len(monitor.topk) == 0

    def test_depth_property(self):
        assert TrackedSketch(CountSketch(7, 64, seed=7), k=5).depth == 7
