"""Tests for repro.hashing.families."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.families import (
    MERSENNE_PRIME_61,
    FourWiseHash,
    HashPair,
    KWiseHash,
    MultiplyShiftHash,
    MultiplyShiftSign,
    PairwiseHash,
    SignHash,
    derive_seeds,
    make_hash_pairs,
)

KEYS = st.integers(min_value=0, max_value=2**63 - 1)


class TestKWiseHash:
    def test_deterministic(self):
        h1 = KWiseHash(2, 100, seed=5)
        h2 = KWiseHash(2, 100, seed=5)
        assert all(h1(k) == h2(k) for k in range(1000))

    def test_range(self):
        h = KWiseHash(4, 37, seed=9)
        assert all(0 <= h(k) < 37 for k in range(5000))

    def test_different_seeds_differ(self):
        h1 = KWiseHash(2, 1000, seed=1)
        h2 = KWiseHash(2, 1000, seed=2)
        collisions = sum(1 for k in range(1000) if h1(k) == h2(k))
        assert collisions < 50  # ~1/1000 expected

    def test_batch_matches_scalar(self):
        h = KWiseHash(2, 997, seed=3)
        keys = np.arange(0, 2000, 7)
        batch = h.batch(keys)
        scalar = [h(int(k)) for k in keys]
        assert batch.tolist() == scalar

    def test_roughly_uniform(self):
        h = PairwiseHash(10, seed=4)
        buckets = np.bincount([h(k) for k in range(20000)], minlength=10)
        assert buckets.min() > 1500
        assert buckets.max() < 2500

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KWiseHash(0, 10, 1)
        with pytest.raises(ValueError):
            KWiseHash(2, 0, 1)

    @given(KEYS)
    @settings(max_examples=50)
    def test_raw_below_prime(self, key):
        h = FourWiseHash(100, seed=8)
        assert 0 <= h.raw(key) < MERSENNE_PRIME_61


class TestSignHash:
    def test_values_are_pm_one(self):
        g = SignHash(seed=7)
        assert set(g(k) for k in range(1000)) == {-1, 1}

    def test_roughly_balanced(self):
        g = SignHash(seed=7)
        total = sum(g(k) for k in range(20000))
        assert abs(total) < 600

    def test_constant_one(self):
        g = SignHash(seed=7, constant_one=True)
        assert all(g(k) == 1 for k in range(100))

    def test_batch_matches_scalar(self):
        g = SignHash(seed=11)
        keys = np.arange(500)
        assert g.batch(keys).tolist() == [g(int(k)) for k in keys]

    def test_constant_one_batch(self):
        g = SignHash(seed=11, constant_one=True)
        assert g.batch(np.arange(10)).tolist() == [1] * 10


class TestMultiplyShiftHash:
    def test_range_any_width(self):
        for width in (1, 2, 3, 10, 1000, 102400, 12345):
            h = MultiplyShiftHash(width, seed=width)
            assert all(0 <= h(k) < width for k in range(500))

    def test_batch_matches_scalar(self):
        h = MultiplyShiftHash(1000, seed=17)
        keys = np.arange(0, 5000, 13)
        assert h.batch(keys).tolist() == [h(int(k)) for k in keys]

    def test_roughly_uniform(self):
        h = MultiplyShiftHash(8, seed=23)
        buckets = np.bincount([h(k) for k in range(40000)], minlength=8)
        assert buckets.min() > 4000

    def test_width_validation(self):
        with pytest.raises(ValueError):
            MultiplyShiftHash(0, 1)
        with pytest.raises(ValueError):
            MultiplyShiftHash(2**33, 1)

    def test_width_one(self):
        h = MultiplyShiftHash(1, seed=1)
        assert h(12345) == 0
        assert h.batch(np.arange(10)).tolist() == [0] * 10

    @given(KEYS)
    @settings(max_examples=50)
    def test_deterministic_property(self, key):
        h = MultiplyShiftHash(64, seed=99)
        assert h(key) == h(key)


class TestMultiplyShiftSign:
    def test_pm_one_and_balance(self):
        g = MultiplyShiftSign(seed=31)
        values = [g(k) for k in range(10000)]
        assert set(values) == {-1, 1}
        assert abs(sum(values)) < 500

    def test_batch_matches_scalar(self):
        g = MultiplyShiftSign(seed=37)
        keys = np.arange(300)
        assert g.batch(keys).tolist() == [g(int(k)) for k in keys]


class TestHashPairs:
    def test_make_hash_pairs_count_and_independence(self):
        pairs = make_hash_pairs(5, 100, seed=1)
        assert len(pairs) == 5
        # Rows should disagree on most keys.
        agreements = sum(
            1 for k in range(200) if pairs[0].index(k) == pairs[1].index(k)
        )
        assert agreements < 20

    def test_hash_pair_call(self):
        pair = HashPair(50, seed=3)
        bucket, sign = pair(42)
        assert 0 <= bucket < 50
        assert sign in (-1, 1)

    def test_unsigned_pair(self):
        pair = HashPair(50, seed=3, signed=False)
        assert all(pair(k)[1] == 1 for k in range(50))

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            make_hash_pairs(0, 10, 1)


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(5, 10) == derive_seeds(5, 10)

    def test_distinct(self):
        seeds = derive_seeds(5, 100)
        assert len(set(seeds)) == 100

    def test_count(self):
        assert len(derive_seeds(1, 7)) == 7
