"""Tests for repro.metrics (opcount, accuracy, throughput)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics.accuracy import (
    change_truth,
    empirical_entropy,
    exact_counts,
    f1_score,
    heavy_hitter_truth,
    l2_norm,
    mean_relative_error,
    median,
    precision,
    recall,
    relative_error,
    top_k_truth,
)
from repro.metrics.opcount import NULL_OPS, NullOps, OpCounter
from repro.metrics.throughput import (
    LINE_RATE_10G_64B_MPPS,
    LINE_RATE_40G_64B_MPPS,
    cycles_per_packet_to_mpps,
    gbps_to_mpps,
    mpps_to_cycles_per_packet,
    mpps_to_gbps,
)


class TestOpCounter:
    def test_counting(self):
        ops = OpCounter()
        ops.hash(3)
        ops.counter_update()
        ops.heap_op(2)
        ops.prng()
        ops.memcpy()
        ops.table_lookup(4)
        ops.packet(10)
        ops.fixed(50.0)
        assert ops.hashes == 3
        assert ops.counter_updates == 1
        assert ops.heap_ops == 2
        assert ops.prng_draws == 1
        assert ops.memcpys == 1
        assert ops.table_lookups == 4
        assert ops.packets == 10
        assert ops.fixed_cycles == 50.0

    def test_per_packet(self):
        ops = OpCounter()
        ops.hash(20)
        ops.packet(10)
        assert ops.per_packet()["hashes"] == 2.0

    def test_per_packet_zero_packets(self):
        ops = OpCounter()
        ops.hash(5)
        assert ops.per_packet()["hashes"] == 5.0  # denominator clamps to 1

    def test_reset(self):
        ops = OpCounter()
        ops.hash(5)
        ops.fixed(10)
        ops.reset()
        assert ops.hashes == 0
        assert ops.fixed_cycles == 0.0

    def test_merge(self):
        a = OpCounter()
        b = OpCounter()
        a.hash(2)
        b.hash(3)
        b.packet(7)
        a.merge(b)
        assert a.hashes == 5
        assert a.packets == 7

    def test_as_dict_keys(self):
        keys = set(OpCounter().as_dict())
        assert "hashes" in keys and "packets" in keys and "fixed_cycles" in keys

    def test_null_ops_is_inert(self):
        NULL_OPS.hash(5)
        NULL_OPS.packet()
        NULL_OPS.fixed(10)
        NULL_OPS.reset()  # no state to verify -- just must not raise

    def test_null_ops_stateless(self):
        assert not hasattr(NullOps(), "__dict__")


class TestAccuracyMetrics:
    def test_relative_error_basic(self):
        assert relative_error(110, 100) == pytest.approx(0.1)

    def test_relative_error_zero_truth(self):
        assert relative_error(0, 0) == 0.0
        assert relative_error(5, 0) == math.inf

    def test_mean_relative_error(self):
        estimates = {1: 110.0, 2: 90.0}
        truths = {1: 100, 2: 100}
        assert mean_relative_error(estimates, truths) == pytest.approx(0.1)

    def test_mean_relative_error_empty(self):
        assert mean_relative_error({}, {1: 5}) == 0.0

    def test_recall_precision_f1(self):
        found = {1, 2, 3}
        truth = {2, 3, 4, 5}
        assert recall(found, truth) == pytest.approx(0.5)
        assert precision(found, truth) == pytest.approx(2 / 3)
        expected_f1 = 2 * 0.5 * (2 / 3) / (0.5 + 2 / 3)
        assert f1_score(found, truth) == pytest.approx(expected_f1)

    def test_recall_empty_truth(self):
        assert recall(set(), set()) == 1.0

    def test_precision_empty_found(self):
        assert precision(set(), {1}) == 1.0

    def test_f1_zero(self):
        assert f1_score({1}, {2}) == 0.0

    def test_exact_counts(self):
        assert exact_counts([1, 1, 2]) == {1: 2, 2: 1}

    def test_heavy_hitter_truth(self):
        counts = {1: 60, 2: 30, 3: 10}
        assert heavy_hitter_truth(counts, 0.25) == {1, 2}

    def test_top_k_truth_ties(self):
        counts = {5: 10, 3: 10, 7: 1}
        assert top_k_truth(counts, 2) == {3, 5}

    def test_empirical_entropy_uniform(self):
        counts = {i: 1 for i in range(8)}
        assert empirical_entropy(counts) == pytest.approx(3.0)

    def test_empirical_entropy_single_flow(self):
        assert empirical_entropy({1: 100}) == 0.0

    def test_empirical_entropy_empty(self):
        assert empirical_entropy({}) == 0.0

    def test_change_truth(self):
        before = {1: 100, 2: 100}
        after = {1: 200, 2: 100, 3: 50}
        # Deltas: flow1 = 100, flow3 = 50; total change 150.
        assert change_truth(before, after, 0.5) == {1}
        assert change_truth(before, after, 0.2) == {1, 3}

    def test_change_truth_no_change(self):
        assert change_truth({1: 5}, {1: 5}, 0.1) == set()

    def test_l2_norm(self):
        assert l2_norm({1: 3, 2: 4}) == pytest.approx(5.0)

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_lower_middle(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.0

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([])

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1))
    def test_entropy_nonnegative_and_bounded(self, values):
        counts = exact_counts(values)
        h = empirical_entropy(counts)
        assert 0.0 <= h <= math.log2(max(len(counts), 1)) + 1e-9


class TestThroughputUnits:
    def test_64b_line_rates(self):
        assert gbps_to_mpps(10, 64) == pytest.approx(LINE_RATE_10G_64B_MPPS, rel=1e-3)
        assert gbps_to_mpps(40, 64) == pytest.approx(LINE_RATE_40G_64B_MPPS, rel=1e-3)

    def test_roundtrip(self):
        assert mpps_to_gbps(gbps_to_mpps(40, 714), 714) == pytest.approx(40.0)

    def test_cycles_roundtrip(self):
        cycles = mpps_to_cycles_per_packet(10.0, 2.1)
        assert cycles_per_packet_to_mpps(cycles, 2.1) == pytest.approx(10.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            gbps_to_mpps(10, 0)
        with pytest.raises(ValueError):
            mpps_to_gbps(10, -1)
        with pytest.raises(ValueError):
            cycles_per_packet_to_mpps(0, 2.1)
        with pytest.raises(ValueError):
            mpps_to_cycles_per_packet(0, 2.1)

    def test_more_cycles_means_fewer_mpps(self):
        assert cycles_per_packet_to_mpps(100, 2.1) > cycles_per_packet_to_mpps(200, 2.1)
