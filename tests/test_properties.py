"""Cross-cutting property-based tests (hypothesis).

These target invariants that must hold across the whole parameter
space, not just the configurations the unit tests pick:

* sketch linearity / mergeability;
* NitroSketch unbiasedness under arbitrary (p, shape) choices;
* serialization round-trips for arbitrary contents;
* geometric-process statistics;
* estimator sanity under adversarial key patterns.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.control import deserialize_sketch, serialize_sketch
from repro.core import NitroConfig, NitroSketch
from repro.sketches import CountMinSketch, CountSketch, KArySketch, UnivMon
from repro.traffic import remap_flows, scramble_keys

SMALL_KEYS = st.lists(st.integers(0, 50), min_size=1, max_size=150)
SHAPES = st.tuples(st.integers(1, 6), st.sampled_from([16, 64, 257, 1024]))


class TestLinearity:
    @given(SMALL_KEYS, SHAPES)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_concatenation(self, keys, shape):
        """sketch(A) ⊕ sketch(B) must equal sketch(A ++ B) exactly."""
        depth, width = shape
        half = len(keys) // 2
        a = CountSketch(depth, width, seed=9)
        b = CountSketch(depth, width, seed=9)
        combined = CountSketch(depth, width, seed=9)
        for key in keys[:half]:
            a.update(key)
        for key in keys[half:]:
            b.update(key)
        for key in keys:
            combined.update(key)
        a.merge(b)
        assert np.array_equal(a.counters, combined.counters)

    @given(SMALL_KEYS)
    @settings(max_examples=40, deadline=None)
    def test_update_order_irrelevant(self, keys):
        """Counter state depends only on the multiset of keys."""
        forward = CountMinSketch(3, 64, seed=5)
        backward = CountMinSketch(3, 64, seed=5)
        for key in keys:
            forward.update(key)
        for key in reversed(keys):
            backward.update(key)
        assert np.array_equal(forward.counters, backward.counters)

    @given(SMALL_KEYS, st.floats(min_value=0.5, max_value=8.0))
    @settings(max_examples=30, deadline=None)
    def test_weight_scaling(self, keys, factor):
        """Scaling every update weight scales every counter."""
        base = KArySketch(3, 64, seed=7)
        scaled = KArySketch(3, 64, seed=7)
        for key in keys:
            base.update(key, 1.0)
            scaled.update(key, factor)
        assert np.allclose(scaled.counters, base.counters * factor)
        assert scaled.total == pytest.approx(base.total * factor)


class TestSerializationProperty:
    @given(SHAPES, SMALL_KEYS, st.sampled_from(["multiply_shift", "xxhash"]))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_identity(self, shape, keys, family):
        depth, width = shape
        sketch = CountSketch(depth, width, seed=3, hash_family=family)
        for key in keys:
            sketch.update(key)
        clone = deserialize_sketch(serialize_sketch(sketch))
        assert np.array_equal(clone.counters, sketch.counters)
        assert clone.hash_family == family
        for key in set(keys):
            assert clone.query(key) == sketch.query(key)


class TestNitroUnbiasedness:
    @given(
        st.sampled_from([0.05, 0.1, 0.25, 0.5]),
        st.integers(2, 5),
    )
    @settings(max_examples=12, deadline=None)
    def test_mean_estimate_tracks_truth(self, probability, depth):
        """Averaged over independent seeds, the Nitro estimate of a big
        flow tracks its true count (unbiasedness of p^-1 scaling)."""
        true_count = 4000
        keys = np.concatenate(
            [np.full(true_count, 42), np.arange(1000, 3000)]
        ).astype(np.int64)
        estimates = []
        for trial in range(12):
            nitro = NitroSketch(
                CountSketch(depth, 4096, seed=100 + trial),
                NitroConfig(probability=probability, top_k=0, seed=100 + trial),
            )
            nitro.update_batch(keys)
            estimates.append(nitro.query(42))
        assert np.mean(estimates) == pytest.approx(true_count, rel=0.08)

    @given(st.sampled_from([0.02, 0.1, 0.5, 1.0]))
    @settings(max_examples=8, deadline=None)
    def test_total_mass_preserved_in_expectation(self, probability):
        """Sum of one unsigned row ~ total stream weight for any p."""
        nitro = NitroSketch(
            CountMinSketch(1, 997, seed=11),
            NitroConfig(probability=probability, top_k=0, seed=11),
        )
        nitro.update_batch(np.arange(20000, dtype=np.int64))
        assert float(np.sum(nitro.sketch.counters)) == pytest.approx(
            20000, rel=0.15
        )


class TestAdversarialPatterns:
    @given(st.integers(0, 2**62))
    @settings(max_examples=30, deadline=None)
    def test_single_key_any_value(self, key):
        sketch = CountSketch(5, 256, seed=13)
        for _ in range(50):
            sketch.update(key)
        assert sketch.query(key) == pytest.approx(50.0)

    @given(st.lists(st.integers(0, 2**62), min_size=2, max_size=30, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_distinct_keys_nonnegative_cms(self, keys):
        sketch = CountMinSketch(4, 128, seed=17)
        for key in keys:
            sketch.update(key)
        for key in keys:
            assert sketch.query(key) >= 1.0

    @given(SMALL_KEYS)
    @settings(max_examples=25, deadline=None)
    def test_univmon_total_matches_stream(self, keys):
        um = UnivMon(levels=4, depth=3, widths=128, k=10, seed=19)
        um.update_batch(np.array(keys, dtype=np.int64))
        assert um.total == len(keys)
        assert um.packets_seen == len(keys)

    @given(st.lists(st.integers(0, 2**31), min_size=1, max_size=100, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_scramble_then_remap_stays_injective(self, keys):
        arr = np.array(keys, dtype=np.int64)
        out = remap_flows(scramble_keys(arr), 0.5)
        assert len(set(out.tolist())) == len(keys)
