"""Tests for the baseline systems (hashtable, SketchVisor, ElasticSketch,
NetFlow/sFlow, R-HHH)."""

import math
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    ElasticSketch,
    HashTableMonitor,
    HierarchicalHeavyHitters,
    NetFlowMonitor,
    RandomizedHHH,
    SFlowMonitor,
    SketchVisor,
)
from repro.baselines.rhhh import prefix_of
from repro.sketches import UnivMon
from repro.traffic import zipf_keys

KEY_LISTS = st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300)


class TestHashTable:
    @given(KEY_LISTS)
    @settings(max_examples=50)
    def test_exact(self, keys):
        table = HashTableMonitor()
        for key in keys:
            table.update(key)
        truth = Counter(keys)
        for key, count in truth.items():
            assert table.query(key) == count
        assert table.flow_count() == len(truth)

    def test_memory_grows_with_flows(self):
        table = HashTableMonitor()
        for key in range(1000):
            table.update(key)
        assert table.memory_bytes() == 1000 * 32

    def test_heavy_hitters_exact_and_sorted(self):
        table = HashTableMonitor()
        for key, reps in ((1, 50), (2, 30), (3, 5)):
            for _ in range(reps):
                table.update(key)
        hitters = table.heavy_hitters(10)
        assert hitters == [(1, 50.0), (2, 30.0)]

    def test_reset(self):
        table = HashTableMonitor()
        table.update(1)
        table.reset()
        assert table.flow_count() == 0


class TestSketchVisor:
    def test_fast_path_residual_is_lower_bound(self):
        sv = SketchVisor(fast_entries=16, fast_fraction=1.0, seed=1)
        keys = zipf_keys(5000, 300, 1.2, seed=1)
        for key in keys.tolist():
            sv.update(key)
        truth = Counter(keys.tolist())
        for key in truth:
            entry = sv.fast_entry(key)
            if entry is not None:
                assert entry.guaranteed() <= truth[key] + 1e-9
                assert entry.estimate() <= truth[key] + entry.max_error

    def test_dominant_flow_tracked(self):
        sv = SketchVisor(fast_entries=8, fast_fraction=1.0, seed=2)
        keys = [1] * 2000 + list(range(2, 500))
        for key in keys:
            sv.update(key)
        assert sv.query(1) == pytest.approx(2000, rel=0.2)

    def test_fraction_zero_uses_normal_path_only(self):
        sv = SketchVisor(fast_entries=8, fast_fraction=0.0, seed=3)
        for _ in range(100):
            sv.update(5)
        assert sv.fast_packets == 0
        assert sv.normal_packets == 100
        assert sv.query(5) == pytest.approx(100, rel=0.3)

    def test_fraction_routing(self):
        sv = SketchVisor(fast_entries=64, fast_fraction=0.5, seed=4)
        for key in range(10000):
            sv.update(key)
        assert sv.fast_packets == pytest.approx(5000, rel=0.1)
        assert sv.fast_packets + sv.normal_packets == 10000

    def test_merge_combines_paths(self):
        sv = SketchVisor(
            fast_entries=32,
            normal_path=UnivMon(levels=4, depth=5, widths=1024, k=50, seed=5),
            fast_fraction=0.5,
            seed=5,
        )
        for _ in range(4000):
            sv.update(9)
        # Both paths saw ~2000 each; the merge must restore ~4000.
        assert sv.query(9) == pytest.approx(4000, rel=0.25)

    def test_heavy_hitters_gated_on_guarantee(self):
        sv = SketchVisor(fast_entries=4, fast_fraction=1.0, seed=6)
        # Churn: many singletons after a real heavy flow.
        for _ in range(1000):
            sv.update(1)
        for key in range(100, 1100):
            sv.update(key)
        hitters = dict(sv.heavy_hitters(threshold=500))
        assert set(hitters) == {1}

    def test_validation(self):
        with pytest.raises(ValueError):
            SketchVisor(fast_entries=0)
        with pytest.raises(ValueError):
            SketchVisor(fast_fraction=1.5)

    def test_reset(self):
        sv = SketchVisor(fast_entries=8, seed=7)
        sv.update(1)
        sv.reset()
        assert sv.fast_packets == 0
        assert sv.query(1) == 0.0


class TestElasticSketch:
    def test_heavy_flow_exact_in_heavy_part(self):
        es = ElasticSketch(heavy_buckets=1024, light_counters=4096, seed=1)
        for _ in range(500):
            es.update(7)
        assert es.query(7) == pytest.approx(500, abs=1)

    def test_eviction_moves_count_to_light(self):
        es = ElasticSketch(heavy_buckets=1, light_counters=64, vote_threshold=2, seed=2)
        for _ in range(10):
            es.update(1)
        for _ in range(100):
            es.update(2)  # votes against 1, eventually evicts it
        total = es.query(1) + es.query(2)
        assert total == pytest.approx(110, rel=0.15)

    def test_distinct_estimate_accurate_when_unsaturated(self):
        es = ElasticSketch(heavy_buckets=512, light_counters=16384, seed=3)
        for key in range(2000):
            es.update(key)
        assert es.distinct_estimate() == pytest.approx(2000, rel=0.15)

    def test_distinct_overflows_on_saturation(self):
        es = ElasticSketch(heavy_buckets=16, light_counters=128, seed=4)
        for key in range(20000):
            es.update(key)
        assert es.distinct_estimate() == math.inf

    def test_entropy_degrades_with_flows(self):
        from repro.metrics.accuracy import empirical_entropy, relative_error

        few = ElasticSketch(heavy_buckets=256, light_counters=8192, seed=5)
        many = ElasticSketch(heavy_buckets=256, light_counters=8192, seed=5)
        keys_few = zipf_keys(20000, 1000, 0.8, seed=5)
        keys_many = zipf_keys(40000, 30000, 0.4, seed=5)
        few.update_many(keys_few.tolist())
        many.update_many(keys_many.tolist())
        err_few = relative_error(
            few.entropy_estimate(), empirical_entropy(Counter(keys_few.tolist()))
        )
        err_many = relative_error(
            many.entropy_estimate(), empirical_entropy(Counter(keys_many.tolist()))
        )
        assert err_many > err_few

    def test_with_memory_sizing(self):
        es = ElasticSketch.with_memory(2_700_000)
        assert es.memory_bytes() == pytest.approx(2_700_000, rel=0.01)

    def test_heavy_hitters_sorted(self):
        es = ElasticSketch(heavy_buckets=4096, light_counters=16384, seed=6)
        keys = zipf_keys(20000, 500, 1.3, seed=6)
        es.update_many(keys.tolist())
        estimates = [est for _, est in es.heavy_hitters(50)]
        assert estimates == sorted(estimates, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ElasticSketch(heavy_buckets=0)
        with pytest.raises(ValueError):
            ElasticSketch(vote_threshold=0)

    def test_reset(self):
        es = ElasticSketch(heavy_buckets=64, light_counters=256, seed=7)
        es.update(1)
        es.reset()
        assert es.query(1) == 0.0
        assert es.total == 0.0


class TestNetFlow:
    def test_scaled_estimates_unbiased(self):
        nf = NetFlowMonitor(0.1, seed=1)
        for _ in range(50000):
            nf.update(3)
        assert nf.query(3) == pytest.approx(50000, rel=0.1)

    def test_unsampled_flow_invisible(self):
        nf = NetFlowMonitor(0.01, seed=2)
        nf.update(5)  # one packet at 1% sampling: almost surely missed
        # Either missed entirely or scaled to 100; both are valid NetFlow.
        assert nf.query(5) in (0.0, 100.0)

    def test_recall_improves_with_rate(self):
        keys = zipf_keys(100000, 5000, 1.1, seed=3)
        truth = Counter(keys.tolist())
        top100 = {key for key, _ in truth.most_common(100)}
        recalls = []
        for rate in (0.001, 0.01, 0.1):
            nf = NetFlowMonitor(rate, seed=3)
            nf.update_batch(keys)
            found = {key for key, _ in nf.heavy_hitters(0.0)[:100]}
            recalls.append(len(found & top100) / 100)
        assert recalls[0] <= recalls[1] <= recalls[2]

    def test_memory_counts_records(self):
        nf = NetFlowMonitor(1.0, seed=4)
        for key in range(100):
            nf.update(key)
        assert nf.memory_bytes() == 100 * 48

    def test_batch_matches_scalar_statistics(self):
        keys = zipf_keys(50000, 2000, 1.2, seed=5)
        scalar = NetFlowMonitor(0.05, seed=5)
        batch = NetFlowMonitor(0.05, seed=5)
        for key in keys.tolist():
            scalar.update(key)
        batch.update_batch(keys)
        assert batch.packets_sampled == pytest.approx(scalar.packets_sampled, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetFlowMonitor(0.0)

    def test_sflow_collector_aggregation(self):
        sf = SFlowMonitor(0.5, seed=6)
        for _ in range(10000):
            sf.update(9)
        assert sf.query(9) == pytest.approx(10000, rel=0.1)
        assert 9 in sf.recorded_flows()

    def test_sflow_reset(self):
        sf = SFlowMonitor(0.5, seed=7)
        sf.update(1)
        sf.reset()
        assert sf.packets_seen == 0
        assert sf.query(1) == 0.0


class TestHHH:
    def test_prefix_masking(self):
        address = 0xC0A80101  # 192.168.1.1
        assert prefix_of(address, 8) == 0xC0000000
        assert prefix_of(address, 16) == 0xC0A80000
        assert prefix_of(address, 24) == 0xC0A80100
        assert prefix_of(address, 32) == address
        assert prefix_of(address, 0) == 0

    def test_prefix_validation(self):
        with pytest.raises(ValueError):
            prefix_of(1, 33)

    def test_deterministic_hhh_counts_all_levels(self):
        hhh = HierarchicalHeavyHitters(counters_per_level=64)
        base = 0x0A000000  # 10.0.0.0/8 subtree
        for host in range(200):
            hhh.update(base | host)
        # The /8 prefix aggregates everything.
        assert hhh.query(base, 8) == pytest.approx(200, rel=0.1)

    def test_randomized_hhh_scaled_estimates(self):
        rhhh = RandomizedHHH(counters_per_level=256, seed=1)
        base = 0x0A000000
        for _ in range(40000):
            rhhh.update(base | 1)
        # Each level sees ~1/4 of packets; scaling by 4 restores totals.
        assert rhhh.query(base | 1, 32) == pytest.approx(40000, rel=0.15)
        assert rhhh.query(base, 8) == pytest.approx(40000, rel=0.15)

    def test_heavy_prefixes_detects_subnet(self):
        rhhh = RandomizedHHH(counters_per_level=128, seed=2)
        rng = np.random.default_rng(2)
        # 60% of traffic from 10.1.0.0/16, rest scattered.
        for _ in range(12000):
            if rng.random() < 0.6:
                rhhh.update(0x0A010000 | int(rng.integers(0, 2**16)))
            else:
                rhhh.update(int(rng.integers(0, 2**32)))
        heavy = rhhh.heavy_prefixes(0.3)
        prefixes = {(prefix, length) for prefix, length, _ in heavy}
        assert (0x0A010000, 16) in prefixes

    def test_ops_single_level_per_packet(self):
        from repro.metrics.opcount import OpCounter

        rhhh = RandomizedHHH(counters_per_level=64, seed=3)
        ops = OpCounter()
        rhhh.ops = ops
        for _ in range(1000):
            rhhh.update(0x0A000001)
        assert ops.packets == 1000
        # One MG update per packet (R-HHH's O(1) claim), not one per level.
        assert ops.table_lookups <= 1100

    def test_reset(self):
        rhhh = RandomizedHHH(counters_per_level=16, seed=4)
        rhhh.update(1)
        rhhh.reset()
        assert rhhh.total == 0.0


class TestNetFlowTimeouts:
    def test_inactive_timeout_exports(self):
        nf = NetFlowMonitor(1.0, seed=20, inactive_timeout=1.0)
        nf.update(1, timestamp=0.0)
        nf.update(2, timestamp=5.0)  # flow 1 idle for 5s -> exported
        assert len(nf.exported) == 1
        assert nf.exported[0].key == 1
        assert nf.query(1) == 0.0  # record left the cache

    def test_active_timeout_exports_busy_flow(self):
        nf = NetFlowMonitor(1.0, seed=21, active_timeout=2.0)
        for tick in range(5):
            nf.update(7, timestamp=float(tick))
        # The flow never went idle, but crossed the 2s active timeout.
        assert any(record.key == 7 for record in nf.exported)

    def test_no_timeouts_no_expiry(self):
        nf = NetFlowMonitor(1.0, seed=22)
        nf.update(1, timestamp=0.0)
        nf.update(2, timestamp=1e9)
        assert nf.exported == []
        assert nf.query(1) == 1.0

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            NetFlowMonitor(0.5, inactive_timeout=0)

    def test_expired_record_resumes_as_new(self):
        nf = NetFlowMonitor(1.0, seed=23, inactive_timeout=1.0)
        nf.update(1, timestamp=0.0)
        nf.update(2, timestamp=10.0)   # expires flow 1
        nf.update(1, timestamp=10.5)   # flow 1 returns
        assert nf.query(1) == 1.0      # fresh record, not the old count
        assert len(nf.exported) == 1
