"""Tests for the NitroSketch core (Algorithm 1)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import NitroConfig, NitroMode, NitroSketch
from repro.metrics.opcount import OpCounter
from repro.sketches import CountMinSketch, CountSketch, KArySketch
from repro.traffic import zipf_keys


def make_nitro(probability=0.05, width=16384, depth=5, seed=1, **kwargs):
    config = NitroConfig(probability=probability, seed=seed, **kwargs)
    return NitroSketch(CountSketch(depth, width, seed), config)


class TestExactMode:
    def test_p_one_equals_vanilla(self):
        """At p = 1 NitroSketch is bit-identical to the wrapped sketch."""
        keys = zipf_keys(5000, 500, 1.2, seed=2)
        vanilla = CountSketch(5, 1024, seed=3)
        nitro = NitroSketch(CountSketch(5, 1024, seed=3), probability=1.0, seed=3)
        for key in keys.tolist():
            vanilla.update(key)
            nitro.update(key)
        assert np.array_equal(vanilla.counters, nitro.sketch.counters)
        assert nitro.packets_sampled == len(keys)

    def test_p_one_batch_equals_vanilla(self):
        keys = zipf_keys(5000, 500, 1.2, seed=2)
        vanilla = CountSketch(5, 1024, seed=3)
        nitro = NitroSketch(CountSketch(5, 1024, seed=3), probability=1.0, seed=3)
        vanilla.update_batch(keys)
        nitro.update_batch(keys)
        assert np.array_equal(vanilla.counters, nitro.sketch.counters)


class TestSampledMode:
    def test_unbiased_heavy_flow_estimate(self):
        keys = zipf_keys(100000, 5000, 1.2, seed=4)
        nitro = make_nitro(probability=0.05, seed=4)
        nitro.update_many(keys.tolist())
        truth = Counter(keys.tolist())
        top = max(truth, key=truth.get)
        assert nitro.query(int(top)) == pytest.approx(truth[top], rel=0.1)

    def test_batch_statistically_equivalent(self):
        keys = zipf_keys(100000, 5000, 1.2, seed=4)
        truth = Counter(keys.tolist())
        top = max(truth, key=truth.get)
        nitro = make_nitro(probability=0.05, seed=4)
        nitro.update_batch(keys)
        assert nitro.query(int(top)) == pytest.approx(truth[top], rel=0.1)

    def test_sampled_row_rate(self):
        """Counter updates per packet should be ~ d*p (Theorem-2 costs)."""
        nitro = make_nitro(probability=0.02, depth=5, seed=5)
        ops = OpCounter()
        nitro.ops = ops
        keys = zipf_keys(50000, 1000, 1.0, seed=5)
        nitro.update_many(keys.tolist())
        per_packet = ops.counter_updates / ops.packets
        assert per_packet == pytest.approx(5 * 0.02, rel=0.15)

    def test_sampled_packet_fraction(self):
        """P(packet touches >= 1 row) = 1 - (1-p)^d."""
        probability, depth = 0.05, 5
        nitro = make_nitro(probability=probability, depth=depth, seed=6)
        keys = zipf_keys(40000, 1000, 1.0, seed=6)
        nitro.update_many(keys.tolist())
        expected = 1 - (1 - probability) ** depth
        assert nitro.packets_sampled / nitro.packets_seen == pytest.approx(
            expected, rel=0.15
        )

    def test_increments_scaled_by_inverse_p(self):
        nitro = make_nitro(probability=0.25, depth=1, width=1, seed=7)
        for _ in range(4000):
            nitro.update(1)
        # Single counter accumulates ~m regardless of p (each sampled
        # update adds 1/p).
        assert abs(nitro.sketch.counters[0, 0]) == pytest.approx(4000, rel=0.15)

    def test_works_with_countmin(self):
        nitro = NitroSketch(CountMinSketch(5, 16384, seed=8), probability=0.1, seed=8)
        keys = zipf_keys(50000, 2000, 1.2, seed=8)
        nitro.update_batch(keys)
        truth = Counter(keys.tolist())
        top = max(truth, key=truth.get)
        assert nitro.query(int(top)) == pytest.approx(truth[top], rel=0.15)

    def test_works_with_kary(self):
        nitro = NitroSketch(KArySketch(5, 16384, seed=9), probability=0.1, seed=9)
        keys = zipf_keys(50000, 2000, 1.2, seed=9)
        nitro.update_batch(keys)
        truth = Counter(keys.tolist())
        top = max(truth, key=truth.get)
        assert nitro.query(int(top)) == pytest.approx(truth[top], rel=0.15)
        assert nitro.sketch.total == pytest.approx(len(keys), rel=0.1)

    def test_bernoulli_sampling_equivalent_distribution(self):
        nitro = make_nitro(probability=0.1, seed=10, sampling="bernoulli")
        keys = zipf_keys(60000, 2000, 1.2, seed=10)
        nitro.update_many(keys.tolist())
        truth = Counter(keys.tolist())
        top = max(truth, key=truth.get)
        assert nitro.query(int(top)) == pytest.approx(truth[top], rel=0.12)

    def test_bernoulli_bills_per_row_prng(self):
        nitro = make_nitro(probability=0.01, depth=5, seed=11, sampling="bernoulli")
        ops = OpCounter()
        nitro.ops = ops
        for key in range(1000):
            nitro.update(key)
        assert ops.prng_draws == 5000  # d coin flips per packet


class TestTopK:
    def test_heavy_hitters_found(self):
        keys = zipf_keys(100000, 5000, 1.3, seed=12)
        nitro = make_nitro(probability=0.05, seed=12, top_k=50)
        nitro.update_batch(keys)
        truth = Counter(keys.tolist())
        top5 = [key for key, _ in truth.most_common(5)]
        hitters = [key for key, _ in nitro.heavy_hitters(threshold=0)]
        for key in top5:
            assert key in hitters

    def test_heavy_hitters_sorted(self):
        keys = zipf_keys(50000, 2000, 1.3, seed=13)
        nitro = make_nitro(probability=0.05, seed=13)
        nitro.update_batch(keys)
        estimates = [est for _, est in nitro.heavy_hitters(0)]
        assert estimates == sorted(estimates, reverse=True)

    def test_topk_disabled(self):
        nitro = make_nitro(top_k=0)
        nitro.update(1)
        with pytest.raises(RuntimeError):
            nitro.heavy_hitters(0)
        assert nitro.top_items() == []


class TestLifecycle:
    def test_reset(self):
        nitro = make_nitro(probability=0.5, seed=14)
        nitro.update_many(range(100))
        nitro.reset()
        assert nitro.packets_seen == 0
        assert nitro.packets_sampled == 0
        assert np.all(nitro.sketch.counters == 0)

    def test_config_and_kwargs_mutually_exclusive(self):
        with pytest.raises(TypeError):
            NitroSketch(CountSketch(2, 16), NitroConfig(), probability=0.5)

    def test_from_error_bounds_l2(self):
        nitro = NitroSketch.from_error_bounds(CountSketch, 0.1, 0.05, probability=0.1)
        assert nitro.sketch.width >= 8 / (0.01 * 0.1) - 1

    def test_from_error_bounds_l1(self):
        nitro = NitroSketch.from_error_bounds(CountMinSketch, 0.1, 0.05)
        assert nitro.sketch.width >= 4 / 0.1 - 1

    def test_memory_includes_topk(self):
        nitro = make_nitro(top_k=10)
        nitro.update_many(range(100))
        assert nitro.memory_bytes() > nitro.sketch.memory_bytes()

    def test_l2_estimate_positive(self):
        nitro = make_nitro(probability=1.0)
        nitro.update_many([1] * 100)
        assert nitro.l2_estimate() > 0

    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_probability_exposed(self, probability):
        nitro = make_nitro(probability=probability, width=256)
        assert nitro.probability == probability


class TestOpsAccounting:
    def test_unsampled_packets_cost_no_hash(self):
        nitro = make_nitro(probability=0.001, depth=5, seed=15, top_k=0)
        ops = OpCounter()
        nitro.ops = ops
        for key in range(10000):
            nitro.update(key)
        # ~ d*p*packets = 50 hashes expected, far below one per packet.
        assert ops.hashes < 200
        assert ops.packets == 10000

    def test_preprocess_cycles_charged(self):
        nitro = make_nitro(probability=0.5, seed=16)
        ops = OpCounter()
        nitro.ops = ops
        nitro.update(1)
        assert ops.fixed_cycles > 0


class TestMergeAndWeights:
    def test_merge_distributed_vantage_points(self):
        """Two NitroSketches at different vantage points merge into one
        whose estimates reflect the combined traffic."""
        keys_a = zipf_keys(40000, 2000, 1.2, seed=20)
        keys_b = zipf_keys(40000, 2000, 1.2, seed=21)
        a = make_nitro(probability=0.1, seed=22)
        b = make_nitro(probability=0.1, seed=22)
        a.update_batch(keys_a)
        b.update_batch(keys_b)
        truth = Counter(keys_a.tolist()) + Counter(keys_b.tolist())
        a.merge(b)
        top = max(truth, key=truth.get)
        assert a.query(int(top)) == pytest.approx(truth[top], rel=0.12)
        assert a.packets_seen == 80000

    def test_merge_requires_same_configuration(self):
        a = make_nitro(width=1024, seed=1)
        b = make_nitro(width=2048, seed=1)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_byte_counting_mode(self):
        """Weights carry packet sizes: the paper's byte-count HH variant."""
        nitro = make_nitro(probability=0.2, seed=23)
        rng = np.random.default_rng(23)
        sizes = rng.choice([64, 1500], size=30000, p=[0.3, 0.7])
        keys = zipf_keys(30000, 1000, 1.2, seed=23)
        nitro.update_batch(keys, weights=sizes.astype(float))
        true_bytes = {}
        for key, size in zip(keys.tolist(), sizes.tolist()):
            true_bytes[key] = true_bytes.get(key, 0) + size
        top = max(true_bytes, key=true_bytes.get)
        assert nitro.query(int(top)) == pytest.approx(true_bytes[top], rel=0.12)


class TestMergeTopKRefresh:
    def test_merge_refreshes_tracked_estimates(self):
        """Post-merge top-k estimates come from the merged grid, not the
        stale pre-merge offers, so eviction order follows true counts."""
        config = dict(probability=1.0, top_k=2, seed=3)
        a = NitroSketch(CountMinSketch(3, 512, 3), NitroConfig(**config))
        b = NitroSketch(CountMinSketch(3, 512, 3), NitroConfig(**config))
        a.update_batch(np.repeat([1, 2], [10, 3]))
        b.update_batch(np.repeat(np.int64(2), 5))
        a.merge(b)
        assert a.topk.estimate(2) == a.sketch.query(2)
        assert a.topk.estimate(1) == a.sketch.query(1)
        assert a.topk.min_estimate() == min(a.sketch.query(1), a.sketch.query(2))
        # A newcomer below the refreshed minimum (but above the stale
        # pre-merge one) must NOT evict a tracked key.
        assert not a.topk.offer(9, a.topk.min_estimate() - 1.0)
        assert set(a.topk.keys()) == {1, 2}


class TestResetEqualsFresh:
    def test_fixed_mode_reset_equals_fresh(self):
        """After reset, re-ingesting a trace must be bit-identical to a
        fresh monitor: PRNG cursors reseed, so the same gap sequence and
        batch draws replay."""
        keys = zipf_keys(4000, 300, 1.1, seed=21)
        fresh = make_nitro(probability=0.1, width=1024, seed=21, top_k=16)
        recycled = make_nitro(probability=0.1, width=1024, seed=21, top_k=16)
        recycled.update_batch(keys[::-1].copy())  # arbitrary pre-reset history
        recycled.update_many(keys[:100].tolist())
        recycled.reset()

        half = len(keys) // 2
        for monitor in (fresh, recycled):
            monitor.update_batch(keys[:half])
            monitor.update_many(keys[half:].tolist())

        assert np.array_equal(fresh.sketch.counters, recycled.sketch.counters)
        assert fresh.packets_seen == recycled.packets_seen
        assert fresh.packets_sampled == recycled.packets_sampled
        assert set(fresh.topk.keys()) == set(recycled.topk.keys())
        assert recycled.check_invariants() == []

    def test_linerate_reset_resyncs_controller(self):
        """Regression: reset must restore AlwaysLineRate's
        ``current_probability`` alongside the sampler -- a stale value let
        the no-change short-circuit strand the sampler at config p while
        the controller believed the adapted p was still in force."""
        config_kwargs = dict(
            probability=0.5,
            width=1024,
            seed=22,
            mode=NitroMode.ALWAYS_LINE_RATE,
            adaptation_epoch_seconds=0.0005,
        )
        keys = zipf_keys(6000, 300, 1.1, seed=22)

        def drive(monitor):
            # ~3.33 Mpps: p adapts from 0.5 down to 1/8 within the trace.
            for index, key in enumerate(keys.tolist()):
                monitor.update(int(key), timestamp=index * 3e-7)

        fresh = make_nitro(**config_kwargs)
        drive(fresh)
        assert fresh.probability == 1 / 8

        recycled = make_nitro(**config_kwargs)
        drive(recycled)
        recycled.reset()
        assert recycled.probability == 0.5
        assert recycled.linerate.current_probability == 0.5
        assert recycled.check_invariants() == []
        drive(recycled)
        assert recycled.probability == fresh.probability
        assert np.array_equal(fresh.sketch.counters, recycled.sketch.counters)
        assert fresh.packets_sampled == recycled.packets_sampled

    def test_always_correct_reset_restarts_warmup(self):
        nitro = make_nitro(
            probability=0.1,
            width=2048,
            seed=23,
            mode=NitroMode.ALWAYS_CORRECT,
            epsilon=0.5,
            convergence_check_period=1000,
        )
        nitro.update_batch(np.full(3000, 7, dtype=np.int64))
        assert nitro.converged
        nitro.reset()
        assert not nitro.converged
        assert nitro.probability == 1.0  # back in the exact warm-up phase
        assert nitro.correctness.converged_at_packet is None
        assert nitro.check_invariants() == []
