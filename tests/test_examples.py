"""Smoke tests: the example scripts run end to end.

Each example is executed in-process with reduced workloads where the
script exposes module-level knobs; the faster ones run as shipped.
"""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    """Run an example script in a subprocess; return stdout."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "recall" in output
        assert "largest flow" in output

    def test_change_detection(self):
        output = run_example("change_detection.py")
        assert "true heavy changers" in output
        assert "recall" in output

    def test_ddos_detection(self):
        output = run_example("ddos_detection.py")
        assert "ALARM" in output
        # The alarm must fire only in attack epochs.
        for line in output.splitlines():
            if "ALARM" in line:
                assert "ATTACK" in line

    def test_distributed_monitoring(self):
        output = run_example("distributed_monitoring.py")
        assert "merged recall" in output
        assert "control link busy" in output

    @pytest.mark.slow
    def test_heavy_hitter_monitoring(self):
        output = run_example("heavy_hitter_monitoring.py")
        assert "data plane" in output
        assert "epoch 0" in output

    @pytest.mark.slow
    def test_switch_throughput(self):
        output = run_example("switch_throughput.py")
        assert "ovs-dpdk" in output
        assert "bess" in output
