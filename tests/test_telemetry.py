"""Tests for the telemetry subsystem (registry, tracer, exposition, hooks).

Covers the observability satellites: metric-family semantics, the
Prometheus text golden output, tracer ring-buffer bounding and JSONL
round-trips, the AlwaysCorrect convergence event, the keep_monitors
window, the daemon's TypeError handling, and the guarantee that the
default NULL_TELEMETRY sink leaves results bit-identical.
"""

import json
import os
import urllib.request

import numpy as np
import pytest

from repro.control import ControlPlane, HeavyHitterTask
from repro.core import NitroConfig, NitroMode, NitroSketch
from repro.metrics.opcount import OpCounter
from repro.sketches import CountSketch
from repro.switchsim import MeasurementDaemon, SwitchSimulator, VPPPipeline
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    METRIC_HELP,
    MetricsRegistry,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetryServer,
    Tracer,
    log_buckets,
    parse_jsonl,
    read_jsonl,
    render_prometheus,
)
from repro.traffic import caida_like
from repro.traffic.replay import Batch

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def _golden(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name)) as handle:
        return handle.read()


class FakeClock:
    """Deterministic strictly-increasing timestamps for golden traces."""

    def __init__(self, start: float = 1000.0, step: float = 0.25) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _make_batch(keys) -> Batch:
    keys = np.asarray(keys, dtype=np.int64)
    return Batch(
        keys=keys,
        sizes=np.full(len(keys), 700, dtype=np.int64),
        timestamps=np.arange(len(keys), dtype=np.float64) * 1e-6,
    )


class TestLogBuckets:
    def test_geometric_progression(self):
        assert log_buckets(1.0, 64.0, factor=4.0) == [1.0, 4.0, 16.0, 64.0]

    def test_last_bucket_covers_stop(self):
        buckets = log_buckets(1.0, 50.0, factor=4.0)
        assert buckets[-1] >= 50.0

    def test_defaults_are_ascending(self):
        assert DEFAULT_TIME_BUCKETS == sorted(DEFAULT_TIME_BUCKETS)

    def test_validation(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 10.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 10.0, factor=1.0)


class TestRegistrySemantics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total", "Requests.", ("method",))
        family.labels(method="get").inc()
        family.labels(method="get").inc(2.5)
        family.labels(method="post").inc()
        assert family.labels("get").value == 3.5
        assert family.labels("post").value == 1.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        family = registry.counter("requests_total")
        with pytest.raises(ValueError):
            family.inc(-1.0)

    def test_gauge_moves_freely(self):
        registry = MetricsRegistry()
        family = registry.gauge("temperature")
        family.set(4.5)
        family.labels().inc(0.5)
        family.labels().dec(2.0)
        assert family.labels().value == 3.0

    def test_histogram_buckets_and_cumulative(self):
        registry = MetricsRegistry()
        family = registry.histogram("gaps", buckets=[1.0, 4.0, 16.0])
        child = family.labels()
        for value in (0.5, 2.0, 3.0, 10.0, 1000.0):
            child.observe(value)
        assert child.counts == [1, 2, 1, 1]  # per-bucket, last is +Inf
        assert child.cumulative_counts() == [1, 3, 4, 5]
        assert child.count == 5
        assert child.sum == pytest.approx(1015.5)

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "help", ("x",))
        second = registry.counter("a_total", "ignored on re-get", ("x",))
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ValueError):
            registry.gauge("a_total")

    def test_label_schema_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "", ("x",))
        with pytest.raises(ValueError):
            registry.counter("a_total", "", ("x", "y"))

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("0bad")
        with pytest.raises(ValueError):
            MetricsRegistry().counter("fine", "", ("bad-label",))

    def test_labels_positional_keyword_mix_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("a_total", "", ("x", "y"))
        assert family.labels("1", "2") is family.labels(x="1", y="2")
        with pytest.raises(ValueError):
            family.labels("1", y="2")
        with pytest.raises(ValueError):
            family.labels("1")  # wrong arity
        with pytest.raises(ValueError):
            family.labels(x="1", z="2")  # wrong names

    def test_histogram_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=[4.0, 1.0])

    def test_buckets_rejected_for_non_histograms(self):
        from repro.telemetry.registry import MetricFamily

        with pytest.raises(ValueError):
            MetricFamily("counter", "a_total", buckets=[1.0])

    def test_registry_container_protocol(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        assert "a_total" in registry
        assert "b_total" not in registry
        assert [family.name for family in registry] == ["a_total"]
        registry.reset()
        assert len(registry) == 0


def _reference_registry() -> MetricsRegistry:
    """A small deterministic registry exercising every exposition path."""
    registry = MetricsRegistry()
    requests = registry.counter("requests_total", "Requests served.", ("method", "code"))
    requests.labels(method="get", code="200").inc(1024)
    requests.labels(method="post", code="500").inc(3)
    probability = registry.gauge(
        "nitro_sampling_probability", METRIC_HELP["nitro_sampling_probability"]
    )
    probability.set(0.0078125)
    gaps = registry.histogram("gap_slots", "Geometric gaps.", ("path",), buckets=[1.0, 4.0, 16.0])
    child = gaps.labels(path="batch")
    for value in (0.5, 2.0, 3.0, 10.0, 1000.0):
        child.observe(value)
    escapes = registry.counter("escapes_total", "Label escaping.", ("name",))
    escapes.labels(name='quote " backslash \\ newline \n end').inc()
    return registry


class TestPrometheusExposition:
    def test_golden_text(self):
        """Full-text golden for the Prometheus exposition format."""
        assert render_prometheus(_reference_registry()) == _golden("reference.prom")

    def test_integers_render_without_decimal_point(self):
        text = render_prometheus(_reference_registry())
        assert 'requests_total{method="get",code="200"} 1024\n' in text

    def test_histogram_has_inf_bucket_sum_count(self):
        text = render_prometheus(_reference_registry())
        assert 'gap_slots_bucket{path="batch",le="+Inf"} 5' in text
        assert 'gap_slots_sum{path="batch"} 1015.5' in text
        assert 'gap_slots_count{path="batch"} 5' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_json_snapshot_round_trips(self):
        telemetry = Telemetry(registry=_reference_registry(), tracer=Tracer(clock=FakeClock()))
        telemetry.event("demo.event", answer=42)
        data = json.loads(telemetry.render_json())
        assert data["metrics"]["requests_total"]["type"] == "counter"
        assert data["trace"]["recorded"] == 1
        assert data["trace"]["events"][0]["name"] == "demo.event"


class TestTracer:
    def test_ring_bounded_and_dropped_counted(self):
        tracer = Tracer(capacity=4, clock=FakeClock())
        for index in range(10):
            tracer.record("tick", index=index)
        assert len(tracer) == 4
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        assert [event.seq for event in tracer.events()] == [6, 7, 8, 9]
        assert [event.fields["index"] for event in tracer.events()] == [6, 7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_events_filter_by_name(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("a")
        tracer.record("b")
        tracer.record("a")
        assert [event.name for event in tracer.events("a")] == ["a", "a"]

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        tracer.record("nitro.p_change", reason="converged", old=1.0, new=0.125)
        tracer.record("nitro.convergence", packets=4000)
        text = tracer.to_jsonl()
        assert parse_jsonl(text) == tracer.events()

        path = str(tmp_path / "trace.jsonl")
        assert tracer.write_jsonl(path) == 2
        assert read_jsonl(path) == tracer.events()

    def test_jsonl_lines_have_sorted_keys(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("tick", zebra=1, apple=2)
        line = tracer.to_jsonl().splitlines()[0]
        assert line.index('"fields"') < line.index('"name"') < line.index('"seq"')

    def test_clear(self):
        tracer = Tracer(capacity=4, clock=FakeClock())
        tracer.record("tick")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.recorded == 0


class TestTelemetryFacade:
    def test_count_gauge_observe_create_families(self):
        telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))
        telemetry.count("nitro_packets_total", 5, path="batch")
        telemetry.gauge("nitro_sampling_probability", 0.25)
        telemetry.observe("pipeline_stage_seconds", 1e-4, stage="l2fwd", platform="vpp")
        registry = telemetry.registry
        assert registry.get("nitro_packets_total").labels(path="batch").value == 5.0
        assert registry.get("nitro_sampling_probability").labels().value == 0.25
        # Label names are sorted at creation so call-site kwarg order is free.
        assert registry.get("pipeline_stage_seconds").labelnames == ("platform", "stage")
        assert METRIC_HELP["nitro_packets_total"] == registry.get("nitro_packets_total").help

    def test_span_records_into_histogram(self):
        telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))
        with telemetry.span("daemon_ingest_seconds", daemon="t"):
            pass
        child = telemetry.registry.get("daemon_ingest_seconds").labels(daemon="t")
        assert child.count == 1
        assert child.sum >= 0.0
        # Spans time into histograms only; they never touch the event ring.
        assert len(telemetry.tracer) == 0

    def test_record_ops_bridges_opcounter(self):
        telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))
        ops = OpCounter()
        ops.hashes += 7
        ops.packets += 2
        telemetry.record_ops(ops, component="daemon0")
        family = telemetry.registry.get("opcounter")
        assert family.labels(category="hashes", component="daemon0").value == 7.0
        assert family.labels(category="packets", component="daemon0").value == 2.0

    def test_null_telemetry_is_inert(self):
        null = NULL_TELEMETRY
        assert isinstance(null, NullTelemetry)
        assert null.enabled is False
        null.count("x_total")
        null.gauge("x", 1.0)
        null.observe("x_seconds", 0.1)
        null.event("x.event", a=1)
        null.record_ops(OpCounter())
        with null.span("x_seconds", stage="s") as span:
            pass
        assert span is null.span("y_seconds")  # shared stateless null span


class TestHTTPEndpoint:
    def test_serves_metrics_snapshot_and_trace(self):
        telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))
        telemetry.count("requests_total", 3)
        telemetry.event("demo.event", ok=True)
        server = TelemetryServer(telemetry, port=0).start()
        base = "http://127.0.0.1:%d" % server.port
        try:
            metrics = urllib.request.urlopen(base + "/metrics").read().decode()
            assert "requests_total 3" in metrics
            snapshot = json.loads(urllib.request.urlopen(base + "/snapshot").read())
            assert snapshot["metrics"]["requests_total"]["samples"][0]["value"] == 3.0
            trace = urllib.request.urlopen(base + "/trace").read().decode()
            assert parse_jsonl(trace)[0].name == "demo.event"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(base + "/nope")
        finally:
            server.stop()


def _convergence_run() -> NitroSketch:
    """Deterministic AlwaysCorrect run that crosses the threshold once."""
    config = NitroConfig(
        probability=0.1,
        epsilon=0.5,
        mode=NitroMode.ALWAYS_CORRECT,
        convergence_check_period=1000,
        seed=9,
    )
    nitro = NitroSketch(CountSketch(5, 4096, seed=9), config)
    nitro.telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))
    nitro.update_batch(np.full(40000, 1, dtype=np.int64))
    return nitro


class TestConvergenceEvents:
    def test_convergence_event_fires_exactly_once(self):
        nitro = _convergence_run()
        assert nitro.converged
        tracer = nitro.telemetry.tracer
        events = tracer.events("nitro.convergence")
        assert len(events) == 1
        event = events[0]
        # The mode transition carries the packet index where T crossed.
        assert event.fields["packets"] == nitro.correctness.converged_at_packet
        assert event.fields["l2_squared"] > event.fields["threshold"]
        assert event.fields["probability"] == 0.1

    def test_p_change_event_and_counters(self):
        nitro = _convergence_run()
        registry = nitro.telemetry.registry
        changes = nitro.telemetry.tracer.events("nitro.p_change")
        assert len(changes) == 1
        assert changes[0].fields["reason"] == "converged"
        assert changes[0].fields["old"] == 1.0
        assert changes[0].fields["new"] == 0.1
        assert registry.get("nitro_convergence_total").labels().value == 1.0
        assert registry.get("nitro_sampling_probability").labels().value == 0.1
        checks = registry.get("nitro_convergence_checks_total").labels().value
        assert checks >= 1.0

    def test_convergence_trace_golden(self):
        """JSONL golden for the mode-transition trace (fake clock)."""
        nitro = _convergence_run()
        assert nitro.telemetry.tracer.to_jsonl() == _golden("convergence_trace.jsonl")

    def test_reset_emits_p_change(self):
        nitro = _convergence_run()
        nitro.reset()
        reasons = [
            event.fields["reason"]
            for event in nitro.telemetry.tracer.events("nitro.p_change")
        ]
        assert reasons == ["converged", "reset"]
        assert (
            nitro.telemetry.registry.get("nitro_sampling_probability").labels().value
            == 1.0
        )


class TestNullTelemetryBitIdentical:
    def test_instrumented_run_matches_seed_behaviour(self):
        """A live sink must observe, never perturb: counters, ops and
        query results stay bit-identical to the NULL_TELEMETRY run."""
        def build():
            config = NitroConfig(
                probability=0.1,
                epsilon=0.5,
                mode=NitroMode.ALWAYS_CORRECT,
                convergence_check_period=1000,
                top_k=50,
                seed=21,
            )
            return NitroSketch(CountSketch(5, 2048, seed=21), config)

        trace = caida_like(30_000, n_flows=1_500, seed=21)
        plain = build()
        assert plain.telemetry is NULL_TELEMETRY  # the default sink
        plain.ops = OpCounter()
        instrumented = build()
        instrumented.ops = OpCounter()
        instrumented.telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))

        for start in range(0, len(trace), 1024):
            chunk = trace.keys[start : start + 1024]
            plain.update_batch(chunk)
            instrumented.update_batch(chunk)

        assert np.array_equal(plain.sketch.counters, instrumented.sketch.counters)
        assert plain.ops.as_dict() == instrumented.ops.as_dict()
        keys = np.unique(trace.keys[:256])
        for key in keys.tolist():
            assert plain.query(key) == instrumented.query(key)
        assert plain.converged == instrumented.converged


class TestControlPlaneKeepMonitors:
    @staticmethod
    def _run(keep, epochs=6):
        trace = caida_like(100 * epochs, n_flows=50, seed=3)
        plane = ControlPlane(
            lambda epoch: CountSketch(2, 256, seed=5),
            tasks=[],
            score=False,
            keep_monitors=keep,
        )
        plane.run_epochs(trace, epoch_packets=100)
        return plane

    def test_default_window_does_not_accumulate(self):
        plane = self._run(keep=2)
        assert len(plane.monitors) == 2

    def test_none_keeps_every_epoch(self):
        plane = self._run(keep=None)
        assert len(plane.monitors) == 6

    def test_window_keeps_most_recent(self):
        trace = caida_like(300, n_flows=50, seed=3)
        built = []

        def factory(epoch):
            monitor = CountSketch(2, 256, seed=5)
            built.append(monitor)
            return monitor

        plane = ControlPlane(factory, tasks=[], score=False, keep_monitors=1)
        plane.run_epochs(trace, epoch_packets=100)
        assert plane.monitors == [built[-1]]

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ControlPlane(lambda epoch: None, tasks=[], keep_monitors=0)


class _ExplodingMonitor:
    """update_batch raises an *internal* TypeError (a monitor bug)."""

    def update(self, key):
        pass

    def update_batch(self, keys):
        raise TypeError("internal monitor bug")


class _DurationMonitor:
    def __init__(self):
        self.calls = []

    def update_batch(self, keys, duration_seconds=None):
        self.calls.append((len(keys), duration_seconds))


class _PlainBatchMonitor:
    def __init__(self):
        self.calls = 0

    def update_batch(self, keys):
        self.calls += 1


class TestDaemonDispatch:
    def test_internal_typeerror_propagates(self):
        """The daemon must not swallow TypeErrors raised inside the
        monitor while probing for the duration_seconds kwarg."""
        daemon = MeasurementDaemon(_ExplodingMonitor())
        with pytest.raises(TypeError, match="internal monitor bug"):
            daemon.ingest(_make_batch([1, 2, 3]))

    def test_duration_kwarg_detected_once(self):
        monitor = _DurationMonitor()
        daemon = MeasurementDaemon(monitor)
        assert daemon._batch_takes_duration
        daemon.ingest(_make_batch([1, 2, 3]))
        assert monitor.calls == [(3, pytest.approx(2e-6))]

    def test_plain_batch_signature_called_bare(self):
        monitor = _PlainBatchMonitor()
        daemon = MeasurementDaemon(monitor)
        assert not daemon._batch_takes_duration
        daemon.ingest(_make_batch([1, 2, 3]))
        assert monitor.calls == 1

    def test_daemon_records_telemetry(self):
        telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))
        daemon = MeasurementDaemon(_PlainBatchMonitor(), telemetry=telemetry)
        daemon.ingest(_make_batch([1, 2, 3]))
        registry = telemetry.registry
        name = daemon.name
        assert registry.get("daemon_batches_total").labels(daemon=name).value == 1.0
        assert registry.get("daemon_packets_total").labels(daemon=name).value == 3.0
        assert registry.get("daemon_ingest_seconds").labels(daemon=name).count == 1


class TestOpCounterFieldIteration:
    def test_reset_restores_dataclass_defaults(self):
        ops = OpCounter()
        for name in ops.as_dict():
            setattr(ops, name, 7)
        ops.reset()
        assert set(ops.as_dict().values()) == {0}

    def test_merge_covers_every_field(self):
        left, right = OpCounter(), OpCounter()
        for name in left.as_dict():
            setattr(left, name, 1)
            setattr(right, name, 2)
        left.merge(right)
        assert set(left.as_dict().values()) == {3}


class TestIntegratedPipelineTelemetry:
    def test_simulator_run_populates_stage_histograms(self):
        telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))
        config = NitroConfig(
            probability=0.1,
            epsilon=0.5,
            mode=NitroMode.ALWAYS_CORRECT,
            convergence_check_period=1000,
            seed=7,
        )
        nitro = NitroSketch(CountSketch(5, 4096, seed=7), config)
        daemon = MeasurementDaemon(nitro, name="nitro-cs")
        simulator = SwitchSimulator(VPPPipeline(), daemon, telemetry=telemetry)
        trace = caida_like(20_000, n_flows=1_000, seed=7)
        simulator.run(trace)

        registry = telemetry.registry
        stages = registry.get("pipeline_stage_seconds")
        assert stages is not None
        stage_names = {
            stages.label_dict(values)["stage"] for values, child in stages.children()
        }
        # The VPP graph times each node as its own stage.
        assert len(stage_names) >= 2
        assert registry.get("nitro_sampling_probability").labels().value == 0.1
        assert registry.get("simulator_achieved_mpps") is not None
        runs = telemetry.tracer.events("simulate.run")
        assert len(runs) == 1
        assert runs[0].fields["packets"] == 20_000

    def test_demo_run_validates(self):
        from repro.telemetry.demo import run_demo, validate

        telemetry = Telemetry(tracer=Tracer(clock=FakeClock()))
        summary = run_demo(telemetry, packets=20_000, seed=7)
        assert summary["converged"]
        assert validate(telemetry) == []


class TestNonFiniteExposition:
    """Non-finite samples (relative_error can be inf) must survive both
    exposition formats: Prometheus text per the 0.0.4 spec, and JSON as
    "+Inf"/"-Inf"/"NaN" strings (bare Infinity tokens are not JSON)."""

    def test_format_value_non_finite(self):
        from repro.telemetry.exposition import _format_value

        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"

    def test_prometheus_renders_non_finite_samples(self):
        telemetry = Telemetry()
        telemetry.gauge("audit_bound_ratio", float("inf"), component="audit")
        telemetry.gauge("audit_relative_error", float("nan"), component="audit", stat="max")
        text = telemetry.render_prometheus()
        assert 'audit_bound_ratio{component="audit"} +Inf' in text
        assert "NaN" in text

    def test_json_snapshot_encodes_non_finite_as_strings(self):
        telemetry = Telemetry()
        telemetry.gauge("audit_bound_ratio", float("inf"), component="audit")
        telemetry.gauge("neg", float("-inf"))
        telemetry.observe("h", float("inf"))
        body = telemetry.render_json()
        payload = json.loads(body)  # strict: would fail on bare Infinity
        assert "Infinity" not in body
        ratio = payload["metrics"]["audit_bound_ratio"]["samples"][0]["value"]
        assert ratio == "+Inf"
        assert payload["metrics"]["neg"]["samples"][0]["value"] == "-Inf"
        assert payload["metrics"]["h"]["samples"][0]["sum"] == "+Inf"

    def test_snapshot_route_serves_valid_json_with_inf(self):
        telemetry = Telemetry()
        telemetry.gauge("audit_bound_ratio", float("inf"), component="audit")
        with TelemetryServer(telemetry, port=0).start() as server:
            raw = urllib.request.urlopen(
                "http://127.0.0.1:%d/snapshot" % server.port
            ).read()
        payload = json.loads(raw)
        value = payload["metrics"]["audit_bound_ratio"]["samples"][0]["value"]
        assert value == "+Inf"


class TestServerLifecycle:
    def test_close_is_idempotent(self):
        server = TelemetryServer(Telemetry(), port=0).start()
        server.close()
        assert server.closed
        server.close()  # second close: no error, no hang
        server.stop()  # alias keeps working too

    def test_close_without_start_does_not_hang(self):
        server = TelemetryServer(Telemetry(), port=0)
        server.close()
        assert server.closed

    def test_start_after_close_rejected(self):
        server = TelemetryServer(Telemetry(), port=0)
        server.close()
        with pytest.raises(RuntimeError):
            server.start()

    def test_context_manager_closes(self):
        with TelemetryServer(Telemetry(), port=0).start() as server:
            assert not server.closed
        assert server.closed

    def test_serve_forever_exits_on_close(self):
        import threading

        server = TelemetryServer(Telemetry(), port=0)
        # install_sigint_handler from a non-main thread must be a no-op
        # (signal.signal raises ValueError there), not a crash.
        thread = threading.Thread(
            target=lambda: server.serve_forever(install_sigint_handler=True),
            daemon=True,
        )
        thread.start()
        for _ in range(100):
            try:
                urllib.request.urlopen(
                    "http://127.0.0.1:%d/metrics" % server.port, timeout=1
                )
                break
            except OSError:
                import time

                time.sleep(0.01)
        server.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert server.closed

    def test_sigint_triggers_graceful_shutdown(self):
        import signal
        import subprocess
        import sys
        import textwrap
        import time

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = textwrap.dedent(
            """
            import sys
            from repro.telemetry import Telemetry, TelemetryServer

            server = TelemetryServer(Telemetry(), port=0)
            print(server.port, flush=True)
            server.serve_forever(install_sigint_handler=True)
            print("CLEAN-EXIT" if server.closed else "LEAKED", flush=True)
            """
        )
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        try:
            port = int(proc.stdout.readline())
            urllib.request.urlopen("http://127.0.0.1:%d/metrics" % port, timeout=5)
            time.sleep(0.1)
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert b"CLEAN-EXIT" in out, (out, err)
        assert proc.returncode == 0


class TestScrapeConsistency:
    """The scrape-vs-ingest race (PR 10): exposition renders under the
    registry lock, so multi-metric updates grouped in
    ``Telemetry.atomic()`` are observed all-or-nothing."""

    def test_atomic_block_is_invisible_to_snapshot(self):
        """Deterministic torn-read probe: a snapshot requested while a
        writer sits *inside* an atomic block must block until the block
        completes -- the unlocked render at the same instant sees the
        tear, which is exactly what reverting the registry-lock fix
        would reintroduce."""
        import threading

        from repro.telemetry.exposition import _snapshot_locked, snapshot

        telemetry = Telemetry()
        registry = telemetry.registry
        mid_update = threading.Event()
        release = threading.Event()

        def writer():
            with telemetry.atomic():
                telemetry.count("sibling_a_total")
                mid_update.set()
                release.wait(timeout=10)
                telemetry.count("sibling_b_total")

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        assert mid_update.wait(timeout=10)
        # The unlocked path (the pre-fix behaviour) observes the tear:
        torn = _snapshot_locked(registry, None)["metrics"]
        assert "sibling_a_total" in torn and "sibling_b_total" not in torn
        # The locked snapshot cannot: it parks until the block closes.
        threading.Timer(0.2, release.set).start()
        snap = snapshot(registry)["metrics"]
        thread.join(timeout=10)
        assert snap["sibling_a_total"]["samples"][0]["value"] == 1.0
        assert snap["sibling_b_total"]["samples"][0]["value"] == 1.0

    def test_concurrent_scrape_while_ingesting_stress(self):
        """Hammer exposition from one thread while another creates
        families and bumps sibling pairs atomically: every scrape must
        see equal siblings and never crash on a mutating registry."""
        import threading

        from repro.telemetry.exposition import snapshot

        telemetry = Telemetry()
        registry = telemetry.registry
        stop = threading.Event()
        problems = []

        def writer():
            step = 0
            while not stop.is_set():
                with telemetry.atomic():
                    telemetry.count("stress_batches_total", daemon="svc")
                    telemetry.count("stress_packets_total", 64, daemon="svc")
                # Family churn: the old unlocked iteration could die on
                # "dictionary changed size during iteration".
                telemetry.gauge("stress_gauge_%d" % (step % 97), float(step))
                step += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for _ in range(300):
                try:
                    snap = snapshot(registry)["metrics"]
                    render_prometheus(registry)
                except RuntimeError as exc:  # dict mutated mid-render
                    problems.append(repr(exc))
                    break
                batches = snap.get("stress_batches_total")
                packets = snap.get("stress_packets_total")
                if batches is None:
                    continue
                b = batches["samples"][0]["value"]
                p = packets["samples"][0]["value"] if packets else 0.0
                if p != b * 64:
                    problems.append("torn pair: batches=%s packets=%s" % (b, p))
                    break
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not problems, problems
