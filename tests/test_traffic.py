"""Tests for trace generation, replay, and the on-disk format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic import (
    Replayer,
    Trace,
    caida_like,
    datacenter_like,
    ddos_like,
    load_trace,
    malware_like,
    min_sized_stress,
    remap_flows,
    save_trace,
    scramble_keys,
    uniform_keys,
    zipf_keys,
)
from repro.traffic.flows import flow_size_distribution, true_counts


class TestFlowGeneration:
    def test_zipf_range(self):
        keys = zipf_keys(10000, 500, 1.1, seed=1)
        assert keys.min() >= 0
        assert keys.max() < 500

    def test_zipf_rank_ordering(self):
        """Flow 0 (rank 1) must be the most frequent."""
        keys = zipf_keys(50000, 1000, 1.2, seed=2)
        counts = true_counts(keys)
        assert counts[0] == max(counts.values())

    def test_higher_skew_more_concentrated(self):
        light = zipf_keys(50000, 1000, 0.8, seed=3)
        heavy = zipf_keys(50000, 1000, 1.8, seed=3)
        top_light = true_counts(light).get(0, 0)
        top_heavy = true_counts(heavy).get(0, 0)
        assert top_heavy > top_light

    def test_uniform_keys_spread(self):
        keys = uniform_keys(50000, 100, seed=4)
        counts = true_counts(keys)
        assert len(counts) == 100
        assert max(counts.values()) < 2 * min(counts.values())

    def test_flow_size_distribution_sums_to_total(self):
        sizes = flow_size_distribution(100, 1.1, 10000)
        assert sizes.sum() == pytest.approx(10000)
        assert sizes[0] == max(sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_keys(-1, 10)
        with pytest.raises(ValueError):
            zipf_keys(10, 0)
        with pytest.raises(ValueError):
            zipf_keys(10, 10, skew=-1)

    @given(st.lists(st.integers(0, 10000), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_scramble_is_injective(self, values):
        unique = list(set(values))
        scrambled = scramble_keys(np.array(unique, dtype=np.int64))
        assert len(set(scrambled.tolist())) == len(unique)

    def test_remap_fraction(self):
        keys = np.arange(20000, dtype=np.int64)
        remapped = remap_flows(keys, 0.3)
        fraction = np.mean(remapped != keys)
        assert fraction == pytest.approx(0.3, abs=0.02)

    def test_remap_consistent_per_flow(self):
        """All packets of one flow move together."""
        keys = np.array([5, 5, 5, 9, 9], dtype=np.int64)
        remapped = remap_flows(keys, 0.5)
        assert len(set(remapped[:3].tolist())) == 1
        assert len(set(remapped[3:].tolist())) == 1

    def test_remap_extremes(self):
        keys = np.arange(100, dtype=np.int64)
        assert np.array_equal(remap_flows(keys, 0.0), keys)
        assert np.all(remap_flows(keys, 1.0) != keys)

    def test_remap_validation(self):
        with pytest.raises(ValueError):
            remap_flows(np.arange(5), 1.5)


class TestTraceFamilies:
    def test_caida_mean_packet_size(self):
        trace = caida_like(20000, seed=1)
        assert trace.mean_packet_size == pytest.approx(714, rel=0.05)

    def test_datacenter_mean_packet_size_and_skew(self):
        dc = datacenter_like(20000, seed=2)
        assert dc.mean_packet_size == pytest.approx(747, rel=0.05)
        caida = caida_like(20000, n_flows=20_000, seed=2)
        # DC is "quite skewed": top flow carries a larger traffic share.
        dc_top = max(dc.counts().values()) / len(dc)
        caida_top = max(caida.counts().values()) / len(caida)
        assert dc_top > caida_top

    def test_ddos_mean_size_and_sources(self):
        trace = ddos_like(20000, seed=3)
        assert trace.mean_packet_size == pytest.approx(272, rel=0.1)
        assert trace.src_addresses is not None
        assert len(trace.src_addresses) == len(trace)

    def test_ddos_attack_fraction_widens_flows(self):
        mild = ddos_like(30000, attack_fraction=0.0, seed=4)
        heavy = ddos_like(30000, attack_fraction=0.8, seed=4)
        assert heavy.flow_count() > mild.flow_count()

    def test_min_sized_is_64b(self):
        trace = min_sized_stress(1000, seed=5)
        assert np.all(trace.sizes == 64)

    def test_malware_many_flows(self):
        trace = malware_like(50000, n_flows=40000, seed=6)
        assert trace.flow_count() > 20000

    def test_timestamps_monotone(self):
        trace = caida_like(5000, seed=7)
        assert np.all(np.diff(trace.timestamps) >= 0)

    def test_offered_rate_respected(self):
        trace = caida_like(50000, offered_gbps=40.0, seed=8)
        wire_bits = float(np.sum(trace.sizes.astype(np.float64) + 20) * 8)
        rate = wire_bits / trace.timestamps[-1] / 1e9
        assert rate == pytest.approx(40.0, rel=0.02)

    def test_slice(self):
        trace = caida_like(1000, seed=9)
        part = trace.slice(100, 200)
        assert len(part) == 100
        assert np.array_equal(part.keys, trace.keys[100:200])

    def test_counts_exact(self):
        trace = caida_like(5000, n_flows=100, seed=10)
        counts = trace.counts()
        assert sum(counts.values()) == 5000

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                name="bad",
                keys=np.arange(5),
                sizes=np.arange(4, dtype=np.int32),
                timestamps=np.arange(5, dtype=np.float64),
            )

    def test_ddos_validation(self):
        with pytest.raises(ValueError):
            ddos_like(100, attack_fraction=1.5)


class TestReplayer:
    def test_batches_cover_trace(self):
        trace = caida_like(1000, seed=11)
        replayer = Replayer(trace, batch_size=64)
        total = sum(len(batch) for batch in replayer)
        assert total == 1000

    def test_batch_size_respected(self):
        trace = caida_like(1000, seed=12)
        batches = list(Replayer(trace, batch_size=128))
        assert all(len(batch) == 128 for batch in batches[:-1])
        assert len(batches[-1]) == 1000 % 128 or len(batches[-1]) == 128

    def test_rate_rescaling(self):
        trace = caida_like(5000, offered_gbps=10.0, seed=13)
        replayer = Replayer(trace, offered_gbps=40.0)
        assert replayer.offered_rate_mpps == pytest.approx(
            4 * Replayer(trace).offered_rate_mpps, rel=0.01
        )

    def test_batch_wire_bits(self):
        trace = min_sized_stress(100, seed=14)
        batch = next(iter(Replayer(trace, batch_size=100)))
        assert batch.wire_bits == pytest.approx(100 * (64 + 20) * 8)

    def test_validation(self):
        trace = caida_like(100, seed=15)
        with pytest.raises(ValueError):
            Replayer(trace, batch_size=0)
        with pytest.raises(ValueError):
            Replayer(trace, offered_gbps=0)


class TestPcapLite:
    def test_roundtrip(self, tmp_path):
        trace = ddos_like(2000, seed=16)
        path = str(tmp_path / "trace.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert np.array_equal(loaded.keys, trace.keys)
        assert np.array_equal(loaded.sizes, trace.sizes)
        assert np.array_equal(loaded.timestamps, trace.timestamps)
        assert np.array_equal(loaded.src_addresses, trace.src_addresses)

    def test_roundtrip_without_sources(self, tmp_path):
        trace = caida_like(500, seed=17)
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.src_addresses is None
        assert np.array_equal(loaded.keys, trace.keys)

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, n_packets):
        import os
        import tempfile

        trace = min_sized_stress(n_packets, n_flows=10, seed=n_packets)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "t.npz")
            save_trace(trace, path)
            loaded = load_trace(path)
        assert len(loaded) == n_packets
        assert np.array_equal(loaded.keys, trace.keys)
