"""Tests for the structural switch-pipeline models: the OVS tuple-space
classifier, VPP graph nodes, and BESS modules."""

import numpy as np
import pytest

from repro.core import nitro_countsketch
from repro.metrics.opcount import OpCounter
from repro.switchsim import (
    BESSPipeline,
    EthernetInputNode,
    IP4LookupNode,
    L2ForwardModule,
    MeasurementNode,
    OVSDPDKPipeline,
    SketchModule,
    TupleSpaceClassifier,
    VPPPipeline,
)
from repro.traffic import min_sized_stress
from repro.traffic.replay import Batch, Replayer


def make_batch(keys):
    keys = np.asarray(keys, dtype=np.int64)
    return Batch(
        keys=keys,
        sizes=np.full(len(keys), 64, dtype=np.int32),
        timestamps=np.linspace(0, 1e-6, len(keys)),
    )


class TestTupleSpaceClassifier:
    def test_masked_match(self):
        classifier = TupleSpaceClassifier(masks=(0xFF00,))
        classifier.install(0x1234, 0xFF00, action=7)
        ops = OpCounter()
        # Any key sharing the masked bits matches.
        assert classifier.lookup(0x12FF, ops) == 7
        assert classifier.lookup(0x3456, ops) is None

    def test_subtable_walk_billing(self):
        classifier = TupleSpaceClassifier(masks=(0xFF, 0xFFFF, 0xFFFFFF))
        ops = OpCounter()
        classifier.lookup(1, ops)  # miss walks all three subtables
        assert ops.hashes == 3
        assert ops.table_lookups == 3

    def test_early_exit_on_first_match(self):
        classifier = TupleSpaceClassifier(masks=(0xFF, 0xFFFF))
        classifier.install(0x12, 0xFF, action=1)
        ops = OpCounter()
        classifier.lookup(0x12, ops)
        assert ops.hashes == 1  # matched in the first subtable

    def test_entry_count_and_reset(self):
        classifier = TupleSpaceClassifier()
        classifier.install(1, 0xFFFF, 1)
        classifier.install(2, 0xFFFFFFFFFFFFFFFF, 1)
        assert classifier.entry_count() == 2
        classifier.reset()
        assert classifier.entry_count() == 0

    def test_requires_masks(self):
        with pytest.raises(ValueError):
            TupleSpaceClassifier(masks=())


class TestOVSThreeTier:
    def test_upcall_installs_megaflow(self):
        pipeline = OVSDPDKPipeline(emc_entries=4, emc_key_space=None)
        ops = OpCounter()
        pipeline.forward_batch(make_batch([101, 102, 103]), ops)
        assert pipeline.upcalls >= 1
        assert pipeline.classifier.entry_count() >= 1

    def test_second_pass_hits_caches(self):
        pipeline = OVSDPDKPipeline(emc_entries=64, emc_key_space=None)
        batch = make_batch(list(range(32)))
        pipeline.forward_batch(batch, OpCounter())
        upcalls_before = pipeline.upcalls
        pipeline.forward_batch(batch, OpCounter())
        assert pipeline.upcalls == upcalls_before  # all EMC hits now
        assert pipeline.emc_hits >= 32


class TestVPPGraph:
    def test_default_graph_order(self):
        names = [node.name for node in VPPPipeline().nodes]
        assert names == ["ethernet-input", "ip4-input", "ip4-lookup", "ip4-rewrite"]

    def test_fib_lookups_billed(self):
        pipeline = VPPPipeline()
        ops = OpCounter()
        pipeline.forward_batch(make_batch(range(10)), ops)
        assert ops.table_lookups == 10  # one FIB probe per packet

    def test_add_node_after(self):
        pipeline = VPPPipeline()
        monitor = nitro_countsketch(probability=0.1, seed=1)
        pipeline.add_node(
            MeasurementNode(lambda batch: monitor.update_batch(batch.keys)),
            after="ip4-lookup",
        )
        assert [n.name for n in pipeline.nodes][3] == "nitrosketch"
        pipeline.forward_batch(make_batch(range(50)), OpCounter())
        assert monitor.packets_seen == 50

    def test_add_node_unknown_anchor(self):
        with pytest.raises(ValueError):
            VPPPipeline().add_node(EthernetInputNode(), after="nope")

    def test_dispatch_amortised_over_vector(self):
        """Bigger vectors -> fewer cycles per packet (VPP's design point)."""
        from repro.switchsim import CostModel

        model = CostModel()
        trace = min_sized_stress(4096, seed=1)
        costs = {}
        for batch_size in (4, 256):
            pipeline = VPPPipeline()
            ops = OpCounter()
            for batch in Replayer(trace, batch_size=batch_size):
                pipeline.forward_batch(batch, ops)
            costs[batch_size] = model.cycles_per_packet(ops)
        assert costs[256] < costs[4]


class TestBESSModules:
    def test_default_chain(self):
        names = [m.name for m in BESSPipeline().modules]
        assert names == ["port_inc", "l2_forward", "port_out"]

    def test_l2_lookup_billed(self):
        pipeline = BESSPipeline()
        ops = OpCounter()
        pipeline.forward_batch(make_batch(range(8)), ops)
        assert ops.table_lookups == 8

    def test_sketch_module_insertion(self):
        pipeline = BESSPipeline()
        monitor = nitro_countsketch(probability=0.1, seed=2)
        pipeline.add_module(SketchModule(lambda batch: monitor.update_batch(batch.keys)))
        assert [m.name for m in pipeline.modules][2] == "nitrosketch"
        pipeline.forward_batch(make_batch(range(20)), OpCounter())
        assert monitor.packets_seen == 20
