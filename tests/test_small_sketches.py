"""Tests for Misra-Gries, linear counting, HyperLogLog, and the strawmen."""

import math
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches import (
    CountSketch,
    HyperLogLog,
    LinearCounter,
    MisraGries,
    OneArrayCountSketch,
    UniformSampledSketch,
)

KEY_LISTS = st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=400)


class TestMisraGries:
    @given(KEY_LISTS)
    @settings(max_examples=60, deadline=None)
    def test_mg_error_bound(self, keys):
        """f_x - m/(k+1) <= estimate <= f_x -- the classic MG guarantee."""
        k = 8
        mg = MisraGries(k)
        for key in keys:
            mg.update(key)
        truth = Counter(keys)
        bound = len(keys) / (k + 1)
        for key, count in truth.items():
            estimate = mg.query(key)
            assert estimate <= count + 1e-9
            assert estimate >= count - bound - 1e-9

    def test_tracks_dominant_flow(self):
        mg = MisraGries(4)
        keys = [1] * 100 + list(range(2, 52))
        for key in keys:
            mg.update(key)
        assert mg.query(1) > 40

    def test_items_sorted_desc(self):
        mg = MisraGries(5)
        for key, reps in ((1, 10), (2, 30), (3, 20)):
            for _ in range(reps):
                mg.update(key)
        items = mg.items()
        values = [v for _, v in items]
        assert values == sorted(values, reverse=True)

    def test_weighted_updates(self):
        mg = MisraGries(3)
        mg.update(1, weight=5.0)
        assert mg.query(1) == 5.0

    def test_reset(self):
        mg = MisraGries(3)
        mg.update(1)
        mg.reset()
        assert mg.query(1) == 0.0
        assert mg.decrement_total == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MisraGries(0)


class TestLinearCounter:
    def test_small_cardinality_accurate(self):
        lc = LinearCounter(4096, seed=1)
        for key in range(500):
            lc.update(key)
        assert lc.estimate() == pytest.approx(500, rel=0.1)

    def test_duplicates_ignored(self):
        lc = LinearCounter(1024, seed=2)
        for _ in range(1000):
            lc.update(7)
        assert lc.estimate() == pytest.approx(1.0, abs=2.0)

    def test_saturation_returns_inf(self):
        lc = LinearCounter(64, seed=3)
        lc.update_batch(np.arange(10000))
        assert lc.is_saturated()
        assert lc.estimate() == math.inf

    def test_batch_matches_scalar(self):
        a = LinearCounter(512, seed=4)
        b = LinearCounter(512, seed=4)
        keys = np.arange(300)
        for key in keys.tolist():
            a.update(key)
        b.update_batch(keys)
        assert a.estimate() == b.estimate()

    def test_memory_bytes(self):
        assert LinearCounter(8192).memory_bytes() == 1024

    def test_reset(self):
        lc = LinearCounter(128, seed=5)
        lc.update(1)
        lc.reset()
        assert lc.zero_fraction() == 1.0

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            LinearCounter(0)


class TestHyperLogLog:
    def test_accuracy_medium_cardinality(self):
        hll = HyperLogLog(precision=12, seed=1)
        hll.update_batch(np.arange(50000))
        assert hll.estimate() == pytest.approx(50000, rel=0.05)

    def test_small_range_correction(self):
        hll = HyperLogLog(precision=12, seed=2)
        for key in range(100):
            hll.update(key)
        assert hll.estimate() == pytest.approx(100, rel=0.15)

    def test_duplicates_ignored(self):
        hll = HyperLogLog(precision=10, seed=3)
        for _ in range(10000):
            hll.update(42)
        assert hll.estimate() == pytest.approx(1.0, abs=2.0)

    def test_batch_matches_scalar(self):
        a = HyperLogLog(precision=10, seed=4)
        b = HyperLogLog(precision=10, seed=4)
        keys = np.arange(5000)
        for key in keys.tolist():
            a.update(key)
        b.update_batch(keys)
        assert a.estimate() == pytest.approx(b.estimate(), rel=1e-9)

    def test_merge(self):
        a = HyperLogLog(precision=11, seed=5)
        b = HyperLogLog(precision=11, seed=5)
        a.update_batch(np.arange(0, 20000))
        b.update_batch(np.arange(10000, 30000))
        a.merge(b)
        assert a.estimate() == pytest.approx(30000, rel=0.07)

    def test_merge_requires_same_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=10).merge(HyperLogLog(precision=11))

    def test_precision_validation(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=3)
        with pytest.raises(ValueError):
            HyperLogLog(precision=19)

    def test_memory(self):
        assert HyperLogLog(precision=12).memory_bytes() == 4096

    def test_reset(self):
        hll = HyperLogLog(precision=10, seed=6)
        hll.update(1)
        hll.reset()
        assert hll.estimate() == pytest.approx(0.0, abs=1.0)


class TestOneArrayCountSketch:
    def test_single_row(self):
        sketch = OneArrayCountSketch(4096, seed=1)
        assert sketch.depth == 1

    def test_estimates_with_large_array(self):
        sketch = OneArrayCountSketch(65536, seed=2)
        for _ in range(100):
            sketch.update(5)
        assert sketch.query(5) == pytest.approx(100, abs=10)

    def test_sizing_is_delta_inverse(self):
        small = OneArrayCountSketch.from_error_bounds(0.1, 0.1)
        large = OneArrayCountSketch.from_error_bounds(0.1, 0.01)
        assert large.width == pytest.approx(10 * small.width, rel=0.01)

    def test_sizing_validation(self):
        with pytest.raises(ValueError):
            OneArrayCountSketch.from_error_bounds(1.5, 0.1)


class TestUniformSampledSketch:
    def test_unbiased_estimates(self):
        inner = CountSketch(5, 8192, seed=3)
        sampled = UniformSampledSketch(inner, probability=0.1, seed=3)
        keys = np.concatenate([np.full(20000, 1), np.arange(100, 5100)])
        np.random.default_rng(0).shuffle(keys)
        sampled.update_batch(keys)
        assert sampled.query(1) == pytest.approx(20000, rel=0.15)

    def test_sampling_rate_respected(self):
        inner = CountSketch(3, 1024, seed=4)
        sampled = UniformSampledSketch(inner, probability=0.25, seed=4)
        for key in range(10000):
            sampled.update(key)
        assert sampled.packets_seen == 10000
        assert sampled.packets_sampled == pytest.approx(2500, rel=0.15)

    def test_scale_at_query_time(self):
        inner = CountSketch(3, 4096, seed=5)
        sampled = UniformSampledSketch(
            inner, probability=0.5, seed=5, scale_updates=False
        )
        for _ in range(2000):
            sampled.update(8)
        assert sampled.query(8) == pytest.approx(2000, rel=0.2)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            UniformSampledSketch(CountSketch(2, 16), probability=0.0)

    def test_prng_billed_per_packet(self):
        from repro.metrics.opcount import OpCounter

        inner = CountSketch(3, 1024, seed=6)
        sampled = UniformSampledSketch(inner, probability=0.01, seed=6)
        ops = OpCounter()
        sampled.ops = ops
        for key in range(1000):
            sampled.update(key)
        assert ops.prng_draws == 1000  # the per-packet coin-flip cost
        assert ops.packets == 1000

    def test_reset(self):
        inner = CountSketch(3, 1024, seed=7)
        sampled = UniformSampledSketch(inner, probability=0.5, seed=7)
        sampled.update(1)
        sampled.reset()
        assert sampled.packets_seen == 0
        assert sampled.query(1) == 0.0
