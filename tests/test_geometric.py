"""Tests for the geometric sampler (Idea B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.geometric import GeometricSampler, geometric_positions
from repro.metrics.opcount import OpCounter


class TestGeometricSampler:
    def test_gaps_are_positive(self):
        sampler = GeometricSampler(0.2, seed=1)
        assert all(sampler.next_gap() >= 1 for _ in range(2000))

    def test_mean_gap_is_inverse_probability(self):
        sampler = GeometricSampler(0.1, seed=2)
        gaps = [sampler.next_gap() for _ in range(30000)]
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.05)

    def test_p_one_always_one_and_no_prng(self):
        sampler = GeometricSampler(1.0, seed=3)
        ops = OpCounter()
        sampler.ops = ops
        assert all(sampler.next_gap() == 1 for _ in range(100))
        assert ops.prng_draws == 0

    def test_prng_billed_per_draw(self):
        sampler = GeometricSampler(0.5, seed=4)
        ops = OpCounter()
        sampler.ops = ops
        for _ in range(50):
            sampler.next_gap()
        assert ops.prng_draws == 50

    def test_probability_change_takes_effect(self):
        sampler = GeometricSampler(0.5, seed=5)
        sampler.set_probability(0.01)
        gaps = [sampler.next_gap() for _ in range(5000)]
        assert np.mean(gaps) == pytest.approx(100.0, rel=0.15)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            GeometricSampler(0.0)
        sampler = GeometricSampler(0.5)
        with pytest.raises(ValueError):
            sampler.set_probability(1.5)

    def test_expected_gap(self):
        assert GeometricSampler(0.25).expected_gap() == 4.0

    def test_deterministic(self):
        a = GeometricSampler(0.3, seed=9)
        b = GeometricSampler(0.3, seed=9)
        assert [a.next_gap() for _ in range(100)] == [b.next_gap() for _ in range(100)]

    def test_gaps_batch_distribution(self):
        sampler = GeometricSampler(0.2, seed=11)
        gaps = sampler.gaps_batch(20000)
        assert gaps.min() >= 1
        assert np.mean(gaps) == pytest.approx(5.0, rel=0.05)

    def test_gaps_batch_p_one(self):
        sampler = GeometricSampler(1.0, seed=11)
        assert sampler.gaps_batch(10).tolist() == [1] * 10


class TestGeometricPositions:
    def test_positions_within_range(self):
        rng = np.random.default_rng(0)
        positions, leftover = geometric_positions(0.1, 1000, rng)
        assert positions.min() >= 0
        assert positions.max() < 1000
        assert leftover >= 0

    def test_positions_strictly_increasing(self):
        rng = np.random.default_rng(1)
        positions, _ = geometric_positions(0.3, 5000, rng)
        assert np.all(np.diff(positions) >= 1)

    def test_density_matches_probability(self):
        rng = np.random.default_rng(2)
        positions, _ = geometric_positions(0.05, 200000, rng)
        assert len(positions) == pytest.approx(10000, rel=0.1)

    def test_p_one_covers_every_slot(self):
        rng = np.random.default_rng(3)
        positions, leftover = geometric_positions(1.0, 10, rng)
        assert positions.tolist() == list(range(10))
        assert leftover == 0

    def test_zero_slots(self):
        rng = np.random.default_rng(4)
        positions, leftover = geometric_positions(0.5, 0, rng)
        assert positions.size == 0
        assert leftover >= 0

    def test_leftover_continuation_preserves_density(self):
        """Splitting a slot range into chunks (carrying leftover) must give
        the same overall sampling density as one big range."""
        rng = np.random.default_rng(5)
        total = 0
        pending = 0
        for _ in range(100):
            chunk = 1000
            if pending >= chunk:
                pending -= chunk
                continue
            first = pending
            tail, leftover = geometric_positions(0.1, chunk - first - 1, rng)
            total += 1 + len(tail)
            pending = leftover
        assert total == pytest.approx(0.1 * 100 * 1000, rel=0.1)

    def test_probability_validation(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError):
            geometric_positions(0.0, 10, rng)
        with pytest.raises(ValueError):
            geometric_positions(0.5, -1, rng)

    @given(st.floats(min_value=0.01, max_value=1.0), st.integers(0, 2000))
    @settings(max_examples=50, deadline=None)
    def test_invariants_property(self, probability, slots):
        rng = np.random.default_rng(7)
        positions, leftover = geometric_positions(probability, slots, rng)
        assert leftover >= 0
        if positions.size:
            assert positions.min() >= 0
            assert positions.max() < slots
            assert np.all(np.diff(positions) >= 1)


class TestGapsBatchBitIdentity:
    """The vectorised batch path must replay the scalar draw stream."""

    @pytest.mark.parametrize("probability", [0.03, 0.2, 0.7])
    def test_gaps_batch_matches_scalar_draws(self, probability):
        scalar = GeometricSampler(probability, seed=21)
        expected = [scalar.next_gap() for _ in range(6000)]
        batch = GeometricSampler(probability, seed=21)
        assert batch.gaps_batch(6000).tolist() == expected
        # Both consumed the same PRNG stream, so the cursors agree and
        # the *next* draw agrees too.
        assert batch.getstate() == scalar.getstate()
        assert batch.next_gap() == scalar.next_gap()

    def test_interleaved_scalar_and_batch(self):
        reference = GeometricSampler(0.1, seed=4)
        expected = [reference.next_gap() for _ in range(900)]
        mixed = GeometricSampler(0.1, seed=4)
        got = [mixed.next_gap() for _ in range(100)]
        got += mixed.gaps_batch(500).tolist()
        got += [mixed.next_gap() for _ in range(100)]
        got += mixed.gaps_batch(200).tolist()
        assert got == expected

    def test_state_roundtrip(self):
        sampler = GeometricSampler(0.25, seed=8)
        sampler.gaps_batch(137)
        snapshot = sampler.getstate()
        expected = sampler.gaps_batch(50).tolist()
        replayed = GeometricSampler(0.5, seed=999)
        replayed.setstate(snapshot)
        assert replayed.probability == 0.25
        assert replayed.gaps_batch(50).tolist() == expected
