"""Tests for the UnivMon universal sketch."""

import math
from collections import Counter

import numpy as np
import pytest

from repro.metrics.accuracy import empirical_entropy
from repro.sketches import HeavyHitterSketch, UnivMon, paper_widths
from repro.sketches.univmon import g_distinct, g_entropy, g_l1, g_l2_squared
from repro.traffic import zipf_keys


def make_univmon(**kwargs):
    defaults = dict(levels=8, depth=5, widths=2048, k=100, seed=3)
    defaults.update(kwargs)
    return UnivMon(**defaults)


class TestGFunctions:
    def test_g_entropy(self):
        assert g_entropy(1.0) == 0.0
        assert g_entropy(8.0) == pytest.approx(24.0)  # 8 * log2(8)

    def test_g_distinct(self):
        assert g_distinct(0.0) == 0.0
        assert g_distinct(0.4) == 0.0
        assert g_distinct(1.0) == 1.0

    def test_g_l2(self):
        assert g_l2_squared(3.0) == 9.0

    def test_g_l1_clamps(self):
        assert g_l1(-5.0) == 0.0
        assert g_l1(5.0) == 5.0


class TestSampling:
    def test_level0_sees_everything(self):
        um = make_univmon()
        for key in range(100):
            assert um.sampled_depth(key) >= 0

    def test_sampled_depth_halves_per_level(self):
        um = make_univmon(levels=10)
        depths = [um.sampled_depth(k) for k in range(20000)]
        # ~half the keys reach level >= 1, quarter level >= 2, ...
        at_least_1 = sum(1 for d in depths if d >= 1) / len(depths)
        at_least_2 = sum(1 for d in depths if d >= 2) / len(depths)
        assert 0.45 < at_least_1 < 0.55
        assert 0.2 < at_least_2 < 0.3

    def test_sample_bit_consistency(self):
        um = make_univmon()
        for key in range(500):
            depth = um.sampled_depth(key)
            for level in range(1, um.levels):
                assert um.sample_bit(level, key) == (1 if depth >= level else 0)

    def test_sampled_depth_batch_matches_scalar(self):
        um = make_univmon()
        keys = np.arange(2000)
        batch = um.sampled_depth_batch(keys)
        assert batch.tolist() == [um.sampled_depth(int(k)) for k in keys]

    def test_nested_substreams(self):
        """A key in level j must be in every level below j."""
        um = make_univmon()
        for key in range(300):
            depth = um.sampled_depth(key)
            assert 0 <= depth < um.levels


class TestUpdateAndQuery:
    def test_batch_matches_scalar_counters(self):
        keys = zipf_keys(15000, 2000, 1.1, seed=5)
        a = make_univmon()
        b = make_univmon()
        for key in keys.tolist():
            a.update(key)
        b.update_batch(keys)
        for level in range(a.levels):
            assert np.allclose(
                a.sketches[level].sketch.counters, b.sketches[level].sketch.counters
            )
        assert a.total == b.total
        assert a.packets_seen == b.packets_seen

    def test_point_query(self):
        um = make_univmon()
        for _ in range(500):
            um.update(77)
        assert um.query(77) == pytest.approx(500, rel=0.05)

    def test_heavy_hitters_sorted_desc(self):
        keys = zipf_keys(20000, 1000, 1.3, seed=7)
        um = make_univmon()
        um.update_batch(keys)
        hitters = um.heavy_hitters(threshold=10)
        estimates = [est for _, est in hitters]
        assert estimates == sorted(estimates, reverse=True)

    def test_entropy_estimate(self):
        keys = zipf_keys(60000, 3000, 1.1, seed=9)
        um = make_univmon(levels=10, widths=4096, k=200)
        um.update_batch(keys)
        truth = empirical_entropy(Counter(keys.tolist()))
        assert um.entropy_estimate() == pytest.approx(truth, rel=0.35)

    def test_distinct_estimate(self):
        keys = zipf_keys(40000, 800, 1.05, seed=11)
        um = make_univmon(levels=10, widths=4096, k=300)
        um.update_batch(keys)
        true_distinct = len(set(keys.tolist()))
        assert um.distinct_estimate() == pytest.approx(true_distinct, rel=0.4)

    def test_l1_gsum_matches_total(self):
        keys = zipf_keys(30000, 500, 1.2, seed=13)
        um = make_univmon(levels=8, widths=4096, k=300)
        um.update_batch(keys)
        assert um.g_sum(g_l1) == pytest.approx(um.total, rel=0.35)

    def test_l2_squared_estimate(self):
        keys = zipf_keys(30000, 2000, 1.2, seed=15)
        um = make_univmon(widths=8192)
        um.update_batch(keys)
        truth = sum(v * v for v in Counter(keys.tolist()).values())
        assert um.l2_squared_estimate() == pytest.approx(truth, rel=0.15)

    def test_change_detection(self):
        first = zipf_keys(20000, 1000, 1.2, seed=17)
        # Second epoch: one brand-new giant flow appears.
        second = np.concatenate([first, np.full(5000, 10**7, dtype=np.int64)])
        a = make_univmon(seed=21)
        b = make_univmon(seed=21)
        a.update_batch(first)
        b.update_batch(second)
        changes = b.change_detection(a, threshold=2000)
        assert changes, "the new giant flow must be detected"
        assert changes[0][0] == 10**7
        assert changes[0][1] == pytest.approx(5000, rel=0.25)

    def test_change_detection_requires_same_seed(self):
        a = make_univmon(seed=1)
        b = make_univmon(seed=2)
        with pytest.raises(ValueError):
            a.change_detection(b, 10)

    def test_reset(self):
        um = make_univmon()
        um.update(1)
        um.reset()
        assert um.total == 0.0
        assert um.packets_seen == 0
        assert um.query(1) == pytest.approx(0.0)

    def test_entropy_zero_for_empty(self):
        assert make_univmon().entropy_estimate() == 0.0


class TestConfiguration:
    def test_paper_widths_plan(self):
        widths = paper_widths(6, depth=5)
        assert widths[0] == 4 * 2**20 // 20
        assert widths[3] == 500 * 2**10 // 20
        assert widths[4] == widths[5] == 250 * 2**10 // 20

    def test_per_level_widths(self):
        um = UnivMon(levels=3, depth=2, widths=[64, 32, 16], k=10, seed=1)
        assert [s.sketch.width for s in um.sketches] == [64, 32, 16]

    def test_width_list_length_validated(self):
        with pytest.raises(ValueError):
            UnivMon(levels=3, widths=[64, 32], k=10)

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            UnivMon(levels=0)

    def test_memory_bytes_sums_levels(self):
        um = UnivMon(levels=2, depth=2, widths=100, k=10, seed=1)
        assert um.memory_bytes() >= 2 * 2 * 100 * 4

    def test_ops_propagates_to_levels(self):
        from repro.metrics.opcount import OpCounter

        um = make_univmon()
        ops = OpCounter()
        um.ops = ops
        um.update(5)
        assert ops.hashes > 0
        assert ops.counter_updates >= um.depth


class TestHeavyHitterSketch:
    def test_update_offers_to_topk(self):
        unit = HeavyHitterSketch(4, 512, k=10, seed=1)
        for _ in range(20):
            unit.update(3)
        assert 3 in unit.topk
        assert unit.query(3) == pytest.approx(20, rel=0.1)

    def test_top_items_fresh_estimates(self):
        unit = HeavyHitterSketch(4, 512, k=10, seed=1)
        for _ in range(10):
            unit.update(3)
        items = dict(unit.top_items())
        assert items[3] == unit.query(3)

    def test_reset(self):
        unit = HeavyHitterSketch(4, 512, k=10, seed=1)
        unit.update(3)
        unit.reset()
        assert len(unit.topk) == 0
