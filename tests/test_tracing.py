"""Tests for pipeline-wide tracing, stage profiling, and history.

Covers the span data model (deterministic ids, tree assembly, JSONL
round trip, ring bounds), the :class:`StageProfiler` sampling contract
and its quantile/flamegraph readers, the :class:`HistoryStore`
downsampling ring, Prometheus text-format conformance (cumulative
buckets, ``+Inf``, HELP escaping), the ``/spans`` and ``/history`` HTTP
routes, cross-process span propagation through the parallel engine
(skipped without shared memory), and the ``nitrosketch trace`` /
``nitrosketch profile`` CLIs.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.faults import WorkerCrashPlan
from repro.parallel import (
    ParallelIngestEngine,
    VanillaFactory,
    parallel_unavailable_reason,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry, TelemetryServer
from repro.telemetry.exposition import render_prometheus
from repro.telemetry.history import HistoryStore, sample_key
from repro.telemetry.profile import (
    NULL_PROFILER,
    STAGE_BUCKETS,
    STAGE_METRIC,
    StageProfiler,
    collapsed_stacks,
    histogram_quantile,
    render_stage_table,
    stage_summary,
)
from repro.telemetry.spans import (
    SpanTracer,
    build_trace_tree,
    make_span_id,
    make_trace_id,
    parse_spans_jsonl,
    render_span_tree,
)
from repro.telemetry.tracer import Tracer
from repro.traffic.traces import caida_like

needs_shm = pytest.mark.skipif(
    parallel_unavailable_reason() is not None,
    reason=parallel_unavailable_reason() or "",
)


# -- span ids --------------------------------------------------------------


class TestSpanIds:
    def test_trace_ids_deterministic(self):
        assert make_trace_id("merge", 2, 0, 40_000, 1) == make_trace_id(
            "merge", 2, 0, 40_000, 1
        )

    def test_trace_ids_distinct_per_epoch(self):
        ids = {make_trace_id("merge", 2, 0, 40_000, epoch) for epoch in range(8)}
        assert len(ids) == 8

    def test_span_ids_scoped_to_trace(self):
        trace = make_trace_id("x")
        other = make_trace_id("y")
        assert make_span_id(trace, "epoch") == make_span_id(trace, "epoch")
        assert make_span_id(trace, "epoch") != make_span_id(other, "epoch")
        assert make_span_id(trace, "worker.ingest", 0) != make_span_id(
            trace, "worker.ingest", 1
        )

    def test_id_shape(self):
        token = make_trace_id("anything", 3)
        assert len(token) == 16
        int(token, 16)  # must be hex


# -- SpanTracer ------------------------------------------------------------


class TestSpanTracer:
    def test_start_span_records_on_exit(self):
        tracer = SpanTracer()
        with tracer.start_span("epoch", epoch=3) as active:
            assert active.span_id
            assert len(tracer) == 0  # not recorded until exit
        assert len(tracer) == 1
        span = tracer.spans()[0]
        assert span.name == "epoch"
        assert span.fields == {"epoch": 3}
        assert span.duration >= 0.0
        assert span.start > 0.0

    def test_child_nesting_and_annotate(self):
        tracer = SpanTracer()
        with tracer.start_span("epoch") as epoch:
            with epoch.child("merge") as merge:
                merge.annotate(bytes=128)
        merge_span = tracer.spans(name="merge")[0]
        epoch_span = tracer.spans(name="epoch")[0]
        assert merge_span.parent_id == epoch_span.span_id
        assert merge_span.trace_id == epoch_span.trace_id
        assert merge_span.fields["bytes"] == 128

    def test_exception_recorded_with_error_field(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.start_span("merge"):
                raise RuntimeError("boom")
        span = tracer.spans()[0]
        assert span.fields["error"] == "RuntimeError"

    def test_ring_bound_and_dropped(self):
        tracer = SpanTracer(capacity=4)
        for index in range(10):
            with tracer.start_span("s%d" % index):
                pass
        assert len(tracer) == 4
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        assert [span.name for span in tracer.spans()] == ["s6", "s7", "s8", "s9"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_jsonl_round_trip(self):
        tracer = SpanTracer()
        with tracer.start_span("epoch", epoch=0) as epoch:
            with epoch.child("merge"):
                pass
        parsed = parse_spans_jsonl(tracer.to_jsonl())
        assert [span.as_dict() for span in parsed] == [
            span.as_dict() for span in tracer.spans()
        ]

    def test_record_dicts_imports_foreign_spans(self):
        source = SpanTracer()
        with source.start_span("worker.ingest", worker=1):
            pass
        sink = SpanTracer()
        count = sink.record_dicts(span.as_dict() for span in source.spans())
        assert count == 1
        assert sink.spans()[0].as_dict() == source.spans()[0].as_dict()

    def test_trace_ids_first_seen_order(self):
        tracer = SpanTracer()
        with tracer.start_span("a", trace_id="t1"):
            pass
        with tracer.start_span("b", trace_id="t2"):
            pass
        with tracer.start_span("c", trace_id="t1"):
            pass
        assert tracer.trace_ids() == ["t1", "t2"]


# -- trace assembly and rendering ------------------------------------------


def _span_dict(trace_id, span_id, parent_id, name, start, **fields):
    return {
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start": start,
        "duration": 0.001,
        "fields": fields,
    }


class TestTraceTree:
    def _spans(self, dicts):
        tracer = SpanTracer()
        tracer.record_dicts(dicts)
        return tracer.spans()

    def test_nesting_and_start_order(self):
        spans = self._spans(
            [
                _span_dict("t", "child-b", "root", "b", 2.0),
                _span_dict("t", "root", None, "epoch", 0.0),
                _span_dict("t", "child-a", "root", "a", 1.0),
            ]
        )
        roots = build_trace_tree(spans)
        assert len(roots) == 1
        assert roots[0].span.name == "epoch"
        assert [node.span.name for node in roots[0].children] == ["a", "b"]

    def test_orphan_becomes_root(self):
        spans = self._spans(
            [_span_dict("t", "lonely", "evicted-parent", "merge", 1.0)]
        )
        roots = build_trace_tree(spans)
        assert len(roots) == 1 and roots[0].span.name == "merge"

    def test_duplicate_span_id_keeps_last(self):
        spans = self._spans(
            [
                _span_dict("t", "root", None, "epoch", 0.0),
                _span_dict("t", "w", "root", "worker.ingest", 1.0, packets=10),
                _span_dict("t", "w", "root", "worker.ingest", 2.0, packets=99),
            ]
        )
        roots = build_trace_tree(spans)
        (child,) = roots[0].children
        assert child.span.fields["packets"] == 99

    def test_render_span_tree(self):
        spans = self._spans(
            [
                _span_dict("deadbeef", "root", None, "epoch", 0.0, epoch=0),
                _span_dict(
                    "deadbeef", "w0", "root", "worker.ingest", 1.0,
                    worker=0, packets=123,
                ),
            ]
        )
        text = render_span_tree(spans)
        assert text.startswith("trace deadbeef\n")
        assert "epoch" in text and "worker.ingest" in text
        assert "packets=123" in text and "worker=0" in text

    def test_render_empty(self):
        assert render_span_tree([]) == ""


# -- Telemetry integration --------------------------------------------------


class TestTelemetrySpans:
    def test_start_span_lands_in_spans_ring(self):
        telemetry = Telemetry()
        with telemetry.start_span("epoch", trace_id="t", epoch=1):
            pass
        assert len(telemetry.spans) == 1
        assert telemetry.spans.spans()[0].trace_id == "t"

    def test_null_telemetry_spans_are_noops(self):
        with NULL_TELEMETRY.start_span("epoch") as span:
            span.annotate(anything=1)
            with span.child("merge"):
                pass
        assert span.span_id == ""

    def test_tracer_dropped_events_metric(self):
        telemetry = Telemetry(tracer=Tracer(capacity=2))
        for index in range(5):
            telemetry.event("tick", index=index)
        family = telemetry.registry.get("tracer_dropped_events_total")
        assert family is not None
        assert family.labels().value == 3

    def test_no_dropped_metric_without_evictions(self):
        telemetry = Telemetry()
        telemetry.event("tick")
        assert telemetry.registry.get("tracer_dropped_events_total") is None

    def test_event_wall_clock_in_jsonl(self):
        telemetry = Telemetry()
        telemetry.event("tick")
        record = json.loads(telemetry.tracer.to_jsonl().splitlines()[0])
        assert "wall" in record and record["wall"] > 0


# -- StageProfiler ----------------------------------------------------------


class TestStageProfiler:
    def test_sampling_cadence(self):
        profiler = StageProfiler(Telemetry(), sample_every=4)
        pattern = [profiler.tick() for _ in range(9)]
        assert pattern == [True, False, False, False, True, False, False, False, True]
        assert profiler.batches_seen == 9
        assert profiler.batches_profiled == 3

    def test_stage_timer_only_when_sampled(self):
        telemetry = Telemetry()
        profiler = StageProfiler(telemetry, sample_every=2)
        profiler.tick()  # batch 0: sampled
        with profiler.stage("row_hash"):
            pass
        profiler.tick()  # batch 1: not sampled
        with profiler.stage("row_hash"):
            pass
        summary = stage_summary(telemetry.registry)
        assert summary["row_hash"]["count"] == 1

    def test_observe_bypasses_sampling(self):
        telemetry = Telemetry()
        profiler = StageProfiler(telemetry, sample_every=1000)
        profiler.observe("merge", 0.5)
        assert stage_summary(telemetry.registry)["merge"]["count"] == 1

    def test_component_label(self):
        telemetry = Telemetry()
        profiler = StageProfiler(telemetry, sample_every=1, component="daemon")
        profiler.tick()
        with profiler.stage("checkpoint"):
            pass
        assert "daemon/checkpoint" in stage_summary(telemetry.registry)

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            StageProfiler(Telemetry(), sample_every=0)

    def test_null_profiler_is_inert(self):
        assert NULL_PROFILER.tick() is False
        assert NULL_PROFILER.active is False
        with NULL_PROFILER.stage("row_hash"):
            pass
        NULL_PROFILER.observe("merge", 1.0)  # must not raise


# -- quantiles, tables, flamegraph text -------------------------------------


def _stage_child(telemetry, stage):
    family = telemetry.registry.get(STAGE_METRIC)
    for values, child in family.children():
        if family.label_dict(values).get("stage") == stage:
            return child
    raise AssertionError("stage %r not recorded" % stage)


class TestQuantiles:
    def test_quantile_within_winning_bucket(self):
        telemetry = Telemetry()
        profiler = StageProfiler(telemetry, sample_every=1)
        for _ in range(100):
            profiler.observe("row_hash", 0.001)
        child = _stage_child(telemetry, "row_hash")
        for q in (0.5, 0.95, 0.99):
            estimate = histogram_quantile(child, q)
            assert 2.0**-11 < estimate <= 2.0**-9

    def test_quantile_separates_modes(self):
        telemetry = Telemetry()
        profiler = StageProfiler(telemetry, sample_every=1)
        for _ in range(90):
            profiler.observe("scatter", 1e-5)
        for _ in range(10):
            profiler.observe("scatter", 0.1)
        child = _stage_child(telemetry, "scatter")
        assert histogram_quantile(child, 0.5) < 1e-4
        assert histogram_quantile(child, 0.99) > 0.01

    def test_empty_histogram_is_nan(self):
        telemetry = Telemetry()
        telemetry.observe(STAGE_METRIC, 1.0, buckets=STAGE_BUCKETS, stage="merge")
        child = _stage_child(telemetry, "merge")
        child.counts[:] = [0] * len(child.counts)
        child.count = 0
        assert histogram_quantile(child, 0.5) != histogram_quantile(child, 0.5)

    def test_quantile_range_validated(self):
        telemetry = Telemetry()
        profiler = StageProfiler(telemetry, sample_every=1)
        profiler.observe("merge", 0.1)
        with pytest.raises(ValueError):
            histogram_quantile(_stage_child(telemetry, "merge"), 1.5)


class TestCollapsedStacks:
    def _registry(self):
        telemetry = Telemetry()
        profiler = StageProfiler(telemetry, sample_every=1)
        profiler.observe("row_hash", 0.002)
        profiler.observe("scatter", 0.005)
        return telemetry.registry

    def test_format(self):
        lines = collapsed_stacks(self._registry()).splitlines()
        assert lines == ["nitrosketch;row_hash 2000", "nitrosketch;scatter 5000"]

    def test_zero_weight_stages_omitted(self):
        telemetry = Telemetry()
        profiler = StageProfiler(telemetry, sample_every=1)
        profiler.observe("query", 0.0)
        assert collapsed_stacks(telemetry.registry) == ""

    def test_stage_table(self):
        text = render_stage_table(self._registry())
        assert "stage" in text and "p99" in text
        assert "scatter" in text and "row_hash" in text
        # Sorted by total descending: scatter (5ms) before row_hash (2ms).
        assert text.index("scatter") < text.index("row_hash")

    def test_stage_table_empty(self):
        assert "no stage samples" in render_stage_table(Telemetry().registry)


# -- HistoryStore -----------------------------------------------------------


def _counter_snapshot(value, metric="ingest_total", labels=None):
    return {
        "metrics": {
            metric: {
                "type": "counter",
                "samples": [{"labels": labels or {}, "value": value}],
            }
        }
    }


class TestHistoryStore:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            HistoryStore(capacity=3)

    def test_downsampling_schedule(self):
        store = HistoryStore(capacity=4)
        for index in range(10):
            store.record(_counter_snapshot(float(index)), timestamp=float(index))
        assert len(store) == 3
        assert store.stride == 8
        assert store.compactions == 3
        assert store.record_calls == 10
        assert [stamp for stamp, _ in store.series("ingest_total")] == [0.0, 4.0, 8.0]

    def test_newest_sample_survives_compaction(self):
        store = HistoryStore(capacity=4)
        for index in range(20):
            store.record(_counter_snapshot(float(index)), timestamp=float(index))
        series = store.series("ingest_total")
        assert series[-1] == (16.0, 16.0)  # last admitted record (stride 8)

    def test_series_with_labels(self):
        store = HistoryStore(capacity=8)
        store.record(
            _counter_snapshot(7.0, labels={"worker": "1"}), timestamp=1.0
        )
        assert store.series("ingest_total", worker=1) == [(1.0, 7.0)]
        assert store.series("ingest_total") == []  # label-less key absent

    def test_histogram_flattening(self):
        telemetry = Telemetry()
        telemetry.observe("latency_seconds", 0.25)
        telemetry.observe("latency_seconds", 0.75)
        store = HistoryStore(capacity=8)
        store.record(telemetry.snapshot(), timestamp=5.0)
        assert store.series("latency_seconds_count") == [(5.0, 2.0)]
        assert store.series("latency_seconds_sum") == [(5.0, 1.0)]

    def test_as_dict_metric_filter(self):
        store = HistoryStore(capacity=8)
        snapshot = _counter_snapshot(1.0)
        snapshot["metrics"]["other_total"] = {
            "type": "gauge",
            "samples": [{"labels": {}, "value": 2.0}],
        }
        store.record(snapshot, timestamp=0.0)
        full = store.as_dict()
        assert set(full["samples"][0]["values"]) == {"ingest_total", "other_total"}
        filtered = store.as_dict(metric="ingest_total")
        assert set(filtered["samples"][0]["values"]) == {"ingest_total"}
        assert filtered["capacity"] == 8 and filtered["stride"] == 1

    def test_keys_and_clear(self):
        store = HistoryStore(capacity=8)
        store.record(_counter_snapshot(1.0), timestamp=0.0)
        assert store.keys() == ["ingest_total"]
        store.clear()
        assert len(store) == 0 and store.stride == 1 and store.record_calls == 0

    def test_sample_key_formatting(self):
        assert sample_key("x_total", {}) == "x_total"
        assert (
            sample_key("x_total", {"worker": "1", "core": "0"})
            == "x_total{core=0,worker=1}"
        )


# -- Prometheus text-format conformance -------------------------------------


class TestPrometheusConformance:
    def test_histogram_cumulative_form(self):
        telemetry = Telemetry()
        profiler = StageProfiler(telemetry, sample_every=1)
        for value in (1e-6, 1e-4, 1e-2):
            profiler.observe("merge", value)
        text = render_prometheus(telemetry.registry)
        assert '# TYPE %s histogram' % STAGE_METRIC in text
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("%s_bucket" % STAGE_METRIC)
        ]
        assert bucket_counts == sorted(bucket_counts)  # cumulative
        inf_lines = [
            line
            for line in text.splitlines()
            if line.startswith("%s_bucket" % STAGE_METRIC) and 'le="+Inf"' in line
        ]
        assert len(inf_lines) == 1 and inf_lines[0].endswith(" 3")
        assert "%s_count" % STAGE_METRIC in text
        assert "%s_sum" % STAGE_METRIC in text

    def test_help_escaping(self):
        telemetry = Telemetry()
        family = telemetry.registry.counter(
            "weird_total", "line one\nline two has a \\ backslash", ()
        )
        family.labels().inc()
        text = render_prometheus(telemetry.registry)
        help_lines = [
            line for line in text.splitlines() if line.startswith("# HELP weird_total")
        ]
        assert help_lines == [
            "# HELP weird_total line one\\nline two has a \\\\ backslash"
        ]


# -- HTTP routes ------------------------------------------------------------


class TestServerRoutes:
    def test_spans_route(self):
        telemetry = Telemetry()
        with telemetry.start_span("epoch", trace_id="t", epoch=0):
            pass
        with TelemetryServer(telemetry, port=0).start() as server:
            base = "http://127.0.0.1:%d" % server.port
            body = urllib.request.urlopen(base + "/spans").read().decode()
        spans = parse_spans_jsonl(body)
        assert len(spans) == 1 and spans[0].trace_id == "t"

    def test_history_route_with_filter(self):
        telemetry = Telemetry()
        history = HistoryStore(capacity=8)
        snapshot = _counter_snapshot(3.0)
        snapshot["metrics"]["noise_total"] = {
            "type": "counter",
            "samples": [{"labels": {}, "value": 9.0}],
        }
        history.record(snapshot, timestamp=1.0)
        with TelemetryServer(telemetry, port=0, history=history).start() as server:
            base = "http://127.0.0.1:%d" % server.port
            full = json.loads(urllib.request.urlopen(base + "/history").read())
            filtered = json.loads(
                urllib.request.urlopen(base + "/history?metric=ingest_total").read()
            )
        assert set(full["samples"][0]["values"]) == {"ingest_total", "noise_total"}
        assert set(filtered["samples"][0]["values"]) == {"ingest_total"}

    def test_history_route_404_without_store(self):
        with TelemetryServer(Telemetry(), port=0).start() as server:
            base = "http://127.0.0.1:%d" % server.port
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(base + "/history")
            assert excinfo.value.code == 404


# -- cross-process span propagation -----------------------------------------


def _engine(telemetry, crash_plan=None):
    return ParallelIngestEngine(
        VanillaFactory(sketch="countmin", depth=4, width=512, seed=3),
        workers=2,
        strategy="merge",
        epoch_packets=5_000,
        batch_size=1024,
        telemetry=telemetry,
        crash_plan=crash_plan,
    )


@pytest.fixture(scope="module")
def trace():
    return caida_like(10_000, n_flows=500, seed=21)


@needs_shm
class TestCrossProcessPropagation:
    def test_one_trace_per_epoch_with_worker_spans(self, trace):
        telemetry = Telemetry()
        engine = _engine(telemetry)
        result = engine.run(trace.keys)
        assert result.epochs == 2
        parts = engine._trace_parts(len(trace.keys))
        for epoch in range(result.epochs):
            trace_id = make_trace_id(*parts, epoch)
            spans = telemetry.spans.spans(trace_id=trace_id)
            names = {span.name for span in spans}
            assert {"epoch", "worker.ingest", "frame.crc", "merge"} <= names
            epoch_span_id = make_span_id(trace_id, "epoch")
            ingest = [span for span in spans if span.name == "worker.ingest"]
            assert len(ingest) == 2
            assert {span.parent_id for span in ingest} == {epoch_span_id}
            assert {span.fields["worker"] for span in ingest} == {0, 1}
            for span in ingest:
                assert span.fields["epoch"] == epoch
                assert span.fields["packets"] > 0
                assert "shard" in span.fields
        # Epoch 0's publish spans ride in frame 1, so they land in trace 0.
        publish = telemetry.spans.spans(
            trace_id=make_trace_id(*parts, 0), name="mailbox.publish"
        )
        assert len(publish) == 2
        ingest_ids = {
            make_span_id(make_trace_id(*parts, 0), "worker.ingest", worker)
            for worker in range(2)
        }
        assert {span.parent_id for span in publish} == ingest_ids

    def test_sequential_oracle_same_ids(self, trace):
        live, oracle = Telemetry(), Telemetry()
        _engine(live).run(trace.keys)
        _engine(oracle).run_sequential(trace.keys)
        assert live.spans.trace_ids() == oracle.spans.trace_ids()

        def ingest_ids(telemetry):
            return {
                (span.trace_id, span.span_id)
                for span in telemetry.spans.spans(name="worker.ingest")
            }

        assert ingest_ids(live) == ingest_ids(oracle)

    def test_crash_recovery_keeps_span_ids(self, trace):
        clean, crashed = Telemetry(), Telemetry()
        _engine(clean).run(trace.keys)
        result = _engine(
            crashed, crash_plan=WorkerCrashPlan(worker=1, epoch=1, fraction=0.5)
        ).run(trace.keys)
        assert result.restarts == 1
        assert set(crashed.spans.trace_ids()) == set(clean.spans.trace_ids())
        for trace_id in clean.spans.trace_ids():
            clean_ids = {
                span.span_id
                for span in clean.spans.spans(trace_id=trace_id, name="worker.ingest")
            }
            crashed_ids = {
                span.span_id
                for span in crashed.spans.spans(trace_id=trace_id, name="worker.ingest")
            }
            assert crashed_ids == clean_ids
            # Duplicate re-published spans collapse in the assembled tree.
            roots = build_trace_tree(crashed.spans.spans(trace_id=trace_id))
            assert len(roots) == 1
            ingest_children = [
                node for node in roots[0].children if node.span.name == "worker.ingest"
            ]
            assert len(ingest_children) == 2


# -- CLI -------------------------------------------------------------------


class TestTraceCLI:
    def test_sequential_trace_tree(self, capsys, tmp_path):
        out = str(tmp_path / "spans.jsonl")
        rc = cli_main(
            [
                "trace", "--sequential", "--packets", "8000", "--epochs", "2",
                "--width", "512", "--out", out,
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "trace " in captured.out
        assert "worker.ingest" in captured.out and "merge" in captured.out
        with open(out) as handle:
            spans = parse_spans_jsonl(handle.read())
        assert {span.name for span in spans} >= {"epoch", "worker.ingest", "merge"}

    @needs_shm
    def test_parallel_trace(self, capsys):
        rc = cli_main(["trace", "--packets", "8000", "--width", "512"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "frame.crc" in captured.out


class TestProfileCLI:
    def test_profile_table_and_stacks(self, capsys):
        rc = cli_main(["profile", "--packets", "40000", "--sample-every", "1"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "p99" in captured.out
        assert "nitrosketch;" in captured.out

    def test_collapsed_out_file(self, capsys, tmp_path):
        out = str(tmp_path / "stacks.txt")
        rc = cli_main(
            [
                "profile", "--packets", "40000", "--sample-every", "1",
                "--collapsed-out", out,
            ]
        )
        assert rc == 0
        with open(out) as handle:
            lines = handle.read().splitlines()
        assert lines and all(";" in line and line.split(" ")[1].isdigit() for line in lines)

    def test_rejects_bad_sample_every(self, capsys):
        assert cli_main(["profile", "--sample-every", "0"]) == 2
