"""Tests for the pcap reader/writer and the command-line interface."""

import collections
import os
import struct

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.traffic import (
    PcapFormatError,
    caida_like,
    ddos_like,
    parse_five_tuple,
    read_pcap,
    write_pcap,
)
from repro.traffic.pcap import MAGIC_MICROS, iter_pcap_packets


class TestPcapRoundtrip:
    def test_partition_preserved(self, tmp_path):
        trace = caida_like(2000, n_flows=300, seed=1)
        path = str(tmp_path / "t.pcap")
        write_pcap(trace, path)
        loaded = read_pcap(path)
        assert len(loaded) == len(trace)
        assert loaded.flow_count() == trace.flow_count()
        assert np.array_equal(loaded.sizes, trace.sizes)
        original = collections.Counter(trace.keys.tolist())
        reloaded = collections.Counter(loaded.keys.tolist())
        assert sorted(original.values()) == sorted(reloaded.values())

    def test_timestamps_preserved_to_microseconds(self, tmp_path):
        trace = caida_like(500, seed=2)
        path = str(tmp_path / "t.pcap")
        write_pcap(trace, path)
        loaded = read_pcap(path)
        assert np.allclose(loaded.timestamps, trace.timestamps, atol=2e-6)

    def test_sources_column_present(self, tmp_path):
        # write_pcap packs a flow key's top 32 bits as the source address;
        # the synthetic generators use 32-bit keys, so sources read back
        # as 0 -- the column must still exist and align.
        trace = ddos_like(500, seed=3)
        path = str(tmp_path / "t.pcap")
        write_pcap(trace, path)
        loaded = read_pcap(path)
        assert loaded.src_addresses is not None
        assert len(loaded.src_addresses) == len(loaded)

    def test_sources_extracted_from_wide_keys(self, tmp_path):
        from repro.traffic.traces import Trace

        keys = (np.arange(1, 6, dtype=np.int64) << 32) | 7
        trace = Trace(
            name="wide",
            keys=np.repeat(keys, 3),
            sizes=np.full(15, 128, dtype=np.int32),
            timestamps=np.linspace(0, 1, 15),
        )
        path = str(tmp_path / "wide.pcap")
        write_pcap(trace, path)
        loaded = read_pcap(path)
        assert set(loaded.src_addresses.tolist()) == {1, 2, 3, 4, 5}

    def test_empty_trace(self, tmp_path):
        trace = caida_like(0, seed=4)
        path = str(tmp_path / "empty.pcap")
        write_pcap(trace, path)
        loaded = read_pcap(path)
        assert len(loaded) == 0


class TestPcapParsing:
    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bad.pcap")
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 24)
        with pytest.raises(PcapFormatError):
            list(iter_pcap_packets(path))

    def test_truncated_header_rejected(self, tmp_path):
        path = str(tmp_path / "short.pcap")
        with open(path, "wb") as handle:
            handle.write(struct.pack("<I", MAGIC_MICROS))
        with pytest.raises(PcapFormatError):
            list(iter_pcap_packets(path))

    def test_truncated_record_rejected(self, tmp_path):
        path = str(tmp_path / "trunc.pcap")
        with open(path, "wb") as handle:
            handle.write(struct.pack("<IHHiIII", MAGIC_MICROS, 2, 4, 0, 0, 65535, 1))
            handle.write(struct.pack("<IIII", 0, 0, 100, 100))
            handle.write(b"\x00" * 10)  # promises 100 bytes, delivers 10
        with pytest.raises(PcapFormatError):
            list(iter_pcap_packets(path))

    def test_non_ipv4_frame_returns_none(self):
        frame = b"\x00" * 12 + struct.pack("!H", 0x86DD) + b"\x00" * 40  # IPv6
        assert parse_five_tuple(frame) is None

    def test_short_frame_returns_none(self):
        assert parse_five_tuple(b"\x00" * 10) is None

    def test_udp_five_tuple(self):
        frame = b"".join(
            (
                b"\x00" * 12,
                struct.pack("!H", 0x0800),
                struct.pack(
                    "!BBHHHBBHII", 0x45, 0, 28, 0, 0, 64, 17, 0, 0x0A000001, 0x0A000002
                ),
                struct.pack("!HHHH", 1234, 80, 8, 0),
            )
        )
        tup = parse_five_tuple(frame)
        assert tup is not None
        assert tup.src_ip == 0x0A000001
        assert tup.dst_ip == 0x0A000002
        assert tup.src_port == 1234
        assert tup.dst_port == 80
        assert tup.protocol == 17


class TestCLI:
    def test_generate_and_monitor_npz(self, tmp_path, capsys):
        out = str(tmp_path / "trace.npz")
        assert cli_main(["generate", "caida", "--packets", "20000", "--out", out]) == 0
        assert os.path.exists(out)
        assert (
            cli_main(
                ["monitor", out, "--sketch", "cs", "--probability", "0.1", "--show", "2"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "heavy hitters" in output

    def test_generate_pcap_and_monitor(self, tmp_path, capsys):
        out = str(tmp_path / "trace.pcap")
        assert cli_main(["generate", "ddos", "--packets", "3000", "--out", out]) == 0
        assert cli_main(["monitor", out, "--vanilla", "--sketch", "cm"]) == 0
        assert "heavy hitters" in capsys.readouterr().out

    def test_simulate(self, tmp_path, capsys):
        out = str(tmp_path / "trace.npz")
        cli_main(["generate", "min64", "--packets", "5000", "--out", out])
        assert (
            cli_main(
                ["simulate", out, "--platform", "vpp", "--integration", "separate"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "achieved_mpps" in output

    def test_experiment(self, capsys):
        assert cli_main(["experiment", "fig2", "--scale", "0.005"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["experiment", "fig99"])

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["generate", "nonsense", "--out", "x.npz"])
