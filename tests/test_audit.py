"""Tests for live accuracy auditing (audit, health, dashboard).

Covers the shadow reservoir's statistical contract (exact counts,
capacity bound, unbiased flow estimate, batch/scalar equivalence), the
GuaranteeMonitor's Theorem 1/2 bound tracking (including the corrupted-
sketch violation path and drift alerting), the health rule engine and
its ``/health`` HTTP route, the daemon/control-plane wiring, and the
``nitrosketch top`` dashboard renderer.
"""

import io
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.analysis.theory import l1_error_bound, l2_error_bound
from repro.control import ControlPlane, HeavyHitterTask
from repro.core import NitroSketch, nitro_countmin
from repro.metrics.opcount import OpCounter
from repro.sketches import CountMinSketch, CountSketch
from repro.switchsim import MeasurementDaemon, SwitchSimulator, VPPPipeline
from repro.telemetry import Telemetry, TelemetryServer
from repro.telemetry.audit import AuditReport, GuaranteeMonitor, ShadowAuditor
from repro.telemetry.dashboard import SnapshotSource, TopLoop, render_dashboard
from repro.telemetry.health import (
    ConvergenceRule,
    ErrorSLORule,
    GuaranteeRule,
    HealthEvaluator,
    ProbabilityFloorRule,
    QueueDepthRule,
    default_rules,
    sample_value,
)
from repro.traffic import caida_like
from repro.traffic.replay import Batch


def _make_batch(keys) -> Batch:
    keys = np.asarray(keys, dtype=np.int64)
    return Batch(
        keys=keys,
        sizes=np.full(len(keys), 64, dtype=np.int64),
        timestamps=np.arange(len(keys), dtype=np.float64) * 1e-6,
    )


# -- ShadowAuditor: reservoir statistics ------------------------------------


class TestShadowAuditor:
    def test_tracked_counts_are_exact(self):
        trace = caida_like(20_000, n_flows=2_000, seed=3)
        auditor = ShadowAuditor(capacity=128, seed=1)
        auditor.observe_batch(trace.keys)
        counts = trace.counts()
        assert auditor.tracked_flows > 0
        for key, tracked in auditor.truth.items():
            assert tracked == counts[key]

    def test_capacity_bound_holds(self):
        auditor = ShadowAuditor(capacity=64, seed=0)
        auditor.observe_batch(np.arange(50_000, dtype=np.int64))
        assert auditor.tracked_flows <= 64
        assert auditor.sample_rate < 1.0

    def test_total_weight_is_exact_l1(self):
        auditor = ShadowAuditor(capacity=16, seed=0)
        auditor.observe_batch(np.arange(1_000, dtype=np.int64))
        auditor.observe(5, weight=2.5)
        assert auditor.total_weight == pytest.approx(1_002.5)
        assert auditor.packets_observed == 1_001

    def test_flow_count_estimate_is_unbiased(self):
        n_flows = 10_000
        estimates = []
        for seed in range(5):
            auditor = ShadowAuditor(capacity=256, seed=seed)
            auditor.observe_batch(np.arange(n_flows, dtype=np.int64))
            estimates.append(auditor.estimated_flow_count())
        mean = sum(estimates) / len(estimates)
        assert n_flows / 2 < mean < n_flows * 2

    def test_scalar_and_batch_ingest_agree(self):
        trace = caida_like(3_000, n_flows=400, seed=9)
        batch_auditor = ShadowAuditor(capacity=64, seed=4)
        batch_auditor.observe_batch(trace.keys)
        scalar_auditor = ShadowAuditor(capacity=64, seed=4)
        for key in trace.keys.tolist():
            scalar_auditor.observe(key)
        assert scalar_auditor.truth == batch_auditor.truth
        assert scalar_auditor.sample_rate == batch_auditor.sample_rate

    def test_weighted_batches(self):
        auditor = ShadowAuditor(capacity=16, seed=0)
        keys = np.array([1, 2, 1, 3], dtype=np.int64)
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        auditor.observe_batch(keys, weights)
        assert auditor.total_weight == pytest.approx(10.0)
        assert auditor.truth[1] == pytest.approx(4.0)

    def test_reset_restores_track_everything(self):
        auditor = ShadowAuditor(capacity=8, seed=0)
        auditor.observe_batch(np.arange(1_000, dtype=np.int64))
        assert auditor.sample_rate < 1.0
        auditor.reset()
        assert auditor.sample_rate == 1.0
        assert auditor.tracked_flows == 0
        assert auditor.total_weight == 0.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ShadowAuditor(capacity=0)

    def test_audit_reports_exact_match_as_zero_error(self):
        class PerfectMonitor:
            def __init__(self, truth):
                self.truth = truth

            def query(self, key):
                return self.truth.get(key, 0.0)

        auditor = ShadowAuditor(capacity=64, seed=2)
        auditor.observe_batch(caida_like(5_000, n_flows=500, seed=2).keys)
        report = auditor.audit(PerfectMonitor(dict(auditor.truth)))
        assert isinstance(report, AuditReport)
        assert report.mean_relative_error == 0.0
        assert report.max_absolute_error == 0.0

    def test_audit_does_not_perturb_op_accounting(self):
        trace = caida_like(5_000, n_flows=500, seed=5)
        monitor = nitro_countmin(probability=0.1, seed=5)
        before = OpCounter()
        monitor.ops = before
        monitor.update_batch(trace.keys)
        tally_before = dict(before.as_dict())
        auditor = ShadowAuditor(capacity=64, seed=5)
        auditor.observe_batch(trace.keys)
        auditor.audit(monitor)
        assert monitor.ops is before
        assert dict(before.as_dict()) == tally_before

    def test_audit_exports_gauges(self):
        telemetry = Telemetry()
        auditor = ShadowAuditor(capacity=64, seed=1, telemetry=telemetry)
        auditor.observe_batch(caida_like(5_000, n_flows=500, seed=1).keys)
        sketch = CountMinSketch(4, 2048, seed=1)
        sketch.update_batch(caida_like(5_000, n_flows=500, seed=1).keys)
        auditor.audit(sketch)
        snap = telemetry.snapshot()
        for family in (
            "audit_rounds_total",
            "audit_tracked_flows",
            "audit_total_weight",
            "audit_sample_rate",
            "audit_relative_error",
            "audit_absolute_error",
        ):
            assert family in snap["metrics"], family
        mean = sample_value(
            snap, "audit_relative_error", {"component": "audit", "stat": "mean"}
        )
        assert mean is not None and mean >= 0.0


# -- GuaranteeMonitor: Theorem 1/2 bound tracking ---------------------------


class TestGuaranteeMonitor:
    def test_guarantee_auto_detection(self):
        cm = NitroSketch(CountMinSketch(4, 2048, seed=0), probability=0.5)
        cs = NitroSketch(CountSketch(4, 2048, seed=0), probability=0.5)
        assert GuaranteeMonitor(ShadowAuditor(), cm, epsilon=0.1).guarantee == "l1"
        assert GuaranteeMonitor(ShadowAuditor(), cs, epsilon=0.1).guarantee == "l2"

    def test_l1_bound_matches_theory_helper(self):
        monitor = NitroSketch(CountMinSketch(4, 2048, seed=0), probability=0.5)
        guard = GuaranteeMonitor(ShadowAuditor(), monitor, epsilon=0.2)
        guard.observe_batch(np.arange(500, dtype=np.int64))
        assert guard.bound() == pytest.approx(l1_error_bound(0.2, 500.0))

    def test_l2_bound_uses_sketch_estimate(self):
        monitor = NitroSketch(CountSketch(5, 4096, seed=0), probability=1.0)
        guard = GuaranteeMonitor(ShadowAuditor(seed=3), monitor, epsilon=0.2)
        keys = caida_like(5_000, n_flows=500, seed=3).keys
        monitor.update_batch(keys)
        guard.observe_batch(keys)
        expected = l2_error_bound(0.2, monitor.sketch.l2_squared_estimate())
        assert guard.bound() == pytest.approx(expected)

    def test_requires_epsilon(self):
        with pytest.raises(ValueError):
            GuaranteeMonitor(ShadowAuditor(), CountMinSketch(4, 64, seed=0))

    def test_auto_check_interval(self):
        monitor = NitroSketch(CountMinSketch(4, 2048, seed=0), probability=0.5)
        guard = GuaranteeMonitor(
            ShadowAuditor(seed=1),
            monitor,
            epsilon=0.2,
            check_interval_packets=1_000,
        )
        keys = caida_like(3_500, n_flows=300, seed=1).keys
        monitor.update_batch(keys)
        guard.observe_batch(keys)
        assert guard.checks == 1  # 3500 >= 1000 -> one check, counter reset

    def test_drift_alert_fires_once_on_rising_ratio(self):
        telemetry = Telemetry()
        auditor = ShadowAuditor(seed=0, telemetry=telemetry)

        class FixedMonitor:
            """Truth-independent estimator whose error we control."""

            def __init__(self):
                self.offset = 0.0

            def query(self, key):
                return self.offset

        monitor = FixedMonitor()
        guard = GuaranteeMonitor(
            auditor,
            monitor,
            epsilon=0.5,
            guarantee="l1",
            drift_ratio=0.01,
            drift_window=3,
        )
        guard.observe(7, weight=100.0)  # bound = 50, truth[7] = 100
        for offset in (104.0, 108.0, 112.0, 116.0):
            monitor.offset = offset  # error = offset - 100, rising
            guard.check()
        drift = telemetry.tracer.events("audit.drift")
        assert len(drift) == 1

    def test_reset_clears_state(self):
        monitor = NitroSketch(CountMinSketch(4, 2048, seed=0), probability=0.5)
        guard = GuaranteeMonitor(ShadowAuditor(seed=0), monitor, epsilon=0.2)
        guard.observe_batch(np.arange(100, dtype=np.int64))
        guard.check()
        guard.reset()
        assert guard.checks == 0
        assert guard.violations == 0
        assert guard.auditor.total_weight == 0.0


# -- Seeded property test: bound holds on clean runs, breaks when corrupted -


class TestGuaranteeProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_l1_bound_holds_then_corruption_trips_alert(self, seed):
        epsilon = 0.1
        trace = caida_like(20_000, n_flows=2_000, seed=seed)
        telemetry = Telemetry()
        monitor = NitroSketch(
            CountMinSketch(5, 2048, seed=seed), probability=0.1, top_k=50
        )
        auditor = ShadowAuditor(capacity=128, seed=seed, telemetry=telemetry)
        guard = GuaranteeMonitor(auditor, monitor, epsilon=epsilon)
        monitor.update_batch(trace.keys)
        guard.observe_batch(trace.keys)

        clean = guard.check()
        assert not clean.violated
        assert clean.observed_max_error <= clean.bound
        assert not telemetry.tracer.events("audit.violation")

        # Corrupt: Count-Min takes the per-row minimum, so a uniform
        # offset shifts every estimate by exactly that offset.
        monitor.sketch.counters += 10.0 * clean.bound
        broken = guard.check()
        assert broken.violated
        assert guard.violations == 1
        events = telemetry.tracer.events("audit.violation")
        assert len(events) == 1
        assert events[0].fields["guarantee"] == "l1"

    @pytest.mark.parametrize("seed", [0, 1])
    def test_l2_bound_holds_then_corruption_trips_alert(self, seed):
        epsilon = 0.1
        trace = caida_like(20_000, n_flows=2_000, seed=seed)
        telemetry = Telemetry()
        monitor = NitroSketch(
            CountSketch(5, 8192, seed=seed), probability=0.1, top_k=50
        )
        auditor = ShadowAuditor(capacity=128, seed=seed, telemetry=telemetry)
        guard = GuaranteeMonitor(auditor, monitor, epsilon=epsilon)
        monitor.update_batch(trace.keys)
        guard.observe_batch(trace.keys)

        clean = guard.check()
        assert not clean.violated
        assert clean.observed_max_error <= clean.bound
        assert not telemetry.tracer.events("audit.violation")

        # Corrupt: wiping the counters deflates the eps*L2 bound (it is
        # read from the same counters) to zero while every estimate's
        # error becomes the flow's exact truth.
        monitor.sketch.counters[:] = 0.0
        broken = guard.check()
        assert broken.violated
        assert broken.ratio == float("inf")
        assert telemetry.tracer.events("audit.violation")


# -- Health rules -----------------------------------------------------------


def _snap_with(telemetry) -> dict:
    return telemetry.snapshot()


class TestHealthRules:
    def test_error_slo_rule(self):
        telemetry = Telemetry()
        rule = ErrorSLORule(slo=0.05)
        assert rule.evaluate(_snap_with(telemetry)).status == "ok"  # no data
        telemetry.gauge("audit_relative_error", 0.01, component="audit", stat="mean")
        assert rule.evaluate(_snap_with(telemetry)).status == "ok"
        telemetry.gauge("audit_relative_error", 0.2, component="audit", stat="mean")
        assert rule.evaluate(_snap_with(telemetry)).status == "fail"

    def test_guarantee_rule(self):
        telemetry = Telemetry()
        rule = GuaranteeRule(warn_ratio=0.8)
        assert rule.evaluate(_snap_with(telemetry)).status == "ok"
        telemetry.gauge("audit_guarantee_violations", 0, component="audit")
        telemetry.gauge("audit_bound_ratio", 0.9, component="audit")
        assert rule.evaluate(_snap_with(telemetry)).status == "warn"
        telemetry.gauge("audit_bound_ratio", 0.2, component="audit")
        assert rule.evaluate(_snap_with(telemetry)).status == "ok"
        telemetry.gauge("audit_guarantee_violations", 2, component="audit")
        assert rule.evaluate(_snap_with(telemetry)).status == "fail"

    def test_probability_floor_rule(self):
        telemetry = Telemetry()
        rule = ProbabilityFloorRule(floor=0.01)
        assert rule.evaluate(_snap_with(telemetry)).status == "ok"
        telemetry.gauge("nitro_sampling_probability", 0.5)
        assert rule.evaluate(_snap_with(telemetry)).status == "ok"
        telemetry.gauge("nitro_sampling_probability", 0.01)
        assert rule.evaluate(_snap_with(telemetry)).status == "warn"

    def test_convergence_rule(self):
        telemetry = Telemetry()
        rule = ConvergenceRule(stall_checks=10)
        assert rule.evaluate(_snap_with(telemetry)).status == "ok"
        telemetry.count("nitro_convergence_checks_total", 50)
        assert rule.evaluate(_snap_with(telemetry)).status == "warn"
        telemetry.count("nitro_convergence_total")
        assert rule.evaluate(_snap_with(telemetry)).status == "ok"

    def test_queue_depth_rule(self):
        telemetry = Telemetry()
        rule = QueueDepthRule(warn_depth=4, fail_depth=8)
        assert rule.evaluate(_snap_with(telemetry)).status == "ok"
        telemetry.gauge("daemon_queue_depth", 5, daemon="d")
        assert rule.evaluate(_snap_with(telemetry)).status == "warn"
        telemetry.gauge("daemon_queue_depth", 9, daemon="d")
        assert rule.evaluate(_snap_with(telemetry)).status == "fail"

    def test_sample_value_parses_non_finite_strings(self):
        snap = {
            "metrics": {
                "m": {"samples": [{"labels": {}, "value": "+Inf"}]},
            }
        }
        assert sample_value(snap, "m") == float("inf")

    def test_evaluator_aggregates_and_exports(self):
        telemetry = Telemetry()
        telemetry.gauge("audit_relative_error", 0.9, component="audit", stat="mean")
        evaluator = HealthEvaluator(telemetry, default_rules(error_slo=0.05))
        report = evaluator.evaluate()
        assert report.status == "fail"
        assert any(r.name == "error_slo" and r.status == "fail" for r in report.results)
        snap = telemetry.snapshot()
        assert sample_value(snap, "health_status", {"rule": "overall"}) == 2.0
        assert sample_value(snap, "health_status", {"rule": "error_slo"}) == 2.0
        transitions = telemetry.tracer.events("health.transition")
        assert len(transitions) == 1
        # Second evaluation with the same verdict: no new transition.
        evaluator.evaluate()
        assert len(telemetry.tracer.events("health.transition")) == 1

    def test_report_as_dict_schema(self):
        telemetry = Telemetry()
        report = HealthEvaluator(telemetry).evaluate()
        payload = report.as_dict()
        assert set(payload) == {"status", "evaluations", "rules"}
        for rule in payload["rules"]:
            assert {"name", "status", "detail"} <= set(rule)


# -- /health HTTP route -----------------------------------------------------


class TestHealthEndpoint:
    def test_health_route_ok_and_fail(self):
        telemetry = Telemetry()
        evaluator = HealthEvaluator(telemetry, default_rules(error_slo=0.05))
        with TelemetryServer(telemetry, port=0, health=evaluator).start() as server:
            url = "http://127.0.0.1:%d/health" % server.port
            with urllib.request.urlopen(url) as response:
                assert response.status == 200
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["status"] == "ok"
            assert {rule["name"] for rule in payload["rules"]} == {
                "error_slo",
                "guarantee",
                "p_floor",
                "convergence",
                "queue_depth",
                "checkpoint_staleness",
            }
            # Force a failing verdict: 503 with the same JSON schema.
            telemetry.gauge(
                "audit_relative_error", 0.9, component="audit", stat="mean"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url)
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read().decode("utf-8"))
            assert body["status"] == "fail"

    def test_health_route_absent_without_evaluator(self):
        with TelemetryServer(Telemetry(), port=0).start() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen("http://127.0.0.1:%d/health" % server.port)
            assert excinfo.value.code == 404


# -- wiring: daemon, simulator, control plane -------------------------------


class TestWiring:
    def test_daemon_mirrors_batches_into_auditor(self):
        monitor = NitroSketch(CountSketch(4, 2048, seed=0), probability=0.5)
        auditor = ShadowAuditor(capacity=64, seed=0)
        daemon = MeasurementDaemon(monitor, auditor=auditor)
        daemon.ingest(_make_batch([1, 2, 3, 1]))
        assert auditor.packets_observed == 4
        assert auditor.truth[1] == 2.0

    def test_daemon_queue_exports_depth_and_drops(self):
        telemetry = Telemetry()
        monitor = NitroSketch(CountSketch(4, 2048, seed=0), probability=0.5)
        daemon = MeasurementDaemon(monitor, telemetry=telemetry, queue_capacity=2)
        assert daemon.enqueue(_make_batch([1]))
        assert daemon.enqueue(_make_batch([2]))
        assert not daemon.enqueue(_make_batch([3]))  # full -> dropped
        assert daemon.batches_dropped == 1
        snap = telemetry.snapshot()
        assert sample_value(snap, "daemon_queue_depth") == 2.0
        assert daemon.drain() == 2
        assert sample_value(telemetry.snapshot(), "daemon_queue_depth") == 0.0

    def test_daemon_without_queue_rejects_enqueue(self):
        daemon = MeasurementDaemon(CountSketch(4, 64, seed=0))
        with pytest.raises(RuntimeError):
            daemon.enqueue(_make_batch([1]))

    def test_simulator_fans_telemetry_into_auditor(self):
        telemetry = Telemetry()
        monitor = NitroSketch(CountSketch(4, 2048, seed=0), probability=0.5)
        auditor = ShadowAuditor(capacity=64, seed=0)
        guard = GuaranteeMonitor(auditor, monitor, epsilon=0.2)
        daemon = MeasurementDaemon(monitor, auditor=guard)
        simulator = SwitchSimulator(VPPPipeline(), daemon, telemetry=telemetry)
        simulator.run(caida_like(2_000, n_flows=200, seed=0))
        assert auditor.telemetry is telemetry
        guard.check()
        assert "audit_error_bound" in telemetry.snapshot()["metrics"]

    def test_control_plane_audits_each_epoch(self):
        telemetry = Telemetry()
        auditor = ShadowAuditor(capacity=64, seed=0, telemetry=telemetry)
        plane = ControlPlane(
            lambda epoch: nitro_countmin(probability=0.5, seed=0),
            [HeavyHitterTask(0.01)],
            score=False,
            telemetry=telemetry,
            auditor=auditor,
        )
        trace = caida_like(4_000, n_flows=400, seed=0)
        plane.run_epochs(trace, epoch_packets=2_000)
        assert auditor.audits == 2
        snap = telemetry.snapshot()
        assert sample_value(snap, "audit_rounds_total") == 2.0

    def test_control_plane_with_guarantee_monitor(self):
        telemetry = Telemetry()
        auditor = ShadowAuditor(capacity=64, seed=0, telemetry=telemetry)
        guard = GuaranteeMonitor(
            auditor,
            nitro_countmin(probability=0.5, seed=0),
            epsilon=0.2,
        )
        plane = ControlPlane(
            lambda epoch: nitro_countmin(probability=0.5, seed=0),
            [HeavyHitterTask(0.01)],
            score=False,
            telemetry=telemetry,
            auditor=guard,
        )
        plane.run_epochs(caida_like(4_000, n_flows=400, seed=0), epoch_packets=2_000)
        assert guard.last_report is not None
        assert not guard.last_report.violated


# -- dashboard --------------------------------------------------------------


class TestDashboard:
    def _audited_snapshot(self):
        from repro.telemetry.demo import run_audited_demo

        telemetry = Telemetry()
        run_audited_demo(telemetry, packets=5_000, seed=7)
        HealthEvaluator(telemetry, default_rules(error_slo=5.0)).evaluate()
        return telemetry

    def test_render_dashboard_frame(self):
        telemetry = self._audited_snapshot()
        frame = render_dashboard(telemetry.snapshot())
        assert "nitrosketch top" in frame
        assert "accuracy" in frame
        assert "guarantee" in frame
        assert "of bound" in frame
        assert "health" in frame
        assert "stages" in frame

    def test_render_dashboard_throughput_deltas(self):
        telemetry = Telemetry()
        telemetry.count("nitro_packets_total", 1_000, path="batch")
        first = telemetry.snapshot()
        telemetry.count("nitro_packets_total", 3_000, path="batch")
        frame = render_dashboard(
            telemetry.snapshot(), previous=first, interval_seconds=1.0
        )
        assert "3.00k/s" in frame

    def test_render_dashboard_empty_snapshot(self):
        frame = render_dashboard({"metrics": {}})
        assert "no auditor attached" in frame

    def test_top_loop_renders_frames(self):
        telemetry = self._audited_snapshot()
        out = io.StringIO()
        loop = TopLoop(
            SnapshotSource(telemetry=telemetry),
            interval=0.01,
            iterations=2,
            clear=False,
            out=out,
        )
        assert loop.run() == 0
        assert loop.frames == 2
        assert "\x1b" not in out.getvalue()

    def test_snapshot_source_requires_exactly_one(self):
        with pytest.raises(ValueError):
            SnapshotSource()
        with pytest.raises(ValueError):
            SnapshotSource(telemetry=Telemetry(), url="http://x/snapshot")

    def test_snapshot_source_over_http(self):
        telemetry = Telemetry()
        telemetry.gauge("nitro_sampling_probability", 0.25)
        with TelemetryServer(telemetry, port=0).start() as server:
            source = SnapshotSource(
                url="http://127.0.0.1:%d/snapshot" % server.port
            )
            snap = source.fetch()
        assert "nitro_sampling_probability" in snap["metrics"]
