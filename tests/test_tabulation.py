"""Tests for repro.hashing.tabulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.tabulation import TabulationHash


class TestTabulationHash:
    def test_deterministic(self):
        h1 = TabulationHash(seed=5)
        h2 = TabulationHash(seed=5)
        assert all(h1.hash64(k) == h2.hash64(k) for k in range(200))

    def test_different_seeds_differ(self):
        h1 = TabulationHash(seed=1)
        h2 = TabulationHash(seed=2)
        assert h1.hash64(42) != h2.hash64(42)

    def test_ranged_output(self):
        h = TabulationHash(seed=3, width=17)
        assert all(0 <= h(k) < 17 for k in range(2000))

    def test_unranged_is_64_bit(self):
        h = TabulationHash(seed=3)
        assert all(0 <= h(k) < 2**64 for k in range(200))

    def test_bit_is_balanced(self):
        h = TabulationHash(seed=7)
        ones = sum(h.bit(k) for k in range(20000))
        assert 9000 < ones < 11000

    def test_batch_matches_scalar(self):
        h = TabulationHash(seed=9)
        keys = np.arange(0, 3000, 11)
        batch = h.batch(keys)
        scalar = [h.hash64(int(k)) for k in keys]
        assert batch.tolist() == scalar

    def test_bit_batch_matches_scalar(self):
        h = TabulationHash(seed=13)
        keys = np.arange(500)
        assert h.bit_batch(keys).tolist() == [h.bit(int(k)) for k in keys]

    def test_batch_ranged(self):
        h = TabulationHash(seed=15, width=100)
        out = h.batch_ranged(np.arange(1000))
        assert out.min() >= 0
        assert out.max() < 100

    def test_batch_ranged_requires_width(self):
        h = TabulationHash(seed=15)
        with pytest.raises(ValueError):
            h.batch_ranged(np.arange(5))

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            TabulationHash(seed=1, width=-1)

    def test_key_masked_to_64_bits(self):
        h = TabulationHash(seed=21)
        assert h.hash64(2**64 + 5) == h.hash64(5)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=50)
    def test_avalanche_nonzero(self, key):
        h = TabulationHash(seed=33)
        # Flipping a byte changes the hash (tables have no zero rows whp).
        assert h.hash64(key) != h.hash64(key ^ 0xFF00)
