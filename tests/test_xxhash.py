"""Tests for repro.hashing.xxhash -- bit-exactness against reference vectors."""

import struct

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hashing.xxhash import xxhash32, xxhash32_batch, xxhash32_u64


class TestReferenceVectors:
    """Vectors from the xxHash project / python-xxhash documentation."""

    def test_empty(self):
        assert xxhash32(b"") == 0x02CC5D05

    def test_empty_with_seed(self):
        # Regression pin (computed by this implementation, whose unseeded
        # outputs are bit-exact against the reference vectors).
        assert xxhash32(b"", seed=0x2A) == 0xD5BE6EB8

    def test_spam(self):
        assert xxhash32(b"Nobody inspects the spammish repetition") == 0xE2293B2F

    def test_spam_with_seed(self):
        # Regression pin, see test_empty_with_seed.
        assert xxhash32(b"Nobody inspects the spammish repetition", seed=23) == 0xBA5C07F6

    def test_hello(self):
        # Cross-checked with python-xxhash: xxh32(b'Hello, world!').
        assert xxhash32(b"Hello, world!") == 0x31B7405D

    def test_single_byte(self):
        # Short input exercises the tail loop only.
        value = xxhash32(b"a")
        assert value == xxhash32(b"a")
        assert value != xxhash32(b"b")

    def test_long_input_uses_stripe_loop(self):
        data = bytes(range(256)) * 10
        assert xxhash32(data) == xxhash32(data)
        assert xxhash32(data) != xxhash32(data[:-1])

    def test_exact_16_bytes(self):
        data = b"0123456789abcdef"
        assert 0 <= xxhash32(data) < 2**32

    def test_seed_changes_output(self):
        data = b"flow-key"
        assert xxhash32(data, 1) != xxhash32(data, 2)


class TestU64AndBatch:
    def test_u64_matches_packed_bytes(self):
        for key in (0, 1, 0xDEADBEEF, 2**64 - 1):
            assert xxhash32_u64(key) == xxhash32(struct.pack("<Q", key))

    def test_batch_matches_scalar(self):
        keys = np.array([0, 1, 7, 0xDEADBEEF, 2**63, 2**64 - 1], dtype=np.uint64)
        batch = xxhash32_batch(keys)
        scalar = [xxhash32_u64(int(k)) for k in keys]
        assert batch.tolist() == scalar

    def test_batch_with_seed(self):
        keys = np.arange(100, dtype=np.uint64)
        batch = xxhash32_batch(keys, seed=99)
        scalar = [xxhash32_u64(int(k), seed=99) for k in keys]
        assert batch.tolist() == scalar

    def test_batch_dtype(self):
        assert xxhash32_batch(np.arange(4)).dtype == np.uint32

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=50)
    def test_batch_scalar_agreement_property(self, key):
        assert int(xxhash32_batch(np.array([key], dtype=np.uint64))[0]) == xxhash32_u64(key)

    def test_avalanche(self):
        """Flipping one key bit should flip ~half the output bits."""
        base = xxhash32_u64(12345)
        flipped = xxhash32_u64(12345 ^ 1)
        differing = bin(base ^ flipped).count("1")
        assert 8 <= differing <= 28
