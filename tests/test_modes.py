"""Tests for adaptive modes (Idea C): AlwaysLineRate and AlwaysCorrect."""

import numpy as np
import pytest

from repro.core import (
    NitroConfig,
    NitroMode,
    NitroSketch,
    P_MIN,
    PROBABILITY_LADDER,
    snap_to_ladder,
)
from repro.core.modes import AlwaysCorrectController, AlwaysLineRateController
from repro.sketches import CountSketch
from repro.traffic import zipf_keys


class TestLadder:
    def test_ladder_contents(self):
        assert PROBABILITY_LADDER[0] == 1.0
        assert PROBABILITY_LADDER[-1] == 2**-7
        assert len(PROBABILITY_LADDER) == 8

    def test_snap_rounds_down(self):
        assert snap_to_ladder(0.3) == 0.25
        assert snap_to_ladder(0.5) == 0.5
        assert snap_to_ladder(2.0) == 1.0

    def test_snap_clamps_to_pmin(self):
        assert snap_to_ladder(0.0001) == P_MIN

    def test_figure6_examples(self):
        """Paper Figure 6: 'if 40Mpps, p=1/64; if 10Mpps, p=1/16'."""
        config = NitroConfig()
        assert config.probability_for_rate(40.0) == 1 / 64
        assert config.probability_for_rate(10.0) == 1 / 16

    def test_low_rate_gives_p_one(self):
        config = NitroConfig()
        assert config.probability_for_rate(0.1) == 1.0
        assert config.probability_for_rate(0.0) == 1.0


class TestAlwaysLineRateController:
    def test_adapts_after_epoch(self):
        config = NitroConfig(
            probability=0.01,
            mode=NitroMode.ALWAYS_LINE_RATE,
            adaptation_epoch_seconds=0.1,
        )
        controller = AlwaysLineRateController(config)
        # 10 Mpps offered: 1M packets over 0.1s -> p should become 1/16.
        new_p = None
        for i in range(1_000):
            result = controller.on_packet(i * 1e-4)  # 10 kpps... scale below
        # Use on_batch for the rate computation directly instead.
        new_p = controller.on_batch(1_000_000, 0.1)
        assert new_p == 1 / 16

    def test_no_timestamp_no_adaptation(self):
        config = NitroConfig(mode=NitroMode.ALWAYS_LINE_RATE)
        controller = AlwaysLineRateController(config)
        assert controller.on_packet(None) is None

    def test_on_packet_epoch_boundary(self):
        config = NitroConfig(
            probability=0.5,
            mode=NitroMode.ALWAYS_LINE_RATE,
            adaptation_epoch_seconds=0.1,
        )
        controller = AlwaysLineRateController(config)
        # 40 Mpps: packets every 25ns; feed one epoch's worth sparsely.
        result = controller.on_packet(0.0)
        assert result is None
        result = controller.on_packet(0.05)
        assert result is None
        # Crossing the 0.1s boundary with 4M packets counted => 40 Mpps.
        controller._epoch_packets = 4_000_000
        result = controller.on_packet(0.11)
        assert result == 1 / 64

    def test_on_batch_unchanged_probability_returns_none(self):
        config = NitroConfig(probability=1 / 16, mode=NitroMode.ALWAYS_LINE_RATE)
        controller = AlwaysLineRateController(config)
        # 10 Mpps maps to the already-current 1/16: no change signalled.
        assert controller.on_batch(1_000_000, 0.1) is None
        # 40 Mpps maps to 1/64: change signalled once, then stable.
        assert controller.on_batch(4_000_000, 0.1) == 1 / 64
        assert controller.on_batch(4_000_000, 0.1) is None

    def test_integrated_with_sketch(self):
        config = NitroConfig(
            probability=1.0,
            mode=NitroMode.ALWAYS_LINE_RATE,
            adaptation_epoch_seconds=0.001,
            seed=5,
        )
        nitro = NitroSketch(CountSketch(5, 4096, seed=5), config)
        # Feed 1 Mpps for several epochs -> p should fall below 1
        # (0.625 Mpps budget / 1 Mpps -> 1/2).
        for i in range(5000):
            nitro.update(i % 100, timestamp=i * 1e-6)
        assert nitro.probability < 1.0


class TestAlwaysCorrectController:
    def test_threshold_formula(self):
        config = NitroConfig(probability=0.1, epsilon=0.2)
        expected = 121 * (1 + 0.2 * 0.1**0.5) / (0.2**4 * 0.1**2)
        assert config.convergence_threshold() == pytest.approx(expected)

    def test_converges_when_l2_grows(self):
        config = NitroConfig(
            probability=0.1,
            epsilon=0.5,
            mode=NitroMode.ALWAYS_CORRECT,
            convergence_check_period=100,
            seed=7,
        )
        nitro = NitroSketch(CountSketch(5, 4096, seed=7), config)
        assert not nitro.converged
        assert nitro.probability == 1.0  # exact until convergence
        # One giant flow drives L2^2 past T quickly.
        for _ in range(30000):
            nitro.update(1)
            if nitro.converged:
                break
        assert nitro.converged
        assert nitro.probability == 0.1
        assert nitro.correctness.converged_at_packet is not None

    def test_exact_before_convergence(self):
        config = NitroConfig(
            probability=0.01, epsilon=0.05, mode=NitroMode.ALWAYS_CORRECT, seed=8
        )
        nitro = NitroSketch(CountSketch(5, 4096, seed=8), config)
        for key in range(1000):
            nitro.update(key)
        # Far below threshold: still exact, so queries are vanilla-exact.
        assert not nitro.converged
        assert nitro.query(5) == pytest.approx(1.0, abs=0.6)

    def test_batch_convergence(self):
        config = NitroConfig(
            probability=0.1,
            epsilon=0.5,
            mode=NitroMode.ALWAYS_CORRECT,
            convergence_check_period=1000,
            seed=9,
        )
        nitro = NitroSketch(CountSketch(5, 4096, seed=9), config)
        nitro.update_batch(np.full(40000, 1, dtype=np.int64))
        assert nitro.converged

    def test_check_period_respected(self):
        config = NitroConfig(
            probability=0.5,
            epsilon=0.9,
            mode=NitroMode.ALWAYS_CORRECT,
            convergence_check_period=500,
        )
        sketch = CountSketch(5, 1024, seed=10)
        controller = AlwaysCorrectController(config, sketch)
        # Give the sketch enormous counters so the check passes when run.
        sketch.counters[:, 0] = 1e9
        for _ in range(499):
            assert not controller.on_packet()
        assert controller.on_packet()  # packet 500 triggers the check

    def test_reset_restores_warmup(self):
        config = NitroConfig(
            probability=0.1, epsilon=0.5, mode=NitroMode.ALWAYS_CORRECT, seed=11
        )
        nitro = NitroSketch(CountSketch(5, 4096, seed=11), config)
        nitro.update_batch(np.full(40000, 1, dtype=np.int64))
        assert nitro.converged
        nitro.reset()
        assert not nitro.converged
        assert nitro.probability == 1.0


class TestConfigValidation:
    def test_mode_from_string(self):
        config = NitroConfig(mode="always_correct")
        assert config.mode is NitroMode.ALWAYS_CORRECT

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            NitroConfig(probability=0)
        with pytest.raises(ValueError):
            NitroConfig(epsilon=1.0)
        with pytest.raises(ValueError):
            NitroConfig(delta=0)
        with pytest.raises(ValueError):
            NitroConfig(top_k=-1)
        with pytest.raises(ValueError):
            NitroConfig(convergence_check_period=0)
        with pytest.raises(ValueError):
            NitroConfig(adaptation_epoch_seconds=0)
        with pytest.raises(ValueError):
            NitroConfig(sampling="quantum")

    def test_recommended_sizing(self):
        config = NitroConfig(probability=0.1, epsilon=0.1, delta=0.05)
        assert config.recommended_width("l2") == 8000
        assert config.recommended_width("l1") == 40
        assert config.recommended_depth() >= 4
        ac = NitroConfig(
            probability=0.1, epsilon=0.1, delta=0.05, mode=NitroMode.ALWAYS_CORRECT
        )
        assert ac.recommended_width("l2") == 11000

    def test_recommended_width_validation(self):
        with pytest.raises(ValueError):
            NitroConfig().recommended_width("l3")


class TestEpochAccounting:
    def test_constant_rate_counts_every_epoch_exactly(self):
        """Regression: every epoch counts its opening packet exactly once.

        With packets exactly 1/1024 s apart and 0.125 s epochs (both
        exact in binary floating point), every epoch spans exactly 128
        packets; the boundary packet opens the next epoch.  The old
        accounting dropped the boundary packet from both epochs, so
        each epoch under-counted by one and the measured rate skewed
        low.
        """
        from repro.telemetry import Telemetry

        config = NitroConfig(
            probability=0.5,
            mode=NitroMode.ALWAYS_LINE_RATE,
            adaptation_epoch_seconds=0.125,
        )
        controller = AlwaysLineRateController(config)
        controller.telemetry = Telemetry()
        spacing = 1.0 / 1024.0
        for i in range(3 * 128 + 50):
            controller.on_packet(i * spacing)
        events = controller.telemetry.tracer.events("nitro.epoch")
        assert len(events) == 3
        expected_rate = 128 / 0.125 / 1e6
        assert [event.fields["rate_mpps"] for event in events] == [expected_rate] * 3
        # The in-flight epoch holds its opening (boundary) packet plus
        # the 49 that followed.
        assert controller.getstate()["epoch_packets"] == 50

    def test_state_roundtrip(self):
        config = NitroConfig(
            probability=0.25,
            mode=NitroMode.ALWAYS_LINE_RATE,
            adaptation_epoch_seconds=0.125,
        )
        source = AlwaysLineRateController(config)
        for i in range(300):
            source.on_packet(i / 1024.0)
        clone = AlwaysLineRateController(config)
        clone.setstate(source.getstate())
        for i in range(300, 600):
            assert clone.on_packet(i / 1024.0) == source.on_packet(i / 1024.0)
        assert clone.getstate() == source.getstate()


class TestBatchEpochDiscipline:
    def _controller(self, probability=0.01, epoch=0.1):
        config = NitroConfig(
            probability=probability,
            mode=NitroMode.ALWAYS_LINE_RATE,
            adaptation_epoch_seconds=epoch,
        )
        return AlwaysLineRateController(config)

    def test_sub_epoch_batches_accumulate(self):
        """Regression: sub-epoch batches must accumulate into one epoch
        instead of producing one noisy rate evaluation each."""
        from repro.telemetry import Telemetry

        controller = self._controller()
        controller.telemetry = Telemetry()
        # Three 40 ms batches: the first two sit inside the open epoch.
        assert controller.on_batch(1_000, 0.04) is None
        assert controller.on_batch(1_000, 0.04) is None
        assert len(controller.telemetry.tracer.events("nitro.epoch")) == 0
        # The third crosses 100 ms: one epoch, rate 3000/0.12 = 25 kpps,
        # which maps to p = 1.0 (far below the 0.625 Mpps budget).
        assert controller.on_batch(1_000, 0.04) == 1.0
        events = controller.telemetry.tracer.events("nitro.epoch")
        assert len(events) == 1
        assert events[0].fields["rate_mpps"] == pytest.approx(0.025)
        # The accumulators restart with the new epoch.
        state = controller.getstate()
        assert state["batch_packets"] == 0
        assert state["batch_elapsed"] == 0.0

    def test_epoch_count_matches_elapsed_time(self):
        from repro.telemetry import Telemetry

        controller = self._controller()
        controller.telemetry = Telemetry()
        for _ in range(120):
            controller.on_batch(1_000, 0.01)
        events = controller.telemetry.tracer.events("nitro.epoch")
        # 1.2 s of accumulated batch time over 0.1 s epochs; float
        # accumulation can stretch an epoch by one 10 ms batch, so 10-12
        # epochs close -- far from the 120 the per-batch bug produced.
        assert 10 <= len(events) <= 12

    def test_batch_accumulator_state_roundtrip(self):
        source = self._controller()
        source.on_batch(1_000, 0.04)  # mid-epoch
        clone = self._controller()
        clone.setstate(source.getstate())
        for _ in range(4):
            assert clone.on_batch(1_000, 0.04) == source.on_batch(1_000, 0.04)
        assert clone.getstate() == source.getstate()

    def test_setstate_accepts_pre_accumulator_checkpoints(self):
        """Old checkpoints have no batch accumulator keys; they restore
        with fresh accumulators instead of raising."""
        source = self._controller()
        state = source.getstate()
        del state["batch_packets"]
        del state["batch_elapsed"]
        clone = self._controller()
        clone.setstate(state)
        assert clone.getstate()["batch_packets"] == 0
        assert clone.getstate()["batch_elapsed"] == 0.0

    def test_reset_restores_constructed_state(self):
        """Regression: reset must clear ``current_probability`` and the
        epoch/batch accumulators, or the no-change short-circuit strands
        a reset sketch at the stale p."""
        controller = self._controller(probability=0.5)
        controller.on_packet(0.0)
        # 4 Mpps: 0.625 / 4 sits between rungs, snapping down to 1/8.
        assert controller.on_batch(400_000, 0.1) == 1 / 8
        controller.on_batch(1_000, 0.04)  # leave a partial epoch behind
        controller.reset()
        fresh = self._controller(probability=0.5)
        assert controller.current_probability == 0.5
        assert controller.getstate() == fresh.getstate()
        # Post-reset adaptation behaves exactly like a fresh controller's.
        assert controller.on_batch(400_000, 0.1) == 1 / 8
