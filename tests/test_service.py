"""Tests for the always-on monitoring service: wire protocol, tenant
namespaces (LRU/idle eviction + checkpoint round-trips), the asyncio
ingest endpoint, the REST query plane, and graceful lifecycle."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.control.export import serialize_monitor
from repro.service import IngestClient, MonitoringService, ServiceConfig
from repro.service import records
from repro.service.tenants import (
    TenantManager,
    tenant_from_subdir,
    tenant_stream_id,
    tenant_subdir,
)
from repro.telemetry import Telemetry


def _http(port, path):
    with urllib.request.urlopen(
        "http://127.0.0.1:%d%s" % (port, path), timeout=10
    ) as response:
        return response.status, json.loads(response.read())


def _http_error_status(port, path):
    try:
        urllib.request.urlopen("http://127.0.0.1:%d%s" % (port, path), timeout=10)
    except urllib.error.HTTPError as exc:
        return exc.code
    return 200


class TestWireProtocol:
    def test_ingest_frame_round_trip(self):
        keys = np.array([1, 2, 3, 1 << 50], dtype=np.int64)
        frame = records.encode_frame("ingest", "acme", keys)
        line, _, payload = frame.partition(b"\n")
        op, tenant, payload_bytes = records.decode_header(line + b"\n")
        assert (op, tenant) == ("ingest", "acme")
        assert payload_bytes == len(payload) == keys.nbytes
        decoded = records.decode_keys(payload)
        assert decoded.dtype == np.int64
        np.testing.assert_array_equal(decoded, keys)

    def test_control_frames_carry_no_payload(self):
        for op in ("sync", "stats"):
            frame = records.encode_frame(op, "acme")
            op_out, tenant, payload_bytes = records.decode_header(frame)
            assert (op_out, tenant, payload_bytes) == (op, "acme", 0)
        op, tenant, payload_bytes = records.decode_header(
            records.encode_frame("bye")
        )
        assert (op, tenant, payload_bytes) == ("bye", None, 0)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            records.encode_frame("exfiltrate", "acme")
        with pytest.raises(ValueError):
            records.decode_header(b'{"op":"exfiltrate","tenant":"acme"}\n')

    def test_malformed_headers_rejected(self):
        for line in (b"not json\n", b"[1,2]\n", b'{"tenant":"a"}\n', b"\xff\xfe\n"):
            with pytest.raises(ValueError):
                records.decode_header(line)

    def test_tenant_ids_validated(self):
        for bad in ("", ".hidden", "a b", "x" * 65, "sl/ash", None, 7):
            with pytest.raises(ValueError):
                records.validate_tenant(bad)
        for good in ("a", "acme-prod.1", "X" * 64, "0_zero"):
            assert records.validate_tenant(good) == good

    def test_oversized_count_rejected(self):
        line = json.dumps(
            {"op": "ingest", "tenant": "a", "count": records.MAX_FRAME_KEYS + 1}
        ).encode() + b"\n"
        with pytest.raises(ValueError):
            records.decode_header(line)
        with pytest.raises(ValueError):
            records.decode_header(
                b'{"op":"ingest","tenant":"a","count":-1}\n'
            )

    def test_ragged_payload_rejected(self):
        with pytest.raises(ValueError):
            records.decode_keys(b"\x00" * 7)

    def test_batch_from_keys_shape(self):
        batch = records.batch_from_keys(np.array([5, 6], dtype=np.int64))
        assert len(batch) == 2
        np.testing.assert_array_equal(batch.keys, [5, 6])


class TestTenantDerivation:
    def test_stream_ids_stable_and_distinct(self):
        assert tenant_stream_id("acme") == tenant_stream_id("acme")
        assert tenant_stream_id("acme") != tenant_stream_id("emca")

    def test_subdir_round_trip(self):
        assert tenant_from_subdir(tenant_subdir("acme-prod.1")) == "acme-prod.1"
        assert tenant_from_subdir("stray") is None
        assert tenant_from_subdir("t_zz") is None  # not hex

    def test_per_tenant_seeds_independent(self):
        config = ServiceConfig(seed=7)
        a, b = config.nitro_config("a"), config.nitro_config("b")
        assert a.seed != b.seed
        assert config.sketch_seed("a") != config.sketch_seed("b")
        # sampler and sketch streams differ even for the same tenant
        assert config.nitro_config("a").seed != config.sketch_seed("a")
        # deterministic: verification can rebuild the same monitor
        assert serialize_monitor(config.build_monitor("a")) == serialize_monitor(
            config.build_monitor("a")
        )
        assert serialize_monitor(config.build_monitor("a")) != serialize_monitor(
            config.build_monitor("b")
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            ServiceConfig(overflow="explode")
        with pytest.raises(ValueError):
            ServiceConfig(max_tenants=0)
        with pytest.raises(ValueError):
            ServiceConfig(audit=True, window_epochs=4)
        assert ServiceConfig(mode="always_correct").mode.value == "always_correct"


class _ManualClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestTenantManager:
    def _ingest(self, manager, tenant, seed=0, n=500):
        rng = np.random.default_rng(seed)
        state = manager.get_or_create(tenant)
        state.daemon.ingest(
            records.batch_from_keys(rng.integers(0, 100, n).astype(np.int64))
        )
        return state

    def test_lru_eviction_order(self, tmp_path):
        config = ServiceConfig(
            max_tenants=3, checkpoint_dir=str(tmp_path), epoch_batches=0
        )
        manager = TenantManager(config)
        for tenant in ("a", "b", "c"):
            self._ingest(manager, tenant)
        manager.get_or_create("a")  # touch: "b" is now the LRU
        self._ingest(manager, "d")  # over budget -> evict exactly "b"
        assert manager.tenants() == ["c", "a", "d"]
        assert manager.evicted == 1
        self._ingest(manager, "e")  # next victim is "c"
        assert manager.tenants() == ["a", "d", "e"]

    def test_eviction_checkpoints_and_restores_byte_exactly(self, tmp_path):
        config = ServiceConfig(
            max_tenants=2, checkpoint_dir=str(tmp_path), epoch_batches=0
        )
        manager = TenantManager(config)
        first = self._ingest(manager, "first", seed=1)
        # Leave a batch *queued*: eviction must drain before persisting.
        first.daemon.enqueue(
            records.batch_from_keys(np.arange(100, dtype=np.int64))
        )
        first.daemon.drain()
        before = serialize_monitor(first.daemon.monitor)
        self._ingest(manager, "second", seed=2)
        self._ingest(manager, "third", seed=3)  # evicts "first"
        assert "first" not in manager
        assert (tmp_path / tenant_subdir("first")).is_dir()
        back = manager.get_or_create("first")
        assert back.restored
        assert serialize_monitor(back.daemon.monitor) == before

    def test_eviction_drains_queue_before_checkpoint(self, tmp_path):
        config = ServiceConfig(
            max_tenants=1, checkpoint_dir=str(tmp_path), epoch_batches=0
        )
        manager = TenantManager(config)
        state = manager.get_or_create("q")
        state.daemon.enqueue(
            records.batch_from_keys(np.arange(64, dtype=np.int64))
        )
        reference = ServiceConfig(
            max_tenants=1, checkpoint_dir=None, epoch_batches=0
        ).build_monitor("q")
        reference.update_batch(np.arange(64, dtype=np.int64))
        manager.get_or_create("r")  # evicts "q" with its batch still queued
        restored = manager.get_or_create("q")
        assert restored.daemon.packets_offered == 64
        assert serialize_monitor(restored.daemon.monitor) == serialize_monitor(
            reference
        )

    def test_memory_budget_eviction(self, tmp_path):
        probe = ServiceConfig(epoch_batches=0)
        manager_probe = TenantManager(probe)
        per_tenant = manager_probe.get_or_create("probe").daemon.memory_bytes()
        config = ServiceConfig(
            memory_budget_bytes=int(per_tenant * 2.5),
            checkpoint_dir=str(tmp_path),
            epoch_batches=0,
        )
        manager = TenantManager(config)
        for tenant in ("a", "b", "c"):
            manager.get_or_create(tenant)
        assert len(manager) == 2  # third tenant pushed "a" out
        assert manager.tenants() == ["b", "c"]

    def test_newest_tenant_never_self_evicts(self):
        config = ServiceConfig(memory_budget_bytes=1, epoch_batches=0)
        manager = TenantManager(config)
        manager.get_or_create("only")
        assert manager.tenants() == ["only"]

    def test_idle_sweep(self, tmp_path):
        clock = _ManualClock()
        config = ServiceConfig(
            idle_seconds=30.0, checkpoint_dir=str(tmp_path), epoch_batches=0
        )
        manager = TenantManager(config, clock=clock)
        self._ingest(manager, "old")
        clock.now += 20
        self._ingest(manager, "young")
        assert manager.sweep_idle() == 0
        clock.now += 15  # "old" is 35s idle, "young" 15s
        assert manager.sweep_idle() == 1
        assert manager.tenants() == ["young"]
        # the idle-evicted tenant restores transparently on next touch
        assert manager.get("old").restored

    def test_get_never_creates(self):
        manager = TenantManager(ServiceConfig(epoch_batches=0))
        assert manager.get("ghost") is None
        assert len(manager) == 0

    def test_restore_on_start_restores_all(self, tmp_path):
        config = ServiceConfig(checkpoint_dir=str(tmp_path), epoch_batches=0)
        manager = TenantManager(config)
        blobs = {}
        for tenant in ("x", "y"):
            state = self._ingest(manager, tenant, seed=hash(tenant) % 100)
            state.daemon.checkpoint()
            blobs[tenant] = serialize_monitor(state.daemon.monitor)
        fresh = TenantManager(config)
        assert sorted(fresh.restore_on_start()) == ["x", "y"]
        for tenant, blob in blobs.items():
            assert serialize_monitor(fresh.get(tenant).daemon.monitor) == blob

    def test_tenant_labels_on_exported_metrics(self):
        telemetry = Telemetry()
        service = MonitoringService(
            ServiceConfig(epoch_batches=0), telemetry=telemetry, http=False
        )
        service.ingest_direct("acme", np.arange(100, dtype=np.int64))
        snap = telemetry.snapshot()
        created = snap["metrics"]["service_tenants_created_total"]["samples"]
        assert created[0]["value"] == 1
        active = snap["metrics"]["service_tenants_active"]["samples"]
        assert active[0]["value"] == 1


class TestServiceEndToEnd:
    def _start(self, tmp_path=None, **overrides):
        overrides.setdefault("epoch_batches", 4)
        if tmp_path is not None:
            overrides.setdefault("checkpoint_dir", str(tmp_path))
        config = ServiceConfig(**overrides)
        return MonitoringService(config, telemetry=Telemetry()).start()

    def test_wire_ingest_and_query_plane(self):
        service = self._start()
        try:
            rng = np.random.default_rng(3)
            heavy = np.full(4000, 42, dtype=np.int64)
            tail = rng.integers(1000, 2000, 4000).astype(np.int64)
            keys = np.concatenate([heavy, tail])
            rng.shuffle(keys)
            with IngestClient("127.0.0.1", service.ingest_port) as client:
                for start in range(0, len(keys), 1000):
                    client.ingest("acme", keys[start : start + 1000])
                stats = client.sync("acme")
            assert stats["packets_ingested"] == len(keys)
            assert stats["queue_depth"] == 0

            status, listing = _http(service.http_port, "/tenants")
            assert status == 200 and listing["tenants"] == 1
            assert listing["tenant_stats"][0]["tenant"] == "acme"

            _, hh = _http(
                service.http_port, "/tenants/acme/heavy_hitters?share=0.1"
            )
            assert [h["key"] for h in hh["heavy_hitters"]] == [42]
            assert hh["packets"] == len(keys)

            _, point = _http(service.http_port, "/tenants/acme/point?key=42")
            estimate = point["estimates"][0]["estimate"]
            assert estimate == pytest.approx(4000, rel=0.25)

            _, entropy = _http(service.http_port, "/tenants/acme/entropy")
            assert entropy["entropy_bits"] > 0

            _, change = _http(service.http_port, "/tenants/acme/change")
            assert change["signals"] is not None  # epochs completed

            _, reports = _http(
                service.http_port, "/tenants/acme/reports?share=0.1"
            )
            (task,) = reports["tasks"]
            assert "42" in task["detected"]

            # /metrics and /health still answer on the same server
            with urllib.request.urlopen(
                "http://127.0.0.1:%d/metrics" % service.http_port, timeout=10
            ) as response:
                text = response.read().decode()
            assert 'service_ingest_packets_total{tenant="acme"}' in text
        finally:
            service.stop()

    def test_query_plane_errors(self):
        service = self._start()
        try:
            service.ingest_direct("acme", np.arange(10, dtype=np.int64))
            assert _http_error_status(service.http_port, "/tenants/ghost/stats") == 404
            assert (
                _http_error_status(service.http_port, "/tenants/acme/unknown") == 404
            )
            assert _http_error_status(service.http_port, "/tenants/acme/point") == 400
            assert (
                _http_error_status(
                    service.http_port, "/tenants/acme/point?key=zebra"
                )
                == 400
            )
            assert (
                _http_error_status(
                    service.http_port, "/tenants/acme/heavy_hitters?share=7"
                )
                == 400
            )
            # queries never create tenants
            assert len(service.tenants) == 1
        finally:
            service.stop()

    def test_concurrent_clients_separate_tenants(self):
        service = self._start()
        try:
            errors = []

            def run(tenant, seed):
                try:
                    rng = np.random.default_rng(seed)
                    with IngestClient("127.0.0.1", service.ingest_port) as client:
                        for _ in range(10):
                            client.ingest(
                                tenant, rng.integers(0, 500, 1000).astype(np.int64)
                            )
                        stats = client.sync(tenant)
                    assert stats["packets_ingested"] == 10_000
                except Exception as exc:
                    errors.append((tenant, exc))

            threads = [
                threading.Thread(target=run, args=("tenant_%d" % i, i))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors
            assert len(service.tenants) == 4
        finally:
            service.stop()

    def test_overflow_drop_accounts_wire_frames(self):
        import asyncio

        # No started loops: drive the frame handler directly against a
        # full queue, so the drop branch is deterministic.
        telemetry = Telemetry()
        service = MonitoringService(
            ServiceConfig(queue_capacity=1, overflow="drop", epoch_batches=0),
            telemetry=telemetry,
        )
        state = service.tenants.get_or_create("burst")
        payload = records.encode_keys(np.arange(10, dtype=np.int64))
        asyncio.run(service._ingest_frame("burst", payload))  # fills the queue
        asyncio.run(service._ingest_frame("burst", payload))  # must be shed
        assert state.daemon.batches_dropped == 1
        snap = telemetry.snapshot()
        dropped = snap["metrics"]["service_dropped_batches_total"]["samples"]
        assert dropped[0]["labels"] == {"tenant": "burst"}
        assert dropped[0]["value"] == 1
        frames = {
            s["labels"]["outcome"]: s["value"]
            for s in snap["metrics"]["service_frames_total"]["samples"]
        }
        assert frames == {"accepted": 1, "dropped": 1}

    def test_wait_backpressure_never_counts_drops(self):
        """Regression: the wait policy used to offer batches to a full
        queue in its retry loop, inflating ``batches_dropped`` with
        batches that eventually landed."""
        service = self._start(queue_capacity=2, overflow="wait", epoch_batches=0)
        try:
            with IngestClient("127.0.0.1", service.ingest_port) as client:
                for _ in range(40):  # far past the depth-2 queue
                    client.ingest("steady", np.arange(500, dtype=np.int64))
                stats = client.sync("steady")
            assert stats["batches_dropped"] == 0
            assert stats["packets_ingested"] == 40 * 500
        finally:
            service.stop()

    def test_graceful_stop_checkpoints_and_restart_restores(self, tmp_path):
        config = ServiceConfig(checkpoint_dir=str(tmp_path), epoch_batches=0)
        service = MonitoringService(config).start()
        with IngestClient("127.0.0.1", service.ingest_port) as client:
            client.ingest("durable", np.arange(5000, dtype=np.int64) % 97)
            client.sync("durable")
        blob = serialize_monitor(service.tenants.get("durable").daemon.monitor)
        service.stop()

        revived = MonitoringService(config).start()
        try:
            state = revived.tenants.get("durable")
            assert state is not None and state.restored
            assert serialize_monitor(state.daemon.monitor) == blob
            # and it resumes ingest seamlessly
            revived.ingest_direct("durable", np.arange(10, dtype=np.int64))
            assert state.daemon.packets_offered == 5010
        finally:
            revived.stop()

    def test_stop_is_idempotent_and_reentrant(self):
        service = self._start()
        service.stop()
        service.stop()
        with pytest.raises(RuntimeError):
            service.start()

    def test_audited_answers_embed_guarantee(self):
        service = self._start(audit=True, epoch_batches=0)
        try:
            service.ingest_direct("aud", np.arange(2000, dtype=np.int64) % 50)
            _, point = _http(service.http_port, "/tenants/aud/point?key=1")
            assert point["audit"]["violated"] is False
            assert point["audit"]["bound"] > 0
        finally:
            service.stop()

    def test_windowed_tenant_reports_window_packets(self):
        service = self._start(window_epochs=3, epoch_batches=2, queue_capacity=8)
        try:
            for _ in range(10):
                service.ingest_direct("win", np.arange(100, dtype=np.int64))
            _, hh = _http(service.http_port, "/tenants/win/heavy_hitters?share=0.001")
            state = service.tenants.get("win")
            assert hh["windowed"] is True
            assert hh["packets"] == state.daemon.monitor.window_packets()
            assert hh["packets"] < state.daemon.packets_offered
        finally:
            service.stop()

    def test_malformed_wire_frame_closes_connection(self):
        service = self._start(epoch_batches=0)
        try:
            import socket

            with socket.create_connection(
                ("127.0.0.1", service.ingest_port), timeout=10
            ) as sock:
                sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
                sock.settimeout(10)
                assert sock.recv(1024) == b""  # server closed, no reply
            snap = service.telemetry.snapshot()
            frames = snap["metrics"]["service_frames_total"]["samples"]
            outcomes = {tuple(s["labels"].items())[0][1]: s["value"] for s in frames}
            assert outcomes.get("malformed", 0) >= 1
        finally:
            service.stop()


class TestServiceTelemetryFanin:
    def test_record_service_state_exports_tenant_gauges(self):
        from repro.telemetry.fanin import record_service_state

        telemetry = Telemetry()
        service = MonitoringService(
            ServiceConfig(epoch_batches=0), telemetry=telemetry, http=False
        )
        service.ingest_direct("acme", np.arange(200, dtype=np.int64))
        service.ingest_direct("globex", np.arange(100, dtype=np.int64))
        record_service_state(telemetry, service)
        snap = telemetry.snapshot()
        depth = {
            s["labels"]["tenant"]: s["value"]
            for s in snap["metrics"]["service_queue_depth"]["samples"]
        }
        assert depth == {"acme": 0.0, "globex": 0.0}
        memory = {
            s["labels"]["tenant"]: s["value"]
            for s in snap["metrics"]["service_tenant_memory_bytes"]["samples"]
        }
        assert memory["acme"] > 0 and memory["globex"] > 0
        assert snap["metrics"]["service_tenants_active"]["samples"][0]["value"] == 2

    def test_dashboard_renders_tenants_panel(self):
        from repro.telemetry.dashboard import render_dashboard
        from repro.telemetry.fanin import record_service_state

        telemetry = Telemetry()
        service = MonitoringService(
            ServiceConfig(epoch_batches=0), telemetry=telemetry, http=False
        )
        service.ingest_direct("acme", np.arange(300, dtype=np.int64))
        record_service_state(telemetry, service)
        frame = render_dashboard(telemetry.snapshot())
        assert "tenants     1 resident" in frame
        assert "acme" in frame

    def test_dashboard_without_service_has_no_panel(self):
        from repro.telemetry.dashboard import render_dashboard

        telemetry = Telemetry()
        telemetry.count("daemon_packets_total", 10)
        assert "tenants" not in render_dashboard(telemetry.snapshot())
