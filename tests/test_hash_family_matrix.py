"""Core invariants re-checked under the xxhash row-hash family.

The default multiply-shift family gets full coverage elsewhere; this
matrix re-runs the load-bearing invariants with ``hash_family="xxhash"``
(the C implementation's family) to guarantee the two configurations are
interchangeable.
"""

from collections import Counter

import numpy as np
import pytest

from repro.core import NitroConfig, NitroSketch
from repro.hashing.rowhash import XXHashRowHash, XXHashRowSign
from repro.sketches import CountMinSketch, CountSketch
from repro.traffic import zipf_keys

FAMILIES = ("multiply_shift", "xxhash")


class TestRowHashPrimitives:
    def test_range_and_determinism(self):
        h = XXHashRowHash(1000, seed=3)
        values = [h(k) for k in range(2000)]
        assert all(0 <= v < 1000 for v in values)
        assert values == [h(k) for k in range(2000)]

    def test_batch_matches_scalar(self):
        h = XXHashRowHash(997, seed=5)
        keys = np.arange(0, 3000, 7)
        assert h.batch(keys).tolist() == [h(int(k)) for k in keys]

    def test_sign_batch_matches_scalar(self):
        g = XXHashRowSign(seed=7)
        keys = np.arange(500)
        assert g.batch(keys).tolist() == [g(int(k)) for k in keys]

    def test_sign_balance(self):
        g = XXHashRowSign(seed=9)
        total = sum(g(k) for k in range(20000))
        assert abs(total) < 600

    def test_constant_one(self):
        g = XXHashRowSign(seed=9, constant_one=True)
        assert all(g(k) == 1 for k in range(100))
        assert g.batch(np.arange(5)).tolist() == [1] * 5

    def test_width_validation(self):
        with pytest.raises(ValueError):
            XXHashRowHash(0, 1)
        with pytest.raises(ValueError):
            XXHashRowHash(2**33, 1)

    def test_uniformity(self):
        h = XXHashRowHash(8, seed=11)
        buckets = np.bincount([h(k) for k in range(40000)], minlength=8)
        assert buckets.min() > 4000


@pytest.mark.parametrize("family", FAMILIES)
class TestFamilyMatrix:
    def test_cms_never_underestimates(self, family):
        keys = zipf_keys(10000, 500, 1.2, seed=13)
        sketch = CountMinSketch(4, 512, seed=13, hash_family=family)
        sketch.update_batch(keys)
        truth = Counter(keys.tolist())
        for key, count in list(truth.items())[:200]:
            assert sketch.query(key) >= count

    def test_cs_batch_equals_scalar(self, family):
        keys = zipf_keys(4000, 300, 1.1, seed=17)
        a = CountSketch(3, 256, seed=17, hash_family=family)
        b = CountSketch(3, 256, seed=17, hash_family=family)
        for key in keys.tolist():
            a.update(key)
        b.update_batch(keys)
        assert np.allclose(a.counters, b.counters)

    def test_nitro_p_one_identical_to_vanilla(self, family):
        keys = zipf_keys(3000, 200, 1.2, seed=19)
        vanilla = CountSketch(4, 256, seed=19, hash_family=family)
        nitro = NitroSketch(
            CountSketch(4, 256, seed=19, hash_family=family),
            NitroConfig(probability=1.0, seed=19),
        )
        for key in keys.tolist():
            vanilla.update(key)
            nitro.update(key)
        assert np.array_equal(vanilla.counters, nitro.sketch.counters)

    def test_nitro_sampled_estimates(self, family):
        keys = zipf_keys(80000, 3000, 1.3, seed=23)
        nitro = NitroSketch(
            CountSketch(5, 8192, seed=23, hash_family=family),
            NitroConfig(probability=0.1, seed=23),
        )
        nitro.update_batch(keys)
        truth = Counter(keys.tolist())
        top = max(truth, key=truth.get)
        assert nitro.query(int(top)) == pytest.approx(truth[top], rel=0.12)

    def test_families_disagree_on_buckets(self, family):
        """Sanity: the two families are genuinely different functions."""
        other = "xxhash" if family == "multiply_shift" else "multiply_shift"
        a = CountSketch(1, 1024, seed=29, hash_family=family)
        b = CountSketch(1, 1024, seed=29, hash_family=other)
        same = sum(1 for k in range(500) if a.row_hashes[0](k) == b.row_hashes[0](k))
        assert same < 50
