"""Tests for Count Sketch and the K-ary sketch."""

import math
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches import CountSketch, KArySketch

KEY_LISTS = st.lists(st.integers(min_value=0, max_value=300), min_size=5, max_size=300)


class TestCountSketch:
    def test_exact_single_flow(self):
        cs = CountSketch(5, 1024, seed=1)
        for _ in range(25):
            cs.update(9)
        assert cs.query(9) == pytest.approx(25.0)

    def test_median_estimator_accuracy(self):
        rng = np.random.default_rng(0)
        keys = rng.zipf(1.3, size=30000) % 2000
        cs = CountSketch(5, 4096, seed=2)
        cs.update_batch(keys)
        truth = Counter(keys.tolist())
        top = max(truth, key=truth.get)
        assert cs.query(int(top)) == pytest.approx(truth[top], rel=0.05)

    @given(KEY_LISTS)
    @settings(max_examples=40, deadline=None)
    def test_l2_error_bound(self, keys):
        """|est - f_x| <= c * L2 / sqrt(w) whp (generous constant)."""
        width = 256
        cs = CountSketch(5, width, seed=3)
        for key in keys:
            cs.update(key)
        truth = Counter(keys)
        l2 = math.sqrt(sum(v * v for v in truth.values()))
        bound = 8.0 * l2 / math.sqrt(width) + 1.0
        for key, count in truth.items():
            assert abs(cs.query(key) - count) <= bound

    def test_l2_estimate(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 500, size=20000)
        cs = CountSketch(5, 4096, seed=4)
        cs.update_batch(keys)
        truth = Counter(keys.tolist())
        true_l2 = math.sqrt(sum(v * v for v in truth.values()))
        assert cs.l2_estimate() == pytest.approx(true_l2, rel=0.1)

    def test_batch_matches_scalar(self):
        keys = np.array([1, 2, 3, 4, 5] * 40)
        a = CountSketch(4, 128, seed=5)
        b = CountSketch(4, 128, seed=5)
        for key in keys.tolist():
            a.update(key)
        b.update_batch(keys)
        assert np.allclose(a.counters, b.counters)

    def test_signed_updates_cancel(self):
        """Two flows in one bucket with opposite signs partially cancel --
        counters can go negative, unlike Count-Min."""
        cs = CountSketch(1, 1, seed=0)
        cs.update(1)
        cs.update(2)
        value = cs.counters[0, 0]
        assert value in (-2.0, 0.0, 2.0)

    def test_from_error_bounds(self):
        cs = CountSketch.from_error_bounds(0.1, 0.05)
        assert cs.width >= 3.0 / 0.01 - 1
        assert cs.depth >= 2

    def test_update_and_estimate_matches_query(self):
        cs = CountSketch(5, 512, seed=7)
        estimate = cs.update_and_estimate(11)
        assert estimate == cs.query(11)


class TestKArySketch:
    def test_mean_corrected_estimate(self):
        kary = KArySketch(5, 512, seed=1)
        keys = list(range(100)) * 5 + [7] * 200
        for key in keys:
            kary.update(key)
        assert kary.total == pytest.approx(len(keys))
        assert kary.query(7) == pytest.approx(205, rel=0.25)

    def test_unbiased_background_removal(self):
        """Uniform background should give near-zero estimates for absent keys."""
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 10000, size=50000)
        kary = KArySketch(5, 2048, seed=2)
        kary.update_batch(keys)
        absent = [20001, 20002, 20003]
        for key in absent:
            assert abs(kary.query(key)) < 200  # ~ L2 noise, not ~m/w bias

    def test_total_tracked_in_batch(self):
        kary = KArySketch(3, 128, seed=3)
        kary.update_batch(np.arange(50), weights=np.full(50, 2.0))
        assert kary.total == pytest.approx(100.0)

    def test_total_tracked_scalar(self):
        kary = KArySketch(3, 128, seed=3)
        for key in range(10):
            kary.update(key)
        assert kary.total == pytest.approx(10.0)

    def test_difference_sketch(self):
        a = KArySketch(5, 512, seed=4)
        b = KArySketch(5, 512, seed=4)
        for _ in range(100):
            a.update(1)
        for _ in range(40):
            b.update(1)
        diff = a.difference(b)
        assert diff.query(1) == pytest.approx(60, abs=10)
        assert diff.total == pytest.approx(60)

    def test_difference_requires_same_seed(self):
        a = KArySketch(5, 512, seed=4)
        b = KArySketch(5, 512, seed=5)
        with pytest.raises(ValueError):
            a.difference(b)

    def test_reset_clears_total(self):
        kary = KArySketch(3, 128, seed=6)
        kary.update(1)
        kary.reset()
        assert kary.total == 0.0
        assert kary.query(1) == pytest.approx(0.0)

    def test_width_one_degenerate(self):
        kary = KArySketch(2, 1, seed=7)
        kary.update(1)
        assert kary.query(1) == pytest.approx(1.0)

    @given(KEY_LISTS)
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, keys):
        """sketch(A) + sketch(B) == sketch(A ++ B) counter-wise."""
        half = len(keys) // 2
        a = KArySketch(3, 64, seed=8)
        b = KArySketch(3, 64, seed=8)
        combined = KArySketch(3, 64, seed=8)
        for key in keys[:half]:
            a.update(key)
        for key in keys[half:]:
            b.update(key)
        for key in keys:
            combined.update(key)
        assert np.allclose(a.counters + b.counters, combined.counters)
        assert a.total + b.total == pytest.approx(combined.total)
