"""Tests for the Lall entropy sketch and conditioned HHH extraction."""

from collections import Counter

import numpy as np
import pytest

from repro.baselines import HierarchicalHeavyHitters, RandomizedHHH
from repro.metrics import empirical_entropy
from repro.sketches import EntropySketch, UnivMon
from repro.traffic import zipf_keys


class TestEntropySketch:
    def test_accuracy_on_zipf(self):
        keys = zipf_keys(25000, 2500, 1.1, seed=1)
        sketch = EntropySketch(estimators=400, group_size=40, seed=1)
        sketch.update_batch(keys)
        truth = empirical_entropy(Counter(keys.tolist()))
        assert sketch.entropy_estimate() == pytest.approx(truth, rel=0.12)

    def test_single_flow_low_entropy(self):
        # The degenerate single-flow stream is this estimator's hardest
        # case (Lall et al. handle it by sieving out the top element);
        # the estimate must still be far below any multi-flow entropy.
        sketch = EntropySketch(estimators=400, group_size=40, seed=2)
        sketch.update_batch(np.full(3000, 7, dtype=np.int64))
        assert sketch.entropy_estimate() < 0.8

    def test_uniform_flows_high_entropy(self):
        sketch = EntropySketch(estimators=200, group_size=20, seed=3)
        sketch.update_batch(np.arange(4096, dtype=np.int64))
        # 4096 singletons: H = 12 bits exactly.
        assert sketch.entropy_estimate() == pytest.approx(12.0, rel=0.05)

    def test_empty(self):
        sketch = EntropySketch(seed=4)
        assert sketch.entropy_estimate() == 0.0

    def test_rejects_weights(self):
        sketch = EntropySketch(seed=5)
        with pytest.raises(ValueError):
            sketch.update(1, weight=2.0)

    def test_comparable_to_univmon(self):
        """The specialised sketch and the universal sketch should both be
        within a modest band of the truth (the generality argument)."""
        keys = zipf_keys(40000, 3000, 1.1, seed=6)
        truth = empirical_entropy(Counter(keys.tolist()))
        specialised = EntropySketch(estimators=400, group_size=40, seed=6)
        specialised.update_batch(keys)
        universal = UnivMon(levels=10, depth=5, widths=8192, k=300, seed=6)
        universal.update_batch(keys)
        assert specialised.entropy_estimate() == pytest.approx(truth, rel=0.15)
        assert universal.entropy_estimate() == pytest.approx(truth, rel=0.35)

    def test_reset_and_validation(self):
        sketch = EntropySketch(estimators=50, group_size=10, seed=7)
        sketch.update(1)
        sketch.reset()
        assert sketch.total == 0
        with pytest.raises(ValueError):
            EntropySketch(estimators=0)
        with pytest.raises(ValueError):
            EntropySketch(estimators=10, group_size=20)

    def test_memory(self):
        assert EntropySketch(estimators=100).memory_bytes() == 1600


def _mixed_hierarchy_packets(seed=1):
    """One heavy /32 host + a /16 heavy only in aggregate + background."""
    rng = np.random.default_rng(seed)
    packets = [0x0B0B0B0B] * 3000
    packets += [0x0A010000 | int(v) for v in rng.integers(0, 2**16, size=3000)]
    packets += [int(v) for v in rng.integers(0, 2**32, size=4000)]
    rng.shuffle(packets)
    return packets


class TestConditionedHHH:
    @pytest.mark.parametrize("cls", [HierarchicalHeavyHitters, RandomizedHHH])
    def test_aggregate_and_host_found_at_their_levels(self, cls):
        monitor = cls(counters_per_level=512)
        for address in _mixed_hierarchy_packets():
            monitor.update(address)
        found = {(p, l) for p, l, _ in monitor.hierarchical_heavy_hitters(0.1)}
        assert (0x0A010000, 16) in found  # the scanning subnet, at /16
        assert (0x0B0B0B0B, 32) in found  # the heavy host, at /32

    def test_no_echo_up_the_hierarchy(self):
        """Ancestors of reported HHHs must be discounted, not re-reported."""
        monitor = HierarchicalHeavyHitters(counters_per_level=512)
        for address in _mixed_hierarchy_packets():
            monitor.update(address)
        found = monitor.hierarchical_heavy_hitters(0.1)
        lengths_for_0a = [l for p, l, _ in found if p >> 24 == 0x0A]
        assert lengths_for_0a == [16]  # not also /8
        lengths_for_0b = [l for p, l, _ in found if p >> 24 == 0x0B]
        assert lengths_for_0b == [32]

    def test_conditioned_counts_close_to_truth(self):
        monitor = HierarchicalHeavyHitters(counters_per_level=512)
        for address in _mixed_hierarchy_packets():
            monitor.update(address)
        estimates = {
            (p, l): e for p, l, e in monitor.hierarchical_heavy_hitters(0.1)
        }
        assert estimates[(0x0B0B0B0B, 32)] == pytest.approx(3000, rel=0.1)
        assert estimates[(0x0A010000, 16)] == pytest.approx(3000, rel=0.1)

    def test_randomized_estimates_scaled(self):
        monitor = RandomizedHHH(counters_per_level=512, seed=3)
        for address in _mixed_hierarchy_packets(seed=3):
            monitor.update(address)
        estimates = {
            (p, l): e for p, l, e in monitor.hierarchical_heavy_hitters(0.1)
        }
        assert estimates[(0x0B0B0B0B, 32)] == pytest.approx(3000, rel=0.2)
