"""Tests for the differential/statistical/invariant verify harness.

Two directions:

* the clean tree passes every suite (and the CLI exits 0);
* the harness has *teeth* -- monkeypatching each historical data-plane
  bug back in makes the matching check fail by name, and a
  deliberately-broken sketch is rejected by the differential checks.
"""

import heapq

import numpy as np
import pytest

from repro.cli import main
from repro.core.config import NitroConfig
from repro.core.modes import AlwaysLineRateController
from repro.core.nitro import NitroSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.topk import TopK
from repro.switchsim.daemon import MeasurementDaemon
from repro.verify import (
    CheckResult,
    VerifyReport,
    run_selfcheck,
)
from repro.verify.differential import (
    check_nitro_estimate_envelope,
    check_reset_equivalence,
    check_vanilla_scalar_vs_batch,
)
from repro.verify.invariants import (
    check_daemon_reset,
    check_linerate_coherence,
    check_topk_bound,
)
from repro.verify.statistical import check_epoch_discipline


class TestReportPlumbing:
    def test_result_classmethods(self):
        ok = CheckResult.ok("a.b", "fine", metric=1.0)
        bad = CheckResult.fail("a.c", "broken")
        assert ok.passed and ok.metrics == {"metric": 1.0}
        assert not bad.passed

    def test_report_summary_names_failures(self):
        report = VerifyReport()
        report.add(CheckResult.ok("a.b", "fine"))
        report.add(CheckResult.fail("a.c", "broken"))
        assert not report.passed
        assert [r.name for r in report.failures] == ["a.c"]
        assert "a.c" in report.summary()

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            run_selfcheck(quick=True, suites=["bogus"])


class TestCleanTreePasses:
    def test_quick_selfcheck_all_green(self):
        streamed = []
        report = run_selfcheck(quick=True, on_result=streamed.append)
        assert report.passed, report.summary()
        assert streamed == report.results
        assert len(report.results) >= 15

    def test_cli_selfcheck_quick_exits_zero(self, capsys):
        assert main(["selfcheck", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_cli_suite_filter(self, capsys):
        assert main(["selfcheck", "--quick", "--suite", "invariant"]) == 0
        out = capsys.readouterr().out
        assert "invariant." in out and "differential." not in out

    def test_parallel_suite_registered(self):
        from repro.verify import SUITES

        assert "parallel" in {name for name, _ in SUITES}

    def test_cli_parallel_suite(self, capsys):
        """The parallel suite passes (or skips gracefully) via the CLI."""
        assert main(["selfcheck", "--quick", "--suite", "parallel"]) == 0
        out = capsys.readouterr().out
        assert "parallel.merge_vs_sequential" in out
        assert "FAIL" not in out

    def test_windows_suite_registered(self):
        from repro.verify import SUITES

        assert "windows" in {name for name, _ in SUITES}

    def test_cli_windows_suite(self, capsys):
        """The windowed-substrate suite passes via the CLI."""
        assert main(["selfcheck", "--quick", "--suite", "windows"]) == 0
        out = capsys.readouterr().out
        assert "windows.merged_vs_oracle" in out
        assert "windows.corruption_degradation" in out
        assert "FAIL" not in out


# -- regression teeth: each fixed bug, reverted, must fail its check ------


def _revert_stale_controller_reset(monkeypatch):
    """Bug 1: NitroSketch.reset left AlwaysLineRate's p stale."""
    monkeypatch.setattr(AlwaysLineRateController, "reset", lambda self: None)


def _revert_stale_daemon_reset(monkeypatch):
    """Bug 2: MeasurementDaemon.reset kept ingest/cadence counters."""

    def legacy_reset(self):
        self.ops.reset()
        self.packets_offered = 0
        self._queue.clear()
        self.batches_dropped = 0
        if hasattr(self.monitor, "reset"):
            self.monitor.reset()
        if self.auditor is not None and hasattr(self.auditor, "reset"):
            self.auditor.reset()

    monkeypatch.setattr(MeasurementDaemon, "reset", legacy_reset)


def _revert_per_batch_adaptation(monkeypatch):
    """Bug 3: on_batch re-evaluated the rate on every sub-epoch batch."""

    def legacy_on_batch(self, packet_count, duration_seconds):
        if duration_seconds <= 0:
            return None
        rate_mpps = packet_count / duration_seconds / 1e6
        new_probability = self.config.probability_for_rate(rate_mpps)
        self.telemetry.count("nitro_epochs_total")
        self.telemetry.event(
            "nitro.epoch", rate_mpps=rate_mpps, probability=new_probability
        )
        if new_probability != self.current_probability:
            self.current_probability = new_probability
            self.adjustments.append((None, new_probability))
            return new_probability
        return None

    monkeypatch.setattr(AlwaysLineRateController, "on_batch", legacy_on_batch)


def _revert_unbounded_heap(monkeypatch):
    """Bug 4: every offer heappushed; stale entries never compacted."""

    def legacy_push(self, key, estimate):
        heapq.heappush(self._heap, (estimate, key))

    monkeypatch.setattr(TopK, "_push", legacy_push)


class TestHarnessTeeth:
    def test_stale_controller_reset_fails_reset_equivalence(self, monkeypatch):
        _revert_stale_controller_reset(monkeypatch)
        result = check_reset_equivalence(packets=2_000)
        assert not result.passed
        assert "desync" in result.detail or "p=" in result.detail

    def test_stale_controller_reset_fails_linerate_coherence(self, monkeypatch):
        _revert_stale_controller_reset(monkeypatch)
        result = check_linerate_coherence(packets=3_000)
        assert not result.passed
        assert "desynced" in result.detail

    def test_stale_daemon_reset_fails_daemon_check(self, monkeypatch):
        _revert_stale_daemon_reset(monkeypatch)
        result = check_daemon_reset()
        assert not result.passed
        assert "batches_ingested" in result.detail or "cadence" in result.detail

    def test_per_batch_adaptation_fails_epoch_discipline(self, monkeypatch):
        _revert_per_batch_adaptation(monkeypatch)
        result = check_epoch_discipline(n_batches=120)
        assert not result.passed
        assert "epoch" in result.detail

    def test_unbounded_heap_fails_topk_bound(self, monkeypatch):
        _revert_unbounded_heap(monkeypatch)
        result = check_topk_bound(offers=2_000)
        assert not result.passed
        assert "heap" in result.detail

    def test_cli_exits_nonzero_on_violation(self, monkeypatch, capsys):
        _revert_unbounded_heap(monkeypatch)
        assert main(["selfcheck", "--quick", "--suite", "invariant"]) == 1
        out = capsys.readouterr().out
        assert "invariant.topk_bound" in out and "FAIL" in out


# -- deliberately-broken implementations must be rejected -----------------


class _BatchDropsLastKey(CountSketch):
    """A sketch whose fused batch path silently loses the last packet."""

    def update_batch(self, keys, weights=None, count_packets=True):
        super().update_batch(np.asarray(keys)[:-1], weights, count_packets)


class _UnscaledNitro(NitroSketch):
    """A Nitro whose estimates miss the ``p^-1`` unbiasing (Idea A)."""

    def query(self, key):
        return super().query(key) * self.probability


class TestBrokenImplementationsRejected:
    def test_differential_catches_dropped_packet(self):
        result = check_vanilla_scalar_vs_batch(
            packets=2_000,
            sketch_factory=lambda seed: _BatchDropsLastKey(5, 512, seed),
        )
        assert not result.passed
        assert "diverge" in result.detail or "disagree" in result.detail

    def test_envelope_catches_missing_unbias(self):
        results = check_nitro_estimate_envelope(
            nitro_factory=lambda: _UnscaledNitro(
                CountSketch(5, 2048, 0),
                NitroConfig(probability=0.1, top_k=64, seed=0),
            )
        )
        verdicts = {r.name: r.passed for r in results}
        assert verdicts["differential.envelope_oracle_vanilla"]
        for label in ("scalar", "batch", "merge"):
            assert not verdicts["differential.envelope_%s" % label]
