"""Tests for repro.hashing.prng."""

import pytest
from hypothesis import given, strategies as st

from repro.hashing.prng import MASK64, SplitMix64, XorShift64Star


class TestSplitMix64:
    def test_deterministic(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SplitMix64(1)
        b = SplitMix64(2)
        assert a.next_u64() != b.next_u64()

    def test_output_is_64_bit(self):
        rng = SplitMix64(123)
        for _ in range(100):
            assert 0 <= rng.next_u64() <= MASK64

    def test_zero_seed_works(self):
        rng = SplitMix64(0)
        values = [rng.next_u64() for _ in range(5)]
        assert len(set(values)) == 5

    def test_known_vector(self):
        # Reference output for seed 0 from the SplitMix64 paper's C code.
        rng = SplitMix64(0)
        assert rng.next_u64() == 0xE220A8397B1DCDAF

    def test_next_nonzero_skips_zero(self):
        rng = SplitMix64(99)
        for _ in range(100):
            assert rng.next_nonzero_u64() != 0

    @given(st.integers(min_value=0, max_value=MASK64))
    def test_any_seed_valid(self, seed):
        rng = SplitMix64(seed)
        assert 0 <= rng.next_u64() <= MASK64


class TestXorShift64Star:
    def test_deterministic(self):
        a = XorShift64Star(7)
        b = XorShift64Star(7)
        assert [a.next_u64() for _ in range(10)] == [b.next_u64() for _ in range(10)]

    def test_zero_seed_replaced(self):
        rng = XorShift64Star(0)
        assert rng.next_u64() != 0

    def test_float_range(self):
        rng = XorShift64Star(5)
        for _ in range(1000):
            value = rng.next_float()
            assert 0.0 <= value < 1.0

    def test_float_roughly_uniform(self):
        rng = XorShift64Star(5)
        values = [rng.next_float() for _ in range(20000)]
        mean = sum(values) / len(values)
        assert abs(mean - 0.5) < 0.02

    def test_next_below_range(self):
        rng = XorShift64Star(11)
        for _ in range(1000):
            assert 0 <= rng.next_below(7) < 7

    def test_next_below_covers_all_values(self):
        rng = XorShift64Star(13)
        seen = {rng.next_below(4) for _ in range(500)}
        assert seen == {0, 1, 2, 3}

    def test_next_below_rejects_nonpositive(self):
        rng = XorShift64Star(1)
        with pytest.raises(ValueError):
            rng.next_below(0)

    def test_state_roundtrip(self):
        rng = XorShift64Star(99)
        rng.next_u64()
        state = rng.getstate()
        expected = [rng.next_u64() for _ in range(5)]
        rng.setstate(state)
        assert [rng.next_u64() for _ in range(5)] == expected

    def test_setstate_rejects_zero(self):
        rng = XorShift64Star(1)
        with pytest.raises(ValueError):
            rng.setstate(0)

    def test_bit_balance(self):
        rng = XorShift64Star(3)
        ones = sum(bin(rng.next_u64()).count("1") for _ in range(2000))
        # ~32 bits set on average out of 64.
        assert abs(ones / 2000 - 32) < 1.0


class TestXorShiftBulkFill:
    """fill_u64/fill_floats must be bit-identical to scalar draws."""

    @pytest.mark.parametrize("count", [1, 7, 63, 4095, 4096, 4097, 10_000])
    def test_fill_u64_matches_scalar(self, count):
        import numpy as np

        scalar = XorShift64Star(99)
        expected = [scalar.next_u64() for _ in range(count)]
        vector = XorShift64Star(99)
        outputs = vector.fill_u64(count)
        assert outputs.dtype == np.uint64
        assert outputs.tolist() == expected
        # The generator lands in the exact state scalar draws leave.
        assert vector.getstate() == scalar.getstate()

    def test_fill_u64_continuation(self):
        scalar = XorShift64Star(12345)
        expected = [scalar.next_u64() for _ in range(9000)]
        vector = XorShift64Star(12345)
        got = vector.fill_u64(5000).tolist() + vector.fill_u64(4000).tolist()
        assert got == expected

    def test_fill_u64_zero_and_negative(self):
        rng = XorShift64Star(1)
        before = rng.getstate()
        assert rng.fill_u64(0).size == 0
        assert rng.getstate() == before
        with pytest.raises(ValueError):
            rng.fill_u64(-1)

    def test_fill_floats_matches_scalar(self):
        scalar = XorShift64Star(5)
        expected = [scalar.next_float() for _ in range(2000)]
        vector = XorShift64Star(5)
        assert vector.fill_floats(2000).tolist() == expected
