"""Shared test configuration.

Pins a hypothesis profile suited to this suite: statistical assertions
on sketches are deliberately generous, but they still benefit from a
fixed derandomised search so CI runs are reproducible.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
