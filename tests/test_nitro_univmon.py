"""Tests for the whole-structure NitroUnivMon integration."""

from collections import Counter

import numpy as np
import pytest

from repro.core import NitroConfig, NitroMode, NitroUnivMon, nitro_univmon
from repro.metrics.accuracy import empirical_entropy
from repro.metrics.opcount import OpCounter
from repro.sketches import UnivMon
from repro.traffic import zipf_keys


def make(probability=0.05, levels=8, widths=4096, k=100, seed=3, **kwargs):
    config = NitroConfig(probability=probability, top_k=k, seed=seed, **kwargs)
    return NitroUnivMon(levels=levels, depth=5, widths=widths, k=k, config=config)


class TestExactPhase:
    def test_p_one_matches_vanilla_counters(self):
        keys = zipf_keys(8000, 1000, 1.2, seed=2)
        vanilla = UnivMon(levels=6, depth=5, widths=1024, k=50, seed=4)
        nitro = make(probability=1.0, levels=6, widths=1024, k=50, seed=4)
        for key in keys.tolist():
            vanilla.update(key)
            nitro.update(key)
        for level in range(6):
            assert np.allclose(
                vanilla.sketches[level].sketch.counters,
                nitro.sketches[level].sketch.counters,
            )

    def test_p_one_batch_matches_vanilla(self):
        keys = zipf_keys(8000, 1000, 1.2, seed=2)
        vanilla = UnivMon(levels=6, depth=5, widths=1024, k=50, seed=4)
        nitro = make(probability=1.0, levels=6, widths=1024, k=50, seed=4)
        vanilla.update_batch(keys)
        nitro.update_batch(keys)
        for level in range(6):
            assert np.allclose(
                vanilla.sketches[level].sketch.counters,
                nitro.sketches[level].sketch.counters,
            )
        assert nitro.total == vanilla.total


class TestSampledPhase:
    def test_heavy_flow_estimate_unbiased(self):
        keys = zipf_keys(120000, 4000, 1.2, seed=5)
        nitro = make(probability=0.05, widths=8192, seed=5)
        nitro.update_batch(keys)
        truth = Counter(keys.tolist())
        top = max(truth, key=truth.get)
        assert nitro.query(int(top)) == pytest.approx(truth[top], rel=0.12)

    def test_scalar_heavy_flow_estimate(self):
        keys = zipf_keys(60000, 2000, 1.3, seed=6)
        nitro = make(probability=0.05, widths=8192, seed=6)
        for key in keys.tolist():
            nitro.update(key)
        truth = Counter(keys.tolist())
        top = max(truth, key=truth.get)
        assert nitro.query(int(top)) == pytest.approx(truth[top], rel=0.15)

    def test_deeper_levels_receive_updates(self):
        keys = zipf_keys(100000, 2000, 1.1, seed=7)
        nitro = make(probability=0.1, seed=7)
        nitro.update_batch(keys)
        touched = sum(
            1
            for level in range(nitro.levels)
            if np.any(nitro.sketches[level].sketch.counters != 0)
        )
        assert touched >= 4  # several substream levels active

    def test_entropy_reasonable_after_enough_packets(self):
        keys = zipf_keys(200000, 3000, 1.2, seed=8)
        nitro = make(probability=0.1, levels=10, widths=8192, k=300, seed=8)
        nitro.update_batch(keys)
        truth = empirical_entropy(Counter(keys.tolist()))
        assert nitro.entropy_estimate() == pytest.approx(truth, rel=0.45)

    def test_unsampled_packets_hash_free(self):
        nitro = make(probability=0.001, k=0 or 1, seed=9)
        ops = OpCounter()
        nitro.ops = ops
        for key in range(20000):
            nitro.update(key)
        # slots/packet = 8*5*0.001 = 0.04; hashes ~ membership + row
        # updates + occasional topk queries -- far below 1 per packet.
        assert ops.hashes < 0.5 * 20000
        assert ops.packets == 20000

    def test_packets_sampled_fraction(self):
        probability = 0.02
        nitro = make(probability=probability, levels=8, seed=10)
        keys = zipf_keys(30000, 1000, 1.0, seed=10)
        nitro.update_batch(keys)
        # Level-0 slots alone give 1-(1-p)^5 ~ 9.6%; deeper levels add a
        # little; membership-filtered slots subtract.  Just check sanity.
        fraction = nitro.packets_sampled / nitro.packets_seen
        assert 0.01 < fraction < 0.5


class TestModes:
    def test_always_correct_warmup_then_sampling(self):
        nitro = make(
            probability=0.1,
            levels=6,
            widths=2048,
            seed=11,
            mode=NitroMode.ALWAYS_CORRECT,
            epsilon=0.5,
            convergence_check_period=1000,
        )
        assert not nitro.converged
        nitro.update_batch(np.full(50000, 7, dtype=np.int64))
        assert nitro.converged
        assert nitro.probability == 0.1

    def test_always_line_rate_batch(self):
        nitro = make(
            probability=1.0, levels=6, seed=12, mode=NitroMode.ALWAYS_LINE_RATE
        )
        # 8 Mpps offered in 10 ms batches: adaptation waits for a full
        # 100 ms epoch to accumulate, then the ladder sets p to 1/16
        # (0.625 / 8 = 0.078, mid-rung so float drift cannot flip it).
        for _ in range(9):
            nitro.update_batch(np.arange(80_000), duration_seconds=0.01)
            assert nitro.probability == 1.0  # epoch still open
        for _ in range(2):
            nitro.update_batch(np.arange(80_000), duration_seconds=0.01)
        assert nitro.probability == 1 / 16


class TestFactoryAndLifecycle:
    def test_factory_default_is_whole_structure(self):
        monitor = nitro_univmon(levels=6, widths=512, probability=0.1, seed=1)
        assert isinstance(monitor, NitroUnivMon)

    def test_factory_per_level(self):
        monitor = nitro_univmon(
            levels=6, widths=512, probability=0.1, seed=1, integration="per_level"
        )
        assert isinstance(monitor, UnivMon)
        assert not isinstance(monitor, NitroUnivMon)

    def test_factory_rejects_unknown_integration(self):
        with pytest.raises(ValueError):
            nitro_univmon(integration="magic")

    def test_reset(self):
        nitro = make(probability=0.5, seed=13)
        nitro.update_batch(zipf_keys(5000, 100, 1.0, seed=13))
        nitro.reset()
        assert nitro.packets_seen == 0
        assert nitro.packets_sampled == 0
        assert nitro.total == 0.0

    def test_config_kwargs_exclusive(self):
        with pytest.raises(TypeError):
            NitroUnivMon(config=NitroConfig(), probability=0.5)

    def test_heavy_hitters_work(self):
        keys = zipf_keys(80000, 3000, 1.3, seed=14)
        nitro = make(probability=0.05, k=100, seed=14)
        nitro.update_batch(keys)
        truth = Counter(keys.tolist())
        top3 = [key for key, _ in truth.most_common(3)]
        hitters = [key for key, _ in nitro.heavy_hitters(0)]
        for key in top3:
            assert key in hitters
