"""Bit-exactness and accounting tests for the fused batch kernels.

The kernel layer (:mod:`repro.kernels`) re-implements every batch hot
path -- k-wise Mersenne hashing, whole-sketch row hashing, flat-index
scatter-adds, batch point queries -- in pure ``uint64``/vectorised
NumPy.  These tests pin the contract: every kernel path must agree with
the scalar reference implementation element for element, and the
operation accounting of the batch entry points must match the scalar
workflow exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.families import (
    MERSENNE_PRIME_61,
    KWiseHash,
    MultiplyShiftHash,
    MultiplyShiftSign,
    SignHash,
)
from repro.hashing.rowhash import XXHashRowHash, XXHashRowSign
from repro.hashing.tabulation import TabulationHash
from repro.hashing.xxhash import xxhash32_batch, xxhash32_u64
from repro.kernels import (
    SketchKernel,
    fold_mersenne,
    kwise_raw_batch,
    mulmod_mersenne,
    reduce_keys_mersenne,
    scatter_add_2d,
    scatter_add_flat,
)
from repro.metrics.opcount import OpCounter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch

#: Keys that exercise every reduction boundary: zero, small, 32-bit
#: edges, the Mersenne prime itself and its neighbours, and the top of
#: the 64-bit range.
EDGE_KEYS = [
    0,
    1,
    2,
    1 << 31,
    (1 << 32) - 1,
    1 << 32,
    MERSENNE_PRIME_61 - 2,
    MERSENNE_PRIME_61 - 1,
    MERSENNE_PRIME_61,
    MERSENNE_PRIME_61 + 1,
    (1 << 63) - 1,
    (1 << 64) - 1,
]

SKETCHES = [CountMinSketch, CountSketch, KArySketch]
FAMILIES = ["multiply_shift", "xxhash"]


def _keys(n: int = 257, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    drawn = rng.integers(0, 1 << 63, size=n, dtype=np.int64)
    return np.concatenate([np.array(EDGE_KEYS, dtype=np.uint64).astype(np.int64), drawn])


# -- Mersenne field kernel -------------------------------------------------


def test_fold_mersenne_matches_modulo_for_all_uint64_edges():
    values = np.array(
        EDGE_KEYS + [(1 << 61) + 7, (1 << 62) - 1, (1 << 62)], dtype=np.uint64
    )
    expected = np.array([int(v) % MERSENNE_PRIME_61 for v in values], dtype=np.uint64)
    np.testing.assert_array_equal(fold_mersenne(values), expected)


def test_mulmod_mersenne_congruent_and_bounded():
    rng = np.random.default_rng(7)
    a = rng.integers(0, MERSENNE_PRIME_61, size=512, dtype=np.uint64)
    b = rng.integers(0, MERSENNE_PRIME_61, size=512, dtype=np.uint64)
    # Include the extreme field elements.
    a[:2] = [MERSENNE_PRIME_61 - 1, 0]
    b[:2] = [MERSENNE_PRIME_61 - 1, MERSENNE_PRIME_61 - 1]
    raw = mulmod_mersenne(a, b)
    assert int(raw.max()) < 5 * (1 << 61)  # fits the documented headroom
    got = fold_mersenne(raw)
    expected = np.array(
        [(int(x) * int(y)) % MERSENNE_PRIME_61 for x, y in zip(a, b)], dtype=np.uint64
    )
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("dtype", [np.int64, np.uint64, object])
def test_reduce_keys_matches_python_mod(dtype):
    if dtype is object:
        keys = np.array([-5, -1, 0, 3, MERSENNE_PRIME_61 * 3 + 11, 1 << 80], dtype=object)
    elif dtype is np.int64:
        keys = np.array([-5, -1, 0, 3, (1 << 62) + 9], dtype=np.int64)
    else:
        keys = np.array(EDGE_KEYS, dtype=np.uint64)
    got = reduce_keys_mersenne(keys)
    assert got.dtype == np.uint64
    expected = np.array([int(k) % MERSENNE_PRIME_61 for k in keys], dtype=np.uint64)
    np.testing.assert_array_equal(got, expected)


@pytest.mark.parametrize("k", [1, 2, 3, 4])
@pytest.mark.parametrize("width", [1, 2, 977, 1 << 20])
def test_kwise_batch_bit_exact_with_scalar(k, width):
    h = KWiseHash(k, width, seed=0xC0FFEE + k)
    keys = _keys(seed=k)
    raw = h.raw_batch(keys)
    assert raw.dtype == np.uint64
    np.testing.assert_array_equal(
        raw, np.array([h.raw(int(key)) for key in keys], dtype=np.uint64)
    )
    buckets = h.batch(keys)
    assert buckets.dtype == np.int64
    np.testing.assert_array_equal(
        buckets, np.array([h(int(key)) for key in keys], dtype=np.int64)
    )


def test_kwise_batch_handles_negative_keys():
    h = KWiseHash(4, 1024, seed=42)
    keys = np.array([-1, -7, -(1 << 40), np.iinfo(np.int64).min], dtype=np.int64)
    np.testing.assert_array_equal(
        h.batch(keys), np.array([h(int(key)) for key in keys], dtype=np.int64)
    )


def test_kwise_coefficients_are_native_uint64():
    # The tentpole contract: no object-dtype big-int arrays anywhere in
    # the batch path.
    h = KWiseHash(4, 1024, seed=9)
    assert h._coeffs_u64.dtype == np.uint64
    assert kwise_raw_batch(np.array([3], dtype=np.uint64), h._coeffs_u64).dtype == np.uint64


def test_kwise_horner_partial_reduction_worst_case():
    # All-max coefficients with the largest field element keeps the
    # accumulator at the partial-reduction ceiling every iteration.
    coeffs = np.full(8, MERSENNE_PRIME_61 - 1, dtype=np.uint64)
    keys = np.array([MERSENNE_PRIME_61 - 1, MERSENNE_PRIME_61 - 2], dtype=np.uint64)
    got = kwise_raw_batch(keys, coeffs)
    for key, value in zip(keys.tolist(), got.tolist()):
        acc = 0
        for coeff in coeffs.tolist():
            acc = (acc * key + coeff) % MERSENNE_PRIME_61
        assert value == acc


# -- hash family batch parity ----------------------------------------------


@pytest.mark.parametrize(
    "make",
    [
        lambda: SignHash(seed=123),
        lambda: SignHash(seed=123, constant_one=True),
        lambda: MultiplyShiftSign(seed=77),
        lambda: MultiplyShiftSign(seed=77, constant_one=True),
        lambda: XXHashRowSign(seed=55),
        lambda: XXHashRowSign(seed=55, constant_one=True),
    ],
    ids=["sign", "sign-one", "ms-sign", "ms-sign-one", "xx-sign", "xx-sign-one"],
)
def test_sign_batch_matches_scalar(make):
    h = make()
    keys = _keys(seed=3)
    got = h.batch(keys)
    assert got.dtype == np.int64
    np.testing.assert_array_equal(
        got, np.array([h(int(key)) for key in keys], dtype=np.int64)
    )


@pytest.mark.parametrize("width", [1, 2, 977, 1 << 20])
def test_multiply_shift_batch_matches_scalar(width):
    h = MultiplyShiftHash(width, seed=31337)
    keys = _keys(seed=5)
    np.testing.assert_array_equal(
        h.batch(keys), np.array([h(int(key)) for key in keys], dtype=np.int64)
    )


@pytest.mark.parametrize("width", [1, 977, 1 << 20])
def test_xxhash_rowhash_batch_matches_scalar(width):
    h = XXHashRowHash(width, seed=99)
    keys = _keys(seed=6)
    np.testing.assert_array_equal(
        h.batch(keys), np.array([h(int(key)) for key in keys], dtype=np.int64)
    )


def test_xxhash32_batch_array_seed_matches_int_seed():
    keys = _keys(seed=8).astype(np.uint64)
    seeds = np.array([0, 1, 0xDEADBEEF], dtype=np.uint64)[:, None]
    fused = xxhash32_batch(keys, seeds)
    assert fused.shape == (3, len(keys))
    for i, seed in enumerate(seeds.ravel().tolist()):
        np.testing.assert_array_equal(fused[i], xxhash32_batch(keys, int(seed)))
        assert int(fused[i, 0]) == xxhash32_u64(int(keys[0]), int(seed))


def test_tabulation_batch_matches_scalar():
    h = TabulationHash(seed=2024, width=4096)
    keys = _keys(seed=9)
    np.testing.assert_array_equal(
        h.batch(keys),
        np.array([h.hash64(int(key)) for key in keys], dtype=np.uint64),
    )
    np.testing.assert_array_equal(
        h.batch_ranged(keys),
        np.array(
            [h.hash64(int(key)) % 4096 for key in keys], dtype=np.int64
        ),
    )


# -- scatter kernels -------------------------------------------------------


@pytest.mark.parametrize("size,n", [(64, 1000), (1 << 16, 10)], ids=["dense", "sparse"])
def test_scatter_add_flat_matches_add_at(size, n):
    rng = np.random.default_rng(11)
    indices = rng.integers(0, size, size=n, dtype=np.int64)
    values = rng.normal(size=n)
    got = np.zeros(size)
    scatter_add_flat(got, indices, values)
    expected = np.zeros(size)
    np.add.at(expected, indices, values)
    np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)


def test_scatter_add_2d_broadcasts_matrix_updates():
    rng = np.random.default_rng(12)
    counters = np.zeros((4, 32))
    rows = np.arange(4)[:, None]
    buckets = rng.integers(0, 32, size=(4, 100), dtype=np.int64)
    values = rng.normal(size=(4, 100))
    scatter_add_2d(counters, rows, buckets, values)
    expected = np.zeros((4, 32))
    np.add.at(expected, (np.broadcast_to(rows, buckets.shape), buckets), values)
    np.testing.assert_allclose(counters, expected, rtol=1e-12, atol=1e-12)


def test_scatter_add_2d_non_contiguous_fallback():
    base = np.zeros((4, 64))
    view = base[:, ::2]  # not C-contiguous
    rows = np.array([0, 1, 1, 3])
    buckets = np.array([5, 7, 7, 0])
    scatter_add_2d(view, rows, buckets, np.ones(4))
    assert view[1, 7] == 2.0 and view[0, 5] == 1.0 and view[3, 0] == 1.0


# -- whole-sketch kernel parity --------------------------------------------


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("sketch_cls", SKETCHES)
def test_kernel_matrices_match_scalar_rows(sketch_cls, family):
    sketch = sketch_cls(depth=4, width=512, seed=17, hash_family=family)
    kernel = sketch.kernel
    assert isinstance(kernel, SketchKernel)
    keys = _keys(seed=13)
    buckets = kernel.bucket_matrix(keys)
    for row in range(sketch.depth):
        np.testing.assert_array_equal(
            buckets[row],
            np.array([sketch.row_hashes[row](int(k)) for k in keys], dtype=np.int64),
        )
    signs = kernel.sign_matrix(keys)
    if not sketch.signed:
        assert signs is None
    else:
        for row in range(sketch.depth):
            np.testing.assert_array_equal(
                signs[row].astype(np.int64),
                np.array([sketch.row_signs[row](int(k)) for k in keys], dtype=np.int64),
            )


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("signed", [False, True])
def test_kernel_slot_paths_match_scalar(family, signed):
    sketch_cls = CountSketch if signed else CountMinSketch
    sketch = sketch_cls(depth=5, width=256, seed=23, hash_family=family)
    kernel = sketch.kernel
    rng = np.random.default_rng(14)
    rows = rng.integers(0, 5, size=400, dtype=np.int64)
    keys = _keys(n=400 - len(EDGE_KEYS), seed=15)[:400]
    rows = rows[: len(keys)]
    buckets = kernel.slot_buckets(rows, keys)
    expected = np.array(
        [sketch.row_hashes[int(r)](int(k)) for r, k in zip(rows, keys)], dtype=np.int64
    )
    np.testing.assert_array_equal(buckets, expected)
    signs = kernel.slot_signs(rows, keys)
    if signed:
        expected_signs = np.array(
            [sketch.row_signs[int(r)](int(k)) for r, k in zip(rows, keys)],
            dtype=np.int64,
        )
        np.testing.assert_array_equal(signs.astype(np.int64), expected_signs)
    else:
        assert signs is None


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("sketch_cls", SKETCHES)
def test_update_batch_counters_bit_equal_scalar(sketch_cls, family):
    scalar = sketch_cls(depth=5, width=128, seed=3, hash_family=family)
    batch = sketch_cls(depth=5, width=128, seed=3, hash_family=family)
    rng = np.random.default_rng(16)
    keys = rng.integers(0, 5000, size=4000, dtype=np.int64)
    for key in keys.tolist():
        scalar.update(key)
    batch.update_batch(keys)
    # Unit weights sum to integers: the scatter order cannot change the
    # result, so equality is exact.
    np.testing.assert_array_equal(scalar.counters, batch.counters)


@pytest.mark.parametrize("sketch_cls", SKETCHES)
def test_update_batch_weighted_matches_scalar(sketch_cls):
    scalar = sketch_cls(depth=5, width=128, seed=4)
    batch = sketch_cls(depth=5, width=128, seed=4)
    rng = np.random.default_rng(17)
    keys = rng.integers(0, 500, size=1000, dtype=np.int64)
    weights = rng.uniform(0.5, 4.0, size=1000)
    for key, weight in zip(keys.tolist(), weights.tolist()):
        scalar.update(key, weight)
    batch.update_batch(keys, weights)
    np.testing.assert_allclose(scalar.counters, batch.counters, rtol=1e-9)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("sketch_cls", SKETCHES)
def test_query_batch_matches_scalar_query(sketch_cls, family):
    sketch = sketch_cls(depth=5, width=128, seed=5, hash_family=family)
    rng = np.random.default_rng(18)
    keys = rng.integers(0, 2000, size=3000, dtype=np.int64)
    sketch.update_batch(keys)
    probe = np.arange(0, 2500, dtype=np.int64)  # includes unseen keys
    got = sketch.query_batch(probe)
    expected = np.array([sketch.query(int(k)) for k in probe], dtype=np.float64)
    np.testing.assert_array_equal(got, expected)


def test_query_batch_empty():
    sketch = CountSketch(depth=3, width=64, seed=1)
    assert sketch.query_batch(np.array([], dtype=np.int64)).shape == (0,)


# -- operation accounting --------------------------------------------------


@pytest.mark.parametrize("sketch_cls", SKETCHES)
def test_update_batch_ops_match_scalar(sketch_cls):
    keys = np.arange(500, dtype=np.int64)
    scalar = sketch_cls(depth=5, width=64, seed=6)
    scalar.ops = OpCounter()
    for key in keys.tolist():
        scalar.update(key)
    batch = sketch_cls(depth=5, width=64, seed=6)
    batch.ops = OpCounter()
    batch.update_batch(keys)
    assert batch.ops.as_dict() == scalar.ops.as_dict()


@pytest.mark.parametrize("sketch_cls", SKETCHES)
def test_query_batch_ops_match_scalar(sketch_cls):
    keys = np.arange(300, dtype=np.int64)
    sketch = sketch_cls(depth=5, width=64, seed=7)
    sketch.update_batch(keys)
    sketch.ops = OpCounter()
    for key in keys.tolist():
        sketch.query(int(key))
    scalar_ops = sketch.ops.as_dict()
    sketch.ops = OpCounter()
    sketch.query_batch(keys)
    assert sketch.ops.as_dict() == scalar_ops


def test_count_packets_false_skips_only_packet_tally():
    keys = np.arange(100, dtype=np.int64)
    counted = CountMinSketch(depth=4, width=64, seed=8)
    counted.ops = OpCounter()
    counted.update_batch(keys)
    uncounted = CountMinSketch(depth=4, width=64, seed=8)
    uncounted.ops = OpCounter()
    uncounted.update_batch(keys, count_packets=False)
    expected = counted.ops.as_dict()
    expected["packets"] = 0
    assert uncounted.ops.as_dict() == expected
    np.testing.assert_array_equal(counted.counters, uncounted.counters)


# -- NitroSketch sampled-slot parity ---------------------------------------


def _legacy_slot_update(sketch, rows, keys, values):
    """The seed implementation's per-row mask + ``np.add.at`` loop."""
    for row in range(sketch.depth):
        mask = rows == row
        if not np.any(mask):
            continue
        row_keys = keys[mask]
        buckets = sketch.row_hashes[row].batch(row_keys)
        signs = sketch.row_signs[row].batch(row_keys)
        np.add.at(sketch.counters[row], buckets, values[mask] * signs)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("sketch_cls", SKETCHES)
def test_slot_update_matches_legacy_reference(sketch_cls, family):
    fused = sketch_cls(depth=5, width=256, seed=9, hash_family=family)
    legacy = sketch_cls(depth=5, width=256, seed=9, hash_family=family)
    rng = np.random.default_rng(19)
    rows = rng.integers(0, 5, size=5000, dtype=np.int64)
    keys = rng.integers(0, 3000, size=5000, dtype=np.int64)
    values = np.full(5000, 20.0)  # p**-1-scaled unit weights
    fused.kernel.slot_update(rows, keys, values)
    _legacy_slot_update(legacy, rows, keys, values)
    np.testing.assert_allclose(fused.counters, legacy.counters, rtol=1e-12)


def test_kernel_reads_counters_after_reset_and_merge():
    sketch = CountSketch(depth=3, width=64, seed=10)
    keys = np.arange(200, dtype=np.int64)
    sketch.update_batch(keys)
    kernel = sketch.kernel
    sketch.reset()
    assert float(np.abs(kernel.estimate_matrix(keys)).max()) == 0.0
    other = CountSketch(depth=3, width=64, seed=10)
    other.update_batch(keys)
    sketch.merge(other)
    np.testing.assert_array_equal(
        kernel.estimate_matrix(keys), other.kernel.estimate_matrix(keys)
    )
