"""Tests for Count-Min Sketch (and the conservative-update variant)."""

import math
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.opcount import OpCounter
from repro.sketches import ConservativeCountMinSketch, CountMinSketch

KEY_LISTS = st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300)


class TestCountMin:
    def test_exact_without_collisions(self):
        cms = CountMinSketch(4, 4096, seed=1)
        for _ in range(10):
            cms.update(42)
        assert cms.query(42) == 10.0

    def test_unseen_key_small(self):
        cms = CountMinSketch(4, 4096, seed=1)
        cms.update(1)
        assert cms.query(999) <= 1.0

    @given(KEY_LISTS)
    @settings(max_examples=60, deadline=None)
    def test_never_underestimates(self, keys):
        """The CMS invariant: query(x) >= true frequency, always."""
        cms = CountMinSketch(3, 64, seed=7)
        for key in keys:
            cms.update(key)
        truth = Counter(keys)
        for key, count in truth.items():
            assert cms.query(key) >= count

    @given(KEY_LISTS)
    @settings(max_examples=30, deadline=None)
    def test_l1_error_bound(self, keys):
        """query(x) <= f_x + (e/w) * L1 whp; with d=5 rows failure is rare
        enough to assert deterministically at this scale."""
        width = 64
        cms = CountMinSketch(5, width, seed=11)
        for key in keys:
            cms.update(key)
        truth = Counter(keys)
        bound = math.e / width * len(keys)
        for key, count in truth.items():
            assert cms.query(key) <= count + max(bound, 1) * 6

    def test_weighted_updates(self):
        cms = CountMinSketch(4, 1024, seed=2)
        cms.update(5, weight=3.5)
        assert cms.query(5) >= 3.5

    def test_batch_matches_scalar(self):
        keys = np.array([1, 2, 3, 1, 2, 1] * 50)
        a = CountMinSketch(4, 256, seed=3)
        b = CountMinSketch(4, 256, seed=3)
        for key in keys.tolist():
            a.update(key)
        b.update_batch(keys)
        assert np.allclose(a.counters, b.counters)

    def test_merge(self):
        a = CountMinSketch(3, 128, seed=4)
        b = CountMinSketch(3, 128, seed=4)
        a.update(1)
        b.update(1)
        a.merge(b)
        assert a.query(1) == 2.0

    def test_merge_requires_same_config(self):
        a = CountMinSketch(3, 128, seed=4)
        b = CountMinSketch(3, 128, seed=5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_reset(self):
        cms = CountMinSketch(3, 128, seed=4)
        cms.update(1)
        cms.reset()
        assert cms.query(1) == 0.0

    def test_from_error_bounds_sizing(self):
        cms = CountMinSketch.from_error_bounds(0.01, 0.01)
        assert cms.width >= math.e / 0.01 - 1
        assert cms.depth >= math.log(100) - 1

    def test_from_error_bounds_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch.from_error_bounds(0, 0.1)
        with pytest.raises(ValueError):
            CountMinSketch.from_error_bounds(0.1, 1.5)

    def test_memory_bytes(self):
        assert CountMinSketch(5, 10000).memory_bytes() == 5 * 10000 * 4

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 10)
        with pytest.raises(ValueError):
            CountMinSketch(1, 0)

    def test_ops_accounting(self):
        cms = CountMinSketch(5, 128, seed=1)
        ops = OpCounter()
        cms.ops = ops
        cms.update(1)
        assert ops.packets == 1
        assert ops.hashes == 5
        assert ops.counter_updates == 5

    def test_update_and_estimate_matches_query(self):
        cms = CountMinSketch(5, 1024, seed=9)
        estimate = cms.update_and_estimate(3)
        assert estimate == cms.query(3)

    def test_row_sum_of_squares(self):
        cms = CountMinSketch(2, 64, seed=1)
        cms.update(1, 3.0)
        assert cms.row_sum_of_squares(0) == pytest.approx(9.0)


class TestConservativeCountMin:
    @given(KEY_LISTS)
    @settings(max_examples=40, deadline=None)
    def test_still_never_underestimates(self, keys):
        sketch = ConservativeCountMinSketch(3, 64, seed=5)
        for key in keys:
            sketch.update(key)
        truth = Counter(keys)
        for key, count in truth.items():
            assert sketch.query(key) >= count

    @given(KEY_LISTS)
    @settings(max_examples=40, deadline=None)
    def test_at_most_vanilla_estimate(self, keys):
        """Conservative update strictly dominates plain CMS."""
        vanilla = CountMinSketch(3, 32, seed=6)
        conservative = ConservativeCountMinSketch(3, 32, seed=6)
        for key in keys:
            vanilla.update(key)
            conservative.update(key)
        for key in set(keys):
            assert conservative.query(key) <= vanilla.query(key) + 1e-9
