"""Crash-safety tests: wire format, checkpoints, fault injection, chaos.

The acceptance bar for the serialization layer is *byte-exactness*:
``serialize(deserialize(blob)) == blob``, and a restored monitor fed the
same further traffic as the original serializes identically again -- a
restored sketch is indistinguishable from one that never crashed.
"""

import os
import zlib

import numpy as np
import pytest

from repro.control import (
    CheckpointManager,
    ControlPlane,
    deserialize_monitor,
    deserialize_sketch,
    serialize_monitor,
    serialize_sketch,
)
from repro.control import export
from repro.control.tasks import HeavyHitterTask
from repro.core import NitroConfig, NitroMode, NitroSketch
from repro.core.univmon_nitro import NitroUnivMon
from repro.faults import LossyChannel, corrupt_file, truncate_file
from repro.faults.chaos import ChaosRunner
from repro.sketches import CountMinSketch, CountSketch, KArySketch
from repro.sketches.univmon import UnivMon
from repro.switchsim.daemon import MeasurementDaemon
from repro.telemetry import Telemetry
from repro.telemetry.health import CheckpointStalenessRule, sample_value
from repro.traffic import caida_like
from repro.traffic.replay import Replayer


def _monitor_zoo(seed):
    """One of every serializable monitor shape, with live mutable state."""
    return [
        CountSketch(3, 256, seed),
        NitroSketch(
            CountSketch(3, 512, seed),
            NitroConfig(probability=0.25, top_k=16, seed=seed),
        ),
        NitroSketch(
            CountMinSketch(3, 256, seed),
            NitroConfig(
                probability=0.5,
                epsilon=0.5,
                mode=NitroMode.ALWAYS_CORRECT,
                convergence_check_period=100,
                top_k=8,
                seed=seed,
            ),
        ),
        NitroSketch(
            KArySketch(3, 256, seed),
            NitroConfig(
                probability=0.25,
                mode=NitroMode.ALWAYS_LINE_RATE,
                top_k=8,
                seed=seed,
            ),
        ),
        UnivMon(levels=4, depth=3, widths=128, k=8, seed=seed),
        NitroUnivMon(
            levels=4, depth=3, widths=128, k=8, probability=0.25, seed=seed
        ),
    ]


def _ingest(monitor, keys):
    monitor.update_batch(keys)
    # Scalar-path updates too, so the geometric _pending cursor and the
    # scalar PRNG state are both mid-flight at serialization time.
    for key in keys[:17].tolist():
        monitor.update(key)


class TestWireFormatRoundTrip:
    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_byte_exact_over_monitor_zoo(self, seed):
        trace = caida_like(2_000, n_flows=300, seed=seed)
        for monitor in _monitor_zoo(seed):
            _ingest(monitor, trace.keys)
            blob = serialize_monitor(monitor)
            restored = deserialize_monitor(blob)
            assert type(restored) is type(monitor)
            assert serialize_monitor(restored) == blob

    @pytest.mark.parametrize("seed", [0, 17])
    def test_restored_monitor_replays_identically(self, seed):
        trace = caida_like(3_000, n_flows=300, seed=seed)
        head, tail = trace.keys[:2_000], trace.keys[2_000:]
        for monitor in _monitor_zoo(seed):
            _ingest(monitor, head)
            restored = deserialize_monitor(serialize_monitor(monitor))
            _ingest(monitor, tail)
            _ingest(restored, tail)
            assert serialize_monitor(restored) == serialize_monitor(monitor)

    def test_sketch_frame_rejected_by_monitor_mismatch(self):
        nitro = NitroSketch(
            CountSketch(3, 64, 1), NitroConfig(probability=1.0, top_k=4, seed=1)
        )
        blob = serialize_monitor(nitro)
        with pytest.raises(ValueError, match="deserialize_monitor"):
            deserialize_sketch(blob)


class TestWireFormatValidation:
    def _blob(self):
        sketch = CountSketch(3, 64, seed=1)
        sketch.update_batch(np.arange(100, dtype=np.int64))
        return serialize_sketch(sketch)

    def test_truncated_frame(self):
        with pytest.raises(ValueError, match="truncated"):
            deserialize_sketch(self._blob()[:9])

    def test_torn_tail(self):
        with pytest.raises(ValueError, match="CRC|truncated"):
            deserialize_sketch(self._blob()[:-20])

    def test_bad_magic(self):
        blob = self._blob()
        with pytest.raises(ValueError, match="magic"):
            deserialize_sketch(b"XXXX" + blob[4:])

    def test_flipped_byte_fails_crc(self):
        blob = bytearray(self._blob())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            deserialize_sketch(bytes(blob))

    def test_unsupported_version(self):
        blob = bytearray(self._blob())
        blob[4:6] = (99).to_bytes(2, "little")
        # Re-seal the CRC so the version check itself is what fires.
        body = bytes(blob[:-4])
        resealed = body + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")
        with pytest.raises(ValueError, match="version 99"):
            deserialize_sketch(resealed)

    def test_short_counter_payload(self):
        # A frame whose CRC and section bookkeeping are self-consistent
        # but whose counter grid is 8 bytes short: only the payload-size
        # validation can catch it.
        header, sections = export._unframe(self._blob())
        bad = export._frame(header, [sections[0][:-8]])
        with pytest.raises(ValueError, match="truncated or corrupt sketch payload"):
            deserialize_sketch(bad)


class TestCheckpointManager:
    def _monitor(self, seed=5):
        nitro = NitroSketch(
            CountSketch(3, 128, seed),
            NitroConfig(probability=0.5, top_k=8, seed=seed),
        )
        nitro.update_batch(np.arange(500, dtype=np.int64) % 37)
        return nitro

    def test_save_load_roundtrip_with_meta(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        monitor = self._monitor()
        saved = manager.save(monitor, meta={"epoch": 4})
        assert os.path.exists(saved.path)
        loaded = manager.load(saved.path)
        assert loaded.meta["epoch"] == 4
        assert serialize_monitor(loaded.monitor) == serialize_monitor(monitor)

    def test_no_temp_files_left_behind(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep=2)
        for _ in range(4):
            manager.save(self._monitor())
        assert all(name.endswith(".nsk") for name in os.listdir(str(tmp_path)))

    def test_rotation_keeps_newest(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), keep=2)
        for _ in range(5):
            manager.save(self._monitor())
        assert [sequence for sequence, _ in manager.checkpoints()] == [3, 4]

    def test_restore_latest_empty_directory(self, tmp_path):
        assert CheckpointManager(str(tmp_path)).restore_latest() is None

    @pytest.mark.parametrize(
        "damage",
        [
            lambda path: truncate_file(path, fraction=0.5),
            lambda path: corrupt_file(path, count=4, seed=9),
        ],
        ids=["truncated", "corrupted"],
    )
    def test_restore_latest_falls_back_past_damage(self, tmp_path, damage):
        telemetry = Telemetry()
        manager = CheckpointManager(str(tmp_path), telemetry=telemetry)
        older = self._monitor(seed=1)
        manager.save(older, meta={"epoch": 0})
        newest = manager.save(self._monitor(seed=2), meta={"epoch": 1})
        damage(newest.path)
        restored = manager.restore_latest()
        assert restored is not None
        assert restored.sequence == newest.sequence - 1
        assert serialize_monitor(restored.monitor) == serialize_monitor(older)
        snap = telemetry.snapshot()
        assert sample_value(snap, "checkpoint_restore_failures_total") == 1

    def test_validates_arguments(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), keep=0)
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), prefix="has-dash")


class TestDaemonCheckpoints:
    def _batches(self, packets=4_096, batch_size=256, seed=11):
        trace = caida_like(packets, n_flows=200, seed=seed)
        return list(Replayer(trace, batch_size=batch_size).batches())

    def _monitor(self, seed=11):
        return NitroSketch(
            CountSketch(3, 256, seed),
            NitroConfig(probability=0.5, top_k=8, seed=seed),
        )

    def test_periodic_checkpoints(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        daemon = MeasurementDaemon(
            self._monitor(), checkpoints=manager, checkpoint_interval=4
        )
        batches = self._batches()
        for batch in batches:
            daemon.ingest(batch)
        assert manager.latest_sequence() is not None
        assert len(manager.checkpoints()) == min(3, len(batches) // 4)

    def test_restore_latest_resumes_counters_and_bytes(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        daemon = MeasurementDaemon(
            self._monitor(), checkpoints=manager, checkpoint_interval=4
        )
        batches = self._batches()
        for batch in batches[:10]:
            daemon.ingest(batch)
        packets_at_checkpoint = sum(len(batch) for batch in batches[:8])
        del daemon

        recovered = MeasurementDaemon(self._monitor(), checkpoints=manager)
        assert recovered.restore_latest()
        assert recovered.batches_ingested == 8
        assert recovered.packets_offered == packets_at_checkpoint
        clean = MeasurementDaemon(self._monitor())
        for batch in batches[:8]:
            clean.ingest(batch)
        assert serialize_monitor(recovered.monitor) == serialize_monitor(
            clean.monitor
        )

    def test_interval_requires_manager(self):
        with pytest.raises(ValueError):
            MeasurementDaemon(self._monitor(), checkpoint_interval=4)


class TestWindowedDaemonRecovery:
    """A checkpointed window ring must resume mid-epoch bit-exactly."""

    def _batches(self, packets=6_144, batch_size=256, seed=17):
        trace = caida_like(packets, n_flows=300, seed=seed)
        return list(Replayer(trace, batch_size=batch_size).batches())

    def _monitor(self, seed=17):
        return NitroSketch(
            CountSketch(3, 512, seed),
            NitroConfig(probability=0.5, top_k=16, seed=seed),
        )

    def test_restore_mid_epoch_continues_bit_identical(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        batches = self._batches()
        daemon = MeasurementDaemon(
            self._monitor(), checkpoints=manager, window_epochs=3
        )
        assert daemon.windowed and daemon.window_epochs == 3
        # Rotate every 4 batches, checkpoint 2 batches into the third
        # epoch -- the ring holds completed epochs AND a half-full
        # current epoch at save time.
        for index, batch in enumerate(batches[:10]):
            daemon.ingest(batch)
            if (index + 1) % 4 == 0:
                daemon.epoch_boundary()
        checkpoint = daemon.checkpoint()
        assert checkpoint is not None

        recovered = MeasurementDaemon(
            self._monitor(), checkpoints=manager, window_epochs=3
        )
        assert recovered.restore_latest()
        assert recovered.windowed and recovered.window_epochs == 3
        assert serialize_monitor(recovered.monitor) == serialize_monitor(
            daemon.monitor
        )

        # Continue both sides over the same tail with the same rotation
        # schedule: the restored ring must stay byte-identical to the
        # uninterrupted one (recycled-epoch rotation included).
        for index, batch in enumerate(batches[10:]):
            daemon.ingest(batch)
            recovered.ingest(batch)
            if (10 + index + 1) % 4 == 0:
                daemon.epoch_boundary()
                recovered.epoch_boundary()
        assert serialize_monitor(recovered.monitor) == serialize_monitor(
            daemon.monitor
        )
        probe = [int(batches[0].keys[i]) for i in range(8)]
        assert [recovered.monitor.query(k) for k in probe] == [
            daemon.monitor.query(k) for k in probe
        ]
        assert recovered.monitor.heavy_hitters(100) == daemon.monitor.heavy_hitters(
            100
        )
        assert recovered.monitor.window_packets() == daemon.monitor.window_packets()

    def test_unwindowed_checkpoint_restores_unwindowed(self, tmp_path):
        # A daemon restoring a plain (ringless) checkpoint must not
        # invent a window around it.
        manager = CheckpointManager(str(tmp_path))
        plain = MeasurementDaemon(self._monitor(), checkpoints=manager)
        for batch in self._batches()[:4]:
            plain.ingest(batch)
        plain.checkpoint()
        recovered = MeasurementDaemon(self._monitor(), checkpoints=manager)
        assert recovered.restore_latest()
        assert not recovered.windowed
        assert recovered.window_epochs == 0


class TestControlPlaneResume:
    def test_epoch_numbering_resumes_after_restart(self, tmp_path):
        trace = caida_like(6_000, n_flows=300, seed=13)
        factory = lambda epoch: NitroSketch(
            CountSketch(3, 256, 13),
            NitroConfig(probability=0.5, top_k=8, seed=13),
        )
        manager = CheckpointManager(str(tmp_path))
        plane = ControlPlane(
            factory, [HeavyHitterTask()], score=False, checkpoints=manager
        )
        first = plane.run_epochs(trace.slice(0, 3_000), epoch_packets=1_000)
        assert [report.epoch for report in first] == [0, 1, 2]

        # The "restarted" plane resumes numbering after the last
        # checkpointed epoch instead of starting over at 0.
        restarted = ControlPlane(
            factory, [HeavyHitterTask()], score=False, checkpoints=manager
        )
        second = restarted.run_epochs(trace.slice(3_000, 6_000), epoch_packets=1_000)
        assert [report.epoch for report in second] == [3, 4, 5]
        # The restored epoch-2 monitor is available for change detection.
        assert len(restarted.monitors) >= 1


class TestFaultInjectors:
    def test_truncate_file(self, tmp_path):
        path = str(tmp_path / "blob")
        with open(path, "wb") as handle:
            handle.write(bytes(range(100)))
        kept = truncate_file(path, fraction=0.4)
        assert kept == 40
        assert os.path.getsize(path) == 40
        with pytest.raises(ValueError):
            truncate_file(path, fraction=1.0)

    def test_corrupt_file_is_deterministic_and_length_preserving(self, tmp_path):
        payload = bytes(range(256)) * 4
        path_a, path_b = str(tmp_path / "a"), str(tmp_path / "b")
        for path in (path_a, path_b):
            with open(path, "wb") as handle:
                handle.write(payload)
        offsets_a = corrupt_file(path_a, count=8, seed=3)
        offsets_b = corrupt_file(path_b, count=8, seed=3)
        assert offsets_a == offsets_b
        assert os.path.getsize(path_a) == len(payload)
        with open(path_a, "rb") as handle:
            mutated = handle.read()
        assert mutated != payload
        assert [i for i in range(len(payload)) if mutated[i] != payload[i]] == offsets_a

    def test_lossy_channel_gap_detection(self):
        channel = LossyChannel(drop_every=3)
        outcomes = [channel.send(b"x") for _ in range(7)]
        assert outcomes == [True, True, False, True, True, False, True]
        assert channel.dropped == 2
        assert channel.missing_sequences() == [2, 5]
        # drop_every=0 delivers everything.
        lossless = LossyChannel()
        assert all(lossless.send(b"y") for _ in range(5))
        assert lossless.missing_sequences() == []


class TestCheckpointStalenessRule:
    def test_ok_when_not_checkpointing(self):
        result = CheckpointStalenessRule().evaluate(Telemetry().snapshot())
        assert result.status == "ok"

    def test_age_thresholds(self):
        rule = CheckpointStalenessRule(warn_age=10, fail_age=20)
        for age, expected in [(3, "ok"), (10, "warn"), (25, "fail")]:
            telemetry = Telemetry()
            telemetry.gauge("daemon_checkpoint_age_batches", age)
            assert rule.evaluate(telemetry.snapshot()).status == expected

    def test_restore_failures_warn(self):
        telemetry = Telemetry()
        telemetry.gauge("daemon_checkpoint_age_batches", 0)
        telemetry.count("checkpoint_restore_failures_total")
        result = CheckpointStalenessRule().evaluate(telemetry.snapshot())
        assert result.status == "warn"

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointStalenessRule(warn_age=0)


class TestChaosScenarios:
    def test_all_scenarios_pass(self, tmp_path):
        runner = ChaosRunner(packets=16_000, seed=7, directory=str(tmp_path))
        results = runner.run_all()
        assert [result.name for result in results] == [
            "kill_recover_audit",
            "truncate_fallback",
            "corrupt_fallback",
            "drop_exports",
            "window_corruption",
            "client_flood",
            "slow_consumer",
        ]
        for result in results:
            assert result.passed, "%s: %s" % (result.name, result.detail)
