"""Tests for sliding-window monitoring and UnivMon frequency moments."""

from collections import Counter

import numpy as np
import pytest

from repro.control import SlidingWindowMonitor
from repro.core import NitroConfig, NitroSketch
from repro.sketches import CountSketch, UnivMon
from repro.traffic import zipf_keys


def nitro_factory(seed=5, probability=0.2):
    def make():
        return NitroSketch(
            CountSketch(4, 4096, seed=seed),
            NitroConfig(probability=probability, top_k=100, seed=seed),
        )

    return make


def vanilla_factory(seed=5):
    return lambda: CountSketch(4, 4096, seed=seed)


class TestSlidingWindow:
    def test_window_counts_recent_epochs_only(self):
        window = SlidingWindowMonitor(vanilla_factory(), window_epochs=2, epoch_packets=1000)
        window.update_batch(np.full(1000, 7, dtype=np.int64))   # epoch 0
        window.update_batch(np.full(1000, 8, dtype=np.int64))   # epoch 1
        window.update_batch(np.full(1000, 9, dtype=np.int64))   # epoch 2
        # Window of 2 epochs = last completed epoch (key 9) + the empty
        # in-progress epoch; epochs 0 and 1 have aged out.
        assert window.query(9) == pytest.approx(1000, abs=50)
        assert window.query(7) == pytest.approx(0, abs=50)

    def test_scalar_updates_rotate(self):
        window = SlidingWindowMonitor(vanilla_factory(), window_epochs=3, epoch_packets=100)
        for _ in range(250):
            window.update(3)
        assert window.epochs_rotated == 2
        assert window.window_packets() == 250
        assert window.query(3) == pytest.approx(250, abs=20)

    def test_aging_out(self):
        window = SlidingWindowMonitor(
            nitro_factory(), window_epochs=3, epoch_packets=5000
        )
        heavy = np.concatenate(
            [np.full(2000, 42), zipf_keys(3000, 1000, 1.0, seed=1)]
        ).astype(np.int64)
        background = zipf_keys(5000, 1000, 1.0, seed=2)
        window.update_batch(heavy)
        inside = window.query(42)
        for _ in range(3):
            window.update_batch(background)
        assert window.query(42) < inside / 4

    def test_heavy_hitters_over_window(self):
        window = SlidingWindowMonitor(
            nitro_factory(probability=0.5), window_epochs=2, epoch_packets=4000
        )
        keys = np.concatenate(
            [np.full(1500, 99), zipf_keys(2500, 800, 1.0, seed=3)]
        ).astype(np.int64)
        window.update_batch(keys)
        hitters = dict(window.heavy_hitters(500))
        assert 99 in hitters

    def test_merged_equals_sum_of_queries(self):
        window = SlidingWindowMonitor(vanilla_factory(), window_epochs=3, epoch_packets=500)
        window.update_batch(zipf_keys(1400, 100, 1.1, seed=4))
        merged = window.merged()
        for key in range(20):
            assert merged.query(key) == pytest.approx(window.query(key), abs=1e-6)

    def test_memory_scales_with_window(self):
        small = SlidingWindowMonitor(vanilla_factory(), window_epochs=1, epoch_packets=100)
        large = SlidingWindowMonitor(vanilla_factory(), window_epochs=4, epoch_packets=100)
        for _ in range(350):
            small.update(1)
            large.update(1)
        assert large.memory_bytes() > small.memory_bytes()

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowMonitor(vanilla_factory(), window_epochs=0, epoch_packets=10)
        with pytest.raises(ValueError):
            SlidingWindowMonitor(vanilla_factory(), window_epochs=2, epoch_packets=0)


class TestFrequencyMoments:
    def make_univmon(self):
        return UnivMon(levels=10, depth=5, widths=4096, k=300, seed=7)

    def test_f1_is_total(self):
        keys = zipf_keys(30000, 500, 1.2, seed=7)
        um = self.make_univmon()
        um.update_batch(keys)
        assert um.frequency_moment(1) == pytest.approx(30000, rel=0.35)

    def test_f2_matches_truth(self):
        keys = zipf_keys(30000, 2000, 1.2, seed=8)
        um = self.make_univmon()
        um.update_batch(keys)
        truth = sum(v * v for v in Counter(keys.tolist()).values())
        assert um.frequency_moment(2) == pytest.approx(truth, rel=0.35)

    def test_f0_is_distinct(self):
        um = self.make_univmon()
        um.update_batch(zipf_keys(10000, 300, 1.0, seed=9))
        assert um.frequency_moment(0) == um.distinct_estimate()

    def test_order_validation(self):
        with pytest.raises(ValueError):
            self.make_univmon().frequency_moment(-1)
