"""Tests for sliding-window monitoring and UnivMon frequency moments."""

from collections import Counter

import numpy as np
import pytest

from repro.control import SlidingWindowMonitor
from repro.core import NitroConfig, NitroSketch
from repro.sketches import CountSketch, UnivMon
from repro.traffic import zipf_keys


def nitro_factory(seed=5, probability=0.2):
    def make():
        return NitroSketch(
            CountSketch(4, 4096, seed=seed),
            NitroConfig(probability=probability, top_k=100, seed=seed),
        )

    return make


def vanilla_factory(seed=5):
    return lambda: CountSketch(4, 4096, seed=seed)


class TestSlidingWindow:
    def test_window_counts_recent_epochs_only(self):
        window = SlidingWindowMonitor(vanilla_factory(), window_epochs=2, epoch_packets=1000)
        window.update_batch(np.full(1000, 7, dtype=np.int64))   # epoch 0
        window.update_batch(np.full(1000, 8, dtype=np.int64))   # epoch 1
        window.update_batch(np.full(1000, 9, dtype=np.int64))   # epoch 2
        # Window of 2 epochs = last completed epoch (key 9) + the empty
        # in-progress epoch; epochs 0 and 1 have aged out.
        assert window.query(9) == pytest.approx(1000, abs=50)
        assert window.query(7) == pytest.approx(0, abs=50)

    def test_scalar_updates_rotate(self):
        window = SlidingWindowMonitor(vanilla_factory(), window_epochs=3, epoch_packets=100)
        for _ in range(250):
            window.update(3)
        assert window.epochs_rotated == 2
        assert window.window_packets() == 250
        assert window.query(3) == pytest.approx(250, abs=20)

    def test_aging_out(self):
        window = SlidingWindowMonitor(
            nitro_factory(), window_epochs=3, epoch_packets=5000
        )
        heavy = np.concatenate(
            [np.full(2000, 42), zipf_keys(3000, 1000, 1.0, seed=1)]
        ).astype(np.int64)
        background = zipf_keys(5000, 1000, 1.0, seed=2)
        window.update_batch(heavy)
        inside = window.query(42)
        for _ in range(3):
            window.update_batch(background)
        assert window.query(42) < inside / 4

    def test_heavy_hitters_over_window(self):
        window = SlidingWindowMonitor(
            nitro_factory(probability=0.5), window_epochs=2, epoch_packets=4000
        )
        keys = np.concatenate(
            [np.full(1500, 99), zipf_keys(2500, 800, 1.0, seed=3)]
        ).astype(np.int64)
        window.update_batch(keys)
        hitters = dict(window.heavy_hitters(500))
        assert 99 in hitters

    def test_merged_equals_sum_of_queries(self):
        window = SlidingWindowMonitor(vanilla_factory(), window_epochs=3, epoch_packets=500)
        window.update_batch(zipf_keys(1400, 100, 1.1, seed=4))
        merged = window.merged()
        for key in range(20):
            assert merged.query(key) == pytest.approx(window.query(key), abs=1e-6)

    def test_memory_scales_with_window(self):
        small = SlidingWindowMonitor(vanilla_factory(), window_epochs=1, epoch_packets=100)
        large = SlidingWindowMonitor(vanilla_factory(), window_epochs=4, epoch_packets=100)
        for _ in range(350):
            small.update(1)
            large.update(1)
        assert large.memory_bytes() > small.memory_bytes()

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowMonitor(vanilla_factory(), window_epochs=0, epoch_packets=10)
        with pytest.raises(ValueError):
            SlidingWindowMonitor(vanilla_factory(), window_epochs=2, epoch_packets=-1)

    def test_manual_rotation_mode(self):
        # epoch_packets=0 disables automatic rotation: the owner (the
        # daemon) calls rotate() on its own epoch boundaries.
        window = SlidingWindowMonitor(vanilla_factory(), window_epochs=2, epoch_packets=0)
        window.update_batch(np.full(5000, 7, dtype=np.int64))
        assert window.epochs_rotated == 0
        window.rotate()
        assert window.epochs_rotated == 1
        assert window.window_packets() == 5000
        window.rotate()
        assert window.query(7) == pytest.approx(0, abs=50)


class TestWindowSemantics:
    def test_w1_heavy_hitters_only_from_current_epoch(self):
        # A W=1 window is just the in-progress epoch: a flow that was
        # heavy in an aged-out epoch must not resurface as a candidate.
        window = SlidingWindowMonitor(
            nitro_factory(probability=0.5), window_epochs=1, epoch_packets=4000
        )
        window.update_batch(np.full(4000, 11, dtype=np.int64))  # epoch 0, rotated
        window.update_batch(
            np.concatenate(
                [np.full(2000, 22), zipf_keys(1500, 500, 1.0, seed=6)]
            ).astype(np.int64)
        )
        hitters = dict(window.heavy_hitters(500))
        assert 22 in hitters
        assert 11 not in hitters

    def test_adopt_epoch_mode(self):
        factory = vanilla_factory()
        window = SlidingWindowMonitor(factory, window_epochs=2, epoch_packets=0)
        for epoch, key in enumerate((5, 6, 7)):
            monitor = factory()
            monitor.update_batch(np.full(1000, key, dtype=np.int64))
            window.adopt_epoch(monitor, 1000)
        # W=2 of adopted epochs: key 5 aged out, 6 and 7 survive.
        assert window.window_packets() == 2000
        assert window.epochs_rotated == 3
        assert window.query(5) == pytest.approx(0, abs=1e-6)
        assert window.query(6) == pytest.approx(1000, abs=1e-6)
        assert window.query(7) == pytest.approx(1000, abs=1e-6)

    def test_adopt_epoch_rejects_mixed_ingest(self):
        window = SlidingWindowMonitor(vanilla_factory(), window_epochs=2, epoch_packets=0)
        window.update(3)
        with pytest.raises(ValueError):
            window.adopt_epoch(vanilla_factory()(), 1)

    def test_merged_view_is_cached_until_ingest(self):
        window = SlidingWindowMonitor(vanilla_factory(), window_epochs=2, epoch_packets=100)
        window.update_batch(np.full(150, 4, dtype=np.int64))
        first = window.merged()
        assert window.merged() is first  # cache hit, no rebuild
        window.update(4)
        assert window.merged() is not first  # ingest invalidated it
        assert window.query(4) == pytest.approx(151, abs=1e-6)

    def test_from_template_wraps_prebuilt_monitor(self):
        monitor = vanilla_factory()()
        window = SlidingWindowMonitor.from_template(monitor, window_epochs=3)
        assert window.current_monitor() is monitor
        assert window.epoch_packets == 0  # owner-driven rotation
        window.update_batch(np.full(500, 9, dtype=np.int64))
        window.rotate()
        # The recycled/fresh epochs come from the template, so merging
        # still works and the ring round-trips the serializer.
        from repro.control import deserialize_monitor, serialize_monitor

        blob = serialize_monitor(window)
        restored = deserialize_monitor(blob)
        assert serialize_monitor(restored) == blob
        assert restored.query(9) == pytest.approx(500, abs=1e-6)

    def test_export_window_metrics_gauges(self):
        from repro.control import export_window_metrics
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        window = SlidingWindowMonitor(
            nitro_factory(probability=0.5), window_epochs=2, epoch_packets=3000
        )
        window.update_batch(
            np.concatenate(
                [np.full(2000, 99), zipf_keys(2000, 400, 1.0, seed=8)]
            ).astype(np.int64)
        )
        export_window_metrics(window, telemetry)
        snap = telemetry.snapshot()["metrics"]

        def gauge(name):
            return snap[name]["samples"][0]["value"]

        assert gauge("window_packets") == 4000.0
        assert gauge("window_epochs_spanned") == len(window.window_monitors())
        assert gauge("window_epochs_rotated") == window.epochs_rotated
        assert gauge("window_memory_bytes") == window.memory_bytes()
        assert gauge("window_heavy_hitters") >= 1.0  # key 99 at 1% share
        assert gauge("window_entropy_bits") > 0.0


class TestPipelineWiring:
    def test_daemon_wraps_monitor_and_exports_window_gauges(self):
        from repro.switchsim import MeasurementDaemon
        from repro.telemetry import Telemetry
        from repro.telemetry.anomaly import SketchAnomalyDetectors
        from repro.traffic import caida_like
        from repro.traffic.replay import Replayer

        telemetry = Telemetry()
        detectors = SketchAnomalyDetectors(telemetry=telemetry)
        assert detectors.cumulative  # default
        daemon = MeasurementDaemon(
            nitro_factory()(),
            telemetry=telemetry,
            anomaly=detectors,
            epoch_batches=2,
            window_epochs=3,
        )
        assert isinstance(daemon.monitor, SlidingWindowMonitor)
        assert daemon.windowed and daemon.window_epochs == 3
        assert not detectors.cumulative  # forced off: one epoch per sketch
        trace = caida_like(4096, n_flows=300, seed=9)
        for batch in Replayer(trace, batch_size=512).batches():
            daemon.ingest(batch)
        assert daemon.monitor.epochs_rotated == 4
        snap = telemetry.snapshot()["metrics"]
        assert snap["window_packets"]["samples"][0]["value"] > 0
        assert snap["anomaly_epochs_total"]["samples"][0]["value"] == 4.0

    def test_daemon_rejects_negative_window(self):
        from repro.switchsim import MeasurementDaemon

        with pytest.raises(ValueError):
            MeasurementDaemon(nitro_factory()(), window_epochs=-1)

    def test_control_plane_window_spans_recent_epochs(self):
        from repro.control import ControlPlane, HeavyHitterTask
        from repro.traffic import caida_like

        trace = caida_like(6000, n_flows=300, seed=12)
        factory = lambda epoch: nitro_factory(seed=12, probability=0.5)()
        plane = ControlPlane(
            factory, [HeavyHitterTask()], score=False, window_epochs=2
        )
        reports = plane.run_epochs(trace, epoch_packets=2000)
        assert len(reports) == 3
        assert plane.window is not None
        # Epoch-driven ring: the last two completed epochs, current empty.
        assert plane.window.window_packets() == 4000
        assert plane.window.epochs_rotated == 3
    def make_univmon(self):
        return UnivMon(levels=10, depth=5, widths=4096, k=300, seed=7)

    def test_f1_is_total(self):
        keys = zipf_keys(30000, 500, 1.2, seed=7)
        um = self.make_univmon()
        um.update_batch(keys)
        assert um.frequency_moment(1) == pytest.approx(30000, rel=0.35)

    def test_f2_matches_truth(self):
        keys = zipf_keys(30000, 2000, 1.2, seed=8)
        um = self.make_univmon()
        um.update_batch(keys)
        truth = sum(v * v for v in Counter(keys.tolist()).values())
        assert um.frequency_moment(2) == pytest.approx(truth, rel=0.35)

    def test_f0_is_distinct(self):
        um = self.make_univmon()
        um.update_batch(zipf_keys(10000, 300, 1.0, seed=9))
        assert um.frequency_moment(0) == um.distinct_estimate()

    def test_order_validation(self):
        with pytest.raises(ValueError):
            self.make_univmon().frequency_moment(-1)
