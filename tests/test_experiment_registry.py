"""Registry smoke tests: every experiment module is uniformly shaped.

Guards the contract the CLI, the __main__ driver, and the recording
script rely on: each module exposes ``run(scale=..., seed=...)`` (seed
optional for pure-theory runs) returning ExperimentResult(s) with
non-empty rows.
"""

import importlib
import inspect

import pytest

from repro.experiments.__main__ import ALL_EXPERIMENTS
from repro.experiments.report import ExperimentResult

#: Tiny scales per experiment so the whole registry check stays fast.
TINY_SCALE = {
    "table1": 0.002,
    "fig2": 0.002,
    "fig3": 0.0002,
    "table2": 0.002,
    "fig8": 0.002,
    "fig9": 0.002,
    "fig10": 0.002,
    "fig11": 0.01,
    "fig12": 0.01,
    "fig13": 0.005,
    "fig14": 0.002,
    "fig15": 0.005,
    "ablation": 0.01,
    "adaptive": 0.2,
    "validation": 0.2,
    "parallel_scaling": 0.1,
}


@pytest.mark.parametrize("name", ALL_EXPERIMENTS)
def test_experiment_contract(name):
    module = importlib.import_module("repro.experiments.%s" % name)
    assert hasattr(module, "run"), "%s lacks run()" % name
    signature = inspect.signature(module.run)
    assert "scale" in signature.parameters

    kwargs = {"scale": TINY_SCALE[name]}
    if name == "validation":
        kwargs["trials"] = 3
    output = module.run(**kwargs)
    panels = output if isinstance(output, tuple) else (output,)
    assert panels, "%s returned nothing" % name
    for panel in panels:
        assert isinstance(panel, ExperimentResult)
        assert panel.rows, "%s produced an empty panel %s" % (name, panel.name)
        assert panel.name
        assert panel.description
        # Render must not raise and must include the column headers.
        rendered = panel.render()
        for column in panel.rows[0]:
            assert column in rendered
