"""Tests for the switch simulator: packets, cost model, pipelines, NIC,
daemon and end-to-end simulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import nitro_countsketch
from repro.metrics.opcount import OpCounter
from repro.sketches import CountSketch, TrackedSketch
from repro.switchsim import (
    BESSPipeline,
    CostModel,
    CycleCosts,
    DPDKForwarder,
    FiveTuple,
    GENERIC_10G,
    InMemoryPipeline,
    IntegrationMode,
    MeasurementDaemon,
    OVSDPDKPipeline,
    SwitchSimulator,
    UNLIMITED,
    VPPPipeline,
    XL710_40G,
    int_to_ip,
    ip_to_int,
)
from repro.traffic import caida_like, min_sized_stress
from repro.traffic.replay import Batch


class TestPacket:
    def test_ip_roundtrip(self):
        assert int_to_ip(ip_to_int("192.168.1.200")) == "192.168.1.200"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50)
    def test_ip_roundtrip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    def test_ip_validation(self):
        with pytest.raises(ValueError):
            ip_to_int("1.2.3")
        with pytest.raises(ValueError):
            ip_to_int("1.2.3.999")

    def test_five_tuple_pack_length(self):
        tup = FiveTuple.from_strings("10.0.0.1", "10.0.0.2", 1234, 80)
        assert len(tup.pack()) == 13

    def test_flow_key_deterministic_and_64bit(self):
        tup = FiveTuple.from_strings("10.0.0.1", "10.0.0.2", 1234, 80)
        key = tup.flow_key()
        assert key == tup.flow_key()
        assert 0 <= key < 2**64

    def test_distinct_tuples_distinct_keys(self):
        a = FiveTuple.from_strings("10.0.0.1", "10.0.0.2", 1234, 80)
        b = FiveTuple.from_strings("10.0.0.1", "10.0.0.2", 1234, 81)
        assert a.flow_key() != b.flow_key()


class TestCostModel:
    def test_breakdown_totals(self):
        ops = OpCounter()
        ops.hash(10)
        ops.counter_update(10)
        ops.packet(10)
        model = CostModel()
        breakdown = model.breakdown(ops)
        expected = 10 * model.costs.hash + 10 * model.costs.counter_update
        assert breakdown.total() == pytest.approx(expected)
        assert breakdown.per_packet() == pytest.approx(expected / 10)

    def test_miss_rate(self):
        model = CostModel()
        llc = model.costs.llc_bytes
        assert model.miss_rate(0) == 0.0
        assert model.miss_rate(llc // 2) == 0.0
        assert model.miss_rate(2 * llc) == pytest.approx(0.5)
        assert model.miss_rate(100 * llc) == pytest.approx(0.99)

    def test_cache_miss_charged(self):
        ops = OpCounter()
        ops.counter_update(100)
        ops.packet(100)
        model = CostModel()
        resident = model.breakdown(ops, working_set_bytes=1024)
        thrashing = model.breakdown(ops, working_set_bytes=100 * model.costs.llc_bytes)
        assert thrashing.total() > resident.total()

    def test_capacity_inverse_to_cost(self):
        ops = OpCounter()
        ops.fixed(210.0)
        ops.packet(1)
        model = CostModel()
        # 210 cycles/packet at 2.1 GHz = 10 Mpps.
        assert model.capacity_mpps(ops) == pytest.approx(10.0)

    def test_cpu_share(self):
        ops = OpCounter()
        ops.fixed(210.0)
        ops.packet(1)
        model = CostModel()
        assert model.cpu_share_at_rate(ops, 5.0) == pytest.approx(0.5)

    def test_shares_sum_to_one(self):
        ops = OpCounter()
        ops.hash(5)
        ops.heap_op(2)
        ops.fixed(100)
        ops.packet(1)
        shares = CostModel().breakdown(ops).shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_custom_costs(self):
        model = CostModel(CycleCosts(hash=100.0))
        ops = OpCounter()
        ops.hash(1)
        ops.packet(1)
        assert model.breakdown(ops).hash == 100.0


class TestPipelines:
    def _batch(self, n=32, seed=0):
        rng = np.random.default_rng(seed)
        return Batch(
            keys=rng.integers(0, 1000, n),
            sizes=np.full(n, 64, dtype=np.int32),
            timestamps=np.linspace(0, 1e-5, n),
        )

    def test_platform_cost_ordering(self):
        """DPDK < OVS per packet; calibrated anchors hold."""
        model = CostModel()
        results = {}
        for pipeline in (DPDKForwarder(), OVSDPDKPipeline(), VPPPipeline(), BESSPipeline()):
            ops = OpCounter()
            # Warm the caches (flow-setup upcalls amortise away in any
            # real run), then measure steady state.
            for _ in range(5):
                pipeline.forward_batch(self._batch(), OpCounter())
            for _ in range(100):
                pipeline.forward_batch(self._batch(), ops)
            results[pipeline.name] = model.capacity_mpps(ops)
        assert 20 < results["ovs-dpdk"] < 25  # paper: ~22 Mpps
        assert 21 < results["dpdk"] < 26
        assert results["bess"] > results["ovs-dpdk"]

    def test_ovs_emc_hits_with_keyspace(self):
        pipeline = OVSDPDKPipeline(emc_key_space=2)
        ops = OpCounter()
        for i in range(10):
            pipeline.forward_batch(self._batch(seed=i), ops)
        assert pipeline.emc_misses <= 2
        assert pipeline.emc_hits > 300

    def test_ovs_emc_thrash_without_keyspace(self):
        pipeline = OVSDPDKPipeline(emc_entries=16, emc_key_space=None)
        ops = OpCounter()
        for i in range(20):
            pipeline.forward_batch(self._batch(seed=i), ops)
        assert pipeline.emc_misses > 100

    def test_ovs_reset(self):
        pipeline = OVSDPDKPipeline()
        pipeline.forward_batch(self._batch(), OpCounter())
        pipeline.reset()
        assert pipeline.emc_hits == 0
        assert pipeline.working_set_bytes() == 0

    def test_in_memory_is_free(self):
        ops = OpCounter()
        InMemoryPipeline().forward_batch(self._batch(), ops)
        assert ops.fixed_cycles == 0


class TestNIC:
    def test_xl710_small_packet_ceiling(self):
        # 64B at 40G would be 59.52 Mpps; the NIC caps at 42.
        assert XL710_40G.deliverable_mpps(64) == pytest.approx(42.0)

    def test_xl710_large_packets_line_rate(self):
        assert XL710_40G.deliverable_mpps(714) == pytest.approx(6.81, rel=0.01)

    def test_10g_line_rate(self):
        assert GENERIC_10G.deliverable_mpps(64) == pytest.approx(14.88, rel=0.01)

    def test_unlimited(self):
        assert UNLIMITED.deliverable_mpps(64) == float("inf")


class TestDaemonAndSimulator:
    def test_aio_slower_than_switch_alone(self):
        trace = min_sized_stress(5000, n_flows=500, seed=1)
        bare = SwitchSimulator(OVSDPDKPipeline()).run(trace, offered_gbps=40)
        daemon = MeasurementDaemon(
            TrackedSketch(CountSketch(5, 1024, 1), k=50),
            IntegrationMode.ALL_IN_ONE,
        )
        monitored = SwitchSimulator(OVSDPDKPipeline(), daemon).run(
            trace, offered_gbps=40
        )
        assert monitored.capacity_mpps < bare.capacity_mpps

    def test_separate_thread_mostly_preserves_switch(self):
        trace = min_sized_stress(5000, n_flows=500, seed=2)
        bare = SwitchSimulator(OVSDPDKPipeline()).run(trace, offered_gbps=40)
        daemon = MeasurementDaemon(
            nitro_countsketch(probability=0.01, seed=2),
            IntegrationMode.SEPARATE_THREAD,
        )
        monitored = SwitchSimulator(OVSDPDKPipeline(), daemon).run(
            trace, offered_gbps=40
        )
        assert monitored.capacity_mpps > 0.9 * bare.capacity_mpps

    def test_sampled_fraction_from_nitro(self):
        trace = min_sized_stress(5000, n_flows=500, seed=3)
        daemon = MeasurementDaemon(
            nitro_countsketch(probability=0.01, seed=3),
            IntegrationMode.SEPARATE_THREAD,
        )
        SwitchSimulator(OVSDPDKPipeline(), daemon).run(trace, offered_gbps=40)
        assert daemon.sampled_fraction() < 0.2

    def test_sampled_fraction_one_for_vanilla(self):
        trace = min_sized_stress(2000, n_flows=200, seed=4)
        daemon = MeasurementDaemon(
            TrackedSketch(CountSketch(3, 256, 4), k=10),
            IntegrationMode.SEPARATE_THREAD,
        )
        SwitchSimulator(OVSDPDKPipeline(), daemon).run(trace, offered_gbps=40)
        assert daemon.sampled_fraction() == 1.0

    def test_achieved_capped_by_nic(self):
        trace = min_sized_stress(5000, n_flows=500, seed=5)
        result = SwitchSimulator(InMemoryPipeline(), nic=GENERIC_10G).run(
            trace, offered_gbps=40
        )
        assert result.achieved_mpps <= GENERIC_10G.deliverable_mpps(64) + 1e-6

    def test_drop_fraction_when_overloaded(self):
        trace = min_sized_stress(5000, n_flows=500, seed=6)
        daemon = MeasurementDaemon(
            TrackedSketch(CountSketch(5, 1024, 6), k=50),
            IntegrationMode.ALL_IN_ONE,
        )
        result = SwitchSimulator(OVSDPDKPipeline(), daemon).run(trace, offered_gbps=40)
        assert result.drop_fraction > 0.5  # vanilla sketch can't do 59 Mpps

    def test_line_rate_for_caida_with_nitro(self):
        trace = caida_like(5000, n_flows=500, seed=7)
        daemon = MeasurementDaemon(
            nitro_countsketch(probability=0.01, seed=7),
            IntegrationMode.ALL_IN_ONE,
        )
        result = SwitchSimulator(OVSDPDKPipeline(), daemon).run(trace, offered_gbps=40)
        assert result.achieved_gbps == pytest.approx(40.0, rel=0.02)

    def test_summary_keys(self):
        trace = min_sized_stress(1000, n_flows=100, seed=8)
        result = SwitchSimulator(InMemoryPipeline()).run(trace, offered_gbps=40)
        summary = result.summary()
        assert "achieved_mpps" in summary
        assert "drop_fraction" in summary

    def test_daemon_reset(self):
        daemon = MeasurementDaemon(TrackedSketch(CountSketch(3, 256, 9), k=10))
        batch = Batch(
            keys=np.arange(10),
            sizes=np.full(10, 64, dtype=np.int32),
            timestamps=np.linspace(0, 1, 10),
        )
        daemon.ingest(batch)
        daemon.reset()
        assert daemon.packets_offered == 0
        assert daemon.ops.packets == 0


class _CountingMonitor:
    """A free monitor so queue-drain timing measures the queue alone."""

    def __init__(self):
        self.packets = 0

    def update_batch(self, keys):
        self.packets += len(keys)


class TestDaemonQueue:
    def _batch(self, start, n=10):
        keys = np.arange(start, start + n)
        return Batch(
            keys=keys,
            sizes=np.full(n, 64, dtype=np.int32),
            timestamps=np.zeros(n),
        )

    def test_drain_preserves_fifo_order_and_drop_accounting(self):
        """Regression for the deque switch: drain order, drop counting
        and queue invariants are exactly what the list gave."""
        monitor = _CountingMonitor()
        seen = []
        original = monitor.update_batch
        monitor.update_batch = lambda keys: (seen.append(int(keys[0])), original(keys))
        daemon = MeasurementDaemon(monitor, queue_capacity=4)
        accepted = [daemon.enqueue(self._batch(i * 100)) for i in range(7)]
        assert accepted == [True] * 4 + [False] * 3
        assert daemon.batches_dropped == 3
        assert daemon.queue_depth == 4
        assert daemon.check_invariants() == []
        assert daemon.drain(2) == 2
        assert seen == [0, 100]  # strictly oldest-first
        assert daemon.drain() == 2
        assert seen == [0, 100, 200, 300]
        assert daemon.queue_depth == 0
        assert daemon.batches_dropped == 3  # drain never touches drops

    def test_drain_uses_deque_and_scales_linearly(self):
        """A 10k-batch backlog must drain in O(n): the old
        ``list.pop(0)`` loop was O(n^2) at service queue depths."""
        from collections import deque
        import timeit

        daemon = MeasurementDaemon(_CountingMonitor(), queue_capacity=50_000)
        assert isinstance(daemon._queue, deque)  # structural guarantee

        def backlog_drain_seconds(n_batches):
            daemon.reset()
            batch = self._batch(0, n=1)
            for _ in range(n_batches):
                daemon.enqueue(batch)
            seconds = timeit.timeit(daemon.drain, number=1)
            assert daemon.queue_depth == 0
            return seconds

        small = backlog_drain_seconds(2_000)
        large = backlog_drain_seconds(20_000)
        # Linear drain: 10x the backlog is ~10x the work.  The old
        # quadratic path is ~100x; 40x splits them with a wide margin
        # for timer noise on small absolute times.
        assert large < max(40 * small, 1.0)

    def test_reset_clears_queue(self):
        daemon = MeasurementDaemon(_CountingMonitor(), queue_capacity=8)
        daemon.enqueue(self._batch(0))
        daemon.reset()
        assert daemon.queue_depth == 0
        assert daemon.enqueue(self._batch(1))


class TestDaemonReset:
    def test_reset_rewinds_ingest_accounting_and_cadence(self, tmp_path):
        """Regression: reset must rewind ``batches_ingested`` and the
        checkpoint cadence counter -- stale values made a reset daemon
        checkpoint on the wrong schedule with pre-reset meta totals."""
        from repro.control.checkpoint import CheckpointManager
        from repro.traffic.replay import Replayer

        trace = caida_like(2000, n_flows=100, seed=6)
        batches = list(Replayer(trace, batch_size=500).batches())
        daemon = MeasurementDaemon(
            nitro_countsketch(probability=0.1, seed=6),
            checkpoints=CheckpointManager(str(tmp_path)),
            checkpoint_interval=3,
        )
        for batch in batches[:2]:
            daemon.ingest(batch)
        assert daemon.batches_ingested == 2
        daemon.reset()
        assert daemon.batches_ingested == 0
        assert daemon.packets_offered == 0
        assert daemon._batches_since_checkpoint == 0
        assert daemon.check_invariants() == []
        # The cadence restarts: two post-reset batches stay short of the
        # interval, the third triggers the first checkpoint, and its meta
        # reflects post-reset totals only.
        for batch in batches[:2]:
            daemon.ingest(batch)
        assert daemon.checkpoints.latest_sequence() is None
        daemon.ingest(batches[2])
        restored = daemon.checkpoints.restore_latest()
        assert restored is not None
        assert restored.meta["batches_ingested"] == 3
        assert restored.meta["packets_offered"] == 1500
