#!/usr/bin/env python
"""Guard the fused-kernel throughput against the committed baseline.

Usage:  PYTHONPATH=src python scripts/check_perf.py [--update] [--factor F]

Re-runs :mod:`repro.experiments.kernelbench` and compares each bench's
``fused_rate`` against ``BENCH_kernels.json``.  A bench failing to reach
``factor`` (default 0.7, i.e. a >30% regression) of its baseline rate
fails the check, as does missing either of the kernel-layer speedup
gates (kwise >= 5x over the object-dtype path, NitroSketch batch >= 2x
end-to-end), the telemetry-overhead ceiling (a live Telemetry sink on
the batch update path must cost <= 10% over NULL_TELEMETRY), or the
audit-overhead ceiling (a live shadow auditor riding the batch ingest
path must cost <= 10% over an unaudited run), or the checkpoint-overhead
ceiling (periodic crash-safety checkpoints at the default cadence must
cost <= 10% over a daemon that never checkpoints), or the
verify-overhead ceiling (the *disabled* invariant hook on the batch
update path must cost <= 5% over calling the implementation directly).
``--update`` rewrites the baseline from this run instead.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE = os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite BENCH_kernels.json from this run"
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=0.7,
        help="minimum fused_rate as a fraction of baseline (default 0.7)",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--skip-telemetry",
        action="store_true",
        help="skip the telemetry-overhead gate",
    )
    parser.add_argument(
        "--skip-audit",
        action="store_true",
        help="skip the audit-overhead gate",
    )
    parser.add_argument(
        "--skip-checkpoint",
        action="store_true",
        help="skip the checkpoint-overhead gate",
    )
    parser.add_argument(
        "--skip-verify",
        action="store_true",
        help="skip the verify-hook-overhead gate",
    )
    args = parser.parse_args(argv)

    from repro.experiments import kernelbench

    result = kernelbench.run(scale=args.scale, repeats=args.repeats)
    current = kernelbench.payload(result)

    if args.update:
        kernelbench.write_baseline(os.path.abspath(BASELINE), result=result)
        print("updated %s" % os.path.abspath(BASELINE))
        return 0

    try:
        with open(BASELINE) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print("no baseline at %s -- run with --update first" % BASELINE)
        return 1

    failures = []
    for name, base in sorted(baseline["benches"].items()):
        now = current["benches"].get(name)
        if now is None:
            failures.append("%s: bench disappeared from kernelbench" % name)
            continue
        floor = base["fused_rate"] * args.factor
        status = "ok" if now["fused_rate"] >= floor else "REGRESSION"
        print(
            "%-32s baseline %8.2f  now %8.2f  floor %8.2f  %s (%s)"
            % (name, base["fused_rate"], now["fused_rate"], floor, status, base["unit"])
        )
        if now["fused_rate"] < floor:
            failures.append(
                "%s: %.2f < %.2f (%.0f%% of baseline %.2f)"
                % (name, now["fused_rate"], floor, 100 * args.factor, base["fused_rate"])
            )

    gates = [
        ("kwise4_batch_hash", kernelbench.KWISE_SPEEDUP_FLOOR),
        ("nitro_countsketch_update_batch", kernelbench.NITRO_SPEEDUP_FLOOR),
    ]
    for name, floor in gates:
        speedup = current["benches"][name]["speedup"]
        status = "ok" if speedup >= floor else "GATE MISSED"
        print("%-32s speedup %.2fx (gate %.1fx)  %s" % (name, speedup, floor, status))
        if speedup < floor:
            failures.append("%s: speedup %.2fx below gate %.1fx" % (name, speedup, floor))

    if not args.skip_telemetry:
        ceiling = kernelbench.TELEMETRY_OVERHEAD_CEILING
        overhead = kernelbench.telemetry_overhead(
            scale=args.scale, repeats=args.repeats
        )
        ratio = overhead["ratio"]
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s live/null %.3fx (ceiling %.2fx)  %s"
            % ("telemetry_update_batch", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "telemetry overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if not args.skip_audit:
        ceiling = kernelbench.AUDIT_OVERHEAD_CEILING
        overhead = kernelbench.audit_overhead(scale=args.scale, repeats=args.repeats)
        ratio = overhead["ratio"]
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s audited/bare %.3fx (ceiling %.2fx)  %s"
            % ("audit_update_batch", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "audit overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if not args.skip_checkpoint:
        ceiling = kernelbench.CHECKPOINT_OVERHEAD_CEILING
        overhead = kernelbench.checkpoint_overhead(
            scale=args.scale, repeats=args.repeats
        )
        ratio = overhead["ratio"]
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s checkpointed/bare %.3fx (ceiling %.2fx)  %s"
            % ("checkpoint_ingest", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "checkpoint overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if not args.skip_verify:
        ceiling = kernelbench.VERIFY_OVERHEAD_CEILING
        overhead = kernelbench.verify_overhead(scale=args.scale, repeats=args.repeats)
        ratio = overhead["ratio"]
        if ratio > ceiling:
            # The hook's true cost is one attribute test per batch; a
            # ratio over the ceiling on a loaded box is noise, so
            # measure once more and take the better of the two.
            retry = kernelbench.verify_overhead(scale=args.scale, repeats=args.repeats)
            ratio = min(ratio, retry["ratio"])
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s hooked/direct %.3fx (ceiling %.2fx)  %s"
            % ("verify_hook_update_batch", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "verify-hook overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if failures:
        print("\nperformance check FAILED:")
        for failure in failures:
            print("  - %s" % failure)
        return 1
    print("\nperformance check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
