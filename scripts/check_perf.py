#!/usr/bin/env python
"""Guard the fused-kernel throughput against the committed baseline.

Usage:  PYTHONPATH=src python scripts/check_perf.py [--update] [--factor F]

Re-runs :mod:`repro.experiments.kernelbench` and compares each bench's
``fused_rate`` against ``BENCH_kernels.json``.  A bench failing to reach
``factor`` (default 0.7, i.e. a >30% regression) of its baseline rate
fails the check, as does missing either of the kernel-layer speedup
gates (kwise >= 5x over the object-dtype path, NitroSketch batch >= 2x
end-to-end), the telemetry-overhead ceiling (a live Telemetry sink on
the batch update path must cost <= 10% over NULL_TELEMETRY), or the
audit-overhead ceiling (a live shadow auditor riding the batch ingest
path must cost <= 10% over an unaudited run), or the checkpoint-overhead
ceiling (periodic crash-safety checkpoints at the default cadence must
cost <= 10% over a daemon that never checkpoints), or the
verify-overhead ceiling (the *disabled* invariant hook on the batch
update path must cost <= 5% over calling the implementation directly),
or the tracing-overhead ceiling (the full observability stack -- live
telemetry, span tracer, and the stage profiler at its default sampling
cadence -- must cost <= 10% over the bare ingest path), or the
alert-overhead ceiling (the alert plane -- sketch-driven anomaly
detectors observing each epoch plus the default rule set evaluated at
every epoch boundary -- must cost <= 10% over bare ingest), or the
windowed-ingest ceiling (batched ingest through a SlidingWindowMonitor,
epoch rotations included, must cost <= 15% over updating the wrapped
sketch directly), or the served-ingest ceiling (the same batches framed
over loopback TCP through a live MonitoringService -- asyncio reader,
tenant queue, drainer coroutine, sync barrier -- must cost <= 15% over
in-process MeasurementDaemon ingest).  ``--update`` rewrites the
baseline from this run instead.

The parallel-scaling gate additionally runs the real multiprocess
engine (shared-memory CountMin banks, 1 and 4 workers) and requires the
4-worker aggregate CPU-clock rate to reach ``PARALLEL_SCALING_FLOOR``
(2.5x) of the 1-worker rate -- the committed ``BENCH_parallel.json``
must show the same.  Comparisons that need real parallel hardware (the
4-worker aggregate vs the single-core ``countmin_update_batch``
baseline, and wall-clock scaling) only run when the host has >= 4 CPUs:
on fewer CPUs the workers time-slice and those numbers measure the
scheduler, not the engine.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE = os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json")
PARALLEL_BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_parallel.json"
)

#: Live parallel-gate measurement attempts; the best ratio counts (a
#: loaded box -- e.g. right after the kernel benches above -- can
#: starve one attempt's workers).
PARALLEL_ATTEMPTS = 3


def parallel_scaling_gate(args) -> list:
    """The multiprocess-engine scaling gate; returns failure strings."""
    from repro.experiments.parallel_scaling import (
        BATCH_SIZE,
        PARALLEL_SCALING_FLOOR,
    )
    from repro.parallel import (
        ParallelIngestEngine,
        VanillaFactory,
        parallel_unavailable_reason,
    )
    from repro.traffic.traces import caida_like

    failures = []

    # 1. The committed baseline must exist and itself clear the floor.
    try:
        with open(PARALLEL_BASELINE) as handle:
            committed = json.load(handle)
        recorded = committed["configs"]["shared-countmin"]["workers"]["4"][
            "scaling_x"
        ]
        status = "ok" if recorded >= PARALLEL_SCALING_FLOOR else "GATE MISSED"
        print(
            "%-32s committed scaling %.2fx (gate %.1fx)  %s"
            % ("parallel_baseline", recorded, PARALLEL_SCALING_FLOOR, status)
        )
        if recorded < PARALLEL_SCALING_FLOOR:
            failures.append(
                "BENCH_parallel.json records %.2fx 4-worker scaling, below "
                "the %.1fx gate" % (recorded, PARALLEL_SCALING_FLOOR)
            )
    except (FileNotFoundError, KeyError) as error:
        failures.append(
            "BENCH_parallel.json missing or malformed (%r) -- run "
            "python -m repro.experiments.parallel_scaling --write" % error
        )
        return failures

    reason = parallel_unavailable_reason()
    if reason:
        print(
            "%-32s live gate skipped: %s" % ("parallel_scaling", reason)
        )
        return failures

    # 2. Live: 4-worker aggregate CPU-clock rate vs 1-worker, same trace.
    # 800k packets: short traces leave each worker too few batches for a
    # stable CPU-clock reading.
    packets = max(400_000, int(800_000 * args.scale))
    trace = caida_like(packets, seed=0)
    factory = VanillaFactory(sketch="countmin", depth=5, width=102_400, seed=0)

    def measure(workers: int):
        engine = ParallelIngestEngine(
            factory, workers=workers, strategy="shared", batch_size=BATCH_SIZE
        )
        return engine.run(trace.keys)

    best_ratio, single, quad = 0.0, None, None
    for _ in range(PARALLEL_ATTEMPTS):
        one = measure(1)
        four = measure(4)
        ratio = four.speedup_vs(one)
        if ratio > best_ratio:
            best_ratio, single, quad = ratio, one, four
        if best_ratio >= PARALLEL_SCALING_FLOOR:
            break
    status = "ok" if best_ratio >= PARALLEL_SCALING_FLOOR else "GATE MISSED"
    print(
        "%-32s 1w %6.2f -> 4w %6.2f agg-cpu Mpps, %.2fx (gate %.1fx)  %s"
        % (
            "parallel_scaling",
            single.aggregate_cpu_mpps,
            quad.aggregate_cpu_mpps,
            best_ratio,
            PARALLEL_SCALING_FLOOR,
            status,
        )
    )
    if best_ratio < PARALLEL_SCALING_FLOOR:
        failures.append(
            "parallel scaling %.2fx below the %.1fx gate (1w %.2f, 4w %.2f "
            "aggregate CPU-clock Mpps)"
            % (
                best_ratio,
                PARALLEL_SCALING_FLOOR,
                single.aggregate_cpu_mpps,
                quad.aggregate_cpu_mpps,
            )
        )

    # 3. Absolute comparisons need >= 4 real CPUs to mean anything.
    host_cpus = os.cpu_count() or 1
    if host_cpus >= 4:
        try:
            with open(BASELINE) as handle:
                kernels = json.load(handle)
            single_core = kernels["benches"]["countmin_update_batch"][
                "fused_rate"
            ]
        except (FileNotFoundError, KeyError):
            single_core = None
        if single_core is not None:
            floor = PARALLEL_SCALING_FLOOR * single_core * args.factor
            rate = quad.aggregate_cpu_mpps
            status = "ok" if rate >= floor else "GATE MISSED"
            print(
                "%-32s 4w %6.2f vs single-core %6.2f Mpps, floor %6.2f  %s"
                % ("parallel_vs_kernel", rate, single_core, floor, status)
            )
            if rate < floor:
                failures.append(
                    "4-worker aggregate %.2f Mpps below %.2f (%.1fx the "
                    "single-core countmin baseline %.2f x factor %.2f)"
                    % (
                        rate,
                        floor,
                        PARALLEL_SCALING_FLOOR,
                        single_core,
                        args.factor,
                    )
                )
        wall_ratio = (
            quad.wall_mpps / single.wall_mpps if single.wall_mpps > 0 else 0.0
        )
        status = "ok" if wall_ratio >= 2.0 else "GATE MISSED"
        print(
            "%-32s wall %.2fx at 4 workers (gate 2.0x, %d CPUs)  %s"
            % ("parallel_wall_scaling", wall_ratio, host_cpus, status)
        )
        if wall_ratio < 2.0:
            failures.append(
                "wall-clock scaling %.2fx below 2.0x on a %d-CPU host"
                % (wall_ratio, host_cpus)
            )
    else:
        print(
            "%-32s absolute/wall gates skipped (host has %d CPU(s) < 4: "
            "workers time-slice)" % ("parallel_vs_kernel", host_cpus)
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true", help="rewrite BENCH_kernels.json from this run"
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=0.7,
        help="minimum fused_rate as a fraction of baseline (default 0.7)",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--skip-telemetry",
        action="store_true",
        help="skip the telemetry-overhead gate",
    )
    parser.add_argument(
        "--skip-audit",
        action="store_true",
        help="skip the audit-overhead gate",
    )
    parser.add_argument(
        "--skip-checkpoint",
        action="store_true",
        help="skip the checkpoint-overhead gate",
    )
    parser.add_argument(
        "--skip-verify",
        action="store_true",
        help="skip the verify-hook-overhead gate",
    )
    parser.add_argument(
        "--skip-parallel",
        action="store_true",
        help="skip the multiprocess-engine scaling gate",
    )
    parser.add_argument(
        "--skip-alerts",
        action="store_true",
        help="skip the alert-plane-overhead gate",
    )
    parser.add_argument(
        "--skip-tracing",
        action="store_true",
        help="skip the tracing/profiling-overhead gate",
    )
    parser.add_argument(
        "--skip-windows",
        action="store_true",
        help="skip the windowed-ingest-overhead gate",
    )
    parser.add_argument(
        "--skip-service",
        action="store_true",
        help="skip the served-ingest-overhead gate",
    )
    args = parser.parse_args(argv)

    skipped = [
        gate
        for gate, skip in (
            ("telemetry", args.skip_telemetry),
            ("audit", args.skip_audit),
            ("checkpoint", args.skip_checkpoint),
            ("verify", args.skip_verify),
            ("parallel", args.skip_parallel),
            ("tracing", args.skip_tracing),
            ("alerts", args.skip_alerts),
            ("windows", args.skip_windows),
            ("service", args.skip_service),
        )
        if skip
    ]
    print("host: %d CPU(s)" % (os.cpu_count() or 1))

    from repro.experiments import kernelbench

    result = kernelbench.run(scale=args.scale, repeats=args.repeats)
    current = kernelbench.payload(result)

    if args.update:
        kernelbench.write_baseline(os.path.abspath(BASELINE), result=result)
        print("updated %s" % os.path.abspath(BASELINE))
        return 0

    try:
        with open(BASELINE) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print("no baseline at %s -- run with --update first" % BASELINE)
        return 1

    failures = []
    for name, base in sorted(baseline["benches"].items()):
        now = current["benches"].get(name)
        if now is None:
            failures.append("%s: bench disappeared from kernelbench" % name)
            continue
        floor = base["fused_rate"] * args.factor
        status = "ok" if now["fused_rate"] >= floor else "REGRESSION"
        print(
            "%-32s baseline %8.2f  now %8.2f  floor %8.2f  %s (%s)"
            % (name, base["fused_rate"], now["fused_rate"], floor, status, base["unit"])
        )
        if now["fused_rate"] < floor:
            failures.append(
                "%s: %.2f < %.2f (%.0f%% of baseline %.2f)"
                % (name, now["fused_rate"], floor, 100 * args.factor, base["fused_rate"])
            )

    gates = [
        ("kwise4_batch_hash", kernelbench.KWISE_SPEEDUP_FLOOR),
        ("nitro_countsketch_update_batch", kernelbench.NITRO_SPEEDUP_FLOOR),
    ]
    for name, floor in gates:
        speedup = current["benches"][name]["speedup"]
        status = "ok" if speedup >= floor else "GATE MISSED"
        print("%-32s speedup %.2fx (gate %.1fx)  %s" % (name, speedup, floor, status))
        if speedup < floor:
            failures.append("%s: speedup %.2fx below gate %.1fx" % (name, speedup, floor))

    if not args.skip_telemetry:
        ceiling = kernelbench.TELEMETRY_OVERHEAD_CEILING
        overhead = kernelbench.telemetry_overhead(
            scale=args.scale, repeats=args.repeats
        )
        ratio = overhead["ratio"]
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s live/null %.3fx (ceiling %.2fx)  %s"
            % ("telemetry_update_batch", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "telemetry overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if not args.skip_audit:
        ceiling = kernelbench.AUDIT_OVERHEAD_CEILING
        overhead = kernelbench.audit_overhead(scale=args.scale, repeats=args.repeats)
        ratio = overhead["ratio"]
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s audited/bare %.3fx (ceiling %.2fx)  %s"
            % ("audit_update_batch", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "audit overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if not args.skip_checkpoint:
        ceiling = kernelbench.CHECKPOINT_OVERHEAD_CEILING
        overhead = kernelbench.checkpoint_overhead(
            scale=args.scale, repeats=args.repeats
        )
        ratio = overhead["ratio"]
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s checkpointed/bare %.3fx (ceiling %.2fx)  %s"
            % ("checkpoint_ingest", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "checkpoint overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if not args.skip_verify:
        ceiling = kernelbench.VERIFY_OVERHEAD_CEILING
        overhead = kernelbench.verify_overhead(scale=args.scale, repeats=args.repeats)
        ratio = overhead["ratio"]
        if ratio > ceiling:
            # The hook's true cost is one attribute test per batch; a
            # ratio over the ceiling on a loaded box is noise, so
            # measure once more and take the better of the two.
            retry = kernelbench.verify_overhead(scale=args.scale, repeats=args.repeats)
            ratio = min(ratio, retry["ratio"])
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s hooked/direct %.3fx (ceiling %.2fx)  %s"
            % ("verify_hook_update_batch", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "verify-hook overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if not args.skip_tracing:
        ceiling = kernelbench.TRACING_OVERHEAD_CEILING
        overhead = kernelbench.tracing_overhead(scale=args.scale, repeats=args.repeats)
        ratio = overhead["ratio"]
        if ratio > ceiling:
            # Stage timers and span bookkeeping cost microseconds per
            # batch; a ratio over the ceiling on a loaded box is noise,
            # so measure once more and take the better of the two.
            retry = kernelbench.tracing_overhead(scale=args.scale, repeats=args.repeats)
            ratio = min(ratio, retry["ratio"])
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s traced/bare %.3fx (ceiling %.2fx)  %s"
            % ("tracing_update_batch", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "tracing overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if not args.skip_alerts:
        ceiling = kernelbench.ALERT_OVERHEAD_CEILING
        overhead = kernelbench.alert_overhead(scale=args.scale, repeats=args.repeats)
        ratio = overhead["ratio"]
        if ratio > ceiling:
            # One epoch's detector pass costs half a millisecond; on a
            # loaded box that can read as over-ceiling noise, so measure
            # once more and take the better of the two.
            retry = kernelbench.alert_overhead(scale=args.scale, repeats=args.repeats)
            ratio = min(ratio, retry["ratio"])
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s alerted/bare %.3fx (ceiling %.2fx)  %s"
            % ("alert_update_batch", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "alert overhead %.3fx exceeds ceiling %.2fx" % (ratio, ceiling)
            )

    if not args.skip_windows:
        ceiling = kernelbench.WINDOW_OVERHEAD_CEILING
        overhead = kernelbench.window_overhead(scale=args.scale, repeats=args.repeats)
        ratio = overhead["ratio"]
        if ratio > ceiling:
            # The window adds one comparison per batch and a counter
            # reset per rotation; over-ceiling readings on a loaded box
            # are noise, so measure once more and take the better.
            retry = kernelbench.window_overhead(scale=args.scale, repeats=args.repeats)
            ratio = min(ratio, retry["ratio"])
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s windowed/bare %.3fx (ceiling %.2fx)  %s"
            % ("window_update_batch", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "windowed-ingest overhead %.3fx exceeds ceiling %.2fx"
                % (ratio, ceiling)
            )

    if not args.skip_service:
        ceiling = kernelbench.SERVICE_OVERHEAD_CEILING
        overhead = kernelbench.service_overhead(scale=args.scale, repeats=args.repeats)
        ratio = overhead["ratio"]
        if ratio > ceiling:
            # The served side rides a second thread (asyncio drain), so
            # scheduler contention on a loaded box can read as
            # over-ceiling noise; measure once more and take the better.
            retry = kernelbench.service_overhead(scale=args.scale, repeats=args.repeats)
            ratio = min(ratio, retry["ratio"])
        status = "ok" if ratio <= ceiling else "TOO EXPENSIVE"
        print(
            "%-32s served/direct %.3fx (ceiling %.2fx)  %s"
            % ("service_ingest", ratio, ceiling, status)
        )
        if ratio > ceiling:
            failures.append(
                "served-ingest overhead %.3fx exceeds ceiling %.2fx"
                % (ratio, ceiling)
            )

    if not args.skip_parallel:
        failures.extend(parallel_scaling_gate(args))

    if skipped:
        print("\nskipped gates: %s" % ", ".join(skipped))
    if failures:
        print("\nperformance check FAILED:")
        for failure in failures:
            print("  - %s" % failure)
        return 1
    print("\nperformance check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
