"""Figure 3 bench: prior approaches vs flow count.

(a) hashtable throughput collapse / sketch flatness; (b) ElasticSketch
accuracy overflow.  Micro-bench: hashtable vs sketch ingest.
"""

from repro.baselines import ElasticSketch, HashTableMonitor
from repro.experiments import fig3


def test_fig3a_series(benchmark):
    result = benchmark.pedantic(fig3.run_fig3a, kwargs={"scale": 0.0005}, rounds=1)
    hashtable = [r for r in result.rows if r["system"] == "Hashtable"]
    assert hashtable[0]["packet_rate_mpps"] > hashtable[-1]["packet_rate_mpps"]
    print()
    print(result.render())


def test_fig3b_series(benchmark):
    result = benchmark.pedantic(fig3.run_fig3b, kwargs={"scale": 0.0005}, rounds=1)
    assert result.rows[-1]["light_saturated"]
    print()
    print(result.render())


def test_hashtable_ingest(benchmark, caida_key_list):
    def ingest():
        table = HashTableMonitor()
        table.update_many(caida_key_list)
        return table

    benchmark.pedantic(ingest, rounds=3)


def test_elastic_ingest(benchmark, caida_key_list):
    def ingest():
        sketch = ElasticSketch(heavy_buckets=8192, light_counters=65536, seed=1)
        sketch.update_many(caida_key_list)
        return sketch

    benchmark.pedantic(ingest, rounds=3)
