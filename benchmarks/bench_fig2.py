"""Figure 2 bench: sketch packet rates on OVS-DPDK.

Wall-clock micro-benchmarks compare the per-packet ingest cost of the
vanilla sketches (the Figure-2 bars), and the experiment runner
regenerates the figure's ordering from the cost model.
"""

from repro.experiments import fig2
from repro.experiments.common import vanilla_monitor
from repro.sketches import CountMinSketch, TrackedSketch


def test_fig2_series(benchmark):
    """Regenerate Figure 2 and assert its ordering."""
    result = benchmark.pedantic(fig2.run, kwargs={"scale": 0.01}, rounds=1)
    rates = {row["system"]: row["packet_rate_mpps"] for row in result.rows}
    assert rates["UnivMon"] < rates["Count-Min"] < rates["OVS-DPDK"] <= rates["DPDK"]
    print()
    print(result.render())


def test_vanilla_countmin_ingest(benchmark, caida_key_list):
    """Wall-clock scalar ingest of the paper's Count-Min config."""
    def ingest():
        monitor = TrackedSketch(CountMinSketch(5, 10000, seed=3), k=100)
        monitor.update_many(caida_key_list)
        return monitor

    benchmark.pedantic(ingest, rounds=3)


def test_vanilla_univmon_ingest(benchmark, caida_key_list):
    """Wall-clock scalar ingest of the paper's UnivMon config (slowest bar)."""
    def ingest():
        monitor = vanilla_monitor("univmon", seed=3)
        for key in caida_key_list[:10_000]:
            monitor.update(key)
        return monitor

    benchmark.pedantic(ingest, rounds=3)
