"""Figure 13 bench: SketchVisor and NetFlow/sFlow comparisons.

Micro-bench: SketchVisor's fast-path scalar ingest vs NitroSketch's --
the wall-clock counterpart of the in-memory Mpps comparison.
"""

from repro.baselines import SketchVisor
from repro.core import nitro_univmon
from repro.experiments import fig13


def test_fig13a_series(benchmark):
    result = benchmark.pedantic(fig13.run_fig13a, kwargs={"scale": 0.02}, rounds=1)
    rates = {row["system"]: row["packet_rate_mpps"] for row in result.rows}
    assert rates["NitroSketch(UnivMon)"] > rates["SketchVisor(100%)"]
    print()
    print(result.render())


def test_fig13b_series(benchmark):
    result = benchmark.pedantic(fig13.run_fig13b, kwargs={"scale": 0.02}, rounds=1)
    print()
    print(result.render())


def test_sketchvisor_fastpath_ingest(benchmark, caida_key_list):
    def ingest():
        monitor = SketchVisor(fast_entries=900, fast_fraction=1.0, seed=4)
        monitor.update_many(caida_key_list)
        return monitor

    benchmark.pedantic(ingest, rounds=3)


def test_nitro_univmon_scalar_ingest(benchmark, caida_key_list):
    def ingest():
        monitor = nitro_univmon(probability=0.01, seed=4)
        monitor.update_many(caida_key_list)
        return monitor

    benchmark.pedantic(ingest, rounds=3)
