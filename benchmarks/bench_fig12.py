"""Figure 12 bench: per-sketch accuracy vs epoch + convergence theory."""

from repro.experiments import fig12


def test_fig12a_series(benchmark):
    result = benchmark.pedantic(fig12.run_fig12a, kwargs={"scale": 0.04}, rounds=1)
    nitro = [r for r in result.rows if r["variant"] == "nitro p=0.1"]
    assert nitro[-1]["cs_hh_error_pct"] < nitro[0]["cs_hh_error_pct"]
    print()
    print(result.render())


def test_fig12b_series(benchmark):
    result = benchmark.pedantic(fig12.run_fig12b, kwargs={"scale": 0.04}, rounds=1)
    print()
    print(result.render())


def test_fig12c_theory(benchmark):
    result = benchmark.pedantic(fig12.run_fig12c, kwargs={"scale": 0.2}, rounds=1)
    one_pct = [
        r
        for r in result.rows
        if r["error_target_pct"] == 1.0
        and r["l2_growth_source"] == "paper CAIDA anchors"
    ]
    packets = [r["convergence_packets"] for r in one_pct]
    assert packets == sorted(packets, reverse=True)
    print()
    print(result.render())
