"""Benches for the extension features: AlwaysLineRate adaptation,
Theorem-2 validation, the Nitro-accelerated ElasticSketch light part,
and sketch serialization for the control link."""

from repro.baselines import ElasticSketch, NitroElasticSketch
from repro.control import ControlLink, deserialize_sketch, serialize_sketch
from repro.experiments import adaptive, validation
from repro.sketches import CountSketch


def test_adaptation_ladder(benchmark):
    result = benchmark.pedantic(adaptive.run, kwargs={"scale": 0.5}, rounds=1)
    burst = [r for r in result.rows if r["phase"] == "burst"]
    assert burst[-1]["probability"] == 1 / 64
    print()
    print(result.render())


def test_theorem2_validation(benchmark):
    result = benchmark.pedantic(
        validation.run, kwargs={"scale": 0.5, "trials": 15}, rounds=1
    )
    assert all(row["within_bound"] for row in result.rows)
    print()
    print(result.render())


def test_vanilla_elastic_ingest(benchmark, caida_key_list):
    def ingest():
        sketch = ElasticSketch(heavy_buckets=8192, light_counters=65536, seed=1)
        sketch.update_many(caida_key_list)
        return sketch

    benchmark.pedantic(ingest, rounds=3)


def test_nitro_elastic_ingest(benchmark, caida_key_list):
    """Paper Section 5: NitroSketch accelerates ElasticSketch's light part."""
    def ingest():
        sketch = NitroElasticSketch(
            heavy_buckets=8192, light_counters=65536, probability=0.05, seed=1
        )
        sketch.update_many(caida_key_list)
        return sketch

    benchmark.pedantic(ingest, rounds=3)


def test_sketch_serialization_roundtrip(benchmark):
    sketch = CountSketch(5, 102400, seed=1)  # the paper's 2MB config
    def roundtrip():
        return deserialize_sketch(serialize_sketch(sketch))

    clone = benchmark.pedantic(roundtrip, rounds=5)
    payload = len(serialize_sketch(sketch))
    link_seconds = ControlLink().transfer_seconds(payload)
    print()
    print(
        "payload %.1f MB -> %.1f ms on the 1GbE control link "
        "(bounds epoch frequency to %.0f/s)"
        % (
            payload / 2**20,
            1000 * link_seconds,
            ControlLink().max_epochs_per_second(payload),
        )
    )
    assert clone.width == sketch.width
