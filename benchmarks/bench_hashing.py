"""Hashing micro-benchmarks.

Table 2 shows hashing is the dominant sketch cost, and Idea D's batch
processing is the paper's answer.  These benches quantify both on real
hardware: scalar vs vectorised xxhash32, and the multiply-shift family
(default) vs the xxhash family (the C implementation's) as sketch row
hashes.
"""

import numpy as np

from repro.hashing.families import MultiplyShiftHash
from repro.hashing.rowhash import XXHashRowHash
from repro.hashing.xxhash import xxhash32_batch, xxhash32_u64


KEYS = np.arange(100_000, dtype=np.uint64)


def test_xxhash32_scalar(benchmark):
    """Per-key Python xxhash32 (the paper's per-packet hash cost)."""
    keys = KEYS[:5_000]

    def run():
        return [xxhash32_u64(int(k)) for k in keys]

    benchmark(run)


def test_xxhash32_batch(benchmark):
    """Vectorised xxhash32 (Idea-D's AVX analogue)."""
    benchmark(lambda: xxhash32_batch(KEYS))


def test_multiply_shift_batch(benchmark):
    """The default row-hash family, vectorised."""
    hash_fn = MultiplyShiftHash(102400, seed=1)
    benchmark(lambda: hash_fn.batch(KEYS))


def test_xxhash_rowhash_batch(benchmark):
    """The xxhash row-hash family, vectorised."""
    hash_fn = XXHashRowHash(102400, seed=1)
    benchmark(lambda: hash_fn.batch(KEYS))
