"""Shared fixtures for the benchmark suite.

Every bench uses small scales so the full suite finishes in minutes;
``python -m repro.experiments.<fig> --scale 1.0``-style invocations of
the experiment modules produce the full-size numbers recorded in
EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.traffic import caida_like, min_sized_stress


@pytest.fixture(scope="session")
def caida_trace():
    """A 200k-packet CAIDA-like trace shared across benches."""
    return caida_like(200_000, n_flows=40_000, seed=1)


@pytest.fixture(scope="session")
def stress_trace():
    """A 100k-packet min-sized stress trace."""
    return min_sized_stress(100_000, n_flows=10_000, seed=2)


@pytest.fixture(scope="session")
def caida_keys(caida_trace):
    return caida_trace.keys


@pytest.fixture(scope="session")
def caida_key_list(caida_trace):
    """Python-list view for scalar-loop benches."""
    return caida_trace.keys[:50_000].tolist()
