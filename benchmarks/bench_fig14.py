"""Figure 14 bench: HH errors, SketchVisor vs NitroSketch, three traces."""

from repro.experiments import fig14


def test_fig14_series(benchmark):
    result = benchmark.pedantic(fig14.run, kwargs={"scale": 0.01}, rounds=1)
    biggest = max(row["epoch_packets"] for row in result.rows)
    dc = [
        r
        for r in result.rows
        if r["trace"] == "DC"
        and r["epoch_packets"] == biggest
        and r["system"] == "SketchVisor(100%)"
    ][0]
    assert dc["hh_error_pct"] < 5.0  # SketchVisor accurate on skewed DC
    print()
    print(result.render())
