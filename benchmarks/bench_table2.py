"""Table 2 bench: CPU hotspot breakdown of UnivMon on OVS-DPDK."""

from repro.experiments import table2


def test_table2(benchmark):
    result = benchmark.pedantic(table2.run, kwargs={"scale": 0.01}, rounds=1)
    shares = {row["function"]: row["cpu_share_pct"] for row in result.rows}
    assert shares["xxhash32 (hash computations)"] == max(shares.values())
    print()
    print(result.render())
