"""Figure 10 bench: CPU usage of the integration modes."""

from repro.experiments import fig10


def test_fig10a(benchmark):
    result = benchmark.pedantic(fig10.run_fig10a, kwargs={"scale": 0.01}, rounds=1)
    nitro_rows = [r for r in result.rows if r["variant"] == "nitrosketch-AIO"]
    assert all(r["sketch_cpu_pct"] < 20.0 for r in nitro_rows)
    print()
    print(result.render())


def test_fig10b(benchmark):
    result = benchmark.pedantic(fig10.run_fig10b, kwargs={"scale": 0.01}, rounds=1)
    assert all(r["switch_core_pct"] > 90.0 for r in result.rows)
    print()
    print(result.render())
