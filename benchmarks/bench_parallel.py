"""Parallel ingest engine benchmarks: multiprocess runs vs one process.

These measure the *whole* engine -- process spawn, shared-memory setup,
sharded ingest, epoch hand-off, merge -- so wall time includes the
fixed parallelism overhead that the per-packet kernel benches exclude.
The scaling story (1/2/4 workers, aggregate CPU-clock rates) lives in
``python -m repro.experiments.parallel_scaling``, whose committed
``BENCH_parallel.json`` is guarded by ``scripts/check_perf.py``; these
benches exist to catch engine-overhead regressions (a slower mailbox or
merge shows up here first).
"""

import pytest

from repro.parallel import (
    NitroFactory,
    ParallelIngestEngine,
    VanillaFactory,
    parallel_unavailable_reason,
)

pytestmark = pytest.mark.skipif(
    parallel_unavailable_reason() is not None,
    reason=parallel_unavailable_reason() or "",
)


def test_parallel_shared_countmin_2w(benchmark, caida_trace):
    """Two workers scatter-adding into shared-memory CountMin banks."""
    factory = VanillaFactory(sketch="countmin", depth=5, width=102_400, seed=3)
    keys = caida_trace.keys

    def run():
        engine = ParallelIngestEngine(
            factory, workers=2, strategy="shared", batch_size=16_384
        )
        return engine.run(keys)

    result = benchmark(run)
    assert result.packets == len(keys)


def test_parallel_merge_nitro_2w(benchmark, caida_trace):
    """Two workers with private NitroSketches, one epoch merge."""
    factory = NitroFactory(
        sketch="countsketch", depth=5, width=102_400, probability=0.01, seed=3
    )
    keys = caida_trace.keys

    def run():
        engine = ParallelIngestEngine(
            factory, workers=2, strategy="merge", batch_size=16_384
        )
        return engine.run(keys)

    result = benchmark(run)
    assert result.packets == len(keys)


def test_parallel_single_worker_overhead(benchmark, caida_trace):
    """One worker through the full engine: the pure parallelism tax.

    Compare against ``test_countmin_update_batch_fused`` in
    ``bench_kernels.py`` -- the gap is spawn + shared memory + hand-off.
    """
    factory = VanillaFactory(sketch="countmin", depth=5, width=102_400, seed=3)
    keys = caida_trace.keys

    def run():
        engine = ParallelIngestEngine(
            factory, workers=1, strategy="shared", batch_size=16_384
        )
        return engine.run(keys)

    result = benchmark(run)
    assert result.packets == len(keys)
