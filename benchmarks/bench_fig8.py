"""Figure 8 bench: NitroSketch throughput on OVS/VPP/BESS.

The wall-clock benches here demonstrate the *relative* speedup on real
hardware: the NitroSketch ingest paths (scalar and batch) against the
vanilla sketch, processing the same trace.
"""

from repro.core import nitro_countsketch
from repro.experiments import fig8
from repro.sketches import CountSketch, TrackedSketch


def test_fig8a_series(benchmark):
    result = benchmark.pedantic(fig8.run_fig8a, kwargs={"scale": 0.01}, rounds=1)
    nitro_rows = [r for r in result.rows if r["variant"] == "nitrosketch"]
    assert all(abs(r["throughput_gbps"] - 40.0) < 1.0 for r in nitro_rows)
    print()
    print(result.render())


def test_fig8b_series(benchmark):
    result = benchmark.pedantic(fig8.run_fig8b, kwargs={"scale": 0.01}, rounds=1)
    print()
    print(result.render())


def test_fig8c_series(benchmark):
    result = benchmark.pedantic(fig8.run_fig8c, kwargs={"scale": 0.01}, rounds=1)
    assert all(abs(r["throughput_gbps"] - 40.0) < 1.0 for r in result.rows)
    print()
    print(result.render())


def test_vanilla_cs_scalar_ingest(benchmark, caida_key_list):
    """Baseline for the wall-clock speedup comparison."""
    def ingest():
        monitor = TrackedSketch(CountSketch(5, 102400, seed=1), k=100)
        monitor.update_many(caida_key_list)
        return monitor

    benchmark.pedantic(ingest, rounds=3)


def test_nitro_cs_scalar_ingest(benchmark, caida_key_list):
    """NitroSketch scalar path: most packets cost one decrement."""
    def ingest():
        monitor = nitro_countsketch(probability=0.01, seed=1)
        monitor.update_many(caida_key_list)
        return monitor

    benchmark.pedantic(ingest, rounds=3)


def test_nitro_cs_batch_ingest(benchmark, caida_keys):
    """NitroSketch vectorised path (Idea D analogue)."""
    def ingest():
        monitor = nitro_countsketch(probability=0.01, seed=1)
        monitor.update_batch(caida_keys)
        return monitor

    benchmark.pedantic(ingest, rounds=3)
