"""Table 1 bench: existing solutions on OVS-DPDK."""

from repro.experiments import table1


def test_table1(benchmark):
    result = benchmark.pedantic(table1.run, kwargs={"scale": 0.01}, rounds=1)
    rates = {row["solution"]: row["ovs_packet_rate_mpps"] for row in result.rows}
    assert rates["NitroSketch"] == max(rates.values())
    print()
    print(result.render())
