"""Figure 15 bench: HH recall, NetFlow vs NitroSketch, three traces."""

from repro.experiments import fig15


def test_fig15_series(benchmark):
    result = benchmark.pedantic(fig15.run, kwargs={"scale": 0.02}, rounds=1)
    biggest = max(row["epoch_packets"] for row in result.rows)
    for trace in ("CAIDA", "DDoS", "DC"):
        rows = {
            r["system"]: r["recall_pct"]
            for r in result.rows
            if r["trace"] == trace and r["epoch_packets"] == biggest
        }
        assert rows["NetFlow (0.01)"] > rows["NetFlow (0.001)"]
    print()
    print(result.render())
