"""Design-choice ablation bench (DESIGN.md section 5).

Geometric vs Bernoulli vs uniform packet sampling vs one-array vs
vanilla, at equal sampling rate and memory.
"""

from repro.experiments import ablation


def test_ablation_series(benchmark):
    result = benchmark.pedantic(ablation.run, kwargs={"scale": 0.05}, rounds=1)
    rates = {row["variant"]: row["packet_rate_mpps"] for row in result.rows}
    assert rates["nitro-geometric"] == max(rates.values())
    errors = {row["variant"]: row["hh_error_pct"] for row in result.rows}
    assert errors["uniform-sampling"] > errors["nitro-geometric"]
    print()
    print(result.render())
