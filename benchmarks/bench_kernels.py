"""Fused-kernel benchmarks: new batch paths vs the seed implementations.

The legacy reference implementations live in
:mod:`repro.experiments.kernelbench` (pinned copies of the pre-kernel
code); ``python -m repro.experiments.kernelbench --write`` regenerates
the committed ``BENCH_kernels.json`` baseline that
``scripts/check_perf.py`` guards.
"""

import numpy as np

from repro.core import NitroSketch
from repro.experiments.kernelbench import (
    legacy_kwise_batch,
    legacy_nitro_update_batch,
    legacy_query_loop,
    legacy_update_batch,
)
from repro.hashing.families import KWiseHash
from repro.sketches import CountMinSketch, CountSketch


def test_kwise_batch_legacy(benchmark, caida_keys):
    """Seed object-dtype big-int four-wise hashing."""
    hash_fn = KWiseHash(4, 102400, seed=11)
    keys = caida_keys[:20_000]
    benchmark(lambda: legacy_kwise_batch(hash_fn, keys))


def test_kwise_batch_fused(benchmark, caida_keys):
    """Native uint64 Mersenne-61 four-wise hashing."""
    hash_fn = KWiseHash(4, 102400, seed=11)
    benchmark(lambda: hash_fn.batch(caida_keys))


def test_countmin_update_batch_legacy(benchmark, caida_keys):
    """Seed per-row ``np.add.at`` Count-Min batch updates."""
    sketch = CountMinSketch(5, 102400, seed=21)
    benchmark(lambda: legacy_update_batch(sketch, caida_keys))


def test_countmin_update_batch_fused(benchmark, caida_keys):
    """Fused flat-index Count-Min batch updates."""
    sketch = CountMinSketch(5, 102400, seed=21)
    benchmark(lambda: sketch.update_batch(caida_keys))


def test_countsketch_update_batch_legacy(benchmark, caida_keys):
    """Seed per-row signed batch updates."""
    sketch = CountSketch(5, 102400, seed=22)
    benchmark(lambda: legacy_update_batch(sketch, caida_keys))


def test_countsketch_update_batch_fused(benchmark, caida_keys):
    """Fused signed batch updates (one hash matrix, one scatter)."""
    sketch = CountSketch(5, 102400, seed=22)
    benchmark(lambda: sketch.update_batch(caida_keys))


def test_nitro_update_batch_legacy(benchmark, caida_keys):
    """Seed NitroSketch batch path: per-row masks + scalar top-k offers."""
    nitro = NitroSketch(CountSketch(5, 102400, seed=31), probability=0.01, top_k=100)
    benchmark(lambda: legacy_nitro_update_batch(nitro, caida_keys))


def test_nitro_update_batch_fused(benchmark, caida_keys):
    """Fused NitroSketch batch path: slot kernel + ``query_batch`` offers."""
    nitro = NitroSketch(CountSketch(5, 102400, seed=31), probability=0.01, top_k=100)
    benchmark(lambda: nitro.update_batch(caida_keys))


def test_query_batch_legacy(benchmark, caida_keys):
    """Per-key scalar point queries (seed heavy-hitter report path)."""
    sketch = CountSketch(5, 102400, seed=41)
    sketch.update_batch(caida_keys)
    probe = np.unique(caida_keys)[:2_000]
    benchmark(lambda: legacy_query_loop(sketch, probe))


def test_query_batch_fused(benchmark, caida_keys):
    """Vectorised batch point queries."""
    sketch = CountSketch(5, 102400, seed=41)
    sketch.update_batch(caida_keys)
    probe = np.unique(caida_keys)[:50_000]
    benchmark(lambda: sketch.query_batch(probe))
