"""Figure 9 bench: memory/throughput trade-off and component ablation.

Micro-benches measure the wall-clock effect of Idea B directly:
geometric skipping vs per-row Bernoulli coin flips on the same stream.
"""

from repro.core import NitroConfig, NitroSketch
from repro.experiments import fig9
from repro.sketches import CountSketch


def test_fig9a_series(benchmark):
    result = benchmark.pedantic(fig9.run_fig9a, kwargs={"scale": 0.01}, rounds=1)
    for target in (3.0, 5.0):
        series = [r for r in result.rows if r["error_target_pct"] == target]
        assert series[-1]["packet_rate_mpps"] > series[0]["packet_rate_mpps"]
    print()
    print(result.render())


def test_fig9b_ablation(benchmark):
    result = benchmark.pedantic(fig9.run_fig9b, kwargs={"scale": 0.01}, rounds=1)
    capacities = [row["capacity_mpps"] for row in result.rows]
    assert capacities[-1] > 3 * capacities[0]
    print()
    print(result.render())


def _scalar_ingest(sampling, keys):
    config = NitroConfig(probability=0.01, seed=5, sampling=sampling, top_k=100)
    monitor = NitroSketch(CountSketch(5, 16384, seed=5), config)
    monitor.update_many(keys)
    return monitor


def test_geometric_sampling_ingest(benchmark, caida_key_list):
    """Idea B: one PRNG draw per sampled slot."""
    benchmark.pedantic(lambda: _scalar_ingest("geometric", caida_key_list), rounds=3)


def test_bernoulli_sampling_ingest(benchmark, caida_key_list):
    """Idea A without Idea B: d coin flips per packet."""
    benchmark.pedantic(lambda: _scalar_ingest("bernoulli", caida_key_list), rounds=3)
