"""Figure 11 bench: UnivMon accuracy vs epoch + AlwaysCorrect throughput.

Micro-bench: vanilla vs Nitro UnivMon vectorised ingest (the real
wall-clock speedup of whole-structure sampling).
"""

from repro.core import nitro_univmon
from repro.experiments import fig11
from repro.sketches import UnivMon


def test_fig11a_series(benchmark):
    result = benchmark.pedantic(fig11.run_fig11a, kwargs={"scale": 0.04}, rounds=1)
    nitro = [r for r in result.rows if r["variant"] == "nitro p=0.1"]
    assert nitro[-1]["hh_error_pct"] < nitro[0]["hh_error_pct"]
    print()
    print(result.render())


def test_fig11b_series(benchmark):
    result = benchmark.pedantic(fig11.run_fig11b, kwargs={"scale": 0.04}, rounds=1)
    print()
    print(result.render())


def test_fig11c_alwayscorrect(benchmark):
    result = benchmark.pedantic(fig11.run_fig11c, kwargs={"scale": 0.05}, rounds=1)
    series = [r for r in result.rows if "Count-Sketch" in r["monitor"]]
    assert series[-1]["throughput_gbps"] > series[0]["throughput_gbps"]
    print()
    print(result.render())


def test_vanilla_univmon_batch_ingest(benchmark, caida_keys):
    def ingest():
        monitor = UnivMon(levels=14, depth=5, widths=10000, k=100, seed=2)
        monitor.update_batch(caida_keys)
        return monitor

    benchmark.pedantic(ingest, rounds=3)


def test_nitro_univmon_batch_ingest(benchmark, caida_keys):
    def ingest():
        monitor = nitro_univmon(probability=0.01, seed=2)
        monitor.update_batch(caida_keys)
        return monitor

    benchmark.pedantic(ingest, rounds=3)
