#!/usr/bin/env python
"""Quickstart: accelerate a Count Sketch with NitroSketch.

Builds a vanilla Count Sketch and its NitroSketch-accelerated twin,
streams a synthetic CAIDA-like trace through both, and compares heavy-
hitter estimates against exact ground truth -- the 60-second tour of the
library's core API.

Run:  python examples/quickstart.py
"""

import time

from repro import CountSketch, NitroSketch
from repro.metrics import heavy_hitter_truth, mean_relative_error, recall
from repro.sketches import TrackedSketch
from repro.traffic import caida_like


def main() -> None:
    # 1. A workload: 1M packets over ~100k flows, heavy-tailed like a
    #    backbone trace (mean packet size 714B, the CAIDA average).
    trace = caida_like(1_000_000, n_flows=100_000, seed=42)
    counts = trace.counts()
    print("trace: %d packets, %d flows" % (len(trace), trace.flow_count()))

    # 2. The vanilla sketch: 5 rows x 102400 counters (the paper's 2MB
    #    Count Sketch config) plus a top-k heap for reporting.
    vanilla = TrackedSketch(CountSketch(depth=5, width=102400, seed=7), k=300)

    # 3. The NitroSketch version: same sketch, geometric counter-array
    #    sampling at p = 0.01 -- ~1% of the per-packet work.
    nitro = NitroSketch(
        CountSketch(depth=5, width=102400, seed=7),
        probability=0.01,
        top_k=300,
        seed=7,
    )

    # 4. Stream the trace through both (vectorised ingest).
    start = time.perf_counter()
    vanilla.update_batch(trace.keys)
    vanilla_seconds = time.perf_counter() - start

    start = time.perf_counter()
    nitro.update_batch(trace.keys)
    nitro_seconds = time.perf_counter() - start

    # 5. Compare heavy hitters above the paper's 0.05% threshold.
    threshold = 0.0005 * len(trace)
    truth = heavy_hitter_truth(counts, 0.0005)
    for name, monitor, seconds in (
        ("vanilla", vanilla, vanilla_seconds),
        ("nitro  ", nitro, nitro_seconds),
    ):
        detected = dict(monitor.heavy_hitters(threshold))
        print(
            "%s  ingest=%.2fs  detected=%d  recall=%.1f%%  mean-rel-error=%.2f%%"
            % (
                name,
                seconds,
                len(detected),
                100 * recall(set(detected), truth),
                100 * mean_relative_error(detected, counts),
            )
        )

    # 6. Point queries work like the vanilla sketch's.
    top_flow = max(counts, key=counts.get)
    print(
        "largest flow: truth=%d  vanilla=%.0f  nitro=%.0f"
        % (counts[top_flow], vanilla.query(top_flow), nitro.query(top_flow))
    )


if __name__ == "__main__":
    main()
