#!/usr/bin/env python
"""Throughput survey across software switches and integration modes.

Drives the same min-sized-packet stress trace through the OVS-DPDK,
VPP, and BESS pipeline models, with vanilla and NitroSketch-accelerated
monitors in both all-in-one and separate-thread integrations -- a
condensed Figure 8 for your own configurations.

Run:  python examples/switch_throughput.py
"""

from repro.core import nitro_countsketch, nitro_univmon
from repro.experiments.report import format_table
from repro.sketches import CountSketch, TrackedSketch, UnivMon, paper_widths
from repro.switchsim import (
    BESSPipeline,
    IntegrationMode,
    MeasurementDaemon,
    OVSDPDKPipeline,
    SwitchSimulator,
    VPPPipeline,
)
from repro.traffic import min_sized_stress


def monitors(seed: int = 0):
    yield "vanilla Count Sketch", lambda: TrackedSketch(
        CountSketch(5, 102400, seed), k=100
    )
    yield "nitro Count Sketch", lambda: nitro_countsketch(seed=seed)
    yield "vanilla UnivMon", lambda: UnivMon(
        levels=14, depth=5, widths=paper_widths(14), k=100, seed=seed
    )
    yield "nitro UnivMon", lambda: nitro_univmon(seed=seed)


def main() -> None:
    trace = min_sized_stress(100_000, n_flows=10_000, seed=3)
    rows = []
    for pipeline_cls in (OVSDPDKPipeline, VPPPipeline, BESSPipeline):
        baseline = SwitchSimulator(pipeline_cls()).run(trace, offered_gbps=40.0)
        rows.append(
            {
                "platform": baseline.platform,
                "monitor": "(none)",
                "mode": "-",
                "capacity_mpps": round(baseline.capacity_mpps, 2),
            }
        )
        for label, factory in monitors():
            for mode in (IntegrationMode.ALL_IN_ONE, IntegrationMode.SEPARATE_THREAD):
                daemon = MeasurementDaemon(factory(), mode, name=label)
                sim = SwitchSimulator(pipeline_cls(), daemon).run(
                    trace, offered_gbps=40.0
                )
                rows.append(
                    {
                        "platform": sim.platform,
                        "monitor": label,
                        "mode": mode.value,
                        "capacity_mpps": round(sim.capacity_mpps, 2),
                    }
                )
    print(format_table(rows))
    print()
    print(
        "Reading guide: NitroSketch should track the bare platform's rate; "
        "vanilla sketches throttle it (compare against the '(none)' rows)."
    )


if __name__ == "__main__":
    main()
