#!/usr/bin/env python
"""Change detection across epochs with a Nitro-accelerated K-ary sketch.

K-ary sketches are linear: subtracting two same-seed epoch sketches
gives a sketch of the *traffic difference*, whose heavy flows are the
heavy changers (paper task "Change Detection", refs [51, 68]).  This
example synthesises churn -- 25% of flows change identity between
epochs -- and shows the detector catching the big movers while
NitroSketch keeps per-packet work at ~1% of vanilla.

Run:  python examples/change_detection.py
"""

from repro.control import KAryChangeMonitor
from repro.core import nitro_kary
from repro.metrics import change_truth, recall
from repro.traffic import caida_like, remap_flows
from repro.traffic.flows import true_counts

EPOCH_PACKETS = 500_000
CHURN = 0.25
THRESHOLD_FRACTION = 0.001


def main() -> None:
    base = caida_like(2 * EPOCH_PACKETS, n_flows=50_000, seed=21)
    first_keys = base.keys[:EPOCH_PACKETS]
    # Second epoch: same traffic mix, but a quarter of the flows change
    # identity (sessions ending / starting) -- the heavy ones among them
    # are the changers we want to catch.
    second_keys = remap_flows(base.keys[EPOCH_PACKETS:], CHURN)

    monitor_a = KAryChangeMonitor(nitro_kary(probability=0.01, top_k=500, seed=21))
    monitor_b = KAryChangeMonitor(nitro_kary(probability=0.01, top_k=500, seed=21))
    monitor_a.update_batch(first_keys)
    monitor_b.update_batch(second_keys)

    threshold = THRESHOLD_FRACTION * EPOCH_PACKETS
    detected = monitor_b.change_detection(monitor_a, threshold)

    counts_first = true_counts(first_keys)
    counts_second = true_counts(second_keys)
    truth = change_truth(counts_first, counts_second, THRESHOLD_FRACTION)

    print(
        "epochs of %d packets, %.0f%% flow churn: %d true heavy changers"
        % (EPOCH_PACKETS, 100 * CHURN, len(truth))
    )
    print(
        "detected %d changers, recall %.1f%%"
        % (len(detected), 100 * recall({key for key, _ in detected}, truth))
    )
    print("top detected changes (flow, |delta| estimate vs truth):")
    for key, delta in detected[:8]:
        true_delta = abs(counts_second.get(key, 0) - counts_first.get(key, 0))
        print("  flow %12d:  est %8.0f   true %8d" % (key, delta, true_delta))


if __name__ == "__main__":
    main()
