#!/usr/bin/env python
"""Heavy-hitter monitoring on a simulated OVS-DPDK switch.

The paper's deployment scenario end to end: a NitroSketch-accelerated
UnivMon runs all-in-one inside a simulated OVS-DPDK data plane at
40 GbE, while an epoch-driven control plane extracts heavy hitters,
entropy, and distinct-flow counts every epoch and scores them against
ground truth.

Run:  python examples/heavy_hitter_monitoring.py
"""

from repro.control import (
    ControlPlane,
    DistinctFlowsTask,
    EntropyTask,
    HeavyHitterTask,
)
from repro.core import NitroMode, nitro_univmon
from repro.sketches import paper_widths
from repro.switchsim import (
    IntegrationMode,
    MeasurementDaemon,
    OVSDPDKPipeline,
    SwitchSimulator,
)
from repro.traffic import caida_like

EPOCH_PACKETS = 250_000


def main() -> None:
    trace = caida_like(1_000_000, n_flows=100_000, seed=11)

    # --- data plane: how fast does the monitored switch run? -------------
    daemon = MeasurementDaemon(
        nitro_univmon(probability=0.01, widths=paper_widths(14), k=200, seed=11),
        IntegrationMode.ALL_IN_ONE,
        name="nitro-univmon",
    )
    simulator = SwitchSimulator(OVSDPDKPipeline(), daemon)
    performance = simulator.run(trace, offered_gbps=40.0)
    print(
        "data plane: offered %.2f Mpps -> achieved %.2f Mpps (%.1f Gbps), "
        "sketch CPU share %.1f%%"
        % (
            performance.offered_mpps,
            performance.achieved_mpps,
            performance.achieved_gbps,
            100 * performance.sketch_cpu_share,
        )
    )

    # --- control plane: per-epoch statistics ------------------------------
    # AlwaysCorrect mode: the paper's recommendation for composite
    # sketches (Section 4.3) -- exact until the L2 convergence test
    # passes, so entropy/distinct estimates keep their guarantees even on
    # short epochs.
    control = ControlPlane(
        monitor_factory=lambda epoch: nitro_univmon(
            probability=0.01,
            mode=NitroMode.ALWAYS_CORRECT,
            widths=paper_widths(14),
            k=200,
            seed=11,
        ),
        tasks=[HeavyHitterTask(0.0005), EntropyTask(), DistinctFlowsTask()],
    )
    for epoch_report in control.run_epochs(trace, EPOCH_PACKETS):
        hh = epoch_report.reports["heavy_hitters"]
        entropy = epoch_report.reports["entropy"]
        distinct = epoch_report.reports["distinct_flows"]
        print(
            "epoch %d (%d pkts): %d heavy hitters (recall %.0f%%, err %.1f%%), "
            "entropy %.2f bits (err %.1f%%), distinct ~%.0f (err %.1f%%)"
            % (
                epoch_report.epoch,
                epoch_report.packets,
                len(hh.detected),
                100 * (hh.recall or 0),
                100 * (hh.error or 0),
                entropy.estimate,
                100 * (entropy.error or 0),
                distinct.estimate,
                100 * (distinct.error or 0),
            )
        )


if __name__ == "__main__":
    main()
