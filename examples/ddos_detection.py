#!/usr/bin/env python
"""DDoS detection with entropy shift + source fan-in.

Uses two of the paper's motivating measurement tasks together:

* **entropy estimation** (UnivMon G-sum) -- a DDoS swarm of many small
  sources inflates the source-address entropy of the victim's traffic;
* **source cardinality** (HyperLogLog) -- counts distinct sources per
  epoch, the "Attack Detection" task of Section 2 ("a destination host
  that receives traffic from more than a threshold number of source
  hosts").

The trace starts benign and turns into a DDoS halfway; the monitors run
in AlwaysLineRate mode, adapting their sampling rate to the packet rate
exactly as Idea C describes.

Run:  python examples/ddos_detection.py
"""

import numpy as np

from repro.core import NitroMode, nitro_univmon
from repro.metrics import empirical_entropy
from repro.sketches import HyperLogLog
from repro.traffic import caida_like, ddos_like
from repro.traffic.flows import true_counts

EPOCHS = 6
EPOCH_PACKETS = 150_000


def build_trace() -> tuple:
    """Benign epochs followed by attack epochs; returns (keys, labels)."""
    benign = caida_like(EPOCH_PACKETS * (EPOCHS // 2), n_flows=40_000, seed=5)
    attack = ddos_like(
        EPOCH_PACKETS * (EPOCHS - EPOCHS // 2),
        n_background_flows=40_000,
        n_attack_sources=60_000,
        attack_fraction=0.5,
        seed=6,
    )
    keys = np.concatenate([benign.keys, attack.keys])
    # The benign trace has no separate source column: its flows stand in
    # for sources (one source per flow); the attack trace carries real
    # per-packet source addresses.
    sources = np.concatenate([benign.keys, attack.src_addresses])
    labels = ["benign"] * (EPOCHS // 2) + ["ATTACK"] * (EPOCHS - EPOCHS // 2)
    return keys, sources, labels


def main() -> None:
    keys, sources, labels = build_trace()
    print("monitoring %d epochs of %d packets" % (EPOCHS, EPOCH_PACKETS))
    baseline_entropy = None
    for epoch in range(EPOCHS):
        start = epoch * EPOCH_PACKETS
        stop = start + EPOCH_PACKETS
        epoch_keys = keys[start:stop]
        epoch_sources = sources[start:stop]

        # Flow-entropy monitor: Nitro-UnivMon in AlwaysLineRate mode.
        monitor = nitro_univmon(
            probability=0.01,
            mode=NitroMode.ALWAYS_LINE_RATE,
            k=200,
            seed=9,
        )
        monitor.update_batch(epoch_keys, duration_seconds=0.5)
        entropy = monitor.entropy_estimate()
        true_entropy = empirical_entropy(true_counts(epoch_keys))

        # Source fan-in monitor: HyperLogLog over source addresses.
        hll = HyperLogLog(precision=12, seed=9)
        hll.update_batch(epoch_sources)
        distinct_sources = hll.estimate()

        if baseline_entropy is None:
            baseline_entropy = entropy
        shift = entropy - baseline_entropy
        alarm = "  <-- ALARM" if shift > 1.0 else ""
        print(
            "epoch %d [%s]: entropy %.2f bits (true %.2f, baseline %+.2f), "
            "~%.0f distinct sources%s"
            % (epoch, labels[epoch], entropy, true_entropy, shift, distinct_sources, alarm)
        )


if __name__ == "__main__":
    main()
