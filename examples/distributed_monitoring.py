#!/usr/bin/env python
"""Distributed monitoring: per-core sketches merged at the control plane.

Real deployments shard traffic across PMD cores (NIC RSS) or across
switches; sketch linearity makes the aggregate view exact: each vantage
point runs its own NitroSketch with the *same seed*, serializes its
counters over the control link (Section 6's 1GbE), and the controller
sums them.

This example shards a trace across three simulated cores, runs one
NitroSketch per core, ships each core's state across the modelled
control link, merges, and shows that the merged heavy hitters match a
single monolithic monitor.  A live shadow auditor rides the merged
view -- exact ground truth for a uniform flow sample, checked against
the Theorem 2 ``eps * L2`` bound -- and the run's metrics plus a
``/health`` verdict are served over HTTP for the duration of the run.

Run:  python examples/distributed_monitoring.py
"""

from repro.control import ControlLink, deserialize_sketch, serialize_sketch
from repro.core import NitroConfig, NitroSketch
from repro.metrics import heavy_hitter_truth, recall
from repro.sketches import CountSketch
from repro.switchsim import MultiCoreSimulator, OVSDPDKPipeline
from repro.telemetry import Telemetry, TelemetryServer
from repro.telemetry.audit import GuaranteeMonitor, ShadowAuditor
from repro.telemetry.health import HealthEvaluator, default_rules
from repro.traffic import caida_like

CORES = 3
SEED = 33


def make_monitor() -> NitroSketch:
    # Same seed everywhere => identical hash functions => mergeable.
    return NitroSketch(
        CountSketch(5, 65536, seed=SEED),
        NitroConfig(probability=0.02, top_k=200, seed=SEED),
    )


def main() -> None:
    trace = caida_like(900_000, n_flows=80_000, seed=SEED)
    counts = trace.counts()
    threshold = 0.0005 * len(trace)
    truth = heavy_hitter_truth(counts, 0.0005)

    # --- observability: auditor + health endpoint ------------------------
    telemetry = Telemetry()
    auditor = ShadowAuditor(capacity=256, seed=SEED, telemetry=telemetry)
    health = HealthEvaluator(telemetry, default_rules(error_slo=5.0))
    server = TelemetryServer(telemetry, port=0, health=health).start()
    print(
        "telemetry: /metrics /snapshot /health on http://127.0.0.1:%d"
        % server.port
    )

    # --- shard across cores (RSS keeps flows core-local) ----------------
    sharder = MultiCoreSimulator(lambda core: OVSDPDKPipeline(), cores=CORES)
    shards = sharder.shard(trace)
    link = ControlLink(rate_gbps=1.0)

    monitors = []
    total_link_ms = 0.0
    for core, shard in enumerate(shards):
        monitor = make_monitor()
        monitor.update_batch(shard.keys)
        blob = serialize_sketch(monitor.sketch)
        total_link_ms += 1000 * link.transfer_seconds(len(blob))
        print(
            "core %d: %6d packets, %5.1f KB exported" % (core, len(shard), len(blob) / 1024)
        )
        monitors.append((monitor, blob))

    # --- control plane: rebuild + merge ----------------------------------
    merged, _ = monitors[0]
    for monitor, blob in monitors[1:]:
        remote = deserialize_sketch(blob)  # what actually crossed the link
        merged.sketch.merge(remote)
        for key in monitor.topk.keys():
            merged.topk.offer(key, merged.sketch.query(key))
    print("control link busy %.2f ms/epoch for %d cores" % (total_link_ms, CORES))

    # --- compare against a monolithic monitor ----------------------------
    monolithic = make_monitor()
    monolithic.update_batch(trace.keys)

    merged_found = {key for key, _ in merged.heavy_hitters(threshold)}
    mono_found = {key for key, _ in monolithic.heavy_hitters(threshold)}
    print(
        "heavy hitters: merged recall %.1f%%, monolithic recall %.1f%%, "
        "overlap %d/%d"
        % (
            100 * recall(merged_found, truth),
            100 * recall(mono_found, truth),
            len(merged_found & mono_found),
            len(mono_found),
        )
    )
    top_flow = max(counts, key=counts.get)
    print(
        "largest flow: truth=%d merged=%.0f monolithic=%.0f"
        % (counts[top_flow], merged.query(top_flow), monolithic.query(top_flow))
    )

    # --- audit the merged view against the Theorem 2 bound ---------------
    guard = GuaranteeMonitor(auditor, merged, epsilon=0.5)
    guard.observe_batch(trace.keys)
    check = guard.check()
    verdict = health.evaluate()
    print(
        "audit: %d tracked flows, observed max error %.0f vs %s bound %.0f "
        "(ratio %.3f), violations %d, health %s"
        % (
            auditor.tracked_flows,
            check.observed_max_error,
            check.guarantee,
            check.bound,
            check.ratio,
            guard.violations,
            verdict.status,
        )
    )
    server.close()


if __name__ == "__main__":
    main()
