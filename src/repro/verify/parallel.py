"""Parallel-plane checks: multiprocess ingest against sequential oracles.

The parallel engine's whole correctness story is that spreading a trace
across worker processes changes *throughput only*.  This suite proves it
on a live multiprocess run:

* **merge strategy** is bit-exact: the parallel run's merged monitor
  serializes to the *same bytes* as the in-process sequential oracle
  (:meth:`~repro.parallel.ParallelIngestEngine.run_sequential`), which
  performs the identical shard/batch/merge call sequence without
  processes;
* **shared strategy** is bit-exact for vanilla sketches: summed worker
  banks equal one sketch that ingested the whole trace (integral float64
  adds commute exactly below ``2**53``);
* **shared-strategy Nitro** lands inside the Theorem-2 ``eps * L2``
  envelope on the heaviest true flows (per-worker sampler streams are
  independent, so counters differ per-draw but estimates must not);
* **determinism**: two identical parallel runs produce byte-identical
  monitors -- scheduling must not leak into results;
* **corruption is fatal**: a worker whose epoch frame is bit-flipped in
  flight (``FrameCorruptionPlan``) must raise
  :class:`~repro.parallel.ShardCorruptionError`, never merge garbage;
* **crashes recover exactly**: a worker killed mid-epoch
  (``WorkerCrashPlan``) is respawned from its last published frame and
  the final merged monitor is still byte-identical to the oracle.

Hosts without a usable ``multiprocessing.shared_memory`` mount (some
sandboxes) get passing "skipped" results rather than failures: the
engine itself refuses to run there, so there is nothing to verify.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.control.export import serialize_monitor
from repro.parallel import (
    NitroFactory,
    ParallelIngestEngine,
    ShardCorruptionError,
    VanillaFactory,
    parallel_unavailable_reason,
)
from repro.faults import FrameCorruptionPlan, WorkerCrashPlan
from repro.traffic.traces import Trace, caida_like
from repro.verify.differential import (
    ENVELOPE_SLACK,
    WITHIN_FRACTION,
    implied_epsilon,
)
from repro.verify.result import CheckResult

_WORKERS = 3


def _default_trace(packets: int, seed: int) -> Trace:
    return caida_like(packets, n_flows=max(200, packets // 20), seed=seed)


def _skip(name: str, reason: str) -> CheckResult:
    return CheckResult.ok(name, "skipped: %s" % reason, skipped=1.0)


def check_merge_parallel_vs_sequential(
    packets: int = 12_000, seed: int = 0
) -> CheckResult:
    """Multi-epoch merge-strategy run must be byte-exact vs the oracle."""
    name = "parallel.merge_vs_sequential"
    reason = parallel_unavailable_reason()
    if reason:
        return _skip(name, reason)
    trace = _default_trace(packets, seed)
    factory = NitroFactory(
        sketch="countsketch", depth=5, width=2048, probability=0.1, seed=seed
    )

    def build() -> ParallelIngestEngine:
        return ParallelIngestEngine(
            factory,
            workers=_WORKERS,
            strategy="merge",
            epoch_packets=packets // 3,
            batch_size=1024,
        )

    parallel = build().run(trace.keys)
    sequential = build().run_sequential(trace.keys)
    if serialize_monitor(parallel.monitor) != serialize_monitor(
        sequential.monitor
    ):
        return CheckResult.fail(
            name,
            "parallel merge over %d workers diverged from the sequential "
            "oracle (serialized bytes differ)" % _WORKERS,
        )
    return CheckResult.ok(
        name,
        "merge strategy byte-exact vs sequential oracle (%d workers, "
        "%d epochs, %d packets)" % (_WORKERS, parallel.epochs, packets),
        packets=float(packets),
        epochs=float(parallel.epochs),
    )


def check_shared_vanilla_vs_whole(packets: int = 12_000, seed: int = 0) -> CheckResult:
    """Summed shared-memory banks must equal one whole-trace sketch."""
    name = "parallel.shared_vanilla_bit_exact"
    reason = parallel_unavailable_reason()
    if reason:
        return _skip(name, reason)
    trace = _default_trace(packets, seed)
    factory = VanillaFactory(sketch="countmin", depth=4, width=2048, seed=seed)
    engine = ParallelIngestEngine(
        factory, workers=_WORKERS, strategy="shared", batch_size=1024
    )
    result = engine.run(trace.keys)
    whole = factory(-1)
    whole.update_batch(trace.keys)
    if not np.array_equal(result.monitor.counters, whole.counters):
        delta = float(np.max(np.abs(result.monitor.counters - whole.counters)))
        return CheckResult.fail(
            name,
            "shared-memory banks summed over %d workers diverge from a "
            "single whole-trace sketch (max |delta| %g)" % (_WORKERS, delta),
            max_delta=delta,
        )
    return CheckResult.ok(
        name,
        "shared strategy bit-exact vs whole-trace CountMin "
        "(%d workers, %d packets)" % (_WORKERS, packets),
        packets=float(packets),
    )


def check_shared_nitro_envelope(
    packets: int = 20_000,
    seed: int = 0,
    probability: float = 0.1,
    width: int = 2048,
    top_keys: int = 24,
) -> CheckResult:
    """Shared-strategy Nitro estimates must sit in the eps*L2 envelope."""
    name = "parallel.shared_nitro_envelope"
    reason = parallel_unavailable_reason()
    if reason:
        return _skip(name, reason)
    trace = _default_trace(packets, seed)
    counts = trace.counts()
    truth = dict(sorted(counts.items(), key=lambda item: -item[1])[:top_keys])
    l2_true = math.sqrt(sum(value * value for value in counts.values()))
    envelope = implied_epsilon(width, probability) * l2_true

    engine = ParallelIngestEngine(
        NitroFactory(
            sketch="countsketch",
            depth=5,
            width=width,
            probability=probability,
            top_k=64,
            seed=seed,
        ),
        workers=_WORKERS,
        strategy="shared",
        batch_size=2048,
    )
    result = engine.run(trace.keys)
    errors = np.array(
        [abs(result.monitor.query(key) - count) for key, count in truth.items()]
    )
    worst = float(np.max(errors))
    within = float(np.mean(errors <= envelope))
    if worst > ENVELOPE_SLACK * envelope or within < WITHIN_FRACTION:
        return CheckResult.fail(
            name,
            "shared Nitro over %d workers: worst error %.1f vs envelope "
            "%.1f (eps*L2), only %.0f%% of top-%d keys within 1x"
            % (_WORKERS, worst, envelope, 100 * within, len(truth)),
            worst_error=worst,
            envelope=envelope,
            within_fraction=within,
        )
    return CheckResult.ok(
        name,
        "shared Nitro over %d workers: worst error %.1f within %.1fx of "
        "the eps*L2 envelope %.1f"
        % (_WORKERS, worst, worst / envelope, envelope),
        worst_error=worst,
        envelope=envelope,
        within_fraction=within,
    )


def check_parallel_determinism(packets: int = 8_000, seed: int = 0) -> CheckResult:
    """Two identical parallel runs must produce byte-identical monitors."""
    name = "parallel.determinism"
    reason = parallel_unavailable_reason()
    if reason:
        return _skip(name, reason)
    trace = _default_trace(packets, seed)

    def run_once() -> bytes:
        engine = ParallelIngestEngine(
            NitroFactory(
                sketch="countsketch", depth=5, width=1024,
                probability=0.1, seed=seed,
            ),
            workers=_WORKERS,
            strategy="merge",
            epoch_packets=packets // 2,
            batch_size=1024,
        )
        return serialize_monitor(engine.run(trace.keys).monitor)

    if run_once() != run_once():
        return CheckResult.fail(
            name,
            "two identical parallel runs produced different serialized "
            "monitors -- scheduling leaked into results",
        )
    return CheckResult.ok(
        name,
        "re-running the parallel ingest is byte-identical "
        "(%d workers, %d packets)" % (_WORKERS, packets),
        packets=float(packets),
    )


def check_corruption_detected(packets: int = 6_000, seed: int = 0) -> CheckResult:
    """A bit-flipped epoch frame must abort the run, not merge."""
    name = "parallel.corruption_detected"
    reason = parallel_unavailable_reason()
    if reason:
        return _skip(name, reason)
    trace = _default_trace(packets, seed)
    engine = ParallelIngestEngine(
        NitroFactory(sketch="countsketch", depth=4, width=1024, seed=seed),
        workers=_WORKERS,
        strategy="merge",
        batch_size=1024,
        corruption_plan=FrameCorruptionPlan(worker=1, epoch=0, count=16, seed=seed),
    )
    try:
        engine.run(trace.keys)
    except ShardCorruptionError as exc:
        return CheckResult.ok(
            name,
            "bit-flipped frame from worker %d rejected at CRC validation "
            "(%s)" % (exc.worker, exc),
            worker=float(exc.worker),
        )
    return CheckResult.fail(
        name,
        "a deliberately corrupted epoch frame was merged without any "
        "ShardCorruptionError -- CRC validation is not protecting merges",
    )


def check_crash_recovery(packets: int = 12_000, seed: int = 0) -> CheckResult:
    """A worker killed mid-epoch must be respawned with no accuracy loss."""
    name = "parallel.crash_recovery"
    reason = parallel_unavailable_reason()
    if reason:
        return _skip(name, reason)
    trace = _default_trace(packets, seed)
    factory = NitroFactory(
        sketch="countsketch", depth=5, width=1024, probability=0.1, seed=seed
    )

    def build(crash_plan=None) -> ParallelIngestEngine:
        return ParallelIngestEngine(
            factory,
            workers=_WORKERS,
            strategy="merge",
            epoch_packets=packets // 3,
            batch_size=1024,
            crash_plan=crash_plan,
        )

    crashed = build(WorkerCrashPlan(worker=1, epoch=1, fraction=0.5)).run(trace.keys)
    if crashed.restarts != 1:
        return CheckResult.fail(
            name,
            "expected exactly 1 restart after the injected crash, saw %d"
            % crashed.restarts,
            restarts=float(crashed.restarts),
        )
    oracle = build().run_sequential(trace.keys)
    if serialize_monitor(crashed.monitor) != serialize_monitor(oracle.monitor):
        return CheckResult.fail(
            name,
            "post-recovery merged monitor diverged from the sequential "
            "oracle (serialized bytes differ)",
        )
    return CheckResult.ok(
        name,
        "worker crash mid-epoch recovered from its last published frame; "
        "merged result byte-exact vs the oracle (1 restart)",
        restarts=1.0,
        packets=float(packets),
    )


def run_parallel_checks(quick: bool = False, seed: int = 0) -> List[CheckResult]:
    """The full parallel suite (scaled down under ``quick``)."""
    packets = 6_000 if quick else 12_000
    envelope_packets = 10_000 if quick else 20_000
    return [
        check_merge_parallel_vs_sequential(packets=packets, seed=seed),
        check_shared_vanilla_vs_whole(packets=packets, seed=seed),
        check_shared_nitro_envelope(packets=envelope_packets, seed=seed),
        check_parallel_determinism(packets=packets // 2 * 2, seed=seed),
        check_corruption_detected(packets=packets // 2, seed=seed),
        check_crash_recovery(packets=packets, seed=seed),
    ]
