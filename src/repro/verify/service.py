"""Service-plane checks: the always-on service vs in-process oracles.

The monitoring service adds three claims on top of the sketch math, and
this suite proves each one end to end (real sockets, real HTTP):

* **wire fidelity + tenant isolation** -- two clients stream disjoint
  tenants' traffic concurrently over the ingest socket; afterwards each
  tenant's monitor must be *byte-identical* to a reference daemon fed
  the same batches in-process.  Byte equality is the strongest possible
  isolation statement: not one counter anywhere in tenant A's sketch
  moved because of tenant B's packets (their hash functions and
  sampling streams derive from independent per-tenant seed streams);
* **queries during ingest stay inside Theorem 2** -- heavy-hitter and
  point answers fetched over HTTP at sync barriers while the stream is
  still arriving must sit inside the ``eps * L2`` envelope of the
  exactly-known sent prefix, with racing (unsynchronised) queries
  answering 200 throughout;
* **lifecycle durability** -- a graceful stop checkpoints every tenant;
  a restarted service restores each one byte-exactly and resumes
  ingest; LRU eviction under a tenant budget also round-trips bytes
  (evict -> restore == never evicted).

Plus the drop-accounting contract of the backpressure path: with
``overflow="drop"`` and no drainer, exactly queue_capacity batches are
accepted and the rest are counted, never silently lost.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading
import urllib.request
from typing import Dict, List

import numpy as np

from repro.control.export import serialize_monitor
from repro.service import IngestClient, MonitoringService, ServiceConfig
from repro.service.records import batch_from_keys
from repro.switchsim.daemon import MeasurementDaemon
from repro.traffic.traces import Trace, caida_like
from repro.verify.differential import (
    ENVELOPE_SLACK,
    WITHIN_FRACTION,
    implied_epsilon,
)
from repro.verify.result import CheckResult

#: Wire frame granularity for the suite (batch boundaries are part of
#: the byte-exactness contract: reference daemons replay them exactly).
FRAME_KEYS = 1000


def _default_trace(packets: int, seed: int) -> Trace:
    return caida_like(packets, n_flows=max(200, packets // 20), seed=seed)


def _frames(keys: "np.ndarray") -> List["np.ndarray"]:
    return [keys[start : start + FRAME_KEYS] for start in range(0, len(keys), FRAME_KEYS)]


def _reference_monitor(config: ServiceConfig, tenant: str, frames) -> bytes:
    """Serialized bytes of a daemon fed ``frames`` in-process."""
    daemon = MeasurementDaemon(
        config.build_monitor(tenant),
        name="ref",
        queue_capacity=config.queue_capacity,
        epoch_batches=config.epoch_batches,
        window_epochs=config.window_epochs,
    )
    for frame in frames:
        daemon.ingest(batch_from_keys(np.asarray(frame, dtype=np.int64)))
    return serialize_monitor(daemon.monitor)


def _http_json(port: int, path: str) -> Dict:
    with urllib.request.urlopen(
        "http://127.0.0.1:%d%s" % (port, path), timeout=10
    ) as response:
        return json.loads(response.read())


def check_concurrent_tenants(packets: int, seed: int) -> List[CheckResult]:
    """Two concurrent wire clients, separate tenants, byte-exact isolation."""
    trace_a = _default_trace(packets, seed)
    trace_b = _default_trace(packets, seed + 1)
    keys_a = trace_a.keys
    keys_b = trace_b.keys + (1 << 40)  # disjoint key space for clarity
    config = ServiceConfig(seed=seed, epoch_batches=0)
    service = MonitoringService(config, http=False).start()
    results: List[CheckResult] = []
    try:
        errors: List[str] = []

        def run_client(tenant: str, keys: "np.ndarray") -> None:
            try:
                with IngestClient("127.0.0.1", service.ingest_port) as client:
                    for frame in _frames(keys):
                        client.ingest(tenant, frame)
                    client.sync(tenant)
            except Exception as exc:  # surfaced as a check failure
                errors.append("%s: %s" % (tenant, exc))

        thread_a = threading.Thread(target=run_client, args=("tenant_a", keys_a))
        thread_b = threading.Thread(target=run_client, args=("tenant_b", keys_b))
        thread_a.start(), thread_b.start()
        thread_a.join(timeout=60), thread_b.join(timeout=60)
        if errors or thread_a.is_alive() or thread_b.is_alive():
            results.append(
                CheckResult.fail(
                    "service.concurrent_ingest",
                    "client errors: %s" % (errors or "timed out"),
                )
            )
            return results
        stats_a = service.tenants.get("tenant_a").stats()
        stats_b = service.tenants.get("tenant_b").stats()
        lost = (
            stats_a["packets_ingested"] != len(keys_a)
            or stats_b["packets_ingested"] != len(keys_b)
            or stats_a["batches_dropped"]
            or stats_b["batches_dropped"]
        )
        if lost:
            results.append(
                CheckResult.fail(
                    "service.concurrent_ingest",
                    "wire loss: A %d/%d B %d/%d (drops %d/%d)"
                    % (
                        stats_a["packets_ingested"], len(keys_a),
                        stats_b["packets_ingested"], len(keys_b),
                        stats_a["batches_dropped"], stats_b["batches_dropped"],
                    ),
                )
            )
        else:
            results.append(
                CheckResult.ok(
                    "service.concurrent_ingest",
                    "2 concurrent clients, %d packets each, zero loss"
                    % len(keys_a),
                    packets=float(len(keys_a) + len(keys_b)),
                )
            )
        for tenant, keys in (("tenant_a", keys_a), ("tenant_b", keys_b)):
            live = serialize_monitor(service.tenants.get(tenant).daemon.monitor)
            reference = _reference_monitor(config, tenant, _frames(keys))
            if live == reference:
                results.append(
                    CheckResult.ok(
                        "service.isolation_%s" % tenant,
                        "byte-identical to a reference fed only its own "
                        "stream (%d bytes)" % len(live),
                        monitor_bytes=float(len(live)),
                    )
                )
            else:
                results.append(
                    CheckResult.fail(
                        "service.isolation_%s" % tenant,
                        "monitor diverged from the single-tenant reference "
                        "(the other tenant's ingest perturbed it)",
                    )
                )
    finally:
        service.stop()
    return results


def check_query_during_ingest(packets: int, seed: int) -> List[CheckResult]:
    """HTTP heavy-hitter/point answers mid-stream vs the Theorem-2 envelope."""
    trace = _default_trace(packets, seed)
    keys = trace.keys
    config = ServiceConfig(seed=seed, epoch_batches=0)
    service = MonitoringService(config).start()
    results: List[CheckResult] = []
    racing_failures = [0]
    stop_racing = threading.Event()

    def race_queries() -> None:
        # Unsynchronised reads while ingest runs: they must answer 200
        # (values checked separately at the barriers below).
        while not stop_racing.is_set():
            try:
                _http_json(service.http_port, "/tenants/live/stats")
                _http_json(service.http_port, "/tenants/live/heavy_hitters?share=0.01")
            except Exception:
                racing_failures[0] += 1

    try:
        def envelope_check(label: str, sent: "np.ndarray") -> CheckResult:
            """Fetch point answers over HTTP; compare against the exact
            truth of the packets sent (and synced) so far."""
            values, tallies = np.unique(sent, return_counts=True)
            counts: Dict[int, float] = {
                int(v): float(t) for v, t in zip(values.tolist(), tallies.tolist())
            }
            truth = dict(sorted(counts.items(), key=lambda kv: -kv[1])[:32])
            l2_true = math.sqrt(sum(v * v for v in counts.values()))
            envelope = implied_epsilon(config.width, config.probability) * l2_true
            point = _http_json(
                service.http_port,
                "/tenants/live/point?key=%s" % ",".join(str(k) for k in truth),
            )
            estimates = {
                entry["key"]: entry["estimate"] for entry in point["estimates"]
            }
            errors = np.array(
                [abs(estimates[k] - count) for k, count in truth.items()]
            )
            worst = float(np.max(errors))
            within = float(np.mean(errors <= envelope))
            name = "service.envelope_%s" % label
            if worst > ENVELOPE_SLACK * envelope or within < WITHIN_FRACTION:
                return CheckResult.fail(
                    name,
                    "HTTP answers outside Theorem 2: worst %.1f vs "
                    "envelope %.1f, %.0f%% within 1x"
                    % (worst, envelope, 100 * within),
                    worst_error=worst,
                    envelope=envelope,
                )
            return CheckResult.ok(
                name,
                "HTTP point answers within %.2fx of the eps*L2 envelope "
                "(%d keys)"
                % (worst / envelope if envelope else 0.0, len(truth)),
                worst_error=worst,
                envelope=envelope,
                within_fraction=within,
            )

        frames = _frames(keys)
        half = len(frames) // 2
        with IngestClient("127.0.0.1", service.ingest_port) as client:
            for frame in frames[:half]:
                client.ingest("live", frame)
            client.sync("live")
            # Mid-stream barrier: the tail has not been sent yet, so the
            # sent prefix is the exact ground truth right now.
            results.append(envelope_check("prefix", keys[: half * FRAME_KEYS]))
            racer = threading.Thread(target=race_queries)
            racer.start()
            for frame in frames[half:]:
                client.ingest("live", frame)
            client.sync("live")
            stop_racing.set()
            racer.join(timeout=10)
            results.append(envelope_check("full", keys))
            hh = _http_json(
                service.http_port, "/tenants/live/heavy_hitters?share=0.01"
            )
            if racing_failures[0] == 0 and hh["packets"] == len(keys):
                results.append(
                    CheckResult.ok(
                        "service.query_during_ingest",
                        "racing HTTP queries all answered during live ingest "
                        "(%d heavy hitters at the end)" % len(hh["heavy_hitters"]),
                        heavy_hitters=float(len(hh["heavy_hitters"])),
                    )
                )
            else:
                results.append(
                    CheckResult.fail(
                        "service.query_during_ingest",
                        "%d racing query failures; final packet count %s vs %d"
                        % (racing_failures[0], hh["packets"], len(keys)),
                    )
                )
    finally:
        stop_racing.set()
        service.stop()
    return results


def check_lifecycle(packets: int, seed: int) -> List[CheckResult]:
    """Graceful stop -> checkpoint -> restart -> byte-exact restore."""
    trace = _default_trace(packets, seed)
    results: List[CheckResult] = []
    with tempfile.TemporaryDirectory(prefix="verify-svc-") as tmp:
        config = ServiceConfig(seed=seed, checkpoint_dir=tmp, epoch_batches=0)
        service = MonitoringService(config, http=False).start()
        tenants = ("red", "green", "blue")
        shards = np.array_split(trace.keys, len(tenants))
        with IngestClient("127.0.0.1", service.ingest_port) as client:
            for tenant, shard in zip(tenants, shards):
                for frame in _frames(shard):
                    client.ingest(tenant, frame)
            for tenant in tenants:
                client.sync(tenant)
        before = {
            tenant: serialize_monitor(service.tenants.get(tenant).daemon.monitor)
            for tenant in tenants
        }
        service.stop()

        revived = MonitoringService(config, http=False).start()
        try:
            restored = {t for t in tenants if revived.tenants.get(t).restored}
            exact = {
                tenant: serialize_monitor(revived.tenants.get(tenant).daemon.monitor)
                == before[tenant]
                for tenant in tenants
            }
            if restored == set(tenants) and all(exact.values()):
                results.append(
                    CheckResult.ok(
                        "service.restart_restore",
                        "all %d tenants checkpointed on stop and restored "
                        "byte-exactly on restart" % len(tenants),
                        tenants=float(len(tenants)),
                    )
                )
            else:
                results.append(
                    CheckResult.fail(
                        "service.restart_restore",
                        "restored=%s byte-exact=%s" % (sorted(restored), exact),
                    )
                )
        finally:
            revived.stop()

        # LRU eviction round-trip: evicting and re-touching a tenant
        # must be invisible to its bytes.
        config2 = ServiceConfig(
            seed=seed, checkpoint_dir=os.path.join(tmp, "lru"),
            max_tenants=2, epoch_batches=0,
        )
        service = MonitoringService(config2, http=False).start()
        try:
            service.ingest_direct("first", trace.keys[:5000])
            first_bytes = serialize_monitor(
                service.tenants.get("first").daemon.monitor
            )
            service.ingest_direct("second", trace.keys[5000:10000])
            service.ingest_direct("third", trace.keys[10000:15000])  # evicts "first"
            evicted_is_lru = "first" not in service.tenants
            back = service.tenants.get("first")  # transparently restores
            roundtrip = (
                back is not None
                and back.restored
                and serialize_monitor(back.daemon.monitor) == first_bytes
            )
            if evicted_is_lru and roundtrip:
                results.append(
                    CheckResult.ok(
                        "service.eviction_roundtrip",
                        "LRU tenant evicted under budget and restored "
                        "byte-exactly on next touch",
                    )
                )
            else:
                results.append(
                    CheckResult.fail(
                        "service.eviction_roundtrip",
                        "lru_evicted=%s byte_exact_restore=%s"
                        % (evicted_is_lru, roundtrip),
                    )
                )
        finally:
            service.stop()
    return results


def check_backpressure_accounting(seed: int) -> List[CheckResult]:
    """overflow='drop' sheds exactly the over-capacity batches, counted."""
    config = ServiceConfig(seed=seed, queue_capacity=4, overflow="drop", epoch_batches=0)
    manager_service = MonitoringService(config, http=False)
    # No started loops: exercise the daemon contract directly (the wire
    # path funnels into the same enqueue()).
    state = manager_service.tenants.get_or_create("bp")
    rng = np.random.default_rng(seed)
    offered = 10
    accepted = 0
    for _ in range(offered):
        batch = batch_from_keys(rng.integers(0, 1000, 100).astype(np.int64))
        if state.daemon.enqueue(batch):
            accepted += 1
    dropped = state.daemon.batches_dropped
    ok = accepted == config.queue_capacity and dropped == offered - accepted
    drained = state.daemon.drain()
    conserved = drained == accepted and state.daemon.queue_depth == 0
    if ok and conserved:
        return [
            CheckResult.ok(
                "service.backpressure_accounting",
                "capacity %d: %d accepted, %d dropped-and-counted, "
                "drain conserved all accepted batches"
                % (config.queue_capacity, accepted, dropped),
                dropped=float(dropped),
            )
        ]
    return [
        CheckResult.fail(
            "service.backpressure_accounting",
            "accepted=%d dropped=%d drained=%d (capacity %d, offered %d)"
            % (accepted, dropped, drained, config.queue_capacity, offered),
        )
    ]


def run_service_checks(quick: bool = False, seed: int = 0) -> List[CheckResult]:
    """The service suite (``nitrosketch selfcheck --suite service``)."""
    packets = 24_000 if quick else 60_000
    results: List[CheckResult] = []
    results.extend(check_concurrent_tenants(packets, seed))
    results.extend(check_query_during_ingest(packets, seed))
    results.extend(check_lifecycle(min(packets, 30_000), seed))
    results.extend(check_backpressure_accounting(seed))
    return results
