"""Statistical checks: the sampling process against its own math.

Differential checks catch paths that disagree with each other; these
catch paths that agree on the *wrong* distribution.  Each check tests a
closed-form property of the paper's sampling design:

* counter estimates are **unbiased** (Idea A: the ``p^-1`` scaling) --
  the mean over many independent seeds must approach truth at the
  ``sqrt(Var/S)`` rate;
* the per-packet sampled fraction is ``1 - (1-p)^d`` (Idea B: slot
  sampling at rate ``p`` over ``d`` rows per packet);
* inter-sample gaps are ``Geometric(p)`` -- a KS test on both the
  scalar xorshift stream and the vectorised NumPy stream;
* AlwaysCorrect's ``on_packet`` and ``on_batch`` agree on the
  convergence point (exactly when batches align with the check period
  ``Q``, within one batch otherwise);
* AlwaysLineRate closes one adaptation epoch per ``100 ms`` of
  accumulated batch time -- not one per batch.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.config import NitroConfig, NitroMode
from repro.core.geometric import GeometricSampler, geometric_positions
from repro.core.nitro import NitroSketch
from repro.sketches.countsketch import CountSketch
from repro.telemetry import Telemetry
from repro.verify.result import CheckResult

#: z-score gates for the Monte-Carlo checks.  5-sigma keeps the false
#: alarm rate per check around 3e-7 while still catching a missing or
#: doubled ``p^-1`` scaling (hundreds of sigma) instantly.
Z_GATE = 5.0

#: KS acceptance threshold scale: ``KS_COEFF / sqrt(n)`` corresponds to
#: alpha ~ 0.01 for a continuous null and is conservative for a discrete
#: one (the true alpha is smaller), so it only fires on real shape bugs.
KS_COEFF = 1.63


def check_unbiasedness(
    n_seeds: int = 48,
    packets: int = 2_000,
    probability: float = 0.1,
    base_seed: int = 0,
) -> CheckResult:
    """Mean estimate over independent seeds must approach the true count.

    A depth-1 Count Sketch makes the median-of-rows query rule exactly
    linear (the median of one row *is* the row), so with a single flow
    the estimator is a sum of ``Bernoulli(p)/p`` contributions whose
    expectation is the true count and whose variance is known in closed
    form -- the check gates the scalar and batch paths at ``Z_GATE``
    standard errors of that mean.
    """
    name = "statistical.unbiasedness"
    key = 7
    keys = np.full(packets, key, dtype=np.int64)
    # Var of one run's estimate: packets * (1-p)/p (depth 1, lone flow).
    standard_error = math.sqrt(packets * (1.0 - probability) / probability / n_seeds)
    for path in ("scalar", "batch"):
        estimates = []
        for index in range(n_seeds):
            seed = base_seed + 1000 + index
            monitor = NitroSketch(
                CountSketch(1, 256, seed),
                NitroConfig(probability=probability, top_k=0, seed=seed),
            )
            if path == "scalar":
                for packet_key in keys.tolist():
                    monitor.update(packet_key)
            else:
                monitor.update_batch(keys)
            estimates.append(monitor.query(key))
        mean = float(np.mean(estimates))
        z_score = abs(mean - packets) / standard_error
        if z_score > Z_GATE:
            return CheckResult.fail(
                name,
                "%s path biased: mean estimate %.1f vs truth %d over %d "
                "seeds (%.1f sigma)" % (path, mean, packets, n_seeds, z_score),
                mean=mean,
                truth=float(packets),
                z_score=z_score,
            )
    return CheckResult.ok(
        name,
        "scalar and batch estimates unbiased over %d seeds "
        "(within %.1f sigma)" % (n_seeds, Z_GATE),
        n_seeds=float(n_seeds),
        standard_error=standard_error,
    )


def check_sampled_fraction(
    packets: int = 20_000,
    probability: float = 0.1,
    depth: int = 5,
    seed: int = 0,
) -> CheckResult:
    """``packets_sampled / packets_seen`` must match ``1 - (1-p)^d``.

    A packet is copied to the measurement thread iff at least one of its
    ``d`` slots is sampled; both ingest paths must hit that Binomial
    proportion within ``Z_GATE`` sigma.
    """
    name = "statistical.sampled_fraction"
    expected = 1.0 - (1.0 - probability) ** depth
    sigma = math.sqrt(expected * (1.0 - expected) / packets)
    keys = np.arange(packets, dtype=np.int64)
    for path in ("scalar", "batch"):
        monitor = NitroSketch(
            CountSketch(depth, 512, seed),
            NitroConfig(probability=probability, top_k=0, seed=seed),
        )
        if path == "scalar":
            for key in keys.tolist():
                monitor.update(key)
        else:
            monitor.update_batch(keys)
        fraction = monitor.packets_sampled / monitor.packets_seen
        z_score = abs(fraction - expected) / sigma
        if z_score > Z_GATE:
            return CheckResult.fail(
                name,
                "%s path sampled %.4f of packets vs expected 1-(1-p)^d "
                "= %.4f (%.1f sigma)" % (path, fraction, expected, z_score),
                fraction=fraction,
                expected=expected,
                z_score=z_score,
            )
    return CheckResult.ok(
        name,
        "sampled fraction matches 1-(1-p)^d = %.4f on both paths "
        "(within %.1f sigma)" % (expected, Z_GATE),
        expected=expected,
    )


def _ks_statistic(gaps: np.ndarray, probability: float) -> float:
    """Sup distance between the empirical CDF and Geometric(p)'s."""
    values, counts = np.unique(gaps, return_counts=True)
    empirical = np.cumsum(counts) / len(gaps)
    theoretical = 1.0 - (1.0 - probability) ** values.astype(np.float64)
    return float(np.max(np.abs(empirical - theoretical)))


def check_geometric_gaps(
    n_gaps: int = 20_000, probability: float = 0.05, seed: int = 0
) -> CheckResult:
    """Both gap generators must draw from Geometric(p) (KS test).

    The scalar path's xorshift inverse-CDF draws and the batch path's
    ``np.random`` draws (as consumed through ``geometric_positions``)
    are independent implementations of the same distribution; a KS
    statistic above ``KS_COEFF / sqrt(n)`` on either means the slot
    process itself is wrong and every downstream guarantee is off.
    """
    name = "statistical.geometric_gaps"
    threshold = KS_COEFF / math.sqrt(n_gaps)

    sampler = GeometricSampler(probability, seed=seed + 11)
    scalar_gaps = np.array([sampler.next_gap() for _ in range(n_gaps)])

    rng = np.random.default_rng(seed + 13)
    positions, _ = geometric_positions(
        probability, int(n_gaps / probability * 1.5), rng
    )
    batch_gaps = np.diff(positions)[:n_gaps]

    for path, gaps in (("scalar", scalar_gaps), ("batch", batch_gaps)):
        if len(gaps) < n_gaps // 2:
            return CheckResult.fail(
                name, "%s path produced too few gaps (%d)" % (path, len(gaps))
            )
        statistic = _ks_statistic(np.asarray(gaps), probability)
        if statistic > threshold:
            return CheckResult.fail(
                name,
                "%s gap distribution fails KS vs Geometric(p=%g): "
                "D=%.4f > %.4f" % (path, probability, statistic, threshold),
                ks_statistic=statistic,
                threshold=threshold,
            )
    return CheckResult.ok(
        name,
        "scalar and batch gaps match Geometric(p=%g) "
        "(KS below %.4f over %d gaps)" % (probability, threshold, n_gaps),
        threshold=threshold,
        n_gaps=float(n_gaps),
    )


def check_convergence_agreement(seed: int = 0) -> CheckResult:
    """AlwaysCorrect must converge at the same packet on every path.

    Warm-up updates are exact (``p = 1``), so the sketch state at packet
    ``n`` is identical for scalar and batch ingest; with batches aligned
    to the check period ``Q`` the convergence packet must agree exactly,
    and a deliberately misaligned batch size may defer it by at most one
    batch (the check runs once per crossed period).
    """
    name = "statistical.convergence_agreement"

    def build() -> NitroSketch:
        return NitroSketch(
            CountSketch(5, 2048, seed),
            NitroConfig(
                probability=0.1,
                mode=NitroMode.ALWAYS_CORRECT,
                epsilon=0.5,
                convergence_check_period=1_000,
                top_k=0,
                seed=seed,
            ),
        )

    total = 5_000
    keys = np.full(total, 7, dtype=np.int64)

    scalar = build()
    for key in keys.tolist():
        scalar.update(key)
    batch = build()
    for start in range(0, total, 1_000):  # aligned with Q
        batch.update_batch(keys[start : start + 1_000])
    misaligned = build()
    for start in range(0, total, 333):
        misaligned.update_batch(keys[start : start + 333])

    points = {
        label: monitor.correctness.converged_at_packet
        for label, monitor in (
            ("scalar", scalar),
            ("batch", batch),
            ("misaligned", misaligned),
        )
    }
    if any(point is None for point in points.values()):
        return CheckResult.fail(
            name,
            "convergence never triggered: %s"
            % ", ".join("%s=%s" % item for item in sorted(points.items())),
        )
    if points["scalar"] != points["batch"]:
        return CheckResult.fail(
            name,
            "Q-aligned batch converged at packet %d, scalar at %d"
            % (points["batch"], points["scalar"]),
            scalar=float(points["scalar"]),
            batch=float(points["batch"]),
        )
    if not points["scalar"] <= points["misaligned"] <= points["scalar"] + 333:
        return CheckResult.fail(
            name,
            "misaligned batch converged at packet %d, outside [%d, %d]"
            % (points["misaligned"], points["scalar"], points["scalar"] + 333),
            scalar=float(points["scalar"]),
            misaligned=float(points["misaligned"]),
        )
    return CheckResult.ok(
        name,
        "all paths agree on the convergence point (packet %d; misaligned "
        "batch deferred to %d)" % (points["scalar"], points["misaligned"]),
        converged_at=float(points["scalar"]),
    )


def check_epoch_discipline(
    n_batches: int = 300,
    batch_duration: float = 0.001,
    seed: int = 0,
) -> CheckResult:
    """One ``nitro.epoch`` event per elapsed epoch, not per batch.

    Sub-epoch batches must *accumulate* toward the 100 ms adaptation
    epoch; a controller that re-evaluates the rate on every batch (the
    pre-fix behaviour) emits ``n_batches`` events here instead of
    ``n_batches * batch_duration / epoch``.
    """
    name = "statistical.epoch_discipline"
    epoch_seconds = 0.1
    monitor = NitroSketch(
        CountSketch(5, 512, seed),
        NitroConfig(
            probability=1.0,
            mode=NitroMode.ALWAYS_LINE_RATE,
            adaptation_epoch_seconds=epoch_seconds,
            top_k=0,
            seed=seed,
        ),
    )
    telemetry = Telemetry()
    monitor.telemetry = telemetry
    batch = np.arange(1_000, dtype=np.int64)
    for _ in range(n_batches):
        monitor.update_batch(batch, duration_seconds=batch_duration)
    events = len(telemetry.tracer.events("nitro.epoch"))
    expected = int(n_batches * batch_duration / epoch_seconds + 1e-9)
    if abs(events - expected) > 1:  # +-1 for float accumulation at the edge
        return CheckResult.fail(
            name,
            "%d sub-epoch batches (%.0f ms each) produced %d adaptation "
            "epochs; epoch discipline requires ~%d"
            % (n_batches, batch_duration * 1e3, events, expected),
            events=float(events),
            expected=float(expected),
        )
    return CheckResult.ok(
        name,
        "%d sub-epoch batches closed %d adaptation epochs (expected %d)"
        % (n_batches, events, expected),
        events=float(events),
        expected=float(expected),
    )


def run_statistical_checks(quick: bool = False, seed: int = 0) -> List[CheckResult]:
    """The full statistical suite (scaled down under ``quick``)."""
    return [
        check_unbiasedness(
            n_seeds=16 if quick else 48,
            packets=1_000 if quick else 2_000,
            base_seed=seed,
        ),
        check_sampled_fraction(packets=8_000 if quick else 20_000, seed=seed),
        check_geometric_gaps(n_gaps=8_000 if quick else 20_000, seed=seed),
        check_convergence_agreement(seed=seed),
        check_epoch_discipline(n_batches=120 if quick else 300, seed=seed),
    ]
