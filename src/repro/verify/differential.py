"""Differential checks: every ingest path against the vanilla oracle.

The paper's interchangeability claim (Theorems 1/2/5: same query rule,
unbiased counters, bounded error) means the repo's four ways of ingesting
the same packet stream -- scalar ``update``, fused ``update_batch``,
checkpoint-restored, and ``merge``-of-shards -- must agree:

* **bit-exact where deterministic** -- vanilla scalar vs vanilla batch
  (the fused kernels are bit-exact for integral increments), shard
  merges of linear sketches, checkpoint round-trips, reset-then-reuse
  vs fresh construction, and same-seed reruns of any one path;
* **within the Theorem-2 envelope where randomized** -- Nitro's scalar
  and batch paths draw from independent PRNG streams, so their counter
  grids differ per-draw; their *estimates* must still sit within
  ``eps * L2`` of truth, with ``eps = sqrt(8 / (w p))`` implied by the
  sketch's actual width and sampling probability.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from repro.control.export import deserialize_monitor, serialize_monitor
from repro.core.config import NitroConfig, NitroMode
from repro.core.nitro import NitroSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch
from repro.traffic.traces import Trace, caida_like
from repro.verify.result import CheckResult

#: Per-key envelope slack: Theorem 2 holds per key with probability
#: ``1 - delta`` (``delta = 2^-depth``), so demanding *every* audited key
#: sit inside ``1x`` would false-alarm on clean code.  All keys must sit
#: within ``SLACK x`` and at least ``WITHIN_FRACTION`` within ``1x``.
ENVELOPE_SLACK = 2.0
WITHIN_FRACTION = 0.9


def implied_epsilon(width: int, probability: float) -> float:
    """The eps Theorem 2 grants a (width, p) pair: ``sqrt(8 / (w p))``."""
    return math.sqrt(8.0 / (width * probability))


def _default_trace(packets: int, seed: int) -> Trace:
    return caida_like(packets, n_flows=max(200, packets // 20), seed=seed)


def check_vanilla_scalar_vs_batch(
    packets: int = 4_000,
    seed: int = 0,
    sketch_factory: Optional[Callable[[int], object]] = None,
) -> CheckResult:
    """Scalar ``update`` and fused ``update_batch`` must be bit-exact.

    Runs every canonical sketch family unless ``sketch_factory`` (used by
    the deliberately-broken-sketch tests) narrows it to one.
    """
    name = "differential.vanilla_scalar_vs_batch"
    trace = _default_trace(packets, seed)
    factories = (
        [sketch_factory]
        if sketch_factory is not None
        else [
            lambda s: CountSketch(5, 512, s),
            lambda s: CountMinSketch(4, 512, s),
            lambda s: KArySketch(5, 512, s),
        ]
    )
    for factory in factories:
        scalar = factory(seed)
        batch = factory(seed)
        for key in trace.keys.tolist():
            scalar.update(key)
        batch.update_batch(trace.keys)
        if not np.array_equal(scalar.counters, batch.counters):
            delta = float(np.max(np.abs(scalar.counters - batch.counters)))
            return CheckResult.fail(
                name,
                "%s: scalar and batch counter grids diverge (max |delta| %g)"
                % (type(scalar).__name__, delta),
                max_delta=delta,
            )
        scalar_queries = np.array(
            [scalar.query(key) for key in trace.keys[:64].tolist()]
        )
        batch_queries = batch.query_batch(trace.keys[:64])
        # Counters are bit-exact; queries get a 1e-9 relative tolerance
        # because K-ary's mass bookkeeping sums in a different order on
        # the two paths (increment/depth per row vs one bulk add).
        if not np.allclose(scalar_queries, batch_queries, rtol=1e-9, atol=1e-6):
            return CheckResult.fail(
                name,
                "%s: scalar and batch query paths disagree (max |delta| %g)"
                % (
                    type(scalar).__name__,
                    float(np.max(np.abs(scalar_queries - batch_queries))),
                ),
            )
    return CheckResult.ok(
        name,
        "scalar and fused batch ingest bit-exact over %d sketch familie(s)"
        % len(factories),
        packets=float(packets),
    )


def check_merge_of_shards(packets: int = 4_000, seed: int = 0, shards: int = 4) -> CheckResult:
    """Merged per-shard sketches must equal the single-run sketch bit-exactly.

    Sketch linearity is what makes distributed monitoring work; a merge
    that drops or double-counts mass breaks every downstream estimate.
    """
    name = "differential.merge_of_shards"
    trace = _default_trace(packets, seed)
    whole = CountSketch(5, 512, seed)
    whole.update_batch(trace.keys)
    merged = CountSketch(5, 512, seed)
    bounds = np.linspace(0, len(trace.keys), shards + 1).astype(int)
    for index in range(shards):
        shard = CountSketch(5, 512, seed)
        shard.update_batch(trace.keys[bounds[index] : bounds[index + 1]])
        merged.merge(shard)
    if not np.array_equal(whole.counters, merged.counters):
        delta = float(np.max(np.abs(whole.counters - merged.counters)))
        return CheckResult.fail(
            name,
            "merge of %d shards diverges from the single run (max |delta| %g)"
            % (shards, delta),
            max_delta=delta,
        )
    return CheckResult.ok(
        name,
        "merge of %d vanilla shards bit-exact vs the single run" % shards,
        packets=float(packets),
    )


def check_checkpoint_roundtrip(packets: int = 4_000, seed: int = 0) -> CheckResult:
    """Serialize mid-stream, restore, resume: byte-exact equivalence.

    The restored monitor must replay the second half of the trace into
    exactly the same bytes as the original -- counters, top-k contents
    (tracked-key sets are deterministic here) and PRNG cursors included.
    """
    name = "differential.checkpoint_roundtrip"
    trace = _default_trace(packets, seed)
    half = len(trace.keys) // 2
    monitor = NitroSketch(
        CountSketch(5, 1024, seed),
        NitroConfig(probability=0.1, top_k=32, seed=seed),
    )
    monitor.update_batch(trace.keys[:half])
    for key in trace.keys[half : half + 17].tolist():
        monitor.update(key)
    restored = deserialize_monitor(serialize_monitor(monitor))
    for resumed in (monitor, restored):
        for key in trace.keys[half : half + 17].tolist():
            resumed.update(key)
        resumed.update_batch(trace.keys[half + 17 :])
    if serialize_monitor(monitor) != serialize_monitor(restored):
        return CheckResult.fail(
            name, "restored monitor diverged from the original after resuming"
        )
    original_keys = set(monitor.topk.keys())
    restored_keys = set(restored.topk.keys())
    if original_keys != restored_keys:
        return CheckResult.fail(
            name,
            "tracked-key sets diverged after restore (%d vs %d keys, %d common)"
            % (
                len(original_keys),
                len(restored_keys),
                len(original_keys & restored_keys),
            ),
        )
    return CheckResult.ok(
        name,
        "checkpoint round-trip byte-exact through %d resumed packets"
        % (len(trace.keys) - half),
        packets=float(packets),
    )


def check_reset_equivalence(packets: int = 4_000, seed: int = 0) -> CheckResult:
    """A reset monitor must be bit-identical to a freshly built one.

    Uses AlwaysLineRate with timestamps so the controller's probability
    actually adapts away from ``config.probability`` before the reset --
    the scenario where a stale ``current_probability`` strands the
    sampler at the wrong ``p`` (the no-change short-circuit never fires).
    """
    name = "differential.reset_equivalence"
    trace = _default_trace(packets, seed)

    def build() -> NitroSketch:
        return NitroSketch(
            CountSketch(5, 1024, seed),
            NitroConfig(
                probability=0.5,
                mode=NitroMode.ALWAYS_LINE_RATE,
                adaptation_epoch_seconds=0.0005,
                top_k=32,
                seed=seed,
            ),
        )

    def drive(monitor: NitroSketch) -> None:
        # ~3.33 Mpps offered (mid-rung: p snaps robustly to 1/8, well
        # below the 0.5 start) with >= 1 full epoch inside the trace.
        for index, key in enumerate(trace.keys.tolist()):
            monitor.update(key, timestamp=index * 3e-7)

    fresh = build()
    drive(fresh)

    recycled = build()
    drive(recycled)
    adapted_probability = recycled.probability
    recycled.reset()
    violations = recycled.check_invariants()
    if violations:
        return CheckResult.fail(
            name, "post-reset invariants: %s" % "; ".join(violations)
        )
    drive(recycled)

    if recycled.probability != fresh.probability:
        return CheckResult.fail(
            name,
            "reset monitor settled at p=%g, fresh monitor at p=%g"
            % (recycled.probability, fresh.probability),
        )
    if not np.array_equal(recycled.sketch.counters, fresh.sketch.counters):
        delta = float(np.max(np.abs(recycled.sketch.counters - fresh.sketch.counters)))
        return CheckResult.fail(
            name,
            "reset monitor's counters diverge from a fresh monitor's "
            "(max |delta| %g)" % delta,
            max_delta=delta,
        )
    if (
        recycled.packets_sampled != fresh.packets_sampled
        or set(recycled.topk.keys()) != set(fresh.topk.keys())
    ):
        return CheckResult.fail(
            name, "reset monitor's sampling/top-k history diverged from fresh"
        )
    return CheckResult.ok(
        name,
        "reset-then-reuse bit-identical to fresh (p adapted to %g pre-reset)"
        % adapted_probability,
        adapted_probability=adapted_probability,
    )


def check_nitro_estimate_envelope(
    packets: int = 20_000,
    seed: int = 0,
    probability: float = 0.1,
    width: int = 2048,
    top_keys: int = 24,
    nitro_factory: Optional[Callable[[], NitroSketch]] = None,
) -> List[CheckResult]:
    """Nitro's randomized paths must estimate within ``eps * L2`` of truth.

    Three implementations under test -- scalar, fused batch, and a
    2-shard merge -- each audited on the heaviest true flows against the
    Theorem-2 envelope implied by the sketch's width and ``p``.  The
    vanilla sketch rides along as the oracle: it must sit inside the
    same envelope (it holds the stronger vanilla guarantee), which pins
    blame on the accelerated path when only that one fails.
    """
    trace = _default_trace(packets, seed)
    counts = trace.counts()
    truth = dict(sorted(counts.items(), key=lambda item: -item[1])[:top_keys])
    l2_true = math.sqrt(sum(value * value for value in counts.values()))
    envelope = implied_epsilon(width, probability) * l2_true

    def build() -> NitroSketch:
        if nitro_factory is not None:
            return nitro_factory()
        return NitroSketch(
            CountSketch(5, width, seed),
            NitroConfig(probability=probability, top_k=64, seed=seed),
        )

    scalar = build()
    for key in trace.keys.tolist():
        scalar.update(key)

    batch = build()
    for start in range(0, len(trace.keys), 2048):
        batch.update_batch(trace.keys[start : start + 2048])

    merged = build()
    other = build()
    half = len(trace.keys) // 2
    merged.update_batch(trace.keys[:half])
    other.update_batch(trace.keys[half:])
    merged.merge(other)

    oracle = CountSketch(5, width, seed)
    oracle.update_batch(trace.keys)

    results = []
    implementations = [
        ("oracle_vanilla", oracle),
        ("scalar", scalar),
        ("batch", batch),
        ("merge", merged),
    ]
    for label, monitor in implementations:
        errors = np.array(
            [abs(monitor.query(key) - count) for key, count in truth.items()]
        )
        worst = float(np.max(errors))
        within = float(np.mean(errors <= envelope))
        name = "differential.envelope_%s" % label
        if worst > ENVELOPE_SLACK * envelope or within < WITHIN_FRACTION:
            results.append(
                CheckResult.fail(
                    name,
                    "%s path: worst error %.1f vs envelope %.1f (eps*L2), "
                    "only %.0f%% of top-%d keys within 1x"
                    % (label, worst, envelope, 100 * within, len(truth)),
                    worst_error=worst,
                    envelope=envelope,
                    within_fraction=within,
                )
            )
        else:
            results.append(
                CheckResult.ok(
                    name,
                    "%s path: worst error %.1f within %.1fx of the eps*L2 "
                    "envelope %.1f" % (label, worst, worst / envelope, envelope),
                    worst_error=worst,
                    envelope=envelope,
                    within_fraction=within,
                )
            )
    return results


def run_differential_checks(quick: bool = False, seed: int = 0) -> List[CheckResult]:
    """The full differential suite (scaled down under ``quick``)."""
    packets = 2_000 if quick else 4_000
    envelope_packets = 8_000 if quick else 20_000
    results = [
        check_vanilla_scalar_vs_batch(packets=packets, seed=seed),
        check_merge_of_shards(packets=packets, seed=seed),
        check_checkpoint_roundtrip(packets=packets, seed=seed),
        check_reset_equivalence(packets=packets, seed=seed),
    ]
    results.extend(check_nitro_estimate_envelope(packets=envelope_packets, seed=seed))
    return results
