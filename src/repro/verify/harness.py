"""The selfcheck harness: run every verification suite, one report.

``nitrosketch selfcheck`` is this module behind a CLI: it runs the
differential suite (every ingest path vs the vanilla oracle), the
statistical suite (the sampling process vs its closed-form math) and the
invariant scenarios (internal coherence under load), and exits non-zero
on the first report with a failure.  ``quick`` scales packet counts down
for CI smoke jobs; ``seed`` derandomises everything for reproduction.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.verify.differential import run_differential_checks
from repro.verify.invariants import run_invariant_checks
from repro.verify.parallel import run_parallel_checks
from repro.verify.result import CheckResult, VerifyReport
from repro.verify.service import run_service_checks
from repro.verify.statistical import run_statistical_checks
from repro.verify.windows import run_window_checks

#: The registered suites, in the order a report lists them.
SUITES: List[Tuple[str, Callable[..., List[CheckResult]]]] = [
    ("differential", run_differential_checks),
    ("statistical", run_statistical_checks),
    ("invariant", run_invariant_checks),
    ("parallel", run_parallel_checks),
    ("windows", run_window_checks),
    ("service", run_service_checks),
]


def run_selfcheck(
    quick: bool = False,
    seed: int = 0,
    suites: Optional[List[str]] = None,
    on_result: Optional[Callable[[CheckResult], None]] = None,
) -> VerifyReport:
    """Run the verification suites and return the aggregate report.

    ``suites`` restricts the run to the named suites (default: all);
    ``on_result`` is called with each :class:`CheckResult` as it lands,
    which is how the CLI streams per-check PASS/FAIL lines.
    """
    selected = set(suites) if suites is not None else None
    unknown = (selected or set()) - {name for name, _ in SUITES}
    if unknown:
        raise ValueError(
            "unknown suite(s) %s; available: %s"
            % (sorted(unknown), [name for name, _ in SUITES])
        )
    report = VerifyReport()
    for name, runner in SUITES:
        if selected is not None and name not in selected:
            continue
        for result in runner(quick=quick, seed=seed):
            report.add(result)
            if on_result is not None:
                on_result(result)
    return report
