"""Invariant scenarios: drive the stack and assert internal coherence.

Each scenario exercises one mode/component with the strict
:func:`install_strict_hook` invariant hook armed, so *any* batch that
leaves the monitor internally incoherent -- sampler/controller ``p``
desync, ``packets_sampled > packets_seen``, K-ary mass leakage, an
unbounded top-k heap -- surfaces as a named violation at the batch that
caused it rather than as a mysteriously wrong estimate later.
"""

from __future__ import annotations

import tempfile
from typing import List

import numpy as np

from repro.control.checkpoint import CheckpointManager
from repro.core.config import NitroConfig, NitroMode
from repro.core.nitro import NitroSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch
from repro.sketches.topk import COMPACT_FACTOR, TopK
from repro.switchsim.daemon import MeasurementDaemon
from repro.traffic.replay import Replayer
from repro.traffic.traces import caida_like
from repro.verify.result import CheckResult, InvariantViolation


def install_strict_hook(monitor) -> None:
    """Arm ``monitor.invariant_hook`` to raise on the first violation."""

    def hook(checked) -> None:
        violations = checked.check_invariants()
        if violations:
            raise InvariantViolation("; ".join(violations))

    monitor.invariant_hook = hook


def _scenario(name: str, detail: str, body) -> CheckResult:
    """Run ``body`` (returning violation strings) as one CheckResult."""
    try:
        violations = body()
    except InvariantViolation as exc:
        return CheckResult.fail(name, str(exc))
    if violations:
        return CheckResult.fail(name, "; ".join(violations))
    return CheckResult.ok(name, detail)


def check_fixed_mode(packets: int = 6_000, seed: int = 0) -> CheckResult:
    """Fixed-p ingest (mixed scalar/batch) stays coherent per batch."""

    def body() -> List[str]:
        trace = caida_like(packets, n_flows=300, seed=seed)
        monitor = NitroSketch(
            CountSketch(5, 512, seed),
            NitroConfig(probability=0.1, top_k=32, seed=seed),
        )
        install_strict_hook(monitor)
        third = len(trace.keys) // 3
        monitor.update_batch(trace.keys[:third])
        for key in trace.keys[third : 2 * third].tolist():
            monitor.update(key)
        monitor.update_batch(trace.keys[2 * third :])
        return monitor.check_invariants()

    return _scenario(
        "invariant.fixed_mode",
        "fixed-p mixed scalar/batch ingest coherent after every batch",
        body,
    )


def check_linerate_coherence(packets: int = 6_000, seed: int = 0) -> CheckResult:
    """Sampler and AlwaysLineRate ``p`` agree through adapt and reset.

    The adapt-then-reset-then-reuse sequence is exactly where a stale
    ``current_probability`` desyncs the controller from the reseeded
    sampler; the ``p``-coherence invariant names it.
    """

    def body() -> List[str]:
        trace = caida_like(packets, n_flows=300, seed=seed)
        monitor = NitroSketch(
            CountSketch(5, 512, seed),
            NitroConfig(
                probability=0.5,
                mode=NitroMode.ALWAYS_LINE_RATE,
                adaptation_epoch_seconds=0.0005,
                top_k=32,
                seed=seed,
            ),
        )
        install_strict_hook(monitor)

        def drive() -> List[str]:
            # ~3.33 Mpps offered: adaptation pulls p below the 0.5 start
            # (mid-rung, so float drift cannot flip the snapped rung).
            for index, key in enumerate(trace.keys.tolist()):
                monitor.update(key, timestamp=index * 3e-7)
                if index % 500 == 0:
                    violations = monitor.check_invariants()
                    if violations:
                        return violations
            return monitor.check_invariants()

        violations = drive()
        if violations:
            return violations
        if monitor.probability >= 0.5:
            return ["linerate scenario never adapted below the starting p"]
        monitor.reset()
        violations = monitor.check_invariants()
        if violations:
            return ["post-reset: " + v for v in violations]
        return drive()

    return _scenario(
        "invariant.linerate_coherence",
        "sampler p tracks AlwaysLineRate through adapt, reset and reuse",
        body,
    )


def check_always_correct_coherence(seed: int = 0) -> CheckResult:
    """``p`` honours the AlwaysCorrect phase on both sides of convergence."""

    def body() -> List[str]:
        monitor = NitroSketch(
            CountSketch(5, 2048, seed),
            NitroConfig(
                probability=0.1,
                mode=NitroMode.ALWAYS_CORRECT,
                epsilon=0.5,
                convergence_check_period=1_000,
                top_k=32,
                seed=seed,
            ),
        )
        install_strict_hook(monitor)
        keys = np.full(1_000, 7, dtype=np.int64)
        for _ in range(3):
            monitor.update_batch(keys)
            violations = monitor.check_invariants()
            if violations:
                return violations
        if not monitor.converged:
            return ["always-correct scenario never converged"]
        if monitor.probability != 0.1:
            return [
                "post-convergence p=%g, expected config p=0.1" % monitor.probability
            ]
        return monitor.check_invariants()

    return _scenario(
        "invariant.always_correct_coherence",
        "p pinned to 1.0 through warm-up and released to config p on convergence",
        body,
    )


def check_kary_mass(packets: int = 6_000, seed: int = 0) -> CheckResult:
    """K-ary's tracked total equals counter mass under every update path.

    ``total == sum(counters) / depth`` is what makes K-ary's
    estimate-adjustment unbiased; ``note_batch_mass`` (the Nitro batch
    path's bulk accounting) must preserve it exactly like scalar
    ``row_update`` does.
    """

    def body() -> List[str]:
        trace = caida_like(packets, n_flows=300, seed=seed)
        vanilla = KArySketch(5, 512, seed)
        half = len(trace.keys) // 2
        for key in trace.keys[:half].tolist():
            vanilla.update(key)
        vanilla.update_batch(trace.keys[half:])
        violations = vanilla.check_invariants()
        if violations:
            return ["vanilla: " + v for v in violations]

        monitor = NitroSketch(
            KArySketch(5, 512, seed),
            NitroConfig(probability=0.1, top_k=0, seed=seed),
        )
        install_strict_hook(monitor)
        monitor.update_batch(trace.keys[:half])
        for key in trace.keys[half:].tolist():
            monitor.update(key)
        return ["nitro: " + v for v in monitor.check_invariants()]

    return _scenario(
        "invariant.kary_mass",
        "k-ary mass conserved under scalar, batch and note_batch_mass paths",
        body,
    )


def check_topk_bound(k: int = 16, offers: int = 5_000) -> CheckResult:
    """Adversarial re-offers keep the top-k heap within its bound.

    Re-offering the *tracked* keys with ever-growing estimates is the
    worst case: no eviction ever runs, so nothing lazily pops stale
    entries and only compaction can bound the heap.  It must hold
    ``len(_heap) <= 4k`` while the tracked dict stays consistent.
    """

    def body() -> List[str]:
        topk = TopK(k)
        for index in range(offers):
            topk.offer(index % k, float(index))
        violations = topk.check_invariants()
        if len(topk._heap) > COMPACT_FACTOR * k:
            violations.append(
                "heap grew to %d entries (bound %d) after %d re-offers"
                % (len(topk._heap), COMPACT_FACTOR * k, offers)
            )
        return violations

    return _scenario(
        "invariant.topk_bound",
        "top-k heap stays within %dx k under %d adversarial re-offers"
        % (COMPACT_FACTOR, offers),
        body,
    )


def check_daemon_reset(seed: int = 0) -> CheckResult:
    """A reset daemon restarts ingest accounting and checkpoint cadence.

    With ``checkpoint_interval = 3``, two batches, a reset and two more
    batches must write *no* checkpoint -- stale ``batches_ingested`` /
    cadence counters would fire one early and stamp pre-reset totals
    into its meta.
    """

    def body() -> List[str]:
        trace = caida_like(2_000, n_flows=100, seed=seed)
        batches = list(Replayer(trace, batch_size=500).batches())
        with tempfile.TemporaryDirectory() as directory:
            daemon = MeasurementDaemon(
                NitroSketch(
                    CountSketch(5, 512, seed),
                    NitroConfig(probability=0.1, top_k=16, seed=seed),
                ),
                checkpoints=CheckpointManager(directory),
                checkpoint_interval=3,
            )
            for batch in batches[:2]:
                daemon.ingest(batch)
            daemon.reset()
            violations = daemon.check_invariants()
            if violations:
                return ["post-reset: " + v for v in violations]
            if daemon.batches_ingested != 0 or daemon.packets_offered != 0:
                return [
                    "reset left batches_ingested=%d packets_offered=%d"
                    % (daemon.batches_ingested, daemon.packets_offered)
                ]
            for batch in batches[:2]:
                daemon.ingest(batch)
            if daemon.checkpoints.latest_sequence() is not None:
                return [
                    "daemon checkpointed %d batches after reset "
                    "(interval 3): cadence counter survived the reset"
                    % daemon.batches_ingested
                ]
            return daemon.check_invariants()

    return _scenario(
        "invariant.daemon_reset",
        "daemon reset rewinds ingest accounting and checkpoint cadence",
        body,
    )


def run_invariant_checks(quick: bool = False, seed: int = 0) -> List[CheckResult]:
    """The full invariant-scenario suite (scaled down under ``quick``)."""
    packets = 3_000 if quick else 6_000
    return [
        check_fixed_mode(packets=packets, seed=seed),
        check_linerate_coherence(packets=packets, seed=seed),
        check_always_correct_coherence(seed=seed),
        check_kary_mass(packets=packets, seed=seed),
        check_topk_bound(offers=2_000 if quick else 5_000),
        check_daemon_reset(seed=seed),
    ]
