"""Differential + statistical correctness harness (docs/VERIFICATION.md).

The vanilla sketch is the oracle: every accelerated ingest path (scalar
sampling, fused batches, checkpoint restore, shard merges) must agree
with it bit-exactly where deterministic and within the Theorem-2
``eps * L2`` envelope where randomized, while the sampling process
itself must match its closed-form statistics (unbiasedness, sampled
fraction, geometric gaps) and the stack's cross-component invariants
must hold under load.  ``nitrosketch selfcheck [--quick]`` runs it all.
"""

from repro.verify.differential import implied_epsilon, run_differential_checks
from repro.verify.harness import SUITES, run_selfcheck
from repro.verify.invariants import install_strict_hook, run_invariant_checks
from repro.verify.parallel import run_parallel_checks
from repro.verify.result import CheckResult, InvariantViolation, VerifyReport
from repro.verify.statistical import run_statistical_checks
from repro.verify.windows import run_window_checks

__all__ = [
    "CheckResult",
    "InvariantViolation",
    "VerifyReport",
    "SUITES",
    "run_selfcheck",
    "run_differential_checks",
    "run_statistical_checks",
    "run_invariant_checks",
    "run_parallel_checks",
    "run_window_checks",
    "install_strict_hook",
    "implied_epsilon",
]
