"""Windowed-substrate checks: the sliding window vs from-scratch oracles.

The sliding window's correctness story is sketch linearity: a window of
W epoch sketches merged together must be indistinguishable from one
sketch that only ever saw the in-window packets.  This suite proves it:

* **merged view is bit-exact** for vanilla sketches: the cached merged
  window equals (``np.array_equal``) a fresh sketch fed exactly the
  window-suffix packets, across several rotations;
* **Nitro windows keep Theorem 2**: heavy-key estimates from a windowed
  NitroSketch sit inside the ``eps * L2`` envelope computed over the
  *window's* ground truth, not the lifetime's;
* **rotate -> restore is byte-exact**: serializing a mid-epoch window
  (ring + in-progress epoch), restoring it, and re-serializing yields
  identical bytes, and continuing both copies over the same packets
  keeps them byte-identical (recycled-epoch rotation included);
* **checkpoints round-trip rings**: ``CheckpointManager.save`` of a
  window followed by ``restore_latest`` reproduces the same bytes
  through the atomic-write / CRC path;
* **W=1 degenerates cleanly**: a one-epoch window is just the current
  epoch -- no ghost ring members in ``window_monitors()`` or
  ``window_packets()``;
* **corruption degrades instead of lying**: one zeroed ring epoch keeps
  the ShadowAuditor inside the surviving epochs' guarantee while the
  same corruption on an unwindowed monitor trips the violation
  (delegates to :meth:`~repro.faults.chaos.ChaosRunner.window_corruption`).
"""

from __future__ import annotations

import math
import tempfile
from typing import List

import numpy as np

from repro.control.checkpoint import CheckpointManager
from repro.control.export import deserialize_monitor, serialize_monitor
from repro.control.windows import SlidingWindowMonitor
from repro.core import NitroConfig, NitroSketch
from repro.sketches import CountSketch
from repro.traffic.traces import Trace, caida_like
from repro.verify.differential import (
    ENVELOPE_SLACK,
    WITHIN_FRACTION,
    implied_epsilon,
)
from repro.verify.result import CheckResult


def _default_trace(packets: int, seed: int) -> Trace:
    return caida_like(packets, n_flows=max(200, packets // 20), seed=seed)


def _vanilla_factory(seed: int):
    return lambda: CountSketch(4, 2048, seed=seed)


def _nitro_factory(seed: int, probability: float = 0.1, width: int = 2048):
    def make() -> NitroSketch:
        return NitroSketch(
            CountSketch(5, width, seed=seed),
            NitroConfig(probability=probability, top_k=64, seed=seed),
        )

    return make


def _window_suffix(keys: np.ndarray, window_epochs: int, epoch_packets: int) -> np.ndarray:
    """The packets an oracle limited to the window should have seen.

    With E packets per epoch, the window holds the in-progress epoch
    plus the last ``min(W - 1, completed)`` completed epochs.
    """
    completed = len(keys) // epoch_packets
    in_ring = min(window_epochs - 1, completed)
    start = (completed - in_ring) * epoch_packets
    return keys[start:]


def check_merged_vs_oracle(packets: int = 10_000, seed: int = 0) -> CheckResult:
    """Vanilla merged window must be bit-exact vs a window-only oracle."""
    name = "windows.merged_vs_oracle"
    epoch_packets = packets // 5
    trace = _default_trace(packets, seed)
    window = SlidingWindowMonitor(
        _vanilla_factory(seed), window_epochs=3, epoch_packets=epoch_packets
    )
    window.update_batch(trace.keys)

    oracle = _vanilla_factory(seed)()
    oracle.update_batch(_window_suffix(trace.keys, 3, epoch_packets))

    if not np.array_equal(window.merged().counters, oracle.counters):
        delta = float(np.max(np.abs(window.merged().counters - oracle.counters)))
        return CheckResult.fail(
            name,
            "merged window diverged from a from-scratch sketch over the "
            "window suffix (max |delta| %g)" % delta,
            max_delta=delta,
        )
    return CheckResult.ok(
        name,
        "merged 3-epoch window bit-exact vs from-scratch oracle "
        "(%d packets, %d rotations)" % (packets, window.epochs_rotated),
        packets=float(packets),
        rotations=float(window.epochs_rotated),
    )


def check_nitro_window_envelope(
    packets: int = 20_000,
    seed: int = 0,
    probability: float = 0.1,
    width: int = 2048,
    top_keys: int = 24,
) -> CheckResult:
    """Windowed Nitro estimates must honour Theorem 2 over the window."""
    name = "windows.nitro_envelope"
    epoch_packets = packets // 5
    trace = _default_trace(packets, seed)
    window = SlidingWindowMonitor(
        _nitro_factory(seed, probability, width),
        window_epochs=3,
        epoch_packets=epoch_packets,
    )
    window.update_batch(trace.keys)

    suffix = _window_suffix(trace.keys, 3, epoch_packets)
    values, counts = np.unique(suffix, return_counts=True)
    order = np.argsort(-counts)
    truth = {
        int(values[i]): int(counts[i]) for i in order[:top_keys]
    }
    l2_true = math.sqrt(float(np.sum(counts.astype(np.float64) ** 2)))
    envelope = implied_epsilon(width, probability) * l2_true

    errors = np.array(
        [abs(window.query(key) - count) for key, count in truth.items()]
    )
    worst = float(np.max(errors))
    within = float(np.mean(errors <= envelope))
    if worst > ENVELOPE_SLACK * envelope or within < WITHIN_FRACTION:
        return CheckResult.fail(
            name,
            "windowed Nitro: worst error %.1f vs window-suffix envelope "
            "%.1f (eps*L2), only %.0f%% of top-%d keys within 1x"
            % (worst, envelope, 100 * within, len(truth)),
            worst_error=worst,
            envelope=envelope,
            within_fraction=within,
        )
    return CheckResult.ok(
        name,
        "windowed Nitro worst error %.1f within %.2fx of the "
        "window-suffix eps*L2 envelope %.1f"
        % (worst, worst / envelope, envelope),
        worst_error=worst,
        envelope=envelope,
        within_fraction=within,
    )


def check_restore_byte_exact(packets: int = 12_000, seed: int = 0) -> CheckResult:
    """Serialize mid-epoch, restore, continue: bytes must never diverge."""
    name = "windows.restore_byte_exact"
    epoch_packets = packets // 4
    trace = _default_trace(packets, seed)
    split = len(trace.keys) * 5 // 8  # mid-epoch, after >=1 rotation
    window = SlidingWindowMonitor(
        _nitro_factory(seed), window_epochs=3, epoch_packets=epoch_packets
    )
    window.update_batch(trace.keys[:split])

    blob = serialize_monitor(window)
    restored = deserialize_monitor(blob)
    if serialize_monitor(restored) != blob:
        return CheckResult.fail(
            name,
            "restored window re-serializes to different bytes than the "
            "original mid-epoch snapshot",
        )

    remainder = trace.keys[split:]
    window.update_batch(remainder)
    restored.update_batch(remainder)
    if serialize_monitor(restored) != serialize_monitor(window):
        return CheckResult.fail(
            name,
            "restored window diverged from the uninterrupted window "
            "after ingesting the same continuation packets",
        )
    probe = [int(k) for k in trace.keys[:8]]
    if (
        [window.query(k) for k in probe] != [restored.query(k) for k in probe]
        or window.heavy_hitters(packets / 100) != restored.heavy_hitters(packets / 100)
        or window.window_packets() != restored.window_packets()
    ):
        return CheckResult.fail(
            name,
            "restored window answers (query/heavy_hitters/window_packets) "
            "differ from the uninterrupted window",
        )
    return CheckResult.ok(
        name,
        "mid-epoch window restore is byte-exact and stays byte-identical "
        "through %d continuation packets" % len(remainder),
        packets=float(packets),
        rotations=float(window.epochs_rotated),
    )


def check_checkpoint_roundtrip(packets: int = 8_000, seed: int = 0) -> CheckResult:
    """CheckpointManager must round-trip a window ring through disk."""
    name = "windows.checkpoint_roundtrip"
    epoch_packets = packets // 3
    trace = _default_trace(packets, seed)
    window = SlidingWindowMonitor(
        _nitro_factory(seed), window_epochs=2, epoch_packets=epoch_packets
    )
    window.update_batch(trace.keys)

    with tempfile.TemporaryDirectory(prefix="nitro-verify-") as directory:
        manager = CheckpointManager(directory, keep=2)
        manager.save(window, meta={"epoch": window.epochs_rotated})
        checkpoint = manager.restore_latest()
    if checkpoint is None:
        return CheckResult.fail(name, "restore_latest found no checkpoint")
    if serialize_monitor(checkpoint.monitor) != serialize_monitor(window):
        return CheckResult.fail(
            name,
            "window restored through CheckpointManager differs from the "
            "saved window (serialized bytes)",
        )
    return CheckResult.ok(
        name,
        "window ring survives save/restore_latest byte-exactly "
        "(%d epochs in ring, meta epoch %d)"
        % (len(checkpoint.monitor._ring), checkpoint.meta.get("epoch", -1)),
        packets=float(packets),
    )


def check_single_epoch_window(seed: int = 0) -> CheckResult:
    """W=1 must be exactly the in-progress epoch, no ghost ring members."""
    name = "windows.single_epoch"
    window = SlidingWindowMonitor(
        _vanilla_factory(seed), window_epochs=1, epoch_packets=1_000
    )
    window.update_batch(np.full(2_500, 7, dtype=np.int64))
    if len(window.window_monitors()) != 1:
        return CheckResult.fail(
            name,
            "W=1 window reports %d member monitors, expected just the "
            "current epoch" % len(window.window_monitors()),
        )
    if window.window_packets() != 500:
        return CheckResult.fail(
            name,
            "W=1 window_packets() %d counts aged-out epochs, expected "
            "500 (the in-progress epoch)" % window.window_packets(),
        )
    if window.query(7) != 500:
        return CheckResult.fail(
            name,
            "W=1 query(7) = %g, expected exactly the in-progress epoch's "
            "500" % window.query(7),
        )
    return CheckResult.ok(
        name,
        "W=1 window is exactly the in-progress epoch "
        "(1 member, 500 packets after 2 rotations)",
        rotations=float(window.epochs_rotated),
    )


def check_corruption_degradation(packets: int = 24_000, seed: int = 7) -> CheckResult:
    """One zeroed ring epoch degrades; the same corruption unwindowed lies."""
    name = "windows.corruption_degradation"
    from repro.faults.chaos import ChaosRunner

    result = ChaosRunner(packets=packets, seed=seed).window_corruption()
    if not result.passed:
        return CheckResult.fail(name, result.detail, **result.metrics)
    return CheckResult.ok(name, result.detail, **result.metrics)


def run_window_checks(quick: bool = False, seed: int = 0) -> List[CheckResult]:
    """The full windowed-substrate suite (scaled down under ``quick``)."""
    packets = 5_000 if quick else 10_000
    envelope_packets = 10_000 if quick else 20_000
    chaos_packets = 16_000 if quick else 24_000
    return [
        check_merged_vs_oracle(packets=packets, seed=seed),
        check_nitro_window_envelope(packets=envelope_packets, seed=seed),
        check_restore_byte_exact(packets=packets, seed=seed),
        check_checkpoint_roundtrip(packets=packets, seed=seed),
        check_single_epoch_window(seed=seed),
        check_corruption_degradation(packets=chaos_packets, seed=seed + 7),
    ]
