"""Check results for the differential/statistical/invariant harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class InvariantViolation(AssertionError):
    """Raised by a strict invariant hook when a data-plane check fails."""


@dataclass
class CheckResult:
    """One verification check's verdict.

    ``name`` is hierarchical (``differential.checkpoint_roundtrip``,
    ``statistical.unbiasedness``, ``invariant.p_coherence``); ``detail``
    names the violation when ``passed`` is False and summarises the
    evidence when True; ``metrics`` carries the measured quantities for
    reports and debugging.
    """

    name: str
    passed: bool
    detail: str
    metrics: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def ok(cls, name: str, detail: str, **metrics: float) -> "CheckResult":
        return cls(name, True, detail, dict(metrics))

    @classmethod
    def fail(cls, name: str, detail: str, **metrics: float) -> "CheckResult":
        return cls(name, False, detail, dict(metrics))


@dataclass
class VerifyReport:
    """Aggregate of one selfcheck run."""

    results: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [result for result in self.results if not result.passed]

    def add(self, result: CheckResult) -> CheckResult:
        self.results.append(result)
        return result

    def summary(self) -> str:
        failed = len(self.failures)
        return "%d/%d check(s) passed%s" % (
            len(self.results) - failed,
            len(self.results),
            "" if not failed else "; FAILED: %s" % ", ".join(
                result.name for result in self.failures
            ),
        )
