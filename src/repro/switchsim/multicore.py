"""Multi-core scaling via RSS sharding.

The paper's headline is a *single-thread* 40 GbE result, but its
separate-thread deployment already spans cores ("a single-thread
NitroSketch and another two threads for the switches", Figure 8
caption).  This model answers the natural follow-up -- how does the
monitored switch scale with PMD cores?  The NIC's RSS hash shards flows
across ``cores`` receive queues; each core runs its own pipeline +
measurement daemon over its shard, and mergeable sketches recombine at
the control plane (see :meth:`repro.core.NitroSketch.merge`).

Scaling is near-linear until the NIC's delivery ceiling binds -- the
same story real OVS-DPDK deployments show.

Two kinds of numbers live here, and they are labeled as such:

* **modeled** -- ``capacity_mpps``/``achieved_mpps`` etc. come from the
  per-operation :class:`~repro.switchsim.costmodel.CostModel`, i.e.
  what an N-core DPDK deployment *would* do; they are deterministic and
  host-independent;
* **measured** -- :meth:`MultiCoreSimulator.measure` runs the *real*
  multiprocess engine (:class:`~repro.parallel.ParallelIngestEngine`)
  over the same RSS shards (same hash, same salt, byte-identical shard
  assignment) and reports actual wall/CPU-clock throughput on this
  host.  ``run(..., measure_with=...)`` attaches that to the result so
  the model can be checked against reality in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.hashing.families import MultiplyShiftHash
from repro.switchsim.costmodel import CostModel
from repro.switchsim.daemon import MeasurementDaemon
from repro.switchsim.nic import NICModel, XL710_40G
from repro.switchsim.pipeline import SwitchPipeline
from repro.switchsim.simulator import SimulationResult, SwitchSimulator
from repro.traffic.traces import Trace


@dataclass
class MultiCoreResult:
    """Aggregate of one multi-core run.

    ``offered_mpps`` / ``capacity_mpps`` / ``achieved_mpps`` /
    ``achieved_gbps`` are **modeled** rates from the cost model -- the
    deterministic what-if.  ``measured``, when present, is a
    :class:`~repro.parallel.ParallelRunResult` from a real multiprocess
    ingest over the same RSS shards -- actual throughput on this host,
    with its own honest clock breakdown.
    """

    cores: int
    offered_mpps: float
    capacity_mpps: float
    achieved_mpps: float
    achieved_gbps: float
    per_core: List[SimulationResult]
    #: A real multiprocess run over the same shards (None unless requested).
    measured: Optional[object] = None

    def scaling_efficiency(self, single_core_capacity: float) -> float:
        """Modeled capacity(N) / (N * capacity(1)) -- 1.0 is perfect scaling."""
        if single_core_capacity <= 0 or self.cores == 0:
            return 0.0
        return self.capacity_mpps / (self.cores * single_core_capacity)

    @property
    def measured_wall_mpps(self) -> Optional[float]:
        """End-to-end measured rate (None when no measurement ran)."""
        return self.measured.wall_mpps if self.measured is not None else None

    @property
    def measured_aggregate_cpu_mpps(self) -> Optional[float]:
        """Sum of per-worker CPU-clock rates (None when no measurement ran)."""
        return (
            self.measured.aggregate_cpu_mpps if self.measured is not None else None
        )


class MultiCoreSimulator:
    """Shards a trace across N cores with an RSS-style flow hash.

    Parameters
    ----------
    pipeline_factory / daemon_factory:
        Called once per core (daemon_factory may be None for bare
        switching).  Monitors should use per-core seeds *or* identical
        seeds + control-plane merging; both are valid deployments.
    """

    def __init__(
        self,
        pipeline_factory: Callable[[int], SwitchPipeline],
        daemon_factory: Optional[Callable[[int], MeasurementDaemon]] = None,
        cores: int = 2,
        cost_model: Optional[CostModel] = None,
        nic: NICModel = XL710_40G,
        rss_seed: int = 0,
    ) -> None:
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.cores = cores
        self.pipeline_factory = pipeline_factory
        self.daemon_factory = daemon_factory
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.nic = nic
        self.rss_seed = rss_seed
        self._rss = MultiplyShiftHash(cores, rss_seed ^ 0x2552)

    def shard(self, trace: Trace) -> List[Trace]:
        """Split a trace into per-core shards by RSS flow hash.

        All packets of a flow land on one core (RSS hashes the 5-tuple),
        so per-core sketches stay per-flow-consistent.
        """
        assignments = self._rss.batch(trace.keys)
        shards = []
        for core in range(self.cores):
            mask = assignments == core
            shards.append(
                Trace(
                    name="%s.core%d" % (trace.name, core),
                    keys=trace.keys[mask],
                    sizes=trace.sizes[mask],
                    timestamps=trace.timestamps[mask],
                    src_addresses=(
                        trace.src_addresses[mask]
                        if trace.src_addresses is not None
                        else None
                    ),
                )
            )
        return shards

    def measure(
        self,
        trace: Trace,
        monitor_factory: Callable[[int], object],
        strategy: str = "shared",
        batch_size: int = 16_384,
        epoch_packets: Optional[int] = None,
        **engine_kwargs,
    ):
        """Run the *real* multiprocess engine over this simulator's shards.

        Builds a :class:`~repro.parallel.ParallelIngestEngine` with one
        worker per core and hands it this simulator's own RSS assignment
        (same hash, same salt), so the measured run ingests byte-for-byte
        the shards the cost model priced.  ``monitor_factory`` must be
        picklable -- use :class:`~repro.parallel.VanillaFactory` or
        :class:`~repro.parallel.NitroFactory`.

        Returns the engine's :class:`~repro.parallel.ParallelRunResult`
        (measured wall/CPU-clock rates; see its docstring for what each
        clock means on a time-sliced host).
        """
        import numpy as np

        from repro.parallel import ParallelIngestEngine

        engine = ParallelIngestEngine(
            monitor_factory,
            workers=self.cores,
            strategy=strategy,
            epoch_packets=epoch_packets,
            batch_size=batch_size,
            rss_seed=self.rss_seed,
            **engine_kwargs,
        )
        assignments = self._rss.batch(trace.keys).astype(np.uint8)
        return engine.run(trace.keys, assignments=assignments)

    def run(
        self,
        trace: Trace,
        batch_size: int = 32,
        offered_gbps: Optional[float] = 40.0,
        measure_with: Optional[Callable[[int], object]] = None,
    ) -> MultiCoreResult:
        """Simulate all cores; aggregate capacity is their sum, capped by
        the NIC's delivery ceiling.

        ``measure_with`` (a picklable monitor factory) additionally runs
        the real multiprocess engine over the same shards and attaches
        its :class:`~repro.parallel.ParallelRunResult` as ``measured`` --
        modeled and measured rates side by side in one result.
        """
        shards = self.shard(trace)
        per_core: List[SimulationResult] = []
        for core, shard in enumerate(shards):
            if len(shard) == 0:
                # Skip before constructing anything: a daemon built here
                # would register telemetry for a core that never runs.
                continue
            daemon = self.daemon_factory(core) if self.daemon_factory else None
            simulator = SwitchSimulator(
                self.pipeline_factory(core),
                daemon,
                cost_model=self.cost_model,
                nic=self.nic,
            )
            result = simulator.run(shard, batch_size=batch_size, offered_gbps=None)
            result.core = core
            per_core.append(result)
        # Offered rate of the undivided stream at the requested wire rate.
        from repro.traffic.replay import Replayer

        offered = Replayer(trace, offered_gbps=offered_gbps).offered_rate_mpps
        capacity = sum(result.capacity_mpps for result in per_core)
        deliverable = self.nic.deliverable_mpps(trace.mean_packet_size)
        achieved = min(offered, capacity, deliverable)
        from repro.metrics.throughput import mpps_to_gbps

        result = MultiCoreResult(
            cores=self.cores,
            offered_mpps=offered,
            capacity_mpps=capacity,
            achieved_mpps=achieved,
            achieved_gbps=mpps_to_gbps(achieved, trace.mean_packet_size),
            per_core=per_core,
        )
        if measure_with is not None:
            result.measured = self.measure(trace, measure_with)
        return result
