"""CPU cycle cost model -- the throughput substrate.

The paper's throughput numbers come from a Xeon E5-2620 v4 (2.1 GHz,
20 MB LLC) driving 40 GbE XL710 NICs.  Python cannot push 59.52 Mpps, so
this repository derives throughput the way the paper's *analysis*
does: count the bottleneck operations each algorithm actually performs
(the :class:`~repro.metrics.opcount.OpCounter` every component records
into) and convert them to cycles with per-operation costs, including an
LLC-residency model for the random-access structures.

Calibration (documented in DESIGN.md):

* unit costs are set so the *baseline anchors the paper reports* come
  out right -- DPDK alone ~22 Mpps with min-sized packets (Section 7.2),
  OVS-DPDK forwarding at 40 G line rate for CAIDA packets (Figure 8a),
  vanilla UnivMon ~2 Mpps (Figure 2), in-memory NitroSketch ~83 Mpps
  (Figure 13a);
* the LLC model charges a DRAM penalty on counter updates and table
  lookups with probability ``max(0, 1 - llc/working_set)`` -- the
  standard random-access-over-uniform-working-set approximation, which
  is what makes Strawman 1 and the hashtable baseline collapse
  (Figures 3a, 9a) exactly as the paper describes.

Who wins, and by what factor, is therefore an *observed* property of
the implementations' operation counts; only the unit costs are assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.metrics.opcount import OpCounter
from repro.metrics.throughput import cycles_per_packet_to_mpps, mpps_to_gbps


@dataclass(frozen=True)
class CycleCosts:
    """Per-operation cycle costs and machine parameters.

    Defaults model the paper's testbed CPU (E5-2620 v4 @ 2.1 GHz,
    20 MB L3).  ``hash`` is an xxhash32 of a 13-byte key including key
    marshalling; ``counter_update`` is an L1/L2-resident read-modify-
    write (the LLC model adds the miss penalty separately).
    """

    hash: float = 45.0
    counter_update: float = 10.0
    heap_op: float = 110.0
    prng: float = 35.0
    memcpy: float = 50.0
    table_lookup: float = 30.0
    dram_penalty: float = 70.0
    llc_bytes: int = 20 * 2**20
    clock_ghz: float = 2.1


#: The testbed defaults.
DEFAULT_COSTS = CycleCosts()


@dataclass
class CycleBreakdown:
    """Cycles attributed per cost category (totals, not per-packet)."""

    hash: float = 0.0
    counter_update: float = 0.0
    heap_op: float = 0.0
    prng: float = 0.0
    memcpy: float = 0.0
    table_lookup: float = 0.0
    cache_miss: float = 0.0
    fixed: float = 0.0
    packets: int = 0

    def total(self) -> float:
        return (
            self.hash
            + self.counter_update
            + self.heap_op
            + self.prng
            + self.memcpy
            + self.table_lookup
            + self.cache_miss
            + self.fixed
        )

    def per_packet(self) -> float:
        return self.total() / max(self.packets, 1)

    def shares(self) -> Dict[str, float]:
        """Fraction of total cycles per category (the Table-2 view)."""
        total = self.total()
        if total <= 0:
            return {}
        return {
            "hash": self.hash / total,
            "counter_update": self.counter_update / total,
            "heap_op": self.heap_op / total,
            "prng": self.prng / total,
            "memcpy": self.memcpy / total,
            "table_lookup": self.table_lookup / total,
            "cache_miss": self.cache_miss / total,
            "fixed": self.fixed / total,
        }

    def merge(self, other: "CycleBreakdown") -> None:
        self.hash += other.hash
        self.counter_update += other.counter_update
        self.heap_op += other.heap_op
        self.prng += other.prng
        self.memcpy += other.memcpy
        self.table_lookup += other.table_lookup
        self.cache_miss += other.cache_miss
        self.fixed += other.fixed
        self.packets += other.packets


class CostModel:
    """Converts operation counts into cycles and throughput."""

    def __init__(self, costs: CycleCosts = DEFAULT_COSTS) -> None:
        self.costs = costs

    def miss_rate(self, working_set_bytes: int) -> float:
        """Probability a random access to the working set misses the LLC."""
        if working_set_bytes <= 0:
            return 0.0
        return max(0.0, 1.0 - self.costs.llc_bytes / working_set_bytes)

    def breakdown(self, ops: OpCounter, working_set_bytes: int = 0) -> CycleBreakdown:
        """Attribute an operation tally to cycle categories.

        ``working_set_bytes`` is the randomly-accessed memory footprint
        (sketch counters, hash-table entries); counter updates and table
        lookups to it pay the DRAM penalty at the modelled miss rate.
        """
        costs = self.costs
        miss = self.miss_rate(working_set_bytes)
        random_accesses = ops.counter_updates + ops.table_lookups
        return CycleBreakdown(
            hash=ops.hashes * costs.hash,
            counter_update=ops.counter_updates * costs.counter_update,
            heap_op=ops.heap_ops * costs.heap_op,
            prng=ops.prng_draws * costs.prng,
            memcpy=ops.memcpys * costs.memcpy,
            table_lookup=ops.table_lookups * costs.table_lookup,
            cache_miss=random_accesses * miss * costs.dram_penalty,
            fixed=ops.fixed_cycles,
            packets=ops.packets,
        )

    def cycles_per_packet(self, ops: OpCounter, working_set_bytes: int = 0) -> float:
        """Average cycles spent per offered packet."""
        return self.breakdown(ops, working_set_bytes).per_packet()

    def capacity_mpps(self, ops: OpCounter, working_set_bytes: int = 0) -> float:
        """Packet rate one core sustains for this operation mix."""
        per_packet = self.cycles_per_packet(ops, working_set_bytes)
        if per_packet <= 0:
            return float("inf")
        return cycles_per_packet_to_mpps(per_packet, self.costs.clock_ghz)

    def capacity_gbps(
        self, ops: OpCounter, mean_packet_size: float, working_set_bytes: int = 0
    ) -> float:
        """Wire throughput one core sustains for this operation mix."""
        return mpps_to_gbps(self.capacity_mpps(ops, working_set_bytes), mean_packet_size)

    def cpu_share_at_rate(
        self, ops: OpCounter, rate_mpps: float, working_set_bytes: int = 0
    ) -> float:
        """Fraction of one core consumed when processing ``rate_mpps``.

        > 1.0 means the core cannot keep up (packets would drop); the
        Figure-10 CPU-usage bars report ``min(share, 1.0) * 100``.
        """
        per_packet = self.cycles_per_packet(ops, working_set_bytes)
        return rate_mpps * 1e6 * per_packet / (self.costs.clock_ghz * 1e9)
