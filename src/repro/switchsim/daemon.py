"""Measurement-daemon integration modes (paper Section 6).

The paper integrates the Sketching module with each platform in two
flavours:

* **All-in-one (AIO)** -- the sketch runs inside the switch's PMD
  thread: every sketch cycle competes with forwarding (Figure 8a,
  Figure 10a).
* **Separate-thread** -- the switch thread runs a light pre-processing
  stage that copies *selected* packet headers into a shared FIFO, and a
  dedicated measurement thread drains it (Figures 8b/c, 10b).  For
  NitroSketch only the geometrically sampled packets are copied, so the
  switch-side overhead is ``memcpy * sampled_fraction``; vanilla
  sketches need every header copied.

:class:`MeasurementDaemon` wraps any monitor (vanilla sketch, Nitro
sketch, UnivMon, baseline) with an operation counter and the ingest
logic; :mod:`repro.switchsim.simulator` combines it with a pipeline.
"""

from __future__ import annotations

import enum
import inspect
import time
from collections import deque
from typing import Deque, List, Optional

from repro.metrics.opcount import OpCounter
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.profile import NULL_PROFILER
from repro.traffic.replay import Batch


def _accepts_kwarg(callable_obj, name: str) -> bool:
    """True if ``callable_obj`` can be passed keyword argument ``name``."""
    try:
        parameters = inspect.signature(callable_obj).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    if name in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


class IntegrationMode(enum.Enum):
    """How the sketching module shares CPU with the switch."""

    ALL_IN_ONE = "aio"
    SEPARATE_THREAD = "separate"


class MeasurementDaemon:
    """Drives a monitor over packet batches and accounts its work.

    Parameters
    ----------
    monitor:
        Anything with ``update(key)`` (and optionally ``update_batch``,
        ``ops``, ``memory_bytes``, ``packets_sampled``).
    mode:
        AIO or separate-thread (affects how the simulator bills cycles).
    use_batch:
        Prefer the monitor's vectorised ``update_batch`` when available
        (the paper's buffered Idea-D path); scalar ingest otherwise.
    auditor:
        Optional :class:`~repro.telemetry.audit.ShadowAuditor` or
        :class:`~repro.telemetry.audit.GuaranteeMonitor`: every ingested
        batch is mirrored into it (exact shadow ground truth riding
        alongside the sketch).  ``None`` keeps ingest bit-identical to
        the unaudited path.
    queue_capacity:
        Opt-in bounded ingest queue modelling the separate-thread FIFO:
        :meth:`enqueue` parks batches, :meth:`drain` feeds them to the
        monitor, and the backlog is exported as a ``daemon_queue_depth``
        gauge for the ``queue_depth`` health rule.  ``0`` (default)
        means no queue; :meth:`ingest` stays synchronous either way.
    checkpoints:
        Optional :class:`~repro.control.checkpoint.CheckpointManager`.
        With ``checkpoint_interval > 0`` the daemon checkpoints its
        monitor every that many ingested batches; the distance to the
        last checkpoint is exported as ``daemon_checkpoint_age_batches``
        for the ``checkpoint_staleness`` health rule.
    anomaly / alerts / epoch_batches:
        The alert plane's epoch hook.  With ``epoch_batches > 0`` every
        that many ingested batches closes a detector epoch: the
        :class:`~repro.telemetry.anomaly.SketchAnomalyDetectors` (if
        any) observe the monitor with the packets the epoch carried,
        then the :class:`~repro.telemetry.alerts.AlertManager` (if any)
        runs one evaluation round.  :meth:`epoch_boundary` can also be
        called explicitly (trailing partial epochs).
    window_epochs:
        With ``window_epochs > 0`` the daemon measures over a sliding
        window instead of one unbounded epoch: the monitor is wrapped
        in a :class:`~repro.control.windows.SlidingWindowMonitor`
        spanning that many epochs (a monitor that already *is* one is
        used as-is) and every :meth:`epoch_boundary` rotates the ring.
        The anomaly detectors then observe the completed epoch's ring
        member directly (``cumulative`` is forced off -- each epoch
        sketch holds exactly one epoch of traffic), alert rules see
        windowed signals, and window-scoped gauges (``window_*``) are
        re-exported after each rotation.  Checkpoints carry the whole
        ring; :meth:`restore_latest` resumes mid-epoch byte-exactly.
    """

    def __init__(
        self,
        monitor,
        mode: IntegrationMode = IntegrationMode.ALL_IN_ONE,
        name: Optional[str] = None,
        use_batch: bool = True,
        telemetry=NULL_TELEMETRY,
        auditor=None,
        queue_capacity: int = 0,
        checkpoints=None,
        checkpoint_interval: int = 0,
        anomaly=None,
        alerts=None,
        epoch_batches: int = 0,
        window_epochs: int = 0,
    ) -> None:
        if window_epochs < 0:
            raise ValueError("window_epochs must be >= 0, got %d" % window_epochs)
        from repro.control.windows import SlidingWindowMonitor

        if window_epochs > 0 and not isinstance(monitor, SlidingWindowMonitor):
            # Wrap the (pristine) monitor: rotation is daemon-driven at
            # epoch boundaries, not packet-count-driven.
            monitor = SlidingWindowMonitor.from_template(monitor, window_epochs)
        self.windowed = isinstance(monitor, SlidingWindowMonitor)
        self.window_epochs = (
            monitor.window_epochs if self.windowed else 0
        )
        if self.windowed and anomaly is not None:
            # Each ring epoch holds exactly one epoch of traffic, so the
            # detectors query it directly instead of differencing
            # against a cumulative snapshot.
            anomaly.cumulative = False
        self.monitor = monitor
        self.mode = mode
        self.name = name or type(monitor).__name__
        self.use_batch = use_batch and hasattr(monitor, "update_batch")
        self.ops = OpCounter()
        if hasattr(monitor, "ops"):
            monitor.ops = self.ops
        self.telemetry = telemetry
        if hasattr(monitor, "telemetry"):
            monitor.telemetry = telemetry
        # Per-stage latency profiler; the setter hands it to the monitor
        # so hot-path stages and checkpoint timing land in one
        # ``stage_seconds`` family.
        self.profiler = NULL_PROFILER
        self.auditor = auditor
        if queue_capacity < 0:
            raise ValueError("queue_capacity must be >= 0, got %d" % queue_capacity)
        self.queue_capacity = queue_capacity
        # A deque, not a list: drain pops from the head, and list.pop(0)
        # is O(n) -- a 10k-batch backlog cost O(n^2) element moves.
        self._queue: Deque[Batch] = deque()
        self.batches_dropped = 0
        self.packets_offered = 0
        if checkpoint_interval < 0:
            raise ValueError(
                "checkpoint_interval must be >= 0, got %d" % checkpoint_interval
            )
        if checkpoint_interval > 0 and checkpoints is None:
            raise ValueError("checkpoint_interval set but no CheckpointManager given")
        self.checkpoints = checkpoints
        self.checkpoint_interval = checkpoint_interval
        if epoch_batches < 0:
            raise ValueError("epoch_batches must be >= 0, got %d" % epoch_batches)
        self.anomaly = anomaly
        self.alerts = alerts
        self.epoch_batches = epoch_batches
        self.epochs_completed = 0
        self._batches_since_epoch = 0
        self._packets_since_epoch = 0
        self.batches_ingested = 0
        self._batches_since_checkpoint = 0
        # Probe both call signatures once up front (as for ``update``'s
        # timestamp) so ingest never wraps the monitor in a try/except
        # that would also swallow TypeErrors raised *inside* it.
        self._update_takes_timestamp = _accepts_kwarg(
            getattr(monitor, "update", None), "timestamp"
        )
        self._batch_takes_duration = self.use_batch and _accepts_kwarg(
            monitor.update_batch, "duration_seconds"
        )

    @property
    def profiler(self):
        """The attached :class:`~repro.telemetry.profile.StageProfiler`."""
        return self._profiler

    @profiler.setter
    def profiler(self, profiler) -> None:
        self._profiler = profiler if profiler is not None else NULL_PROFILER
        if hasattr(self.monitor, "profiler"):
            self.monitor.profiler = self._profiler

    def ingest(self, batch: Batch) -> None:
        """Feed one batch to the monitor."""
        self.packets_offered += len(batch)
        telemetry = self.telemetry
        with telemetry.atomic():
            # Sibling counters: a scrape must never see one incremented
            # without the other (batch/packet ratios feed health rules).
            telemetry.count("daemon_batches_total", daemon=self.name)
            telemetry.count("daemon_packets_total", len(batch), daemon=self.name)
        with telemetry.span("daemon_ingest_seconds", daemon=self.name):
            self._ingest_inner(batch)
        if self.auditor is not None:
            self.auditor.observe_batch(batch.keys)
        telemetry.record_ops(self.ops, component=self.name)
        self.batches_ingested += 1
        self._batches_since_checkpoint += 1
        if (
            self.checkpoints is not None
            and self.checkpoint_interval > 0
            and self._batches_since_checkpoint >= self.checkpoint_interval
        ):
            self.checkpoint()
        elif self.checkpoints is not None:
            telemetry.gauge(
                "daemon_checkpoint_age_batches",
                self._batches_since_checkpoint,
                daemon=self.name,
            )
        self._batches_since_epoch += 1
        self._packets_since_epoch += len(batch)
        if self.epoch_batches > 0 and self._batches_since_epoch >= self.epoch_batches:
            self.epoch_boundary()

    def epoch_boundary(self) -> None:
        """Close one detector epoch: anomaly signals, then alert rules.

        No-op when nothing accumulated since the last boundary, so an
        explicit trailing call after a partial epoch is always safe.
        """
        packets = self._packets_since_epoch
        self._batches_since_epoch = 0
        self._packets_since_epoch = 0
        if packets <= 0:
            return
        self.epochs_completed += 1
        if self.windowed:
            # Windowed mode: detectors see the epoch that just
            # completed (the in-progress ring member, one epoch of
            # traffic), alerts evaluate the resulting signals, then the
            # ring rotates and the window-scoped gauges are refreshed.
            if self.anomaly is not None:
                self.anomaly.observe_epoch(self.monitor.current_monitor(), packets)
            if self.alerts is not None:
                self.alerts.evaluate()
            self.monitor.rotate()
            from repro.control.windows import export_window_metrics

            export_window_metrics(self.monitor, self.telemetry)
            return
        if self.anomaly is not None:
            self.anomaly.observe_epoch(self.monitor, packets)
        if self.alerts is not None:
            self.alerts.evaluate()

    def checkpoint(self):
        """Checkpoint the monitor now; returns the written Checkpoint."""
        if self.checkpoints is None:
            raise RuntimeError("daemon has no CheckpointManager")
        checkpoint_start = time.perf_counter()
        written = self.checkpoints.save(
            self.monitor,
            meta={
                "daemon": self.name,
                "packets_offered": self.packets_offered,
                "batches_ingested": self.batches_ingested,
            },
        )
        # Checkpoints are epoch-grade events, not per-batch: record the
        # stage unconditionally, bypassing the batch sampling gate.
        self._profiler.observe(
            "checkpoint", time.perf_counter() - checkpoint_start
        )
        self._batches_since_checkpoint = 0
        self.telemetry.gauge(
            "daemon_checkpoint_age_batches", 0, daemon=self.name
        )
        return written

    def restore_latest(self) -> bool:
        """Swap in the monitor from the newest valid checkpoint.

        Returns True when a checkpoint was restored (the daemon's
        ``packets_offered``/``batches_ingested`` resume from its meta);
        False when none exists and state is left untouched.
        """
        if self.checkpoints is None:
            raise RuntimeError("daemon has no CheckpointManager")
        restored = self.checkpoints.restore_latest()
        if restored is None:
            return False
        from repro.control.windows import SlidingWindowMonitor

        self.monitor = restored.monitor
        self.windowed = isinstance(self.monitor, SlidingWindowMonitor)
        if self.windowed:
            self.window_epochs = self.monitor.window_epochs
        if hasattr(self.monitor, "ops"):
            self.monitor.ops = self.ops
        if hasattr(self.monitor, "telemetry"):
            self.monitor.telemetry = self.telemetry
        self.packets_offered = int(restored.meta.get("packets_offered", 0))
        self.batches_ingested = int(restored.meta.get("batches_ingested", 0))
        self._batches_since_checkpoint = 0
        return True

    # -- opt-in bounded queue (separate-thread FIFO model) ------------------

    @property
    def queue_depth(self) -> int:
        """Batches currently parked in the ingest queue."""
        return len(self._queue)

    def enqueue(self, batch: Batch) -> bool:
        """Park one batch for a later :meth:`drain`; False when full.

        Requires ``queue_capacity > 0``.  A full queue drops the batch
        (the FIFO-overflow behaviour of a real separate-thread
        integration) and the drop is visible in ``batches_dropped``.
        """
        if self.queue_capacity <= 0:
            raise RuntimeError("daemon has no queue (queue_capacity=0)")
        accepted = len(self._queue) < self.queue_capacity
        if accepted:
            self._queue.append(batch)
            self.telemetry.gauge(
                "daemon_queue_depth", len(self._queue), daemon=self.name
            )
        else:
            self.batches_dropped += 1
            with self.telemetry.atomic():
                self.telemetry.count(
                    "daemon_batches_dropped_total", daemon=self.name
                )
                self.telemetry.gauge(
                    "daemon_queue_depth", len(self._queue), daemon=self.name
                )
        return accepted

    def drain(self, max_batches: Optional[int] = None) -> int:
        """Ingest up to ``max_batches`` queued batches; returns how many."""
        drained = 0
        while self._queue and (max_batches is None or drained < max_batches):
            self.ingest(self._queue.popleft())
            drained += 1
        if self.queue_capacity > 0:
            self.telemetry.gauge(
                "daemon_queue_depth", len(self._queue), daemon=self.name
            )
        return drained

    def _ingest_inner(self, batch: Batch) -> None:
        if self.use_batch:
            if self._batch_takes_duration:
                self.monitor.update_batch(
                    batch.keys, duration_seconds=batch.duration_seconds
                )
            else:
                self.monitor.update_batch(batch.keys)
            return
        monitor_update = self.monitor.update
        if self._update_takes_timestamp:
            timestamps = batch.timestamps
            for index, key in enumerate(batch.keys.tolist()):
                monitor_update(key, 1.0, timestamp=float(timestamps[index]))
        else:
            for key in batch.keys.tolist():
                monitor_update(key)

    def sampled_fraction(self) -> float:
        """Fraction of packets the pre-processing stage forwards.

        NitroSketch exposes ``packets_sampled``; everything else needs
        every header (fraction 1.0).
        """
        sampled = getattr(self.monitor, "packets_sampled", None)
        seen = getattr(self.monitor, "packets_seen", None)
        if sampled is None or not seen:
            return 1.0
        return sampled / seen

    def memory_bytes(self) -> int:
        """The monitor's randomly-accessed working set."""
        if hasattr(self.monitor, "memory_bytes"):
            return self.monitor.memory_bytes()
        return 0

    def check_invariants(self) -> List[str]:
        """Ingest-accounting coherence checks; returns violation strings."""
        violations: List[str] = []
        if self.queue_capacity > 0 and len(self._queue) > self.queue_capacity:
            violations.append(
                "daemon %s: queue depth %d exceeds capacity %d"
                % (self.name, len(self._queue), self.queue_capacity)
            )
        if self._batches_since_checkpoint > self.batches_ingested:
            violations.append(
                "daemon %s: %d batches since checkpoint but only %d ingested"
                % (self.name, self._batches_since_checkpoint, self.batches_ingested)
            )
        if (
            self.checkpoint_interval > 0
            and self._batches_since_checkpoint > self.checkpoint_interval
        ):
            violations.append(
                "daemon %s: checkpoint overdue (%d batches since, interval %d)"
                % (self.name, self._batches_since_checkpoint, self.checkpoint_interval)
            )
        if hasattr(self.monitor, "check_invariants"):
            violations.extend(self.monitor.check_invariants())
        return violations

    def reset(self) -> None:
        """Return the daemon (and its monitor) to the pre-ingest state.

        Also rewinds ``batches_ingested`` and the checkpoint cadence
        counter -- leaving them at pre-reset values made a reset daemon
        checkpoint on the wrong schedule and report stale meta counters
        in every subsequent checkpoint.
        """
        self.ops.reset()
        self.packets_offered = 0
        self._queue.clear()
        self.batches_dropped = 0
        self.batches_ingested = 0
        self._batches_since_checkpoint = 0
        self.epochs_completed = 0
        self._batches_since_epoch = 0
        self._packets_since_epoch = 0
        if hasattr(self.monitor, "reset"):
            self.monitor.reset()
        if self.auditor is not None and hasattr(self.auditor, "reset"):
            self.auditor.reset()
        if self.anomaly is not None and hasattr(self.anomaly, "reset"):
            self.anomaly.reset()
