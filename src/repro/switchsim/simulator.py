"""End-to-end switch simulation: pipeline + daemon + cost model + NIC.

Runs a trace through a software-switch pipeline with an optional
measurement daemon, then derives the throughput/CPU numbers of the
paper's evaluation:

* **capacity** -- the packet rate the bottleneck thread sustains
  (cycles-per-packet vs the core's clock);
* **achieved rate** -- ``min(offered, capacity, NIC deliverable)``;
* **CPU shares** -- the Figure-10 view: how much of each core the
  switch and sketch modules consume at the achieved rate;
* **hotspot breakdown** -- the Table-2 view of where cycles go.

In the separate-thread mode the switch thread pays only the
pre-processing memcpy for the packets the daemon actually wants
(``sampled_fraction``), and the measurement thread's own capacity is an
independent bound -- exactly the Section-6 architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.metrics.opcount import OpCounter
from repro.metrics.throughput import mpps_to_gbps
from repro.switchsim.costmodel import CostModel, CycleBreakdown
from repro.switchsim.daemon import IntegrationMode, MeasurementDaemon
from repro.switchsim.nic import NICModel, XL710_40G
from repro.switchsim.pipeline import SwitchPipeline
from repro.telemetry import NULL_TELEMETRY
from repro.traffic.replay import Replayer
from repro.traffic.traces import Trace


@dataclass
class SimulationResult:
    """Everything the throughput/CPU figures need, from one run."""

    platform: str
    daemon_name: str
    packets: int
    mean_packet_size: float
    offered_mpps: float
    capacity_mpps: float
    achieved_mpps: float
    achieved_gbps: float
    drop_fraction: float
    switch_cycles_per_packet: float
    sketch_cycles_per_packet: float
    switch_cpu_share: float
    sketch_cpu_share: float
    switch_breakdown: CycleBreakdown
    sketch_breakdown: CycleBreakdown
    #: Core id when produced by :class:`~repro.switchsim.multicore.
    #: MultiCoreSimulator` (empty shards are skipped, so ``per_core``
    #: list positions do not track core ids); ``None`` for single-core runs.
    core: Optional[int] = None

    def summary(self) -> Dict[str, float]:
        """The headline numbers as a flat dict (report rows)."""
        return {
            "offered_mpps": round(self.offered_mpps, 3),
            "capacity_mpps": round(self.capacity_mpps, 3),
            "achieved_mpps": round(self.achieved_mpps, 3),
            "achieved_gbps": round(self.achieved_gbps, 3),
            "drop_fraction": round(self.drop_fraction, 4),
            "switch_cpu_share": round(self.switch_cpu_share, 4),
            "sketch_cpu_share": round(self.sketch_cpu_share, 4),
        }


class SwitchSimulator:
    """Drives a trace through a pipeline (+ optional measurement daemon)."""

    def __init__(
        self,
        pipeline: SwitchPipeline,
        daemon: Optional[MeasurementDaemon] = None,
        cost_model: Optional[CostModel] = None,
        nic: NICModel = XL710_40G,
        telemetry=NULL_TELEMETRY,
    ) -> None:
        self.pipeline = pipeline
        self.daemon = daemon
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.nic = nic
        self.telemetry = telemetry
        # Fan the sink out so pipeline stages and the daemon's monitor
        # all record into the same registry/tracer.
        if telemetry is not NULL_TELEMETRY:
            pipeline.telemetry = telemetry
            if daemon is not None:
                daemon.telemetry = telemetry
                if hasattr(daemon.monitor, "telemetry"):
                    daemon.monitor.telemetry = telemetry
                # The shadow auditor (when attached) exports its error
                # gauges into the same registry as everything else.
                auditor = daemon.auditor
                if auditor is not None:
                    if hasattr(auditor, "telemetry"):
                        auditor.telemetry = telemetry
                    inner = getattr(auditor, "auditor", None)
                    if inner is not None and hasattr(inner, "telemetry"):
                        inner.telemetry = telemetry

    def run(
        self,
        trace: Trace,
        batch_size: int = 32,
        offered_gbps: Optional[float] = None,
    ) -> SimulationResult:
        """Simulate the full trace; returns the performance summary."""
        replayer = Replayer(trace, batch_size=batch_size, offered_gbps=offered_gbps)
        switch_ops = OpCounter()
        for batch in replayer:
            self.pipeline.forward_batch(batch, switch_ops)
            if self.daemon is not None:
                self.daemon.ingest(batch)
        return self._evaluate(trace, switch_ops, replayer.offered_rate_mpps)

    def _evaluate(
        self, trace: Trace, switch_ops: OpCounter, offered_mpps: float
    ) -> SimulationResult:
        cost = self.cost_model
        costs = cost.costs
        switch_breakdown = cost.breakdown(switch_ops, self.pipeline.working_set_bytes())
        switch_pp = switch_breakdown.per_packet()

        sketch_breakdown = CycleBreakdown()
        sketch_pp = 0.0
        daemon_name = "none"
        if self.daemon is not None:
            daemon_name = self.daemon.name
            sketch_breakdown = cost.breakdown(self.daemon.ops, self.daemon.memory_bytes())
            sketch_breakdown.packets = max(
                sketch_breakdown.packets, self.daemon.packets_offered
            )
            sketch_pp = sketch_breakdown.total() / max(self.daemon.packets_offered, 1)

        clock_hz = costs.clock_ghz * 1e9
        switch_thread_pp = switch_pp
        if self.daemon is None:
            capacity_mpps = clock_hz / max(switch_pp, 1e-9) / 1e6
        elif self.daemon.mode is IntegrationMode.ALL_IN_ONE:
            capacity_mpps = clock_hz / max(switch_pp + sketch_pp, 1e-9) / 1e6
        else:
            # Switch thread: forwarding + pre-processing copy of the
            # headers the daemon wants; measurement thread: the sketch.
            copy_pp = costs.memcpy * self.daemon.sampled_fraction()
            switch_thread_pp = switch_pp + copy_pp
            switch_bound = clock_hz / max(switch_thread_pp, 1e-9) / 1e6
            sketch_bound = clock_hz / max(sketch_pp, 1e-9) / 1e6
            capacity_mpps = min(switch_bound, sketch_bound)

        deliverable = self.nic.deliverable_mpps(trace.mean_packet_size)
        achieved_mpps = min(offered_mpps, capacity_mpps, deliverable)
        drop_fraction = (
            0.0 if offered_mpps <= 0 else max(0.0, 1.0 - achieved_mpps / offered_mpps)
        )

        switch_share = achieved_mpps * 1e6 * switch_thread_pp / clock_hz
        sketch_share = achieved_mpps * 1e6 * sketch_pp / clock_hz

        telemetry = self.telemetry
        run_labels = {"platform": self.pipeline.name, "daemon": daemon_name}
        telemetry.gauge("simulator_capacity_mpps", capacity_mpps, **run_labels)
        telemetry.gauge("simulator_achieved_mpps", achieved_mpps, **run_labels)
        telemetry.gauge(
            "simulator_cpu_share", min(switch_share, 1.0), component="switch", **run_labels
        )
        telemetry.gauge(
            "simulator_cpu_share", min(sketch_share, 1.0), component="sketch", **run_labels
        )
        telemetry.record_ops(switch_ops, component=self.pipeline.name)
        telemetry.event(
            "simulate.run",
            platform=self.pipeline.name,
            daemon=daemon_name,
            packets=len(trace),
            offered_mpps=offered_mpps,
            capacity_mpps=capacity_mpps,
            achieved_mpps=achieved_mpps,
            drop_fraction=drop_fraction,
        )

        return SimulationResult(
            platform=self.pipeline.name,
            daemon_name=daemon_name,
            packets=len(trace),
            mean_packet_size=trace.mean_packet_size,
            offered_mpps=offered_mpps,
            capacity_mpps=capacity_mpps,
            achieved_mpps=achieved_mpps,
            achieved_gbps=mpps_to_gbps(achieved_mpps, trace.mean_packet_size),
            drop_fraction=drop_fraction,
            switch_cycles_per_packet=switch_pp,
            sketch_cycles_per_packet=sketch_pp,
            switch_cpu_share=min(switch_share, 1.0),
            sketch_cpu_share=min(sketch_share, 1.0),
            switch_breakdown=switch_breakdown,
            sketch_breakdown=sketch_breakdown,
        )
