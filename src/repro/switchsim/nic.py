"""NIC hardware limits.

The testbed's Intel XL710 40 GbE controller cannot sustain 40 G line
rate with 64 B packets in hardware (paper Section 7.1: "even vanilla
DPDK does not reach the line rate with 64B packets due to the hardware
limitation in Intel XL710", citing the controller datasheet [29]).  The
NIC model caps the achievable packet rate at the lower of the wire rate
for the trace's packet size and the controller's small-packet ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.throughput import gbps_to_mpps


@dataclass(frozen=True)
class NICModel:
    """A NIC port's delivery limits."""

    name: str
    line_rate_gbps: float
    #: Hardware packet-per-second ceiling (small-packet limitation).
    max_mpps: float

    def deliverable_mpps(self, mean_packet_size: float) -> float:
        """Max packet rate the port can deliver for a given packet size."""
        wire_limit = gbps_to_mpps(self.line_rate_gbps, mean_packet_size)
        return min(wire_limit, self.max_mpps)


#: Intel XL710, the paper's 40 GbE NIC: ~42 Mpps small-packet ceiling.
XL710_40G = NICModel(name="XL710-40G", line_rate_gbps=40.0, max_mpps=42.0)

#: Broadcom BCM5720, the testbed's 1 GbE control NIC.
BCM5720_1G = NICModel(name="BCM5720-1G", line_rate_gbps=1.0, max_mpps=1.5)

#: A generic 10 GbE port (line rate achievable at all sizes).
GENERIC_10G = NICModel(name="generic-10G", line_rate_gbps=10.0, max_mpps=14.88)

#: No NIC bottleneck (in-memory benchmarks).
UNLIMITED = NICModel(name="unlimited", line_rate_gbps=float("inf"), max_mpps=float("inf"))
