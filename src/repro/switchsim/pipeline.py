"""Software-switch data-plane models.

Each pipeline consumes packet batches and records its forwarding work
into an :class:`~repro.metrics.opcount.OpCounter`; the cost model then
prices that work.  Per-packet fixed costs are calibrated so the
platforms land at their paper-reported min-sized-packet rates
(OVS-DPDK ~22 Mpps, VPP ~24 Mpps, BESS ~29 Mpps, raw DPDK ~23 Mpps on
one core -- Figures 2 and 8b).

The models are structural, not just constants:

* **OVS-DPDK** simulates the three-tier lookup of the userspace
  datapath (Section 6): an Exact Match Cache keyed per flow, a
  tuple-space-search *megaflow* classifier (one masked hash + probe per
  subtable) on EMC misses, and an OpenFlow table fallback that installs
  new megaflow entries.  EMC hit rate is exactly what the paper
  controls for ("we modify the MAC addresses of packets to avoid cache
  misses on the Exact-Match Cache").
* **VPP** runs an actual graph of nodes (ethernet-input, ip4-input,
  ip4-lookup with a FIB, ip4-rewrite); per-node dispatch overhead is
  amortised over the vector, which is VPP's whole performance story.
  A measurement node can be appended after the IP stack, exactly where
  Section 6 integrates NitroSketch.
* **BESS** chains modules (port_inc -> l2_forward -> port_out) with the
  same insertion hook.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence

from repro.metrics.opcount import OpCounter
from repro.telemetry import NULL_TELEMETRY
from repro.traffic.replay import Batch


class SwitchPipeline(abc.ABC):
    """A single-thread software-switch forwarding plane."""

    #: Human-readable platform name.
    name: str = "switch"
    #: Observability sink (per-stage timing histograms, cache counters).
    #: A class-level no-op by default so un-instrumented runs pay nothing;
    #: assigning a real ``Telemetry`` on an instance lights it up.
    telemetry = NULL_TELEMETRY

    @abc.abstractmethod
    def forward_batch(self, batch: Batch, ops: OpCounter) -> None:
        """Forward one packet batch, recording work into ``ops``."""

    def working_set_bytes(self) -> int:
        """Randomly-accessed switch state (for the LLC model)."""
        return 0

    def reset(self) -> None:
        """Clear forwarding caches."""


class DPDKForwarder(SwitchPipeline):
    """Raw DPDK l2fwd: PMD receive + transmit, no lookup -- the upper
    bound in Figure 2."""

    name = "dpdk"

    #: Receive + transmit + mbuf management per packet.
    PER_PACKET_CYCLES = 90.0

    def forward_batch(self, batch: Batch, ops: OpCounter) -> None:
        count = len(batch)
        ops.packet(count)
        self.telemetry.count("pipeline_batches_total", platform=self.name)
        with self.telemetry.span(
            "pipeline_stage_seconds", platform=self.name, stage="l2fwd"
        ):
            ops.fixed(self.PER_PACKET_CYCLES * count)


# ---------------------------------------------------------------------------
# OVS-DPDK: EMC -> tuple-space megaflow classifier -> OpenFlow table.
# ---------------------------------------------------------------------------


class TupleSpaceClassifier:
    """The megaflow layer: one hash table per distinct wildcard mask.

    Real OVS builds one subtable per flow-mask in use; a lookup hashes
    the packet under each subtable's mask until one matches.  We model
    masks as bit-masks over the 64-bit flow key; the paper's two
    forwarding rules yield two subtables.
    """

    def __init__(self, masks: Sequence[int] = (0xFFFF, 0xFFFFFFFFFFFFFFFF)) -> None:
        if not masks:
            raise ValueError("at least one subtable mask required")
        self.subtables: "OrderedDict[int, Dict[int, int]]" = OrderedDict(
            (mask, {}) for mask in masks
        )
        self.lookups = 0
        self.matches = 0

    def install(self, key: int, mask: int, action: int) -> None:
        """Install a megaflow entry under one of the subtable masks."""
        if mask not in self.subtables:
            self.subtables[mask] = {}
        self.subtables[mask][key & mask] = action

    def lookup(self, key: int, ops: OpCounter) -> Optional[int]:
        """Walk the subtables; bill one hash + probe per subtable visited."""
        self.lookups += 1
        for mask, table in self.subtables.items():
            ops.hash()
            ops.table_lookup()
            action = table.get(key & mask)
            if action is not None:
                self.matches += 1
                return action
        return None

    def entry_count(self) -> int:
        return sum(len(table) for table in self.subtables.values())

    def reset(self) -> None:
        for table in self.subtables.values():
            table.clear()
        self.lookups = 0
        self.matches = 0


class OVSDPDKPipeline(SwitchPipeline):
    """OVS-DPDK userspace datapath with the three-tier lookup.

    EMC hits cost one table probe (the NIC's RSS hash is reused, so no
    software hash); misses walk the tuple-space classifier and, when
    even that misses, hit the OpenFlow table (upcall cost) and install
    megaflow + EMC entries.
    """

    name = "ovs-dpdk"

    #: PMD receive + transmit per packet.
    PMD_CYCLES = 35.0
    #: miniflow_extract header parsing per packet (Table 2's row).
    MINIFLOW_CYCLES = 25.0
    #: Emc bookkeeping/action execution on the hit path.
    ACTION_CYCLES = 5.0
    #: OpenFlow slow-path consultation on a full classifier miss.
    UPCALL_CYCLES = 4000.0

    def __init__(
        self,
        emc_entries: int = 8192,
        classifier_subtables: int = 2,
        emc_key_space: Optional[int] = 2,
    ) -> None:
        """``emc_key_space`` models the paper's EMC-friendly setup: packets
        are rewritten so they fall into a tiny number of exact-match
        entries ("we modify the MAC addresses of packets to avoid cache
        misses on the Exact-Match Cache", Section 7).  Pass ``None`` to key
        the EMC by full flow and study cache-thrash behaviour instead."""
        if emc_entries < 1:
            raise ValueError("emc_entries must be >= 1")
        self.emc_entries = emc_entries
        self.classifier_subtables = classifier_subtables
        self.emc_key_space = emc_key_space
        # Wildcard masks: a coarse L2-ish mask plus an exact 5-tuple mask
        # (the paper's two bidirectional forwarding rules).
        masks = [0xFFFF] + [0xFFFFFFFFFFFFFFFF] * max(classifier_subtables - 1, 0)
        self.classifier = TupleSpaceClassifier(masks[:classifier_subtables] or [0xFFFF])
        self._emc: "OrderedDict[int, int]" = OrderedDict()
        self.emc_hits = 0
        self.emc_misses = 0
        self.upcalls = 0

    def forward_batch(self, batch: Batch, ops: OpCounter) -> None:
        count = len(batch)
        ops.packet(count)
        telemetry = self.telemetry
        telemetry.count("pipeline_batches_total", platform=self.name)
        hits_before, misses_before, upcalls_before = (
            self.emc_hits,
            self.emc_misses,
            self.upcalls,
        )
        with telemetry.span(
            "pipeline_stage_seconds", platform=self.name, stage="datapath"
        ):
            ops.fixed(
                (self.PMD_CYCLES + self.MINIFLOW_CYCLES + self.ACTION_CYCLES) * count
            )
            emc = self._emc
            for key in batch.keys.tolist():
                if self.emc_key_space is not None:
                    key = key % self.emc_key_space
                ops.table_lookup()
                if key in emc:
                    self.emc_hits += 1
                    emc.move_to_end(key)
                    continue
                self.emc_misses += 1
                action = self.classifier.lookup(key, ops)
                if action is None:
                    # OpenFlow table consultation; install a megaflow entry
                    # under the coarse mask so subsequent flows match fast.
                    self.upcalls += 1
                    ops.fixed(self.UPCALL_CYCLES)
                    coarse_mask = next(iter(self.classifier.subtables))
                    self.classifier.install(key, coarse_mask, action=1)
                ops.memcpy()  # EMC entry install
                emc[key] = 1
                if len(emc) > self.emc_entries:
                    emc.popitem(last=False)
        if telemetry.enabled:
            telemetry.count("ovs_emc_hits_total", self.emc_hits - hits_before)
            telemetry.count("ovs_emc_misses_total", self.emc_misses - misses_before)
            telemetry.count("ovs_upcalls_total", self.upcalls - upcalls_before)

    def working_set_bytes(self) -> int:
        # EMC entries ~64 B (miniflow + netdev flow reference); megaflow
        # entries ~128 B.
        return len(self._emc) * 64 + self.classifier.entry_count() * 128

    def reset(self) -> None:
        self._emc.clear()
        self.classifier.reset()
        self.emc_hits = 0
        self.emc_misses = 0
        self.upcalls = 0


# ---------------------------------------------------------------------------
# VPP: a packet-processing graph.
# ---------------------------------------------------------------------------


class GraphNode(abc.ABC):
    """One VPP graph node: per-vector dispatch cost + per-packet work."""

    name: str = "node"
    #: Frame dispatch overhead, charged once per batch.
    dispatch_cycles: float = 120.0
    #: Baseline per-packet cost inside the node.
    per_packet_cycles: float = 15.0

    def process(self, batch: Batch, ops: OpCounter) -> None:
        """Default behaviour: charge the fixed costs."""
        ops.fixed(self.dispatch_cycles + self.per_packet_cycles * len(batch))


class EthernetInputNode(GraphNode):
    """Parse L2 headers, demux by ethertype."""

    name = "ethernet-input"
    per_packet_cycles = 14.0


class IP4InputNode(GraphNode):
    """Validate the IPv4 header (checksum, TTL)."""

    name = "ip4-input"
    per_packet_cycles = 12.0


class IP4LookupNode(GraphNode):
    """FIB longest-prefix match; billed as real table lookups."""

    name = "ip4-lookup"
    per_packet_cycles = 4.0

    def __init__(self, fib_entries: int = 2) -> None:
        # The testbed installs two forwarding rules.
        self.fib: Dict[int, int] = {index: index for index in range(fib_entries)}

    def process(self, batch: Batch, ops: OpCounter) -> None:
        super().process(batch, ops)
        count = len(batch)
        # mtrie walk: modelled as one table probe per packet.
        ops.table_lookup(count)
        self.lookups = getattr(self, "lookups", 0) + count


class IP4RewriteNode(GraphNode):
    """Rewrite MACs, decrement TTL, enqueue to tx."""

    name = "ip4-rewrite"
    per_packet_cycles = 12.0


class MeasurementNode(GraphNode):
    """A measurement plugin node (Section 6's VPP integration).

    Wraps any monitor; the node itself is free in the graph (its work is
    the monitor's own, recorded in the monitor's ops sink).
    """

    name = "nitrosketch"
    dispatch_cycles = 120.0
    per_packet_cycles = 0.0

    def __init__(self, ingest: Callable[[Batch], None]) -> None:
        self._ingest = ingest

    def process(self, batch: Batch, ops: OpCounter) -> None:
        super().process(batch, ops)
        self._ingest(batch)


class VPPPipeline(SwitchPipeline):
    """FD.io VPP: the L3 vSwitch graph the paper describes."""

    name = "vpp"

    def __init__(self, nodes: Optional[List[GraphNode]] = None) -> None:
        if nodes is None:
            nodes = [
                EthernetInputNode(),
                IP4InputNode(),
                IP4LookupNode(),
                IP4RewriteNode(),
            ]
        self.nodes = nodes

    def add_node(self, node: GraphNode, after: Optional[str] = None) -> None:
        """Insert a node (the paper adds its module after the IP stack)."""
        if after is None:
            self.nodes.append(node)
            return
        for index, existing in enumerate(self.nodes):
            if existing.name == after:
                self.nodes.insert(index + 1, node)
                return
        raise ValueError("no node named %r in the graph" % (after,))

    def forward_batch(self, batch: Batch, ops: OpCounter) -> None:
        ops.packet(len(batch))
        telemetry = self.telemetry
        telemetry.count("pipeline_batches_total", platform=self.name)
        for node in self.nodes:
            with telemetry.span(
                "pipeline_stage_seconds", platform=self.name, stage=node.name
            ):
                node.process(batch, ops)


# ---------------------------------------------------------------------------
# BESS: a module chain.
# ---------------------------------------------------------------------------


class BESSModule(abc.ABC):
    """One BESS module: per-batch scheduling + per-packet work."""

    name: str = "module"
    schedule_cycles: float = 60.0
    per_packet_cycles: float = 20.0

    def process(self, batch: Batch, ops: OpCounter) -> None:
        ops.fixed(self.schedule_cycles + self.per_packet_cycles * len(batch))


class PortIncModule(BESSModule):
    name = "port_inc"
    per_packet_cycles = 18.0


class L2ForwardModule(BESSModule):
    """Destination-MAC table forwarding."""

    name = "l2_forward"
    per_packet_cycles = 4.0

    def __init__(self, table_size: int = 2) -> None:
        self.table: Dict[int, int] = {index: index for index in range(table_size)}

    def process(self, batch: Batch, ops: OpCounter) -> None:
        super().process(batch, ops)
        ops.table_lookup(len(batch))


class PortOutModule(BESSModule):
    name = "port_out"
    per_packet_cycles = 14.0


class SketchModule(BESSModule):
    """A measurement module in the BESS pipeline (Section 6)."""

    name = "nitrosketch"
    per_packet_cycles = 0.0

    def __init__(self, ingest: Callable[[Batch], None]) -> None:
        self._ingest = ingest

    def process(self, batch: Batch, ops: OpCounter) -> None:
        super().process(batch, ops)
        self._ingest(batch)


class BESSPipeline(SwitchPipeline):
    """BESS: a light-weight modular software switch."""

    name = "bess"

    def __init__(self, modules: Optional[List[BESSModule]] = None) -> None:
        if modules is None:
            modules = [PortIncModule(), L2ForwardModule(), PortOutModule()]
        self.modules = modules

    def add_module(self, module: BESSModule, position: Optional[int] = None) -> None:
        """Insert a module into the chain (default: before port_out)."""
        if position is None:
            position = max(len(self.modules) - 1, 0)
        self.modules.insert(position, module)

    def forward_batch(self, batch: Batch, ops: OpCounter) -> None:
        ops.packet(len(batch))
        telemetry = self.telemetry
        telemetry.count("pipeline_batches_total", platform=self.name)
        for module in self.modules:
            with telemetry.span(
                "pipeline_stage_seconds", platform=self.name, stage=module.name
            ):
                module.process(batch, ops)


class InMemoryPipeline(SwitchPipeline):
    """No switch at all -- the in-memory benchmark setting of Figure 13a."""

    name = "in-memory"

    def forward_batch(self, batch: Batch, ops: OpCounter) -> None:
        ops.packet(len(batch))
