"""Packet and flow-key representations.

The paper keys flows by the 5-tuple (src IP, dst IP, src port, dst port,
protocol) and hashes it with xxHash (Section 6/7).  :class:`FiveTuple`
carries the structured form; :meth:`FiveTuple.flow_key` folds it to the
64-bit integer key the sketches consume, via xxhash32 over the packed
13-byte header exactly like the C implementation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import NamedTuple

from repro.hashing.xxhash import xxhash32


class FiveTuple(NamedTuple):
    """An IPv4 5-tuple flow identifier."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def pack(self) -> bytes:
        """The canonical 13-byte wire representation."""
        return struct.pack(
            "<IIHHB",
            self.src_ip & 0xFFFFFFFF,
            self.dst_ip & 0xFFFFFFFF,
            self.src_port & 0xFFFF,
            self.dst_port & 0xFFFF,
            self.protocol & 0xFF,
        )

    def flow_key(self, seed: int = 0) -> int:
        """Fold to a 64-bit sketch key: two xxhash32 passes, concatenated.

        Two independent seeds give 64 bits of key material so distinct
        5-tuples collide with probability ~2**-64 rather than ~2**-32.
        """
        packed = self.pack()
        low = xxhash32(packed, seed)
        high = xxhash32(packed, seed ^ 0x9E3779B9)
        return (high << 32) | low

    @classmethod
    def from_strings(
        cls, src: str, dst: str, src_port: int, dst_port: int, protocol: int = 6
    ) -> "FiveTuple":
        """Build from dotted-quad strings (convenience for examples)."""
        return cls(ip_to_int(src), ip_to_int(dst), src_port, dst_port, protocol)


def ip_to_int(dotted: str) -> int:
    """Parse a dotted-quad IPv4 string to a 32-bit integer."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError("expected dotted quad, got %r" % (dotted,))
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("octet out of range in %r" % (dotted,))
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad string."""
    return "%d.%d.%d.%d" % (
        (value >> 24) & 0xFF,
        (value >> 16) & 0xFF,
        (value >> 8) & 0xFF,
        value & 0xFF,
    )


@dataclass
class Packet:
    """A single packet as the data plane sees it."""

    key: int
    size: int = 64
    timestamp: float = 0.0
