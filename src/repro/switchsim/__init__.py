"""Software-switch simulation substrate.

The paper's testbed (OVS-DPDK / FD.io-VPP / BESS on a Xeon E5-2620 v4
with 40 GbE XL710 NICs) is reproduced as a discrete simulator:

* :mod:`repro.switchsim.packet` -- five-tuples and flow-key folding.
* :mod:`repro.switchsim.pipeline` -- platform forwarding models (OVS's
  EMC/classifier three-tier lookup, VPP's graph nodes, BESS modules,
  raw DPDK, and an in-memory null pipeline).
* :mod:`repro.switchsim.costmodel` -- the calibrated cycle cost model +
  LLC residency model that turns operation counts into Mpps/Gbps.
* :mod:`repro.switchsim.nic` -- NIC delivery limits (XL710 small-packet
  ceiling).
* :mod:`repro.switchsim.daemon` -- AIO vs separate-thread measurement
  integration.
* :mod:`repro.switchsim.simulator` -- end-to-end runs producing the
  throughput / CPU-share / hotspot numbers of the evaluation figures.
"""

from repro.switchsim.packet import FiveTuple, Packet, ip_to_int, int_to_ip
from repro.switchsim.costmodel import (
    CycleCosts,
    DEFAULT_COSTS,
    CycleBreakdown,
    CostModel,
)
from repro.switchsim.pipeline import (
    SwitchPipeline,
    DPDKForwarder,
    OVSDPDKPipeline,
    TupleSpaceClassifier,
    VPPPipeline,
    GraphNode,
    EthernetInputNode,
    IP4InputNode,
    IP4LookupNode,
    IP4RewriteNode,
    MeasurementNode,
    BESSPipeline,
    BESSModule,
    PortIncModule,
    L2ForwardModule,
    PortOutModule,
    SketchModule,
    InMemoryPipeline,
)
from repro.switchsim.nic import NICModel, XL710_40G, BCM5720_1G, GENERIC_10G, UNLIMITED
from repro.switchsim.daemon import IntegrationMode, MeasurementDaemon
from repro.switchsim.simulator import SwitchSimulator, SimulationResult
from repro.switchsim.multicore import MultiCoreSimulator, MultiCoreResult

__all__ = [
    "FiveTuple",
    "Packet",
    "ip_to_int",
    "int_to_ip",
    "CycleCosts",
    "DEFAULT_COSTS",
    "CycleBreakdown",
    "CostModel",
    "SwitchPipeline",
    "DPDKForwarder",
    "OVSDPDKPipeline",
    "TupleSpaceClassifier",
    "VPPPipeline",
    "GraphNode",
    "EthernetInputNode",
    "IP4InputNode",
    "IP4LookupNode",
    "IP4RewriteNode",
    "MeasurementNode",
    "BESSPipeline",
    "BESSModule",
    "PortIncModule",
    "L2ForwardModule",
    "PortOutModule",
    "SketchModule",
    "InMemoryPipeline",
    "NICModel",
    "XL710_40G",
    "BCM5720_1G",
    "GENERIC_10G",
    "UNLIMITED",
    "IntegrationMode",
    "MeasurementDaemon",
    "SwitchSimulator",
    "SimulationResult",
    "MultiCoreSimulator",
    "MultiCoreResult",
]
