"""Flat-index scatter-add kernels.

``np.add.at`` is the textbook way to apply duplicate-index increments,
but its inner loop dispatches per element and runs 10-30x slower than a
dense ``np.bincount`` accumulation.  The kernels here route every batch
counter update through one *flat* scatter over the ``(depth * width,)``
view of the counter grid, choosing ``bincount`` when the update set is
dense enough to amortise the full-size accumulator and falling back to
``np.add.at`` (still single-call, still flat) for sparse ones.
"""

from __future__ import annotations

import numpy as np

#: Use ``bincount`` when there is at least one update per this many
#: counters; below that the O(depth*width) accumulator pass costs more
#: than ``np.add.at``'s per-element loop saves.
_BINCOUNT_DENSITY = 16


def scatter_add_flat(flat: "np.ndarray", indices: "np.ndarray", values=None) -> None:
    """``flat[indices] += values`` with duplicate indices honoured.

    ``values=None`` means unit increments; the dense path then uses the
    (faster) weightless ``bincount``.
    """
    if indices.size == 0:
        return
    if indices.size * _BINCOUNT_DENSITY >= flat.size:
        flat += np.bincount(indices, weights=values, minlength=flat.size)
    elif values is None:
        np.add.at(flat, indices, 1.0)
    else:
        np.add.at(flat, indices, values)


def shared_counter_banks(
    buffer, workers: int, depth: int, width: int
) -> "np.ndarray":
    """View a shared-memory buffer as per-worker counter banks.

    Returns a ``(workers, depth, width)`` float64 array over ``buffer``
    (any writable buffer protocol object -- in practice a
    ``multiprocessing.shared_memory.SharedMemory.buf``).  Each
    ``banks[w]`` slice is C-contiguous, which is what lets a worker
    rebind ``sketch.counters = banks[w]`` and keep the fast flat-scatter
    path of :func:`scatter_add_flat`: every batch update then lands
    directly in shared memory with no copies and no locks, because each
    worker owns its bank exclusively (merge is ``banks.sum(axis=0)``).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1, got %d" % workers)
    if depth < 1 or width < 1:
        raise ValueError(
            "depth and width must be >= 1, got %dx%d" % (depth, width)
        )
    needed = workers * depth * width * 8
    banks = np.frombuffer(buffer, dtype=np.float64, count=workers * depth * width)
    if banks.nbytes < needed:
        raise ValueError(
            "buffer holds %d bytes, %d banks of %dx%d float64 need %d"
            % (banks.nbytes, workers, depth, width, needed)
        )
    return banks.reshape(workers, depth, width)


def scatter_add_2d(
    counters: "np.ndarray",
    rows: "np.ndarray",
    buckets: "np.ndarray",
    values=None,
) -> None:
    """``counters[rows, buckets] += values`` as one fused flat scatter.

    ``rows``/``buckets``/``values`` may be any broadcast-compatible
    shapes (``values=None`` means unit increments); they are raveled
    together.  Requires (and the sketches guarantee) a C-contiguous
    counter grid; a non-contiguous grid falls back to the 2-D
    ``np.add.at`` path.
    """
    if not counters.flags.c_contiguous:
        np.add.at(counters, (rows, buckets), 1.0 if values is None else values)
        return
    width = counters.shape[1]
    indices = np.asarray(rows, dtype=np.int64) * width + buckets
    if values is not None:
        values = np.broadcast_to(values, indices.shape).ravel()
    scatter_add_flat(counters.reshape(-1), indices.ravel(), values)
