"""Consolidated vectorised kernels for the batch hot paths.

Every batch update/query in the repository routes through this layer
(ROADMAP north-star: "runs as fast as the hardware allows"):

* :mod:`repro.kernels.mersenne` -- native ``uint64`` Mersenne-61
  polynomial hashing (replaces the object-dtype big-int path);
* :mod:`repro.kernels.scatter` -- flat-index ``bincount`` scatter-adds
  (replaces per-row ``np.add.at`` loops);
* :mod:`repro.kernels.rowkernel` -- :class:`SketchKernel`, the fused
  whole-sketch update/query engine (replaces per-row Python loops).

``benchmarks/bench_kernels.py`` measures the kernels against the seed
implementations; ``scripts/check_perf.py`` guards the recorded speedups.
"""

from repro.kernels.mersenne import (
    fold_mersenne,
    kwise_raw_batch,
    mulmod_mersenne,
    reduce_keys_mersenne,
)
from repro.kernels.rowkernel import SketchKernel
from repro.kernels.scatter import scatter_add_2d, scatter_add_flat

__all__ = [
    "SketchKernel",
    "fold_mersenne",
    "kwise_raw_batch",
    "mulmod_mersenne",
    "reduce_keys_mersenne",
    "scatter_add_2d",
    "scatter_add_flat",
]
