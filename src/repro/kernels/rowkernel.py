"""Fused whole-sketch hashing, update and query kernels.

A :class:`CanonicalSketch` owns ``depth`` independent (bucket hash, sign
hash) pairs.  The seed implementation drove them one row at a time from
Python (``for row in range(depth): row_hashes[row].batch(...)``), plus a
``np.add.at`` scatter per row.  :class:`SketchKernel` collapses all of
that into single NumPy expressions:

* the per-row hash constants are gathered once into ``(depth, 1)``
  arrays, so hashing a batch against *every* row is one broadcast
  multiply -- the Python analogue of the paper's AVX lanes (Idea D);
* counter updates become one flat-index scatter-add over the
  ``(depth * width,)`` view (``row * width + bucket``), via
  :func:`repro.kernels.scatter.scatter_add_2d`;
* batch point queries gather a ``(depth, n)`` estimate matrix in one
  fancy-index read, ready for a vectorised ``combine_rows``.

Sketches built from the multiply-shift or xxhash row families use the
closed-form fused path; any other family falls back to a per-row
``batch()`` loop (still one scatter), so custom families keep working.
All paths are bit-exact with the scalar ``row_bucket``/``row_sign``
evaluation -- asserted in ``tests/test_kernels.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.scatter import scatter_add_2d, scatter_add_flat

_SHIFT_32 = np.uint64(32)
_SHIFT_63 = np.uint64(63)


class SketchKernel:
    """Vectorised update/query engine bound to one canonical sketch.

    The kernel caches per-row hash constants (immutable after sketch
    construction) but always reads ``sketch.counters`` at call time, so
    ``reset``/``merge``/``difference`` stay transparent.
    """

    def __init__(self, sketch) -> None:
        from repro.hashing.families import MultiplyShiftHash, MultiplyShiftSign
        from repro.hashing.rowhash import XXHashRowHash, XXHashRowSign

        self.sketch = sketch
        self.depth = sketch.depth
        self.width = sketch.width
        self.signed = sketch.signed
        self._rows = np.arange(self.depth, dtype=np.int64)[:, None]
        self._row_offsets = self._rows * np.int64(self.width)
        self._width_u64 = np.uint64(self.width)
        # Reused (depth, n) work buffers -- writing a multi-megabyte
        # matrix through a fresh allocation costs ~2.5x the arithmetic
        # (page-fault churn), and batch sizes repeat, so the kernel keeps
        # its scratch space warm.  See the matrix-method docstrings for
        # the resulting buffer-reuse contract.
        self._buffers = {}

        hashes = sketch.row_hashes
        if all(type(h) is MultiplyShiftHash for h in hashes):
            self._hash_mode = "ms"
            self._ha = np.array([h._a for h in hashes], dtype=np.uint64)[:, None]
            self._hb = np.array([h._b for h in hashes], dtype=np.uint64)[:, None]
            # Scalar (0-d) constants for the matrix paths: NumPy's SIMD
            # inner loops only engage for scalar operands -- a stride-0
            # broadcast of the (depth, 1) arrays runs ~3x slower.
            self._ha_scalars = [h._a_u64 for h in hashes]
            self._hb_scalars = [h._b_u64 for h in hashes]
        elif all(type(h) is XXHashRowHash for h in hashes):
            self._hash_mode = "xx"
            self._hseeds = np.array([h.seed for h in hashes], dtype=np.uint64)[:, None]
        else:
            self._hash_mode = "generic"

        signs = sketch.row_signs
        if not self.signed:
            self._sign_mode = "one"
        elif all(type(g) is MultiplyShiftSign and not g.constant_one for g in signs):
            self._sign_mode = "ms"
            self._sa = np.array([g._hash._a for g in signs], dtype=np.uint64)[:, None]
            self._sb = np.array([g._hash._b for g in signs], dtype=np.uint64)[:, None]
            self._sa_scalars = [g._hash._a_u64 for g in signs]
            self._sb_scalars = [g._hash._b_u64 for g in signs]
        elif all(type(g) is XXHashRowSign and not g.constant_one for g in signs):
            self._sign_mode = "xx"
            self._sseeds = np.array([g.seed for g in signs], dtype=np.uint64)[:, None]
        else:
            self._sign_mode = "generic"

    # -- key preparation ---------------------------------------------------

    @staticmethod
    def _as_u64(keys: "np.ndarray") -> "np.ndarray":
        """64-bit wrap of the key array (matches scalar ``key & MASK64``)."""
        return np.asarray(keys).astype(np.uint64, copy=False)

    def _scratch(self, name: str, shape, dtype) -> "np.ndarray":
        """A cached work buffer, reallocated only when the shape changes."""
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    # -- bucket hashing ----------------------------------------------------

    def bucket_matrix(self, keys: "np.ndarray") -> "np.ndarray":
        """``(depth, n)`` bucket indices: row ``r`` holds ``h_r(keys)``.

        The returned array is a kernel-owned scratch buffer on the fast
        paths: it is overwritten by the next matrix call on this kernel,
        so copy it if it must outlive the call.
        """
        if self._hash_mode == "ms":
            return self._ms_bucket_matrix(self._as_u64(keys))
        if self._hash_mode == "xx":
            return self._xx_buckets(self._hseeds, self._as_u64(keys))
        return np.stack([h.batch(keys) for h in self.sketch.row_hashes])

    def slot_buckets(self, rows: "np.ndarray", keys: "np.ndarray") -> "np.ndarray":
        """Per-slot buckets: element ``i`` is ``h_{rows[i]}(keys[i])``."""
        if self._hash_mode == "ms":
            return self._ms_buckets(
                self._ha.ravel()[rows], self._hb.ravel()[rows], self._as_u64(keys)
            )
        if self._hash_mode == "xx":
            return self._xx_buckets(self._hseeds.ravel()[rows], self._as_u64(keys))
        return self._generic_slots(self.sketch.row_hashes, rows, keys)

    def _ms_buckets(self, a, b, ku: "np.ndarray") -> "np.ndarray":
        if self.width == 1:
            return np.zeros(np.broadcast_shapes(a.shape, ku.shape), dtype=np.int64)
        mixed = ku * a + b
        return (((mixed >> _SHIFT_32) * self._width_u64) >> _SHIFT_32).astype(np.int64)

    def _ms_bucket_matrix(self, ku: "np.ndarray") -> "np.ndarray":
        shape = (self.depth, ku.shape[0])
        if self.width == 1:
            return np.zeros(shape, dtype=np.int64)
        work = self._scratch("bucket_work", shape, np.uint64)
        for r in range(self.depth):
            row = work[r]
            np.multiply(ku, self._ha_scalars[r], out=row)
            row += self._hb_scalars[r]
            row >>= _SHIFT_32
            row *= self._width_u64
            row >>= _SHIFT_32
        out = self._scratch("bucket_out", shape, np.int64)
        np.copyto(out, work, casting="unsafe")
        return out

    def _xx_buckets(self, seeds, ku: "np.ndarray") -> "np.ndarray":
        from repro.hashing.xxhash import xxhash32_batch

        hashes = xxhash32_batch(ku, seeds).astype(np.uint64)
        return ((hashes * self._width_u64) >> _SHIFT_32).astype(np.int64)

    def _generic_slots(self, families, rows, keys) -> "np.ndarray":
        keys = np.asarray(keys)
        out = np.empty(len(keys), dtype=np.int64)
        for row in range(self.depth):
            mask = rows == row
            if np.any(mask):
                out[mask] = families[row].batch(keys[mask])
        return out

    # -- sign hashing ------------------------------------------------------

    def sign_matrix(self, keys: "np.ndarray") -> Optional["np.ndarray"]:
        """``(depth, n)`` float ±1 signs, or ``None`` for unsigned sketches.

        Like :meth:`bucket_matrix`, the result is a reused kernel-owned
        buffer on the fast paths.
        """
        if self._sign_mode == "one":
            return None
        if self._sign_mode == "ms":
            return self._ms_sign_matrix(self._as_u64(keys))
        if self._sign_mode == "xx":
            return self._xx_signs(self._sseeds, self._as_u64(keys))
        return np.stack(
            [g.batch(keys) for g in self.sketch.row_signs]
        ).astype(np.float64)

    def slot_signs(self, rows: "np.ndarray", keys: "np.ndarray") -> Optional["np.ndarray"]:
        """Per-slot signs: element ``i`` is ``g_{rows[i]}(keys[i])``."""
        if self._sign_mode == "one":
            return None
        if self._sign_mode == "ms":
            return self._ms_signs(
                self._sa.ravel()[rows], self._sb.ravel()[rows], self._as_u64(keys)
            )
        if self._sign_mode == "xx":
            return self._xx_signs(self._sseeds.ravel()[rows], self._as_u64(keys))
        return self._generic_slots(self.sketch.row_signs, rows, keys).astype(np.float64)

    @staticmethod
    def _ms_signs(a, b, ku: "np.ndarray") -> "np.ndarray":
        # MultiplyShiftSign maps through a width-2 multiply-shift:
        # bucket 1 (sign +1) iff bit 63 of a*key + b is set.
        bit = ((ku * a + b) >> _SHIFT_63).astype(np.int64)
        return (bit * 2 - 1).astype(np.float64)

    def _ms_sign_matrix(self, ku: "np.ndarray") -> "np.ndarray":
        shape = (self.depth, ku.shape[0])
        bits = self._scratch("sign_work", shape, np.uint64)
        for r in range(self.depth):
            row = bits[r]
            np.multiply(ku, self._sa_scalars[r], out=row)
            row += self._sb_scalars[r]
            row >>= _SHIFT_63
        signs = self._scratch("sign_out", shape, np.float64)
        np.copyto(signs, bits, casting="unsafe")
        signs *= 2.0
        signs -= 1.0
        return signs

    @staticmethod
    def _xx_signs(seeds, ku: "np.ndarray") -> "np.ndarray":
        from repro.hashing.xxhash import xxhash32_batch

        bit = (xxhash32_batch(ku, seeds) & np.uint32(1)).astype(np.int64)
        return (bit * 2 - 1).astype(np.float64)

    # -- fused update / query ----------------------------------------------

    def update(self, keys: "np.ndarray", weights: Optional["np.ndarray"] = None) -> None:
        """Apply one vanilla all-rows update per key, in one scatter."""
        buckets = self.bucket_matrix(keys)
        signs = self.sign_matrix(keys)
        if weights is None:
            values = signs  # None for unsigned: unit increments
        elif signs is not None:
            values = self._scratch("values", signs.shape, np.float64)
            np.multiply(signs, np.asarray(weights, dtype=np.float64), out=values)
        else:
            values = np.broadcast_to(
                np.asarray(weights, dtype=np.float64), buckets.shape
            )
        counters = self.sketch.counters
        if not counters.flags.c_contiguous:
            scatter_add_2d(counters, self._rows, buckets, values)
            return
        # Flat-index scatter with a scratch index buffer (a fresh
        # multi-megabyte temporary per batch costs more in page faults
        # than the scatter itself).
        indices = self._scratch("flat_idx", buckets.shape, np.int64)
        np.add(buckets, self._row_offsets, out=indices)
        scatter_add_flat(
            counters.reshape(-1),
            indices.ravel(),
            None if values is None else values.ravel(),
        )

    def slot_update(
        self,
        rows: "np.ndarray",
        keys: "np.ndarray",
        values: "np.ndarray",
        profiler=None,
    ) -> None:
        """Apply per-slot updates ``C[rows[i]][h(keys[i])] += values[i]``.

        This is NitroSketch's sampled path: ``rows`` carries the row of
        each geometrically sampled slot and ``values`` the
        ``p**-1``-scaled increments.  ``profiler`` (a
        :class:`~repro.telemetry.profile.StageProfiler` on a sampled
        batch) splits the timing into ``row_hash`` and ``scatter``.
        """
        if profiler is None or not profiler.active:
            buckets = self.slot_buckets(rows, keys)
            signs = self.slot_signs(rows, keys)
            if signs is not None:
                values = values * signs
            scatter_add_2d(self.sketch.counters, rows, buckets, values)
            return
        with profiler.stage("row_hash"):
            buckets = self.slot_buckets(rows, keys)
            signs = self.slot_signs(rows, keys)
            if signs is not None:
                values = values * signs
        with profiler.stage("scatter"):
            scatter_add_2d(self.sketch.counters, rows, buckets, values)

    def estimate_matrix(self, keys: "np.ndarray") -> "np.ndarray":
        """``(depth, n)`` per-row estimates ``C[r][h_r(key)] * g_r(key)``."""
        buckets = self.bucket_matrix(keys)
        values = self.sketch.counters[self._rows, buckets]
        signs = self.sign_matrix(keys)
        if signs is not None:
            values = values * signs
        return values
