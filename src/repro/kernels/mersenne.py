"""Native ``uint64`` Mersenne-61 polynomial evaluation.

The k-wise independent families in :mod:`repro.hashing.families` evaluate
a degree-(k-1) polynomial over the field ``GF(2**61 - 1)``.  The scalar
path reduces with :func:`repro.hashing.families._mod_mersenne`'s
shift-add folding; the original batch path used object-dtype NumPy
arrays of Python big ints, which runs at interpreter speed (one PyLong
multiply per element per coefficient).

This module is the vectorised replacement: the 122-bit product of two
field elements is computed from 32-bit halves so every intermediate fits
in ``uint64``, then reduced with the congruences

    2**64 = 8   (mod 2**61 - 1)
    2**61 = 1   (mod 2**61 - 1)

For ``a, b < P = 2**61 - 1`` write ``a = a_hi * 2**32 + a_lo`` (and the
same for ``b``), so ``a*b = h*2**64 + m*2**32 + l`` with

    l = a_lo * b_lo           < 2**64
    m = a_hi * b_lo + a_lo * b_hi   < 2**62   (a_hi < 2**29)
    h = a_hi * b_hi           < 2**58

Splitting ``m = m_hi * 2**29 + m_lo`` turns ``m * 2**32`` into
``m_hi * 2**61 + m_lo * 2**32 = m_hi + (m_lo << 32) (mod P)``, and every
term of the reduced sum is below ``2**61``, so the Horner accumulator
never overflows 64 bits.  The final double-fold plus conditional
subtract is literally ``_mod_mersenne``, which makes the kernel
bit-exact with the scalar path (asserted in ``tests/test_kernels.py``).
"""

from __future__ import annotations

import numpy as np

#: The Mersenne prime 2**61 - 1 as a NumPy scalar (module-level so the
#: hot loops never re-box Python ints).
P61 = np.uint64((1 << 61) - 1)

_U32_MASK = np.uint64(0xFFFFFFFF)
_U29_MASK = np.uint64((1 << 29) - 1)
_SHIFT_3 = np.uint64(3)
_SHIFT_29 = np.uint64(29)
_SHIFT_32 = np.uint64(32)
_SHIFT_61 = np.uint64(61)

MERSENNE_PRIME_61 = int(P61)


def fold_mersenne(values: "np.ndarray") -> "np.ndarray":
    """Reduce a ``uint64`` array modulo ``2**61 - 1`` (canonical residue).

    Mirrors ``_mod_mersenne``: two shift-add folds then one conditional
    subtract.  Exact for any ``uint64`` input.
    """
    values = (values & P61) + (values >> _SHIFT_61)
    values = (values & P61) + (values >> _SHIFT_61)
    return np.where(values >= P61, values - P61, values)


def mulmod_mersenne(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    """``(a * b) mod (2**61 - 1)`` for arrays of field elements ``< P``.

    Returns the *unreduced* congruent sum (``< 5 * 2**61``), leaving
    headroom to add one more field element before folding -- exactly what
    a Horner step needs.  Callers must finish with :func:`fold_mersenne`.
    """
    a_lo = a & _U32_MASK
    a_hi = a >> _SHIFT_32
    b_lo = b & _U32_MASK
    b_hi = b >> _SHIFT_32
    low = a_lo * b_lo
    mid = a_hi * b_lo + a_lo * b_hi
    high = a_hi * b_hi
    return (
        (low & P61)
        + (low >> _SHIFT_61)
        + ((mid & _U29_MASK) << _SHIFT_32)
        + (mid >> _SHIFT_29)
        + (high << _SHIFT_3)
    )


def kwise_raw_batch(keys: "np.ndarray", coeffs: "np.ndarray") -> "np.ndarray":
    """Horner-evaluate the k-wise polynomial over a key batch.

    Parameters
    ----------
    keys:
        ``uint64`` array of field elements (already reduced ``mod P``).
    coeffs:
        ``uint64`` array of the ``k`` coefficients in *highest-degree
        first* order (i.e. ``KWiseHash._coeffs`` reversed), each ``< P``.

    Returns the canonical residues -- identical to ``KWiseHash.raw`` per
    element.  Pure ``uint64`` arithmetic: no object-dtype allocation.

    The loop keeps the accumulator only *partially* reduced (one fold,
    ``< 2**61 + 8``) and defers the canonical double-fold to the end;
    with ``a < 2**61 + 8`` every term of the split-multiply sum stays
    below ``2**63``, so nothing overflows and the final residue is
    unchanged.  In-place ops keep the per-coefficient cost at ~15 array
    passes instead of mulmod/fold's ~20.
    """
    # Horner starts from the leading coefficient -- the first "multiply
    # zero accumulator" round of the scalar loop is a no-op, so skip it.
    acc = np.full(keys.shape, coeffs[0], dtype=np.uint64)
    if len(coeffs) > 1:
        b_lo = keys & _U32_MASK
        b_hi = keys >> _SHIFT_32
        for coeff in coeffs[1:]:
            a_lo = acc & _U32_MASK
            a_hi = acc >> _SHIFT_32
            low = a_lo * b_lo
            mid = a_hi * b_lo
            mid += a_lo * b_hi
            a_hi *= b_hi  # now the `high` partial product
            acc = low & P61
            acc += low >> _SHIFT_61
            acc += (mid & _U29_MASK) << _SHIFT_32
            acc += mid >> _SHIFT_29
            acc += a_hi << _SHIFT_3
            acc += coeff
            # Single fold: enough headroom for the next iteration.
            acc = (acc & P61) + (acc >> _SHIFT_61)
    return fold_mersenne(acc)


def reduce_keys_mersenne(keys: "np.ndarray") -> "np.ndarray":
    """Map an arbitrary integer key array to ``uint64`` residues ``mod P``.

    Matches the scalar path's Python ``key % P`` semantics for signed,
    unsigned, and object (big-int) inputs alike, so negative keys hash
    identically to ``KWiseHash.__call__``.
    """
    ks = np.asarray(keys)
    if ks.dtype == np.uint64:
        # Shift-add folding is exact for any value < 2**122, so it
        # replaces the (slow) 64-bit hardware division entirely.
        return fold_mersenne(ks)
    # Signed/object dtypes: Python-style mod keeps negatives non-negative
    # and big ints exact; the residue then always fits in uint64.
    return (ks % MERSENNE_PRIME_61).astype(np.uint64)
