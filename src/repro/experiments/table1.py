"""Table 1: summary of existing solutions on software platforms.

The paper's table rates each prior system on OVS packet rate,
robustness, and generality.  The qualitative columns are properties of
the algorithms (documented in each baseline's module); the packet rate
column we *measure* with the cost model on the same min-sized workload.
"""

from __future__ import annotations

from repro.baselines import (
    ElasticSketch,
    HashTableMonitor,
    RandomizedHHH,
    SketchVisor,
)
from repro.experiments.common import nitro_monitor, scaled, simulate
from repro.experiments.report import ExperimentResult, print_result
from repro.switchsim import OVSDPDKPipeline
from repro.traffic import min_sized_stress


def run(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    n_packets = scaled(1_000_000, scale)
    trace = min_sized_stress(n_packets, n_flows=scaled(100_000, scale, 1000), seed=seed)
    result = ExperimentResult(
        name="Table 1",
        description="Existing solutions on OVS-DPDK: measured packet rate + "
        "robustness/generality (qualitative, from each algorithm's guarantees).",
    )
    systems = [
        ("SketchVisor", SketchVisor(fast_entries=900, fast_fraction=1.0, seed=seed), "no", "yes"),
        ("R-HHH", RandomizedHHH(counters_per_level=512, seed=seed), "yes", "no"),
        ("ElasticSketch", ElasticSketch(seed=seed), "no", "partial"),
        ("Small-HT", HashTableMonitor(), "no", "yes"),
        ("NitroSketch", nitro_monitor("cs", seed=seed), "yes", "yes"),
    ]
    for label, monitor, robust, general in systems:
        sim = simulate(OVSDPDKPipeline(), monitor, trace, name=label)
        result.rows.append(
            {
                "solution": label,
                "ovs_packet_rate_mpps": sim.capacity_mpps,
                "robustness": robust,
                "generality": general,
            }
        )
    result.notes.append(
        "Paper anchors: SketchVisor 1.7 Mpps (with its normal path engaged), "
        "R-HHH 14 Mpps, ElasticSketch 5 Mpps, Small-HT 13 Mpps."
    )
    result.notes.append(
        "Robustness = provable worst-case accuracy on arbitrary workloads; "
        "generality = supports many measurement tasks (Section 2)."
    )
    return result


if __name__ == "__main__":
    print_result(run())
