"""Figure 15: heavy-hitter recall, NetFlow vs NitroSketch, 3 traces.

Recall of the top-100 heavy hitters ("the recall rates of 100 HHs",
Section 7.4) across epoch sizes for NetFlow at sampling rates 0.001 /
0.002 / 0.01 vs NitroSketch+UnivMon with p = 0.01.

Paper shape: NetFlow's recall is poor on the heavy-tailed CAIDA and
DDoS traces (sampling misses borderline heavy flows entirely) and
relatively good on the skewed datacenter trace; NitroSketch's recall is
high everywhere because every flow has a chance to hit the counters on
every packet.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines import NetFlowMonitor
from repro.experiments.common import nitro_monitor, scaled
from repro.experiments.report import ExperimentResult, print_result
from repro.metrics.accuracy import recall, top_k_truth
from repro.traffic import caida_like, datacenter_like, ddos_like

EPOCHS = (1_000_000, 4_000_000, 16_000_000, 64_000_000)
HH_THRESHOLD = 0.0005

TRACES: Dict[str, Callable] = {
    "CAIDA": lambda n, seed: caida_like(n, n_flows=max(1000, n // 4), seed=seed),
    "DDoS": lambda n, seed: ddos_like(
        n, n_background_flows=max(1000, n // 8), n_attack_sources=max(1000, n // 16), seed=seed
    ),
    "DC": lambda n, seed: datacenter_like(n, n_flows=max(500, n // 40), seed=seed),
}


def run(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 15",
        description="Heavy-hitter recall (%) across epochs: NetFlow at "
        "0.001/0.002/0.01 vs NitroSketch+UnivMon p=0.01.",
    )
    for trace_name, make_trace in TRACES.items():
        for epoch in EPOCHS:
            epoch_packets = scaled(epoch, scale)
            trace = make_trace(epoch_packets, seed + epoch % 79)
            counts = trace.counts()
            truth = top_k_truth(counts, 100)
            nitro = nitro_monitor("univmon", seed=seed, k=200)
            nitro.update_batch(trace.keys)
            found = {key for key, _ in nitro.heavy_hitters(0.0)[:100]}
            result.rows.append(
                {
                    "trace": trace_name,
                    "epoch_packets": epoch,
                    "system": "NitroSketch (0.01)",
                    "recall_pct": 100 * recall(found, truth),
                }
            )
            for rate in (0.01, 0.002, 0.001):
                netflow = NetFlowMonitor(rate, seed=seed)
                netflow.update_batch(trace.keys)
                found = {key for key, _ in netflow.heavy_hitters(0.0)[:100]}
                result.rows.append(
                    {
                        "trace": trace_name,
                        "epoch_packets": epoch,
                        "system": "NetFlow (%g)" % rate,
                        "recall_pct": 100 * recall(found, truth),
                    }
                )
    result.notes.append(
        "Paper shape: NetFlow recall low on CAIDA/DDoS (worse at lower "
        "sampling rates), good on the skewed DC trace; NitroSketch high "
        "recall everywhere."
    )
    return result


if __name__ == "__main__":
    print_result(run())
