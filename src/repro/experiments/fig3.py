"""Figure 3: prior approaches are not performant or robust to many flows.

(a) Throughput vs number of flows on single-core OVS-DPDK: the exact
hash table starts fastest but collapses once its working set leaves the
LLC (< 10 Mpps past ~20M flows in the paper); sketches stay flat because
their memory is fixed.

(b) ElasticSketch (2.7 MB) accuracy vs number of flows on a
malware-style trace: entropy and distinct-flow errors blow past 100%
once the light part's linear counting saturates.

The flow axis is scaled: ElasticSketch's memory is shrunk by the same
factor as the flow counts so the saturation crossover appears at the
same *ratio* the paper shows.
"""

from __future__ import annotations

from repro.baselines import ElasticSketch, HashTableMonitor
from repro.experiments.common import scaled, simulate
from repro.experiments.report import ExperimentResult, print_result
from repro.metrics.accuracy import empirical_entropy, relative_error
from repro.sketches import (
    CountMinSketch,
    KArySketch,
    TrackedSketch,
    UnivMon,
)
from repro.switchsim import OVSDPDKPipeline
from repro.traffic import malware_like, min_sized_stress

#: Flow counts of Figure 3a (paper axis: 1K .. 100M).
FIG3A_FLOWS = (1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000)

#: Flow counts of Figure 3b (paper axis: 1M .. 35M).
FIG3B_FLOWS = (1_000_000, 5_000_000, 10_000_000, 20_000_000, 35_000_000)


def _error_guarantee_monitor(kind: str, seed: int):
    """Monitors sized by error guarantee, as the figure legend states."""
    if kind == "hashtable":
        return HashTableMonitor()
    if kind == "univmon_5pct":
        # 5% L2 target per level.
        return UnivMon(levels=10, depth=5, widths=1200, k=100, seed=seed)
    if kind == "countmin_1pct":
        return TrackedSketch(CountMinSketch.from_error_bounds(0.01, 0.05, seed), k=100)
    if kind == "kary_5pct":
        return TrackedSketch(KArySketch(5, 2048, seed), k=100)
    raise ValueError(kind)


def run_fig3a(scale: float = 0.001, seed: int = 0) -> ExperimentResult:
    """Throughput vs #flows (Figure 3a)."""
    result = ExperimentResult(
        name="Figure 3a",
        description="Throughput (Mpps) vs number of flows, 1-core OVS-DPDK.",
    )
    n_packets_base = 2_000_000
    for flows in FIG3A_FLOWS:
        n_flows = scaled(flows, scale)
        n_packets = scaled(n_packets_base, scale)
        # The packet stream must touch ~all flows for the working set to
        # matter; top up the packet count when flows dominate.
        n_packets = max(n_packets, min(2 * n_flows, 4_000_000))
        trace = min_sized_stress(n_packets, n_flows=n_flows, skew=0.5, seed=seed)
        for kind, label in (
            ("hashtable", "Hashtable"),
            ("univmon_5pct", "UnivMon (5%)"),
            ("countmin_1pct", "CountMin (1%)"),
            ("kary_5pct", "K-ary Sketch (5%)"),
        ):
            monitor = _error_guarantee_monitor(kind, seed)
            sim = simulate(OVSDPDKPipeline(), monitor, trace, name=label)
            # The hashtable's working set is its real (unscaled) size: the
            # scaled run observes flows/packet ratios, and we account the
            # full-flow-count footprint for the LLC model.
            if kind == "hashtable":
                from repro.baselines.hashtable import ENTRY_BYTES
                from repro.switchsim.costmodel import CostModel

                model = CostModel()
                full_working_set = flows * ENTRY_BYTES
                # Per packet the table does one lookup and one counter
                # write; at the unscaled flow count both pay the modelled
                # miss rate of the full working set.
                miss_penalty = 2 * model.miss_rate(full_working_set) * model.costs.dram_penalty
                per_packet = (
                    sim.switch_cycles_per_packet
                    + sim.sketch_cycles_per_packet
                    + miss_penalty
                )
                mpps = model.costs.clock_ghz * 1e9 / per_packet / 1e6
            else:
                mpps = sim.capacity_mpps
            result.rows.append(
                {
                    "flows": flows,
                    "system": label,
                    "packet_rate_mpps": mpps,
                }
            )
    result.notes.append(
        "Paper shape: hashtable fastest at few flows, < 10 Mpps by ~20M flows; "
        "sketches flat (UnivMon ~2, CountMin ~5, K-ary ~3-4 Mpps)."
    )
    return result


def run_fig3b(scale: float = 0.001, seed: int = 0) -> ExperimentResult:
    """ElasticSketch accuracy vs #flows (Figure 3b)."""
    result = ExperimentResult(
        name="Figure 3b",
        description="ElasticSketch (2.7MB-equivalent) relative error vs #flows, "
        "malware-style trace.",
    )
    memory = int(2_700_000 * scale)
    for flows in FIG3B_FLOWS:
        n_flows = scaled(flows, scale)
        n_packets = max(2 * n_flows, scaled(5_000_000, scale))
        trace = malware_like(n_packets, n_flows=n_flows, seed=seed)
        sketch = ElasticSketch.with_memory(memory, seed=seed)
        sketch.update_many(trace.keys.tolist())
        counts = trace.counts()
        entropy_err = relative_error(sketch.entropy_estimate(), empirical_entropy(counts))
        distinct_err = relative_error(sketch.distinct_estimate(), len(counts))
        result.rows.append(
            {
                "flows": flows,
                "entropy_error_pct": 100.0 * entropy_err,
                "distinct_error_pct": 100.0 * min(distinct_err, 10.0),
                "light_saturated": sketch.distinct_estimate() == float("inf"),
            }
        )
    result.notes.append(
        "Paper shape: both errors grow with flows; distinct error exceeds 100% "
        "when linear counting overflows (saturated light part)."
    )
    return result


def run(scale: float = 0.001, seed: int = 0):
    """Run both panels; returns (fig3a, fig3b)."""
    return run_fig3a(scale, seed), run_fig3b(scale, seed)


if __name__ == "__main__":
    for panel in run():
        print_result(panel)
        print()
