"""AlwaysLineRate adaptation under varying load (Idea C, Figure 6).

Not a numbered paper figure, but the behaviour Figure 6 illustrates:
the sampling probability ladder follows the offered packet rate --
large ``p`` when traffic is light (fast convergence), small ``p`` under
bursts (bounded work per time unit).  This experiment drives a
NitroSketch through a load pattern (low -> burst -> low) and records
the chosen probability and the per-epoch work.
"""

from __future__ import annotations

import numpy as np

from repro.core import NitroConfig, NitroMode, NitroSketch
from repro.experiments.report import ExperimentResult, print_result
from repro.metrics.opcount import OpCounter
from repro.sketches import CountSketch
from repro.traffic import zipf_keys

#: (label, packet rate in Mpps, epochs) phases of the load pattern.
LOAD_PATTERN = (
    ("idle", 0.5, 3),
    ("ramp", 5.0, 3),
    ("burst", 40.0, 4),
    ("cooldown", 2.0, 3),
)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Drive the ladder through the load pattern.

    ``scale`` multiplies the per-epoch packet count (base 20k) -- the
    ladder choices depend only on the simulated rate, so any scale shows
    the same probabilities.
    """
    epoch_packets = max(1000, int(20000 * scale))
    # Each simulated batch spans epoch_packets / rate seconds of wall
    # clock.  The controller accumulates sub-epoch batches before
    # evaluating a rate, so size the adaptation epoch to the *shortest*
    # batch (the peak-rate phase): every batch then closes at least one
    # full epoch with its own rate, and a longer epoch would blend
    # rates across consecutive phases.
    peak_mpps = max(rate for _, rate, _ in LOAD_PATTERN)
    epoch_seconds = epoch_packets / (peak_mpps * 1e6)
    config = NitroConfig(
        probability=1.0,
        mode=NitroMode.ALWAYS_LINE_RATE,
        adaptation_epoch_seconds=epoch_seconds,
        seed=seed,
    )
    nitro = NitroSketch(CountSketch(5, 65536, seed), config)
    ops = OpCounter()
    nitro.ops = ops

    result = ExperimentResult(
        name="AlwaysLineRate adaptation",
        description="Sampling probability and per-packet work as the "
        "offered rate varies (Idea C / Figure 6 behaviour).",
    )
    rng = np.random.default_rng(seed)
    for label, rate_mpps, epochs in LOAD_PATTERN:
        for _ in range(epochs):
            keys = zipf_keys(epoch_packets, 5000, 1.1, rng=rng)
            # The batch spans epoch_packets / rate seconds of wall clock;
            # the controller measures the rate from that duration.
            duration = epoch_packets / (rate_mpps * 1e6)
            before = ops.as_dict()
            nitro.update_batch(keys, duration_seconds=duration)
            after = ops.as_dict()
            updates = after["counter_updates"] - before["counter_updates"]
            result.rows.append(
                {
                    "phase": label,
                    "offered_mpps": rate_mpps,
                    "probability": nitro.probability,
                    "counter_updates_per_packet": updates / epoch_packets,
                }
            )
    result.notes.append(
        "Expected: p = 1 at idle, descending the {1, 1/2, ..., 1/128} ladder "
        "as rate rises (paper: 40 Mpps -> 1/64), recovering afterwards."
    )
    return result


if __name__ == "__main__":
    print_result(run())
