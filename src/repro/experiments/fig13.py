"""Figure 13: head-to-head with SketchVisor and NetFlow/sFlow.

(a) In-memory packet rate: SketchVisor with 20% / 50% / 100% of traffic
in its fast path vs NitroSketch+UnivMon.  Paper: SketchVisor peaks at
6.11 Mpps (100% fast path) while NitroSketch runs at ~83 Mpps.

(b) Memory consumption: sFlow (OVS default) and NetFlow (VPP default)
vs NitroSketch+UnivMon at the same 0.01 sampling rate.  NetFlow keeps a
record per sampled flow, so its memory scales with the trace; the
sketch is fixed-size.
"""

from __future__ import annotations

from repro.baselines import NetFlowMonitor, SFlowMonitor, SketchVisor
from repro.experiments.common import nitro_monitor, scaled, simulate
from repro.experiments.report import ExperimentResult, print_result
from repro.sketches import UnivMon, paper_widths
from repro.switchsim import InMemoryPipeline, UNLIMITED
from repro.traffic import caida_like


def run_fig13a(scale: float = 0.05, seed: int = 0) -> ExperimentResult:
    trace = caida_like(
        scaled(1_000_000, scale), n_flows=scaled(150_000, scale, 1000), seed=seed
    )
    result = ExperimentResult(
        name="Figure 13a",
        description="In-memory packet rate (Mpps): SketchVisor fast-path "
        "fractions vs NitroSketch+UnivMon.",
    )
    for fraction in (0.2, 0.5, 1.0):
        normal = UnivMon(levels=14, depth=5, widths=paper_widths(14), k=100, seed=seed)
        monitor = SketchVisor(
            fast_entries=900, normal_path=normal, fast_fraction=fraction, seed=seed
        )
        sim = simulate(
            InMemoryPipeline(),
            monitor,
            trace,
            name="SketchVisor(%d%%)" % int(100 * fraction),
            offered_gbps=1000.0,
            nic=UNLIMITED,
        )
        result.rows.append(
            {
                "system": "SketchVisor(%d%%)" % int(100 * fraction),
                "packet_rate_mpps": sim.capacity_mpps,
            }
        )
    sim = simulate(
        InMemoryPipeline(),
        nitro_monitor("univmon", seed=seed),
        trace,
        name="NitroSketch(UnivMon)",
        offered_gbps=1000.0,
        nic=UNLIMITED,
    )
    result.rows.append(
        {"system": "NitroSketch(UnivMon)", "packet_rate_mpps": sim.capacity_mpps}
    )
    result.notes.append(
        "Paper anchors: SketchVisor 2.12 -> 6.11 Mpps as the fast-path share "
        "grows; NitroSketch ~83 Mpps (paper quote: '>83Mpps vs <7Mpps')."
    )
    return result


def run_fig13b(scale: float = 0.05, seed: int = 0) -> ExperimentResult:
    trace = caida_like(
        scaled(4_000_000, scale), n_flows=scaled(400_000, scale, 1000), seed=seed
    )
    result = ExperimentResult(
        name="Figure 13b",
        description="Monitoring memory (MB): sFlow / NetFlow at sampling rate "
        "0.01 vs NitroSketch+UnivMon (fixed-size sketch).",
    )
    sflow = SFlowMonitor(0.01, seed=seed)
    for key in trace.keys.tolist():
        sflow.update(key)
    result.rows.append(
        {
            "system": "sFlow (0.01)",
            "memory_mb": sflow.memory_bytes() / 2**20,
            "scales_with_flows": True,
        }
    )
    netflow = NetFlowMonitor(0.01, seed=seed)
    netflow.update_batch(trace.keys)
    result.rows.append(
        {
            "system": "NetFlow (0.01)",
            "memory_mb": netflow.memory_bytes() / 2**20,
            "scales_with_flows": True,
        }
    )
    nitro = nitro_monitor("univmon", seed=seed)
    result.rows.append(
        {
            "system": "NitroSketch (UnivMon)",
            "memory_mb": nitro.memory_bytes() / 2**20,
            "scales_with_flows": False,
        }
    )
    # Project record-table growth to the paper's trace scale: a one-hour
    # CAIDA trace carries tens of millions of flows, and each flow that
    # gets >= 1 sample costs a record.  The sketch stays fixed.
    paper_trace_flows = 30_000_000
    trace_flows = trace.flow_count()
    for row, monitor in zip(result.rows, (sflow, netflow, nitro)):
        if row["scales_with_flows"]:
            recorded_fraction = len(monitor.recorded_flows()) / max(trace_flows, 1)
            per_record = monitor.memory_bytes() / max(len(monitor.recorded_flows()), 1)
            row["projected_caida_hour_mb"] = (
                recorded_fraction * paper_trace_flows * per_record / 2**20
            )
        else:
            row["projected_caida_hour_mb"] = row["memory_mb"]
    result.notes.append(
        "Paper shape: at full CAIDA-hour scale (tens of millions of flows) "
        "NetFlow's per-flow records dwarf the fixed-size sketch (projected "
        "column); the measured column is the scaled run."
    )
    return result


def run(scale: float = 0.05, seed: int = 0):
    return run_fig13a(scale, seed), run_fig13b(scale, seed)


if __name__ == "__main__":
    for panel in run():
        print_result(panel)
        print()
