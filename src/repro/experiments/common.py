"""Shared builders for the experiment modules.

Centralises the paper's Section-7 parameter choices so every figure uses
the same configurations:

* UnivMon: 14 levels x (5 x w) Count Sketches, first levels larger
  (:func:`repro.sketches.paper_widths`), k = 100 heavy keys per level;
* Count-Min: 5 x 10000 (200 KB);
* Count Sketch: 5 x 102400 (2 MB);
* K-ary: 10 x 51200 (2 MB);
* NitroSketch: fixed geometric sampling p = 0.01 unless stated.

``scale`` shrinks packet counts (and, where meaningful, structure sizes)
so benches run in seconds; the default scale used by the benchmark suite
is small, and ``python -m repro.experiments.<fig> --scale 1.0`` runs the
full-size version.
"""

from __future__ import annotations

from typing import Optional

from repro.core import NitroConfig, NitroMode, NitroSketch, nitro_univmon
from repro.sketches import (
    CountMinSketch,
    CountSketch,
    KArySketch,
    TrackedSketch,
    UnivMon,
    paper_widths,
)
from repro.switchsim import (
    IntegrationMode,
    MeasurementDaemon,
    SwitchSimulator,
    SwitchPipeline,
)
from repro.traffic.traces import Trace

#: The paper's fixed geometric sampling rate for throughput evaluation.
DEFAULT_PROBABILITY = 0.01

#: Paper sketch shapes (Section 7, "Parameters").
CM_SHAPE = (5, 10000)
CS_SHAPE = (5, 102400)
KARY_SHAPE = (10, 51200)
UNIVMON_LEVELS = 14
UNIVMON_DEPTH = 5
UNIVMON_K = 100


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a packet/flow count, keeping at least ``minimum``."""
    return max(minimum, int(value * scale))


def vanilla_monitor(kind: str, seed: int = 0, k: int = 100):
    """Build a paper-configured vanilla monitor: 'univmon' | 'cm' | 'cs' | 'kary'."""
    if kind == "univmon":
        return UnivMon(
            levels=UNIVMON_LEVELS,
            depth=UNIVMON_DEPTH,
            widths=paper_widths(UNIVMON_LEVELS, UNIVMON_DEPTH),
            k=UNIVMON_K,
            seed=seed,
        )
    if kind == "cm":
        return TrackedSketch(CountMinSketch(*CM_SHAPE, seed=seed), k=k)
    if kind == "cs":
        return TrackedSketch(CountSketch(*CS_SHAPE, seed=seed), k=k)
    if kind == "kary":
        return TrackedSketch(KArySketch(*KARY_SHAPE, seed=seed), k=k)
    raise ValueError("unknown monitor kind %r" % (kind,))


def nitro_monitor(
    kind: str,
    probability: float = DEFAULT_PROBABILITY,
    mode: NitroMode = NitroMode.FIXED,
    seed: int = 0,
    k: int = 100,
):
    """Build the NitroSketch-accelerated counterpart of a vanilla monitor."""
    if kind == "univmon":
        return nitro_univmon(
            levels=UNIVMON_LEVELS,
            depth=UNIVMON_DEPTH,
            widths=paper_widths(UNIVMON_LEVELS, UNIVMON_DEPTH),
            k=UNIVMON_K,
            probability=probability,
            mode=mode,
            seed=seed,
        )
    shapes = {"cm": CM_SHAPE, "cs": CS_SHAPE, "kary": KARY_SHAPE}
    sketch_classes = {"cm": CountMinSketch, "cs": CountSketch, "kary": KArySketch}
    if kind not in shapes:
        raise ValueError("unknown monitor kind %r" % (kind,))
    depth, width = shapes[kind]
    config = NitroConfig(probability=probability, mode=mode, top_k=k, seed=seed)
    return NitroSketch(sketch_classes[kind](depth, width, seed), config)


#: Display names matching the paper's figure legends.
MONITOR_LABELS = {
    "univmon": "UnivMon",
    "cm": "Count-Min",
    "cs": "Count Sketch",
    "kary": "K-ary",
}


def simulate(
    pipeline: SwitchPipeline,
    monitor,
    trace: Trace,
    mode: IntegrationMode = IntegrationMode.ALL_IN_ONE,
    name: str = "monitor",
    use_batch: bool = False,
    offered_gbps: Optional[float] = 40.0,
    batch_size: int = 32,
    nic=None,
):
    """One simulator run; returns the SimulationResult."""
    daemon = None
    if monitor is not None:
        daemon = MeasurementDaemon(monitor, mode, name=name, use_batch=use_batch)
    kwargs = {}
    if nic is not None:
        kwargs["nic"] = nic
    simulator = SwitchSimulator(pipeline, daemon, **kwargs)
    return simulator.run(trace, batch_size=batch_size, offered_gbps=offered_gbps)
