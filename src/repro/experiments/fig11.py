"""Figure 11: UnivMon accuracy vs epoch size + AlwaysCorrect throughput.

(a, b) Mean relative error of heavy hitters / change detection /
entropy for vanilla UnivMon vs NitroSketch-UnivMon with fixed sampling
rates p = 0.1 and p = 0.01, at two memory budgets (8 MB / 2 MB).  Shape:
NitroSketch starts less accurate on small epochs (sampling noise has
not averaged out) and converges to vanilla accuracy with enough packets
-- faster for p = 0.1 than p = 0.01.

(c) AlwaysCorrect NitroSketch throughput over time: exact-update speed
until the L2 convergence test passes, then full sampling speed.

Epoch sizes are the paper's axis (1M ... 1B packets) scaled by
``scale``; the error-vs-epoch *shape* is scale-free because it depends
on packets-per-epoch relative to sampling rate.
"""

from __future__ import annotations

from repro.core import NitroConfig, NitroMode, NitroSketch, nitro_univmon
from repro.experiments.common import UNIVMON_DEPTH, UNIVMON_LEVELS, scaled
from repro.experiments.report import ExperimentResult, print_result
from repro.metrics.accuracy import (
    empirical_entropy,
    mean_relative_error,
    relative_error,
)
from repro.sketches import CountSketch, UnivMon
from repro.switchsim import IntegrationMode, MeasurementDaemon, OVSDPDKPipeline
from repro.switchsim.costmodel import CostModel
from repro.traffic import caida_like, remap_flows
from repro.traffic.traces import Trace
from repro.traffic.replay import Replayer

#: Paper epoch axis (packets), scaled at runtime.
EPOCHS = (1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000)

HH_THRESHOLD = 0.0005


def _univmon_variant(memory_bytes: int, probability, seed: int):
    """Vanilla (probability None) or Nitro UnivMon at a memory budget."""
    width = max(64, memory_bytes // (UNIVMON_LEVELS * UNIVMON_DEPTH * 4))
    if probability is None:
        return UnivMon(
            levels=UNIVMON_LEVELS, depth=UNIVMON_DEPTH, widths=width, k=200, seed=seed
        )
    return nitro_univmon(
        levels=UNIVMON_LEVELS,
        depth=UNIVMON_DEPTH,
        widths=width,
        k=200,
        probability=probability,
        seed=seed,
    )


def _accuracy_panel(
    name: str, memory_bytes: int, scale: float, seed: int
) -> ExperimentResult:
    result = ExperimentResult(
        name=name,
        description="UnivMon error (%%) vs epoch size at %.0f KB: vanilla vs "
        "NitroSketch p=0.1 / p=0.01." % (memory_bytes / 1024),
    )
    variants = (("vanilla", None), ("nitro p=0.1", 0.1), ("nitro p=0.01", 0.01))
    for epoch in EPOCHS:
        epoch_packets = scaled(epoch, scale)
        trace = caida_like(
            2 * epoch_packets,
            n_flows=max(1000, epoch_packets // 10),
            seed=seed + epoch % 97,
        )
        first = trace.slice(0, epoch_packets)
        second = trace.slice(epoch_packets, 2 * epoch_packets)
        # Inject genuine traffic churn: 30% of flows change identity
        # between epochs, creating real heavy changers to detect.
        second = Trace(
            name=second.name,
            keys=remap_flows(second.keys, 0.3),
            sizes=second.sizes,
            timestamps=second.timestamps,
        )
        counts_first = first.counts()
        counts_second = second.counts()
        for label, probability in variants:
            monitor_a = _univmon_variant(memory_bytes, probability, seed)
            monitor_b = _univmon_variant(memory_bytes, probability, seed)
            monitor_a.update_batch(first.keys)
            monitor_b.update_batch(second.keys)

            threshold = HH_THRESHOLD * epoch_packets
            detected = dict(monitor_b.heavy_hitters(threshold))
            hh_error = mean_relative_error(detected, counts_second)

            changes = dict(monitor_b.change_detection(monitor_a, threshold))
            true_deltas = {
                key: abs(counts_second.get(key, 0) - counts_first.get(key, 0))
                for key in changes
            }
            # MRE over detected *true* heavy changers (the paper's
            # "errors on the detected heavy flows"); noise-triggered
            # detections of near-unchanged flows are precision failures
            # with unbounded relative error, not estimation errors.
            real_changes = {
                k: v for k, v in changes.items() if true_deltas.get(k, 0) > threshold
            }
            change_error = mean_relative_error(real_changes, true_deltas)

            entropy_error = relative_error(
                monitor_b.entropy_estimate(), empirical_entropy(counts_second)
            )
            result.rows.append(
                {
                    "epoch_packets": epoch,
                    "variant": label,
                    "hh_error_pct": 100 * hh_error,
                    "change_error_pct": 100 * change_error,
                    "entropy_error_pct": 100 * entropy_error,
                }
            )
    result.notes.append(
        "Paper shape: Nitro errors exceed vanilla at small epochs and converge "
        "by ~8M packets (scaled); p=0.1 converges before p=0.01."
    )
    return result


def run_fig11a(scale: float = 0.25, seed: int = 0) -> ExperimentResult:
    return _accuracy_panel("Figure 11a", 8 * 2**20, scale, seed)


def run_fig11b(scale: float = 0.25, seed: int = 0) -> ExperimentResult:
    return _accuracy_panel("Figure 11b", 2 * 2**20, scale, seed)


def epsilon_for_convergence_at(trace, probability: float, fraction: float) -> float:
    """Pick eps so AlwaysCorrect converges ~``fraction`` through ``trace``.

    Solves ``121 eps^-4 p^-2 = L2(fraction*m)**2`` for eps.  The paper
    runs with eps = 5% against billion-packet streams; scaled runs keep
    the *shape* (exact phase, then a throughput step) by loosening eps to
    place the step inside the scaled stream.
    """
    cut = max(1, int(fraction * len(trace)))
    counts = trace.slice(0, cut).counts()
    l2_squared = sum(v * v for v in counts.values())
    if l2_squared <= 0:
        return 0.5
    eps = (121.0 / (probability**2) / l2_squared) ** 0.25
    return min(max(eps, 0.01), 0.9)


def run_fig11c(
    scale: float = 0.25, seed: int = 0, epsilon: float = None
) -> ExperimentResult:
    """AlwaysCorrect throughput over time (Figure 11c).

    ``epsilon`` controls the convergence threshold
    ``T = 121(1+eps sqrt(p)) eps^-4 p^-2``; the paper's 5% target needs
    multi-million-packet streams, so scaled runs auto-pick eps to place
    convergence ~40% through the stream -- the throughput-step *shape*
    is what the figure shows.
    """
    n_packets = scaled(2_000_000, scale)
    trace = caida_like(n_packets, n_flows=max(1000, n_packets // 10), seed=seed)
    if epsilon is None:
        epsilon = epsilon_for_convergence_at(trace, 0.01, 0.4)
    result = ExperimentResult(
        name="Figure 11c",
        description="AlwaysCorrect NitroSketch throughput over time on 40G "
        "OVS-DPDK (exact until L2 convergence, then sampled).",
    )
    cost_model = CostModel()
    pipeline = OVSDPDKPipeline()
    for label, monitor in (
        (
            "AC-NitroSketch(Count-Sketch)",
            NitroSketch(
                CountSketch(5, 102400, seed),
                NitroConfig(
                    probability=0.01,
                    mode=NitroMode.ALWAYS_CORRECT,
                    epsilon=epsilon,
                    seed=seed,
                ),
            ),
        ),
        (
            "AC-NitroSketch(UnivMon)",
            nitro_univmon(
                probability=0.01,
                mode=NitroMode.ALWAYS_CORRECT,
                epsilon=epsilon,
                seed=seed,
            ),
        ),
    ):
        daemon = MeasurementDaemon(
            monitor, IntegrationMode.ALL_IN_ONE, name=label, use_batch=True
        )
        replayer = Replayer(trace, batch_size=1024, offered_gbps=40.0)
        windows = 10
        window_packets = max(1, n_packets // windows)
        window_index = 0
        packets_in_window = 0
        last_snapshot = daemon.ops.as_dict()
        from repro.metrics.opcount import OpCounter

        switch_ops = OpCounter()
        last_switch = 0.0
        for batch in replayer:
            pipeline.forward_batch(batch, switch_ops)
            daemon.ingest(batch)
            packets_in_window += len(batch)
            if packets_in_window >= window_packets:
                snapshot = daemon.ops.as_dict()
                delta = OpCounter(
                    **{
                        key: snapshot[key] - last_snapshot[key]
                        for key in snapshot
                        if key != "fixed_cycles"
                    }
                )
                delta.fixed_cycles = (
                    snapshot["fixed_cycles"] - last_snapshot["fixed_cycles"]
                )
                sketch_pp = cost_model.cycles_per_packet(delta, daemon.memory_bytes())
                switch_pp = cost_model.breakdown(switch_ops).per_packet()
                capacity = (
                    cost_model.costs.clock_ghz * 1e9 / (sketch_pp + switch_pp) / 1e6
                )
                offered = replayer.offered_rate_mpps
                achieved = min(capacity, offered)
                from repro.metrics.throughput import mpps_to_gbps

                result.rows.append(
                    {
                        "monitor": label,
                        "window": window_index,
                        "time_s": round(
                            window_index * window_packets / (offered * 1e6), 4
                        ),
                        "throughput_gbps": mpps_to_gbps(
                            achieved, trace.mean_packet_size
                        ),
                        "converged": getattr(monitor, "converged", True),
                    }
                )
                window_index += 1
                packets_in_window = 0
                last_snapshot = snapshot
    result.notes.append(
        "Paper shape: ~0.6-0.8s of reduced throughput, then a step to 40G "
        "once the convergence test passes."
    )
    return result


def run(scale: float = 0.25, seed: int = 0):
    return run_fig11a(scale, seed), run_fig11b(scale, seed), run_fig11c(scale, seed)


if __name__ == "__main__":
    for panel in run():
        print_result(panel)
        print()
