"""Kernel-layer benchmark: fused batch paths vs the seed implementations.

The fused kernels (:mod:`repro.kernels`) replaced three hot paths:

* ``KWiseHash.batch`` -- object-dtype Python big-int polynomial
  evaluation -> native ``uint64`` Mersenne-61 arithmetic;
* ``CanonicalSketch.update_batch`` -- per-row Python loop with one
  ``np.add.at`` scatter per row -> one broadcast hash over every row
  plus a single flat-index scatter;
* ``NitroSketch.update_batch`` -- per-row mask loop plus *scalar*
  top-k query offers -> fused slot kernel plus ``query_batch``.

This module keeps faithful copies of the seed implementations (pinned
below, verbatim from the pre-kernel revision) and times both sides on
the same CAIDA-like workload.  ``python -m repro.experiments.kernelbench``
writes the machine-readable ``BENCH_kernels.json`` baseline that
``scripts/check_perf.py`` regresses against.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.core import NitroSketch
from repro.experiments.report import ExperimentResult, print_result
from repro.hashing.families import MERSENNE_PRIME_61, KWiseHash
from repro.sketches import CountMinSketch, CountSketch
from repro.traffic import caida_like

#: Shapes match the paper's Section-7 Count Sketch configuration.
DEPTH, WIDTH = 5, 102400

#: Minimum speedups the kernel layer must deliver (acceptance gates).
KWISE_SPEEDUP_FLOOR = 5.0
NITRO_SPEEDUP_FLOOR = 2.0

#: Enabling a real Telemetry sink on the batch update path may cost at
#: most this factor versus the default NULL_TELEMETRY no-op sink.
TELEMETRY_OVERHEAD_CEILING = 1.10

#: Running a live shadow auditor alongside the batch ingest path may
#: cost at most this factor versus an unaudited NULL_TELEMETRY run.
AUDIT_OVERHEAD_CEILING = 1.10

#: Periodic crash-safety checkpoints (serialize + atomic write + fsync)
#: at the default cadence may cost at most this factor versus a daemon
#: that never checkpoints.
CHECKPOINT_OVERHEAD_CEILING = 1.10

#: The *disabled* invariant hook (one ``is not None`` attribute test per
#: ``update_batch`` call) may cost at most this factor versus calling
#: the batch implementation directly with no hook dispatch at all.
VERIFY_OVERHEAD_CEILING = 1.05

#: Full tracing instrumentation -- a live Telemetry sink, the span
#: tracer, and a StageProfiler at its default sampling cadence -- may
#: cost at most this factor versus the bare NULL_TELEMETRY/NULL_PROFILER
#: ingest path.
TRACING_OVERHEAD_CEILING = 1.10

#: The alert plane at its default cadence -- sketch-driven anomaly
#: detectors observing every epoch plus an AlertManager evaluating the
#: default rule set -- may cost at most this factor versus bare ingest.
ALERT_OVERHEAD_CEILING = 1.10

#: Routing batched ingest through a :class:`SlidingWindowMonitor` --
#: the boundary check per batch, epoch rotations (recycle + reset) at
#: the default cadence, and merged-view cache invalidation -- may cost
#: at most this factor versus updating the wrapped sketch directly.
WINDOW_OVERHEAD_CEILING = 1.15

#: Serving ingest over the wire -- client-side frame encode, loopback
#: TCP, the asyncio reader, header/key decode, per-tenant queue and the
#: drainer coroutine -- may cost at most this factor versus the same
#: batches ingested in-process through ``MeasurementDaemon.ingest``.
SERVICE_OVERHEAD_CEILING = 1.15


# -- seed (pre-kernel) reference implementations ---------------------------


def legacy_kwise_batch(hash_fn: KWiseHash, keys: "np.ndarray") -> "np.ndarray":
    """The seed ``KWiseHash.batch``: object-dtype big-int Horner loop."""
    ks = np.asarray(keys, dtype=object) % MERSENNE_PRIME_61
    acc = np.zeros(ks.shape, dtype=object)
    for coeff in reversed(hash_fn._coeffs):
        acc = (acc * ks + coeff) % MERSENNE_PRIME_61
    return (acc % hash_fn.width).astype(np.int64)


def legacy_update_batch(sketch, keys: "np.ndarray", weights=None) -> None:
    """The seed ``CanonicalSketch.update_batch``: per-row ``np.add.at``."""
    keys = np.asarray(keys)
    if weights is None:
        weights = np.ones(keys.shape, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
    sketch.ops.packet(len(keys))
    for row in range(sketch.depth):
        sketch.ops.hash(len(keys))
        buckets = sketch.row_hashes[row].batch(keys)
        if sketch.signed:
            signs = sketch.row_signs[row].batch(keys)
            np.add.at(sketch.counters[row], buckets, weights * signs)
        else:
            np.add.at(sketch.counters[row], buckets, weights)
        sketch.ops.counter_update(len(keys))


def legacy_nitro_update_batch(nitro: NitroSketch, keys: "np.ndarray", weights=None) -> None:
    """The seed ``NitroSketch.update_batch`` sampled path.

    Per-row mask loop over the sampled slots, then one *scalar*
    ``sketch.query`` per distinct sampled key for the top-k offers --
    the dominant cost the fused path removes.
    """
    from repro.core.geometric import geometric_positions

    keys = np.asarray(keys)
    count = len(keys)
    if count == 0:
        return
    nitro.packets_seen += count
    nitro.ops.packet(count)

    probability = nitro.sampler.probability
    depth = nitro.sketch.depth
    total_slots = count * depth
    if nitro._pending >= total_slots:
        nitro._pending -= total_slots
        return
    first = nitro._pending
    tail, leftover = geometric_positions(
        probability, total_slots - first - 1, nitro._batch_rng
    )
    positions = np.concatenate([np.array([first], dtype=np.int64), first + 1 + tail])
    nitro._pending = leftover
    nitro.ops.prng(len(positions))

    packet_idx = positions // depth
    rows = positions % depth
    inverse = 1.0 / probability
    if weights is None:
        slot_weights = np.full(positions.shape, inverse, dtype=np.float64)
    else:
        slot_weights = np.asarray(weights, dtype=np.float64)[packet_idx] * inverse

    sampled_keys = keys[packet_idx]
    nitro.sketch.note_batch_mass(float(np.sum(slot_weights)))
    sketch = nitro.sketch
    for row in range(depth):
        mask = rows == row
        if not np.any(mask):
            continue
        row_keys = sampled_keys[mask]
        nitro.ops.hash(len(row_keys))
        buckets = sketch.row_hashes[row].batch(row_keys)
        if sketch.signed:
            signs = sketch.row_signs[row].batch(row_keys)
            np.add.at(sketch.counters[row], buckets, slot_weights[mask] * signs)
        else:
            np.add.at(sketch.counters[row], buckets, slot_weights[mask])
        nitro.ops.counter_update(len(row_keys))

    sampled_packets = int(np.unique(packet_idx).size)
    nitro.packets_sampled += sampled_packets
    if nitro.topk is not None:
        unique_keys = np.unique(sampled_keys)
        nitro.ops.table_lookup(max(sampled_packets - len(unique_keys), 0))
        for key in unique_keys.tolist():
            nitro.topk.offer(int(key), nitro.sketch.query(int(key)))


def legacy_query_loop(sketch, keys: "np.ndarray") -> "np.ndarray":
    """Per-key scalar point queries (what heavy-hitter reports used)."""
    return np.array([sketch.query(int(key)) for key in keys], dtype=np.float64)


# -- timing harness --------------------------------------------------------


def _best_time(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(scale: float = 1.0, seed: int = 0, repeats: int = 3) -> ExperimentResult:
    """Time legacy vs fused on each replaced hot path.

    Rates are millions of keys (or packets) per second over a shared
    CAIDA-like trace; ``speedup`` is fused over legacy.
    """
    n = max(10_000, int(200_000 * scale))
    trace = caida_like(n, n_flows=max(2_000, n // 5), seed=seed + 1)
    keys = trace.keys
    result = ExperimentResult(
        name="kernelbench",
        description=(
            "Fused batch kernels vs the seed implementations "
            "(%d-packet CAIDA-like trace, best of %d)" % (n, repeats)
        ),
    )

    def bench(name, unit, count, legacy_fn, fused_fn):
        legacy_s = _best_time(legacy_fn, repeats)
        fused_s = _best_time(fused_fn, repeats)
        row = {
            "bench": name,
            "unit": unit,
            "legacy_rate": count / legacy_s / 1e6,
            "fused_rate": count / fused_s / 1e6,
            "speedup": legacy_s / fused_s,
        }
        result.rows.append(row)
        return row

    # 1. Four-wise polynomial hashing (UnivMon samplers, SignHash).
    kwise = KWiseHash(4, WIDTH, seed=seed + 11)
    kwise_row = bench(
        "kwise4_batch_hash",
        "Mkeys/s",
        len(keys),
        lambda: legacy_kwise_batch(kwise, keys),
        lambda: kwise.batch(keys),
    )

    # 2. Whole-sketch vanilla batch updates (unsigned and signed).
    cm_legacy = CountMinSketch(DEPTH, WIDTH, seed=seed + 21)
    cm_fused = CountMinSketch(DEPTH, WIDTH, seed=seed + 21)
    bench(
        "countmin_update_batch",
        "Mpps",
        len(keys),
        lambda: legacy_update_batch(cm_legacy, keys),
        lambda: cm_fused.update_batch(keys),
    )
    cs_legacy = CountSketch(DEPTH, WIDTH, seed=seed + 22)
    cs_fused = CountSketch(DEPTH, WIDTH, seed=seed + 22)
    bench(
        "countsketch_update_batch",
        "Mpps",
        len(keys),
        lambda: legacy_update_batch(cs_legacy, keys),
        lambda: cs_fused.update_batch(keys),
    )

    # 3. NitroSketch end-to-end (sampled slots + top-k offers).
    nitro_legacy = NitroSketch(
        CountSketch(DEPTH, WIDTH, seed=seed + 31), probability=0.01, top_k=100
    )
    nitro_fused = NitroSketch(
        CountSketch(DEPTH, WIDTH, seed=seed + 31), probability=0.01, top_k=100
    )
    nitro_row = bench(
        "nitro_countsketch_update_batch",
        "Mpps",
        len(keys),
        lambda: legacy_nitro_update_batch(nitro_legacy, keys),
        lambda: nitro_fused.update_batch(keys),
    )

    # 4. Batch point queries (heavy-hitter report path).
    probe_sketch = CountSketch(DEPTH, WIDTH, seed=seed + 41)
    probe_sketch.update_batch(keys)
    probe = np.unique(keys)[: max(2_000, n // 40)]
    bench(
        "countsketch_query_batch",
        "Mkeys/s",
        len(probe),
        lambda: legacy_query_loop(probe_sketch, probe),
        lambda: probe_sketch.query_batch(probe),
    )

    result.notes.append(
        "gates: kwise4 speedup >= %.1fx (got %.1fx), nitro end-to-end >= "
        "%.1fx (got %.1fx)"
        % (
            KWISE_SPEEDUP_FLOOR,
            kwise_row["speedup"],
            NITRO_SPEEDUP_FLOOR,
            nitro_row["speedup"],
        )
    )
    return result


def telemetry_overhead(
    scale: float = 1.0, seed: int = 0, repeats: int = 3, chunk: int = 4096
) -> Dict[str, float]:
    """Cost of a live Telemetry sink on ``NitroSketch.update_batch``.

    Feeds the same CAIDA-like trace in ``chunk``-sized batches (so the
    per-batch instrumentation cost is actually exercised, not amortised
    into one giant call) twice: once with the default
    :data:`~repro.telemetry.NULL_TELEMETRY` sink and once with a real
    :class:`~repro.telemetry.Telemetry` attached.  Returns both times
    and their ratio, which ``scripts/check_perf.py`` gates at
    :data:`TELEMETRY_OVERHEAD_CEILING`.
    """
    from repro.telemetry import Telemetry

    n = max(10_000, int(200_000 * scale))
    trace = caida_like(n, n_flows=max(2_000, n // 5), seed=seed + 1)
    keys = trace.keys
    chunks = [keys[start : start + chunk] for start in range(0, len(keys), chunk)]

    def build():
        return NitroSketch(
            CountSketch(DEPTH, WIDTH, seed=seed + 51), probability=0.01, top_k=100
        )

    def ingest(nitro):
        def run_once():
            for piece in chunks:
                nitro.update_batch(piece)

        return run_once

    null_nitro = build()
    live_nitro = build()
    live_nitro.telemetry = Telemetry()
    null_seconds = _best_time(ingest(null_nitro), repeats)
    live_seconds = _best_time(ingest(live_nitro), repeats)
    return {
        "packets": float(n),
        "null_seconds": null_seconds,
        "live_seconds": live_seconds,
        "ratio": live_seconds / null_seconds,
    }


def tracing_overhead(
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 3,
    chunk: int = 4096,
    sample_every: int = 16,
) -> Dict[str, float]:
    """Cost of the full tracing/profiling stack on the ingest hot path.

    Feeds the same chunked CAIDA-like stream through
    ``NitroSketch.update_batch`` twice: once bare (the production
    defaults, NULL_TELEMETRY + NULL_PROFILER) and once with the whole
    observability stack live -- a real :class:`~repro.telemetry.
    Telemetry` sink (which carries the span tracer), a per-epoch span
    opened around each pass, and a :class:`~repro.telemetry.profile.
    StageProfiler` timing pipeline stages on every ``sample_every``-th
    batch.  The ratio is gated at :data:`TRACING_OVERHEAD_CEILING` by
    ``scripts/check_perf.py``; it is what bounds the "continuous
    profiling is cheap enough to leave on" claim.
    """
    from repro.telemetry import Telemetry
    from repro.telemetry.profile import StageProfiler

    n = max(10_000, int(200_000 * scale))
    trace = caida_like(n, n_flows=max(2_000, n // 5), seed=seed + 1)
    keys = trace.keys
    chunks = [keys[start : start + chunk] for start in range(0, len(keys), chunk)]

    def build():
        return NitroSketch(
            CountSketch(DEPTH, WIDTH, seed=seed + 91), probability=0.01, top_k=100
        )

    bare_nitro = build()
    traced_nitro = build()
    telemetry = Telemetry()
    traced_nitro.telemetry = telemetry
    traced_nitro.profiler = StageProfiler(telemetry, sample_every=sample_every)

    def bare_pass():
        for piece in chunks:
            bare_nitro.update_batch(piece)

    def traced_pass():
        with telemetry.start_span("epoch", trace_id="perf", span_id="perf"):
            for piece in chunks:
                traced_nitro.update_batch(piece)

    # Warm-up, then interleaved best-of rounds so machine-load drift
    # moves both sides alike (same rationale as verify_overhead).
    bare_pass()
    traced_pass()
    bare_seconds = float("inf")
    traced_seconds = float("inf")
    for _ in range(max(repeats, 7)):
        bare_seconds = min(bare_seconds, _best_time(bare_pass, 1))
        traced_seconds = min(traced_seconds, _best_time(traced_pass, 1))
    return {
        "packets": float(n),
        "sample_every": float(sample_every),
        "bare_seconds": bare_seconds,
        "traced_seconds": traced_seconds,
        "ratio": traced_seconds / bare_seconds,
    }


def alert_overhead(
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 3,
    chunk: int = 16384,
    epoch_every: int = 32,
) -> Dict[str, float]:
    """Cost of the alert plane + anomaly detectors on the ingest path.

    Feeds the same chunked CAIDA-like stream through a NitroSketch
    K-ary monitor twice: once bare, and once with the PR-8 alert plane
    live -- :class:`~repro.telemetry.anomaly.SketchAnomalyDetectors`
    observing an epoch every ``epoch_every`` chunks (sketch clone +
    difference + candidate queries + entropy/churn scores) and an
    :class:`~repro.telemetry.AlertManager` evaluating the default rule
    set at each epoch boundary.  The ratio is gated at
    :data:`ALERT_OVERHEAD_CEILING` by ``scripts/check_perf.py``; it is
    what bounds the "alerting is cheap enough to leave on" claim.

    The epoch size is the knob that makes this gate meaningful: the
    per-epoch cost (~0.5 ms: one sketch clone + difference, a few
    hundred candidate queries, one registry snapshot) is fixed, so the
    ratio depends on how much ingest an epoch amortises it over.  The
    default cadence of ``chunk * epoch_every`` = 524k packets per epoch
    matches the production shape -- an epoch is seconds of traffic, not
    a handful of batches -- which is why ``n`` has a higher floor here
    than the other overhead benchmarks.
    """
    from repro.core import nitro_kary
    from repro.telemetry import AlertManager, HistoryStore, ManualClock, Telemetry
    from repro.telemetry.anomaly import SketchAnomalyDetectors, default_alert_rules

    n = max(300_000, int(600_000 * scale))
    trace = caida_like(n, n_flows=max(2_000, n // 5), seed=seed + 1)
    keys = trace.keys
    chunks = [keys[start : start + chunk] for start in range(0, len(keys), chunk)]
    # Never let a small run dodge the gate entirely: at least one epoch
    # boundary must land inside the measured pass.
    epoch_every = min(epoch_every, len(chunks))

    def build():
        return nitro_kary(
            depth=DEPTH, width=8192, probability=0.01, top_k=100, seed=seed + 131
        )

    bare_nitro = build()
    alerted_nitro = build()
    telemetry = Telemetry()
    detectors = SketchAnomalyDetectors(telemetry=telemetry)
    manager = AlertManager(
        telemetry,
        rules=default_alert_rules(),
        history=HistoryStore(),
        clock=ManualClock(),
    )
    epoch_packets = chunk * epoch_every

    def bare_pass():
        for piece in chunks:
            bare_nitro.update_batch(piece)

    def alert_pass():
        detectors.reset()
        for index, piece in enumerate(chunks):
            alerted_nitro.update_batch(piece)
            if (index + 1) % epoch_every == 0:
                detectors.observe_epoch(alerted_nitro, epoch_packets)
                manager.evaluate()

    # Warm-up, then interleaved best-of rounds so machine-load drift
    # moves both sides alike (same rationale as tracing_overhead).
    bare_pass()
    alert_pass()
    bare_seconds = float("inf")
    alerted_seconds = float("inf")
    for _ in range(max(repeats, 7)):
        bare_seconds = min(bare_seconds, _best_time(bare_pass, 1))
        alerted_seconds = min(alerted_seconds, _best_time(alert_pass, 1))
    return {
        "packets": float(n),
        "epoch_every": float(epoch_every),
        "bare_seconds": bare_seconds,
        "alerted_seconds": alerted_seconds,
        "ratio": alerted_seconds / bare_seconds,
    }


def window_overhead(
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 3,
    chunk: int = 8192,
    window_epochs: int = 4,
    epochs_per_pass: int = 8,
) -> Dict[str, float]:
    """Cost of windowed ingest vs an epoch-reset sketch updated directly.

    Feeds the same chunked CAIDA-like stream through a NitroSketch
    twice: once wrapped in a
    :class:`~repro.control.windows.SlidingWindowMonitor` whose epoch
    size triggers ``epochs_per_pass`` rotations per measured pass, and
    once bare but ``reset()`` at the same epoch cadence.  The bare-side
    resets matter: a fresh epoch refills the Nitro top-k heap, and that
    warm-up is a property of *measuring in epochs* that both sides must
    pay -- without it the ratio conflates the window's bookkeeping with
    the workload change.  What remains in the ratio is the window's own
    cost: the per-batch boundary check, boundary-crossing batch splits,
    ring rotation (recycle + reset), and merged-view cache
    invalidation.  Gated at :data:`WINDOW_OVERHEAD_CEILING` by
    ``scripts/check_perf.py``; it is what bounds the "windowing rides
    the kernel ingest path" claim (docs/WINDOWS.md).
    """
    from repro.control.windows import SlidingWindowMonitor

    n = max(100_000, int(400_000 * scale))
    trace = caida_like(n, n_flows=max(2_000, n // 5), seed=seed + 1)
    keys = trace.keys
    chunks = [keys[start : start + chunk] for start in range(0, len(keys), chunk)]
    # Batch-aligned epochs: the deployed owners (daemon ``epoch_batches``,
    # control-plane ``adopt_epoch``) rotate *between* batches, so the
    # gate measures that shape; a misaligned ``epoch_packets`` would
    # additionally split one batch per epoch into two kernel calls.
    epoch_packets = max(chunk, n // epochs_per_pass // chunk * chunk)

    def build():
        return NitroSketch(
            CountSketch(DEPTH, 8192, seed=seed + 151), probability=0.01, top_k=100
        )

    bare_nitro = build()
    window = SlidingWindowMonitor(
        build, window_epochs=window_epochs, epoch_packets=epoch_packets
    )

    def bare_pass():
        # Same epoch cadence as the window, minus the window machinery.
        since_epoch = 0
        for piece in chunks:
            bare_nitro.update_batch(piece)
            since_epoch += len(piece)
            if since_epoch >= epoch_packets:
                bare_nitro.reset()
                since_epoch = 0

    def window_pass():
        # The window's packet count carries across passes, so every
        # measured pass crosses the same number of epoch boundaries.
        for piece in chunks:
            window.update_batch(piece)

    # Warm-up, then interleaved best-of rounds so machine-load drift
    # moves both sides alike (same rationale as tracing_overhead).
    bare_pass()
    window_pass()
    bare_seconds = float("inf")
    windowed_seconds = float("inf")
    for _ in range(max(repeats, 7)):
        bare_seconds = min(bare_seconds, _best_time(bare_pass, 1))
        windowed_seconds = min(windowed_seconds, _best_time(window_pass, 1))
    return {
        "packets": float(n),
        "window_epochs": float(window_epochs),
        "epoch_packets": float(epoch_packets),
        "bare_seconds": bare_seconds,
        "windowed_seconds": windowed_seconds,
        "ratio": windowed_seconds / bare_seconds,
    }


def service_overhead(
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 3,
    chunk: int = 32768,
) -> Dict[str, float]:
    """Cost of served ingest (wire + asyncio) vs direct in-process ingest.

    Feeds the same chunked CAIDA-like stream twice into bit-identical
    tenant monitors (same :meth:`ServiceConfig.build_monitor` seeds):
    once through a live :class:`~repro.service.server.MonitoringService`
    -- :class:`~repro.service.client.IngestClient` frames over loopback
    TCP, the asyncio reader, the tenant queue and the drainer coroutine,
    with a ``sync`` barrier closing each pass -- and once through
    ``MeasurementDaemon.ingest`` in the benchmark process (batch
    construction included: that is what an embedding caller pays).  The
    ratio is gated at :data:`SERVICE_OVERHEAD_CEILING` by
    ``scripts/check_perf.py``; it is what bounds the "running the
    always-on service costs little over embedding the library" claim
    (docs/SERVICE.md).

    The queue is sized to hold a whole pass so ``overflow="wait"`` never
    parks the client: the gate measures serving overhead, not
    backpressure stalls (the chaos suite covers those).
    """
    from repro.service import records
    from repro.service.client import IngestClient
    from repro.service.server import MonitoringService
    from repro.service.tenants import ServiceConfig

    from repro.switchsim.daemon import MeasurementDaemon

    n = max(100_000, int(400_000 * scale))
    trace = caida_like(n, n_flows=max(2_000, n // 5), seed=seed + 1)
    keys = trace.keys
    chunks = [keys[start : start + chunk] for start in range(0, len(keys), chunk)]
    tenant = "bench"

    config = ServiceConfig(
        seed=seed + 171,
        queue_capacity=max(8, 2 * len(chunks)),
        overflow="wait",
        epoch_batches=0,
    )
    direct = MeasurementDaemon(config.build_monitor(tenant))

    def direct_pass():
        for piece in chunks:
            direct.ingest(records.batch_from_keys(piece))

    service = MonitoringService(config, http=False).start()
    client = IngestClient("127.0.0.1", service.ingest_port)

    def served_pass():
        for piece in chunks:
            client.ingest(tenant, piece)
        client.sync(tenant)

    try:
        # Warm-up, then interleaved best-of rounds so machine-load drift
        # moves both sides alike (same rationale as tracing_overhead).
        # The warm-up also converges both (seed-identical) AlwaysCorrect
        # monitors, so measured passes run the sampled steady state.
        direct_pass()
        served_pass()
        direct_seconds = float("inf")
        served_seconds = float("inf")
        for _ in range(max(repeats, 7)):
            direct_seconds = min(direct_seconds, _best_time(direct_pass, 1))
            served_seconds = min(served_seconds, _best_time(served_pass, 1))
    finally:
        client.bye()
        client.close()
        service.stop()
    return {
        "packets": float(n),
        "chunk": float(chunk),
        "direct_seconds": direct_seconds,
        "served_seconds": served_seconds,
        "ratio": served_seconds / direct_seconds,
    }


def audit_overhead(
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 3,
    chunk: int = 4096,
    capacity: int = 256,
) -> Dict[str, float]:
    """Cost of a live :class:`~repro.telemetry.audit.ShadowAuditor`.

    Feeds the same chunked CAIDA-like stream twice through
    ``NitroSketch.update_batch``: once bare (NULL_TELEMETRY, no auditor)
    and once with a shadow auditor mirroring every chunk into its exact
    ground-truth reservoir -- the live-auditing deployment shape, where
    the auditor rides the daemon's ingest loop.  The ratio is gated at
    :data:`AUDIT_OVERHEAD_CEILING` by ``scripts/check_perf.py``.
    """
    from repro.telemetry.audit import ShadowAuditor

    n = max(10_000, int(200_000 * scale))
    trace = caida_like(n, n_flows=max(2_000, n // 5), seed=seed + 1)
    keys = trace.keys
    chunks = [keys[start : start + chunk] for start in range(0, len(keys), chunk)]

    def build():
        return NitroSketch(
            CountSketch(DEPTH, WIDTH, seed=seed + 61), probability=0.01, top_k=100
        )

    nitro = build()
    auditor = ShadowAuditor(capacity=capacity, seed=seed)
    # Settle the reservoir threshold first: a deployed auditor spends its
    # life in steady state, and the one-off settling pass would otherwise
    # dominate a short measurement.
    for piece in chunks:
        auditor.observe_batch(piece)

    def bare_pass():
        for piece in chunks:
            nitro.update_batch(piece)

    def audit_pass():
        for piece in chunks:
            auditor.observe_batch(piece)

    # Time the two components separately and add them: a combined
    # audited loop needs seconds-long runs before best-of-N converges on
    # a shared machine, while each part alone is stable with a handful
    # of repeats.  The auditor's cost is strictly additive (it shares no
    # state with the sketch), so the sum is the audited ingest time.
    bare_seconds = _best_time(bare_pass, max(repeats, 7))
    auditor_seconds = _best_time(audit_pass, max(repeats, 7))
    audited_seconds = bare_seconds + auditor_seconds
    return {
        "packets": float(n),
        "capacity": float(capacity),
        "bare_seconds": bare_seconds,
        "audited_seconds": audited_seconds,
        "ratio": audited_seconds / bare_seconds,
    }


def checkpoint_overhead(
    scale: float = 1.0,
    seed: int = 0,
    repeats: int = 3,
    chunk: int = 4096,
    interval: int = 256,
) -> Dict[str, float]:
    """Amortized cost of periodic crash-safety checkpoints.

    Feeds a chunked CAIDA-like stream through ``NitroSketch.update_batch``
    and separately times one full :class:`~repro.control.checkpoint.
    CheckpointManager` save (serialize + atomic temp-file write + fsync +
    rename + rotation) of the same monitor.  The checkpointed ingest time
    is the bare time plus one save per ``interval`` chunks -- the default
    daemon cadence from ``docs/RECOVERY.md``, roughly one checkpoint per
    million packets.  The checkpoint cost is strictly additive (the save
    only reads monitor state between batches), so the sum is the
    checkpointing daemon's ingest time; the ratio is gated at
    :data:`CHECKPOINT_OVERHEAD_CEILING` by ``scripts/check_perf.py``.

    The monitor is the deployment shape the chaos harness checkpoints (a
    5x4096 Count Sketch under 1% sampling), not the Section-7 accuracy
    shape -- checkpoint bytes scale with the grid, and what the gate
    protects is the cadence amortization, not the serializer's raw MB/s.
    """
    import tempfile

    from repro.control.checkpoint import CheckpointManager

    n = max(10_000, int(200_000 * scale))
    trace = caida_like(n, n_flows=max(2_000, n // 5), seed=seed + 1)
    keys = trace.keys
    chunks = [keys[start : start + chunk] for start in range(0, len(keys), chunk)]

    nitro = NitroSketch(
        CountSketch(5, 4096, seed=seed + 81), probability=0.01, top_k=100
    )
    manager = CheckpointManager(
        tempfile.mkdtemp(prefix="nitro-perf-ckpt-"), keep=3
    )

    def bare_pass():
        for piece in chunks:
            nitro.update_batch(piece)

    def save_once():
        manager.save(nitro)

    bare_seconds = _best_time(bare_pass, max(repeats, 7))
    save_seconds = _best_time(save_once, max(repeats, 7))
    saves_per_pass = len(chunks) / interval
    checkpointed_seconds = bare_seconds + saves_per_pass * save_seconds
    return {
        "packets": float(n),
        "interval_batches": float(interval),
        "bare_seconds": bare_seconds,
        "save_seconds": save_seconds,
        "checkpointed_seconds": checkpointed_seconds,
        "ratio": checkpointed_seconds / bare_seconds,
    }


def verify_overhead(
    scale: float = 1.0, seed: int = 0, repeats: int = 3, chunk: int = 4096
) -> Dict[str, float]:
    """Cost of the dormant invariant hook on ``NitroSketch.update_batch``.

    The verify harness hangs its per-batch invariant checks off
    ``nitro.invariant_hook``; when no hook is installed (production
    default) the only residue is the wrapper's ``is not None`` test.
    This times the same chunked CAIDA-like ingest twice -- through the
    public ``update_batch`` wrapper and through ``_update_batch_impl``
    directly -- and returns the ratio, which ``scripts/check_perf.py``
    gates at :data:`VERIFY_OVERHEAD_CEILING`.

    The two variants are timed in alternating rounds (best-of each)
    rather than in two sequential blocks, so machine-load drift during
    the run moves both numerators alike instead of biasing the ratio.
    """
    n = max(10_000, int(200_000 * scale))
    trace = caida_like(n, n_flows=max(2_000, n // 5), seed=seed + 1)
    keys = trace.keys
    chunks = [keys[start : start + chunk] for start in range(0, len(keys), chunk)]

    def build():
        return NitroSketch(
            CountSketch(DEPTH, WIDTH, seed=seed + 71), probability=0.01, top_k=100
        )

    direct_nitro = build()
    hooked_nitro = build()

    def direct_pass():
        for piece in chunks:
            direct_nitro._update_batch_impl(piece, None, None)

    def hooked_pass():
        for piece in chunks:
            hooked_nitro.update_batch(piece)

    # Warm-up round (hash caches, allocator, branch predictors), then
    # interleaved best-of timing.
    direct_pass()
    hooked_pass()
    direct_seconds = float("inf")
    hooked_seconds = float("inf")
    for _ in range(max(repeats, 9)):
        direct_seconds = min(direct_seconds, _best_time(direct_pass, 1))
        hooked_seconds = min(hooked_seconds, _best_time(hooked_pass, 1))
    return {
        "packets": float(n),
        "direct_seconds": direct_seconds,
        "hooked_seconds": hooked_seconds,
        "ratio": hooked_seconds / direct_seconds,
    }


def payload(result: ExperimentResult) -> Dict:
    """The JSON shape ``BENCH_kernels.json`` / ``check_perf.py`` use."""
    return {
        "generated_by": "python -m repro.experiments.kernelbench",
        "description": result.description,
        "benches": {
            row["bench"]: {
                "unit": row["unit"],
                "legacy_rate": round(row["legacy_rate"], 4),
                "fused_rate": round(row["fused_rate"], 4),
                "speedup": round(row["speedup"], 2),
            }
            for row in result.rows
        },
    }


def write_baseline(path: str = "BENCH_kernels.json", result: Optional[ExperimentResult] = None) -> Dict:
    """Run (if needed) and write the committed benchmark baseline."""
    if result is None:
        result = run()
    data = payload(result)
    with open(path, "w") as handle:
        handle.write(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


if __name__ == "__main__":
    import sys

    outcome = run()
    print_result(outcome)
    if "--write" in sys.argv:
        write_baseline(result=outcome)
        print("wrote BENCH_kernels.json")
