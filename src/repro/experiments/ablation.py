"""Design-choice ablation (DESIGN.md section 5; paper Sections 4.1, App. B).

Compares, at equal sampling rate p and equal memory where applicable:

* **NitroSketch (geometric)** -- the full design;
* **NitroSketch (bernoulli)** -- Idea A without Idea B (per-row coin flips);
* **Uniform packet sampling** (Strawman 2) -- whole-packet sampling into a
  vanilla Count Sketch;
* **One-array Count Sketch** (Strawman 1) -- one huge hash-indexed array;
* **Vanilla Count Sketch** -- the unaccelerated baseline.

Reports in-memory packet rate (cost model), heavy-hitter accuracy, memory,
plus the Appendix-B analytical space ratio between uniform sampling and
NitroSketch.
"""

from __future__ import annotations

from repro.analysis.comparison import (
    one_array_space_counters,
    space_ratio_uniform_vs_nitro,
)
from repro.core import NitroConfig, NitroSketch
from repro.experiments.common import scaled, simulate
from repro.experiments.report import ExperimentResult, print_result
from repro.metrics.accuracy import mean_relative_error
from repro.sketches import (
    CountSketch,
    OneArrayCountSketch,
    TrackedSketch,
    UniformSampledSketch,
)
from repro.switchsim import InMemoryPipeline, UNLIMITED
from repro.traffic import caida_like

PROBABILITY = 0.05
HH_THRESHOLD = 0.0005


def run(scale: float = 0.2, seed: int = 0) -> ExperimentResult:
    n_packets = scaled(2_000_000, scale)
    trace = caida_like(n_packets, n_flows=max(2000, n_packets // 10), seed=seed)
    counts = trace.counts()
    threshold = HH_THRESHOLD * n_packets
    result = ExperimentResult(
        name="Ablation",
        description="Sampling-design ablation at p=%.2f: in-memory packet rate, "
        "HH error, memory." % PROBABILITY,
    )

    depth, width = 5, 32768

    class _SampledTracked(TrackedSketch):
        """Uniform sampling wrapper + top-k with the TrackedSketch surface."""

        def __init__(self) -> None:
            super().__init__(CountSketch(depth, width, seed), k=200)
            self._wrapper = UniformSampledSketch(
                self.sketch, PROBABILITY, seed=seed + 1
            )

        def update_batch(self, keys, weights=None):
            import numpy as np

            self._wrapper.update_batch(keys, weights)
            unique = np.unique(keys)
            for key in unique.tolist():
                self.topk.offer(int(key), self.sketch.query(int(key)))

    variants = []
    variants.append(
        (
            "nitro-geometric",
            NitroSketch(
                CountSketch(depth, width, seed),
                NitroConfig(probability=PROBABILITY, top_k=200, seed=seed),
            ),
        )
    )
    variants.append(
        (
            "nitro-bernoulli",
            NitroSketch(
                CountSketch(depth, width, seed),
                NitroConfig(
                    probability=PROBABILITY, top_k=200, seed=seed, sampling="bernoulli"
                ),
            ),
        )
    )
    variants.append(("uniform-sampling", _SampledTracked()))
    variants.append(
        ("one-array", TrackedSketch(OneArrayCountSketch(depth * width, seed), k=200))
    )
    variants.append(
        ("vanilla", TrackedSketch(CountSketch(depth, width, seed), k=200))
    )

    for label, monitor in variants:
        # Bernoulli sampling has no vectorised path; use scalar ingest for
        # it so the coin-flip cost is really measured.
        use_batch = label != "nitro-bernoulli"
        sim = simulate(
            InMemoryPipeline(),
            monitor,
            trace,
            name=label,
            use_batch=use_batch,
            offered_gbps=1000.0,
            nic=UNLIMITED,
        )
        detected = dict(monitor.heavy_hitters(threshold))
        result.rows.append(
            {
                "variant": label,
                "packet_rate_mpps": sim.capacity_mpps,
                "hh_error_pct": 100 * mean_relative_error(detected, counts),
                "memory_kb": monitor.memory_bytes() / 1024,
            }
        )

    result.notes.append(
        "Appendix-B analytical space ratio (uniform sampling / NitroSketch) "
        "at eps=5%%, delta=5%%, p=%.2f, m=%d: %.2fx"
        % (
            PROBABILITY,
            n_packets,
            space_ratio_uniform_vs_nitro(0.05, 0.05, PROBABILITY, n_packets),
        )
    )
    result.notes.append(
        "Strawman-1 counters for the same (eps, delta): %.0f vs NitroSketch "
        "rows x width = %d" % (one_array_space_counters(0.05, 0.05), depth * width)
    )
    result.notes.append(
        "Expected ordering: geometric fastest; bernoulli pays d coin flips "
        "per packet; uniform sampling pays one flip per packet plus full-"
        "depth updates on sampled packets; vanilla slowest."
    )
    return result


if __name__ == "__main__":
    print_result(run())
