"""Run paper experiments from the command line.

    python -m repro.experiments --list
    python -m repro.experiments fig8 fig11 --scale 0.05
    python -m repro.experiments --all --scale 0.02
"""

from __future__ import annotations

import argparse
import importlib
import sys

ALL_EXPERIMENTS = (
    "table1",
    "fig2",
    "fig3",
    "table2",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablation",
    "adaptive",
    "validation",
    "parallel_scaling",
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument("names", nargs="*", help="experiment names (see --list)")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    parser.add_argument("--scale", type=float, default=None)
    args = parser.parse_args(argv)

    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0

    names = list(ALL_EXPERIMENTS) if args.all else args.names
    if not names:
        parser.error("give experiment names, --all, or --list")
    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        parser.error("unknown experiments: %s" % ", ".join(unknown))

    from repro.experiments.report import print_result

    for name in names:
        module = importlib.import_module("repro.experiments.%s" % name)
        kwargs = {"scale": args.scale} if args.scale is not None else {}
        output = module.run(**kwargs)
        for panel in output if isinstance(output, tuple) else (output,):
            print_result(panel)
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
