"""Figure 8: NitroSketch throughput on OVS-DPDK, VPP, and BESS.

(a) All-in-one on OVS-DPDK, CAIDA-like traffic at 40 GbE: vanilla
sketches throttle the switch far below line rate (UnivMon ~2 Gbps,
Count-Min ~5.5 Gbps); with NitroSketch every sketch reaches 40 G.

(b) Separate-thread with 64 B packets: the virtual switches themselves
top out near 22-30 Mpps, and NitroSketch is *not* the bottleneck.

(c) Separate-thread with datacenter packets: all platforms reach 40 G
with NitroSketch.
"""

from __future__ import annotations

from repro.experiments.common import (
    MONITOR_LABELS,
    nitro_monitor,
    scaled,
    simulate,
    vanilla_monitor,
)
from repro.experiments.report import ExperimentResult, print_result
from repro.switchsim import (
    BESSPipeline,
    IntegrationMode,
    OVSDPDKPipeline,
    VPPPipeline,
)
from repro.traffic import caida_like, datacenter_like, min_sized_stress

SKETCHES = ("univmon", "cm", "cs", "kary")


def run_fig8a(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    """AIO on OVS-DPDK with CAIDA traffic (Figure 8a)."""
    trace = caida_like(
        scaled(1_000_000, scale), n_flows=scaled(100_000, scale, 1000), seed=seed
    )
    result = ExperimentResult(
        name="Figure 8a",
        description="40GbE all-in-one throughput (Gbps) on OVS-DPDK, CAIDA-like "
        "traffic: vanilla vs NitroSketch (p=0.01).",
    )
    baseline = simulate(OVSDPDKPipeline(), None, trace)
    result.rows.append(
        {
            "sketch": "(switch only)",
            "variant": "OVS-DPDK",
            "throughput_gbps": baseline.achieved_gbps,
            "packet_rate_mpps": baseline.achieved_mpps,
        }
    )
    for kind in SKETCHES:
        for variant, monitor in (
            ("vanilla", vanilla_monitor(kind, seed=seed)),
            ("nitrosketch", nitro_monitor(kind, seed=seed)),
        ):
            sim = simulate(
                OVSDPDKPipeline(),
                monitor,
                trace,
                mode=IntegrationMode.ALL_IN_ONE,
                name="%s-%s" % (kind, variant),
            )
            result.rows.append(
                {
                    "sketch": MONITOR_LABELS[kind],
                    "variant": variant,
                    "throughput_gbps": sim.achieved_gbps,
                    "packet_rate_mpps": sim.achieved_mpps,
                }
            )
    result.notes.append(
        "Paper shape: vanilla UnivMon 2.1 Gbps / Count-Min 5.5 Gbps; all "
        "NitroSketch variants reach the full 40 Gbps."
    )
    return result


def _separate_thread_panel(
    name: str, description: str, trace, seed: int
) -> ExperimentResult:
    result = ExperimentResult(name=name, description=description)
    for pipeline_cls in (OVSDPDKPipeline, VPPPipeline, BESSPipeline):
        baseline = simulate(pipeline_cls(), None, trace)
        result.rows.append(
            {
                "platform": baseline.platform,
                "sketch": "(switch only)",
                "packet_rate_mpps": baseline.achieved_mpps,
                "throughput_gbps": baseline.achieved_gbps,
            }
        )
        for kind in SKETCHES:
            sim = simulate(
                pipeline_cls(),
                nitro_monitor(kind, seed=seed),
                trace,
                mode=IntegrationMode.SEPARATE_THREAD,
                name="nitro-%s" % kind,
            )
            result.rows.append(
                {
                    "platform": sim.platform,
                    "sketch": MONITOR_LABELS[kind],
                    "packet_rate_mpps": sim.achieved_mpps,
                    "throughput_gbps": sim.achieved_gbps,
                }
            )
    return result


def run_fig8b(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    """Separate-thread, 64 B packets (Figure 8b)."""
    trace = min_sized_stress(
        scaled(1_000_000, scale), n_flows=scaled(100_000, scale, 1000), seed=seed
    )
    result = _separate_thread_panel(
        "Figure 8b",
        "40GbE separate-thread throughput with 64B packets: NitroSketch vs "
        "bare platforms (NitroSketch should not be the bottleneck).",
        trace,
        seed,
    )
    result.notes.append(
        "Paper shape: platforms top out at ~22-35 Mpps on 64B traffic "
        "(XL710 + single-core limits); adding NitroSketch barely moves them."
    )
    return result


def run_fig8c(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    """Separate-thread, datacenter packets (Figure 8c)."""
    trace = datacenter_like(
        scaled(1_000_000, scale), n_flows=scaled(20_000, scale, 1000), seed=seed
    )
    result = _separate_thread_panel(
        "Figure 8c",
        "40GbE separate-thread throughput with datacenter packets: all "
        "platforms reach 40G line rate with NitroSketch.",
        trace,
        seed,
    )
    result.notes.append("Paper shape: every platform+NitroSketch pair hits 40 Gbps.")
    return result


def run(scale: float = 0.02, seed: int = 0):
    return run_fig8a(scale, seed), run_fig8b(scale, seed), run_fig8c(scale, seed)


if __name__ == "__main__":
    for panel in run():
        print_result(panel)
        print()
