"""Figure 2: packet rates of sketches, OVS-DPDK, and DPDK.

Paper claim: with min-sized packets on one core, vanilla sketches atop
OVS-DPDK fall far below the 10 G line rate (14.88 Mpps) -- UnivMon runs
at < 2 Mpps, Count Sketch and Count-Min below 10 Mpps -- while OVS-DPDK
alone and raw DPDK sit around 22-23 Mpps.  This experiment reproduces
that ordering from the measured operation counts of our implementations.
"""

from __future__ import annotations

from repro.experiments.common import scaled, simulate, vanilla_monitor
from repro.experiments.report import ExperimentResult, print_result
from repro.switchsim import DPDKForwarder, OVSDPDKPipeline
from repro.traffic import min_sized_stress

#: Configurations in the figure, in its bar order.
SYSTEMS = ("univmon", "cs", "cm", "ovs-dpdk", "dpdk")


def run(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    """Reproduce the Figure-2 bars.

    ``scale`` multiplies the stress-trace length (base: 1M packets).
    """
    n_packets = scaled(1_000_000, scale)
    trace = min_sized_stress(n_packets, n_flows=scaled(100_000, scale, minimum=1000), seed=seed)
    result = ExperimentResult(
        name="Figure 2",
        description="Packet rate (Mpps) of sketches on OVS-DPDK vs bare switches, "
        "64B worst-case traffic, single core.",
    )
    labels = {"univmon": "UnivMon", "cs": "Count Sketch", "cm": "Count-Min"}
    for kind in ("univmon", "cs", "cm"):
        sim = simulate(
            OVSDPDKPipeline(),
            vanilla_monitor(kind, seed=seed),
            trace,
            name=labels[kind],
        )
        result.rows.append(
            {
                "system": labels[kind],
                "packet_rate_mpps": sim.capacity_mpps,
                "cycles_per_packet": sim.switch_cycles_per_packet
                + sim.sketch_cycles_per_packet,
            }
        )
    for pipeline in (OVSDPDKPipeline(), DPDKForwarder()):
        sim = simulate(pipeline, None, trace)
        result.rows.append(
            {
                "system": pipeline.name.upper(),
                "packet_rate_mpps": sim.capacity_mpps,
                "cycles_per_packet": sim.switch_cycles_per_packet,
            }
        )
    result.notes.append(
        "Paper anchors: UnivMon < 2 Mpps, CS/CM < 10 Mpps, OVS-DPDK ~22, DPDK ~23."
    )
    return result


if __name__ == "__main__":
    print_result(run())
