"""Figure 14: heavy-hitter errors, SketchVisor vs NitroSketch, 3 traces.

Mean relative error of detected heavy hitters across epoch sizes on
CAIDA-like, DDoS-like, and datacenter-like traces, for SketchVisor with
20% / 50% / 100% of packets in the fast path vs NitroSketch+UnivMon
(p = 0.01).

Paper shape: NitroSketch is worse *before convergence* (smallest
epochs) but beats every SketchVisor configuration once converged;
SketchVisor stays accurate only on the skewed datacenter trace.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines import SketchVisor
from repro.experiments.common import nitro_monitor, scaled
from repro.experiments.report import ExperimentResult, print_result
from repro.metrics.accuracy import mean_relative_error
from repro.sketches import UnivMon, paper_widths
from repro.traffic import caida_like, datacenter_like, ddos_like

EPOCHS = (4_000_000, 16_000_000, 64_000_000)
HH_THRESHOLD = 0.0005

TRACES: Dict[str, Callable] = {
    "CAIDA": lambda n, seed: caida_like(n, n_flows=max(1000, n // 4), seed=seed),
    "DDoS": lambda n, seed: ddos_like(
        n, n_background_flows=max(1000, n // 8), n_attack_sources=max(1000, n // 16), seed=seed
    ),
    "DC": lambda n, seed: datacenter_like(n, n_flows=max(500, n // 40), seed=seed),
}


def run(scale: float = 0.05, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 14",
        description="Heavy-hitter mean relative error (%) across epochs: "
        "SketchVisor (20/50/100% fast path) vs NitroSketch+UnivMon p=0.01.",
    )
    for trace_name, make_trace in TRACES.items():
        for epoch in EPOCHS:
            epoch_packets = scaled(epoch, scale)
            trace = make_trace(epoch_packets, seed + epoch % 83)
            counts = trace.counts()
            threshold = HH_THRESHOLD * epoch_packets
            for fraction in (0.2, 0.5, 1.0):
                normal = UnivMon(
                    levels=14, depth=5, widths=paper_widths(14), k=200, seed=seed
                )
                monitor = SketchVisor(
                    fast_entries=900,
                    normal_path=normal,
                    fast_fraction=fraction,
                    seed=seed,
                )
                for key in trace.keys.tolist():
                    monitor.update(key)
                detected = dict(monitor.heavy_hitters(threshold))
                result.rows.append(
                    {
                        "trace": trace_name,
                        "epoch_packets": epoch,
                        "system": "SketchVisor(%d%%)" % int(100 * fraction),
                        "hh_error_pct": 100 * mean_relative_error(detected, counts),
                    }
                )
            nitro = nitro_monitor("univmon", seed=seed, k=200)
            nitro.update_batch(trace.keys)
            detected = dict(nitro.heavy_hitters(threshold))
            result.rows.append(
                {
                    "trace": trace_name,
                    "epoch_packets": epoch,
                    "system": "NitroSketch(UnivMon)",
                    "hh_error_pct": 100 * mean_relative_error(detected, counts),
                }
            )
    result.notes.append(
        "Paper shape: SketchVisor inaccurate on CAIDA/DDoS, accurate on DC; "
        "NitroSketch accurate on all traces after convergence (larger epochs)."
    )
    return result


if __name__ == "__main__":
    print_result(run())
