"""Experiment result containers and plain-text table rendering.

Every experiment module returns an :class:`ExperimentResult`: a named
set of rows (dicts) plus free-text notes.  ``format_table`` renders the
rows the way the paper's tables/figure series read -- one line per
configuration, columns aligned -- so ``python -m repro.experiments.fig8``
prints something directly comparable to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """One figure/table reproduction."""

    name: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def column(self, key: str) -> List[Any]:
        """Extract one column across all rows (missing -> None)."""
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria) -> List[Dict[str, Any]]:
        """Rows matching all key=value criteria."""
        matched = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                matched.append(row)
        return matched

    def render(self) -> str:
        """Render as an aligned plain-text table."""
        lines = ["== %s ==" % self.name, self.description, ""]
        lines.append(format_table(self.rows))
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append("note: %s" % note)
        return "\n".join(lines)


def _format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.4f" % value
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]]) -> str:
    """Align a list of dict rows into a monospace table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), max(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator] + body)


def print_result(result: ExperimentResult) -> None:
    """Print an experiment result to stdout."""
    print(result.render())
