"""Per-figure experiment runners.

One module per paper table/figure (see DESIGN.md's experiment index).
Each exposes ``run(scale=..., seed=...) -> ExperimentResult`` (or a
tuple of results for multi-panel figures) and prints the paper-shaped
series when executed as a script::

    python -m repro.experiments.fig8 [--scale 0.05]

``scale`` shrinks packet counts so everything is tractable in pure
Python; the *shape* of each series (orderings, crossovers, error decay)
is scale-invariant and is what the benches assert.
"""

from repro.experiments.report import ExperimentResult, format_table, print_result

__all__ = ["ExperimentResult", "format_table", "print_result"]
