"""Table 2: CPU hotspots of UnivMon on OVS-DPDK.

The paper's VTune profile attributes ~37% of CPU to xxhash32, ~16% to
memcpy/counter updates, ~16% to heap operations (heap_find + heapify),
plus packet handling.  We regenerate the same breakdown from the cost
model's per-category cycle attribution of a vanilla-UnivMon AIO run.
"""

from __future__ import annotations

from repro.experiments.common import scaled, simulate, vanilla_monitor
from repro.experiments.report import ExperimentResult, print_result
from repro.switchsim import OVSDPDKPipeline
from repro.traffic import min_sized_stress

#: Map our cost categories onto the paper's profile rows.
CATEGORY_LABELS = {
    "hash": "xxhash32 (hash computations)",
    "counter_update": "__memcpy / counter update",
    "heap_op": "heap_find + heapify",
    "memcpy": "packet copy and cache",
    "fixed_sketch": "univmon_proc (batch handling)",
    "miniflow": "miniflow_extract",
    "recv": "dpdk packet recv + switch",
}


def run(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    n_packets = scaled(1_000_000, scale)
    trace = min_sized_stress(n_packets, n_flows=scaled(100_000, scale, 1000), seed=seed)
    pipeline = OVSDPDKPipeline()
    sim = simulate(pipeline, vanilla_monitor("univmon", seed=seed), trace, name="UnivMon")

    sketch = sim.sketch_breakdown
    switch = sim.switch_breakdown
    total = sketch.total() + switch.total()

    rows = [
        ("hash", sketch.hash),
        ("counter_update", sketch.counter_update + sketch.cache_miss),
        # heap_find (the top-keys membership probe) + heapify (pushes).
        ("heap_op", sketch.heap_op + sketch.table_lookup),
        ("memcpy", sketch.memcpy),
        ("fixed_sketch", sketch.fixed + sketch.prng),
        ("miniflow", switch.packets * pipeline.MINIFLOW_CYCLES),
        (
            "recv",
            switch.total() - switch.packets * pipeline.MINIFLOW_CYCLES,
        ),
    ]
    result = ExperimentResult(
        name="Table 2",
        description="CPU hotspot shares for vanilla UnivMon inside OVS-DPDK "
        "(all-in-one, min-sized packets).",
    )
    for key, cycles in rows:
        result.rows.append(
            {
                "function": CATEGORY_LABELS[key],
                "cpu_share_pct": 100.0 * cycles / total,
            }
        )
    result.rows.sort(key=lambda row: -row["cpu_share_pct"])
    result.notes.append(
        "Paper anchors: xxhash32 37.3%, memcpy+counter 15.9%, heap 15.6%, "
        "miniflow 2.9%, recv 2.7% (of a busier total)."
    )
    return result


if __name__ == "__main__":
    print_result(run())
