"""Figure 10: CPU usage of the two integration modes.

(a) All-in-one on a 10 G NIC, CAIDA traffic: vanilla sketches eat most
of the core (and the switch loses line rate); NitroSketch-AIO keeps the
switch at line rate with the sketching share under ~20%.

(b) Separate-thread on a 40 G NIC, min-sized packets: the switching
core runs ~100% while the NitroSketch core stays under ~50%.
"""

from __future__ import annotations

from repro.experiments.common import (
    MONITOR_LABELS,
    nitro_monitor,
    scaled,
    simulate,
    vanilla_monitor,
)
from repro.experiments.report import ExperimentResult, print_result
from repro.switchsim import GENERIC_10G, IntegrationMode, OVSDPDKPipeline
from repro.traffic import caida_like, min_sized_stress

SKETCHES = ("univmon", "cm", "cs", "kary")


def run_fig10a(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    trace = caida_like(
        scaled(1_000_000, scale),
        n_flows=scaled(100_000, scale, 1000),
        offered_gbps=10.0,
        seed=seed,
    )
    result = ExperimentResult(
        name="Figure 10a",
        description="CPU share (%) on a 10G NIC, all-in-one: OVS-DPDK vs "
        "sketching, vanilla sketches vs NitroSketch-AIO.",
    )
    for kind in SKETCHES:
        for variant, monitor in (
            ("vanilla", vanilla_monitor(kind, seed=seed)),
            ("nitrosketch-AIO", nitro_monitor(kind, seed=seed)),
        ):
            sim = simulate(
                OVSDPDKPipeline(),
                monitor,
                trace,
                mode=IntegrationMode.ALL_IN_ONE,
                name=variant,
                offered_gbps=10.0,
                nic=GENERIC_10G,
            )
            result.rows.append(
                {
                    "sketch": MONITOR_LABELS[kind],
                    "variant": variant,
                    "switch_cpu_pct": 100 * sim.switch_cpu_share,
                    "sketch_cpu_pct": 100 * sim.sketch_cpu_share,
                    "line_rate_kept": sim.drop_fraction < 1e-6,
                }
            )
    result.notes.append(
        "Paper shape: vanilla sketches dominate the core and break line rate; "
        "NitroSketch-AIO holds 10G with < 20% CPU on sketching."
    )
    return result


def run_fig10b(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    trace = min_sized_stress(
        scaled(1_000_000, scale), n_flows=scaled(100_000, scale, 1000), seed=seed
    )
    result = ExperimentResult(
        name="Figure 10b",
        description="CPU share (%) on a 40G NIC, separate-thread: the switching "
        "core saturates (~22 Mpps of 64B packets) while NitroSketch-ST idles.",
    )
    for kind in SKETCHES:
        sim = simulate(
            OVSDPDKPipeline(),
            nitro_monitor(kind, seed=seed),
            trace,
            mode=IntegrationMode.SEPARATE_THREAD,
            name="nitro-%s" % kind,
        )
        result.rows.append(
            {
                "sketch": MONITOR_LABELS[kind],
                "switch_core_pct": 100 * sim.switch_cpu_share,
                "nitrosketch_core_pct": 100 * sim.sketch_cpu_share,
                "achieved_mpps": sim.achieved_mpps,
            }
        )
    result.notes.append(
        "Paper shape: switching cores near 100%, NitroSketch thread < 50% "
        "with headroom for higher rates."
    )
    return result


def run(scale: float = 0.02, seed: int = 0):
    return run_fig10a(scale, seed), run_fig10b(scale, seed)


if __name__ == "__main__":
    for panel in run():
        print_result(panel)
        print()
