"""Multi-core scaling of the real parallel ingest engine.

Measures aggregate trace-ingest throughput of
:class:`~repro.parallel.ParallelIngestEngine` at 1, 2 and 4 workers for
both strategies -- ``shared`` (shared-memory counter banks, vanilla
CountMin) and ``merge`` (private NitroSketch per worker, epoch merge) --
and reports the scaling ratio of each worker count against the 1-worker
run of the *same* configuration.

Three rates per row, honestly labeled (see
:class:`~repro.parallel.ParallelRunResult`):

* ``wall_mpps`` -- packets / end-to-end wall time.  Only meaningful as
  a scaling signal when the host has at least as many CPUs as workers;
  on fewer CPUs the workers time-slice and wall time cannot improve.
* ``agg_cpu_mpps`` -- sum over workers of (shard packets / CPU seconds
  that worker actually burned).  This is the DPDK-style aggregate
  capacity number -- what the fleet would sustain with a core per
  worker -- and is the rate the scaling gate uses because it is
  meaningful even on an undersized host.
* ``agg_busy_mpps`` -- sum of per-worker wall busy rates; sits between
  the two.

``python -m repro.experiments.parallel_scaling --write`` regenerates
``BENCH_parallel.json``, which ``scripts/check_perf.py`` validates and
gates (4-worker aggregate must reach
:data:`PARALLEL_SCALING_FLOOR` x the 1-worker rate).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.experiments.report import ExperimentResult
from repro.parallel import (
    NitroFactory,
    ParallelIngestEngine,
    VanillaFactory,
    parallel_unavailable_reason,
)
from repro.traffic.traces import caida_like

#: 4-worker aggregate CPU-clock Mpps must reach this multiple of the
#: 1-worker rate (the acceptance gate; checked by scripts/check_perf.py).
PARALLEL_SCALING_FLOOR = 2.5

#: Worker counts measured per strategy.
WORKER_COUNTS = (1, 2, 4)

#: Ingest batch size.  Large batches amortise the dense-accumulator pass
#: but inflate each worker's cache working set; 16384 is the measured
#: sweet spot for the *scaling ratio* on small hosts (bigger batches can
#: raise the 1-worker rate while collapsing the 4-worker aggregate once
#: workers time-slice).
BATCH_SIZE = 16_384

_PACKETS = 800_000


def _configs(seed: int) -> List[Dict]:
    return [
        {
            "config": "shared-countmin",
            "strategy": "shared",
            "factory": VanillaFactory(
                sketch="countmin", depth=5, width=102_400, seed=seed
            ),
        },
        {
            "config": "merge-nitro-cs",
            "strategy": "merge",
            "factory": NitroFactory(
                sketch="countsketch",
                depth=5,
                width=102_400,
                probability=0.01,
                seed=seed,
            ),
        },
    ]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Measure both strategies at each worker count; return one table."""
    result = ExperimentResult(
        name="parallel_scaling",
        description=(
            "Aggregate trace-ingest throughput of the multiprocess engine "
            "vs worker count (%d-packet CAIDA-like trace, batch %d)"
            % (int(_PACKETS * scale), BATCH_SIZE)
        ),
    )
    reason = parallel_unavailable_reason()
    if reason:
        # Keep the registry contract (non-empty rows) on hosts without
        # a usable shared-memory mount; the note carries the why.
        result.notes.append("SKIPPED: %s" % reason)
        result.rows.append(
            {"config": "unavailable", "workers": 0, "packets": 0}
        )
        return result
    packets = max(50_000, int(_PACKETS * scale))
    trace = caida_like(packets, seed=seed)
    result.notes.append(
        "host CPUs: %d -- wall_mpps only reflects scaling when CPUs >= "
        "workers; agg_cpu_mpps is the per-core capacity aggregate"
        % (os.cpu_count() or 1)
    )
    for spec in _configs(seed):
        baseline = None
        for workers in WORKER_COUNTS:
            engine = ParallelIngestEngine(
                spec["factory"],
                workers=workers,
                strategy=spec["strategy"],
                batch_size=BATCH_SIZE,
            )
            run_result = engine.run(trace.keys)
            if workers == 1:
                baseline = run_result
            result.rows.append(
                {
                    "config": spec["config"],
                    "workers": workers,
                    "packets": run_result.packets,
                    "wall_mpps": run_result.wall_mpps,
                    "agg_cpu_mpps": run_result.aggregate_cpu_mpps,
                    "agg_busy_mpps": run_result.aggregate_busy_mpps,
                    "scaling_x": run_result.speedup_vs(baseline),
                    "start": run_result.start_method,
                }
            )
    return result


def payload(result: ExperimentResult) -> Dict:
    """The JSON shape ``BENCH_parallel.json`` / ``check_perf.py`` use."""
    configs: Dict[str, Dict] = {}
    for row in result.rows:
        entry = configs.setdefault(row["config"], {"workers": {}})
        entry["workers"][str(row["workers"])] = {
            "wall_mpps": round(row["wall_mpps"], 4),
            "agg_cpu_mpps": round(row["agg_cpu_mpps"], 4),
            "agg_busy_mpps": round(row["agg_busy_mpps"], 4),
            "scaling_x": round(row["scaling_x"], 2),
        }
    return {
        "generated_by": "python -m repro.experiments.parallel_scaling",
        "description": result.description,
        "unit": "Mpps",
        "host_cpus": os.cpu_count() or 1,
        "batch_size": BATCH_SIZE,
        "scaling_floor": PARALLEL_SCALING_FLOOR,
        "configs": configs,
        "notes": list(result.notes),
    }


def write_baseline(
    path: str = "BENCH_parallel.json", result: Optional[ExperimentResult] = None
) -> Dict:
    """Regenerate the committed scaling baseline."""
    if result is None:
        result = run()
    data = payload(result)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return data


if __name__ == "__main__":
    import argparse

    from repro.experiments.report import print_result

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write", action="store_true", help="rewrite BENCH_parallel.json"
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    outcome = run(scale=args.scale, seed=args.seed)
    print_result(outcome)
    if args.write:
        write_baseline(result=outcome)
        print("\nwrote BENCH_parallel.json")
