"""Figure 12: single-sketch accuracy vs epoch size + convergence theory.

(a, b) Heavy-hitter error of Count-Min and Count Sketch and change-
detection error of K-ary, vanilla vs NitroSketch p = 0.1 / 0.01, at
2 MB and 200 KB memory budgets.  Shape: Nitro starts noisier and
converges to (for Count-Min: *better than*) vanilla accuracy -- the
sampling corrects CM's overestimation bias, the effect the paper calls
out in Section 7.3.

(c) Proven convergence time (packets until the Theorem-2 guarantee
holds) vs sampling rate for 1% / 3% / 5% error targets, using the CAIDA
L2 growth fit from Section 5.
"""

from __future__ import annotations

from repro.analysis.theory import (
    caida_l2_growth_coefficient,
    guaranteed_convergence_packets,
)
from repro.control.plane import KAryChangeMonitor
from repro.core import NitroConfig, NitroSketch
from repro.experiments.common import scaled
from repro.experiments.report import ExperimentResult, print_result
from repro.metrics.accuracy import mean_relative_error
from repro.sketches import CountMinSketch, CountSketch, KArySketch, TrackedSketch
from repro.traffic import caida_like, remap_flows
from repro.traffic.traces import Trace

EPOCHS = (1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000)
HH_THRESHOLD = 0.0005


def _shapes_for_memory(memory_bytes: int):
    """(depth, width) for CM/CS and K-ary at a total memory budget."""
    five_row_width = max(64, memory_bytes // (5 * 4))
    ten_row_width = max(64, memory_bytes // (10 * 4))
    return (5, five_row_width), (10, ten_row_width)


def _monitor(kind: str, shape, probability, seed: int):
    depth, width = shape
    classes = {"cm": CountMinSketch, "cs": CountSketch, "kary": KArySketch}
    sketch = classes[kind](depth, width, seed)
    if probability is None:
        monitor = TrackedSketch(sketch, k=200)
    else:
        monitor = NitroSketch(
            sketch, NitroConfig(probability=probability, top_k=200, seed=seed)
        )
    if kind == "kary":
        return KAryChangeMonitor(monitor)
    return monitor


def _accuracy_panel(name: str, memory_bytes: int, scale: float, seed: int) -> ExperimentResult:
    result = ExperimentResult(
        name=name,
        description="Sketch error (%%) vs epoch size at %.0f KB: vanilla vs "
        "NitroSketch p=0.1 / p=0.01 (HH for CM/CS, change for K-ary)."
        % (memory_bytes / 1024),
    )
    five_row, ten_row = _shapes_for_memory(memory_bytes)
    variants = (("vanilla", None), ("nitro p=0.1", 0.1), ("nitro p=0.01", 0.01))
    for epoch in EPOCHS:
        epoch_packets = scaled(epoch, scale)
        trace = caida_like(
            2 * epoch_packets,
            n_flows=max(1000, epoch_packets // 10),
            seed=seed + epoch % 89,
        )
        first = trace.slice(0, epoch_packets)
        second = trace.slice(epoch_packets, 2 * epoch_packets)
        # Inject genuine traffic churn: 30% of flows change identity
        # between epochs, creating real heavy changers to detect.
        second = Trace(
            name=second.name,
            keys=remap_flows(second.keys, 0.3),
            sizes=second.sizes,
            timestamps=second.timestamps,
        )
        counts_first = first.counts()
        counts_second = second.counts()
        threshold = HH_THRESHOLD * epoch_packets
        for label, probability in variants:
            row = {"epoch_packets": epoch, "variant": label}
            for kind in ("cm", "cs"):
                monitor = _monitor(kind, five_row, probability, seed)
                monitor.update_batch(second.keys)
                detected = dict(monitor.heavy_hitters(threshold))
                row["%s_hh_error_pct" % kind] = 100 * mean_relative_error(
                    detected, counts_second
                )
            kary_a = _monitor("kary", ten_row, probability, seed)
            kary_b = _monitor("kary", ten_row, probability, seed)
            kary_a.update_batch(first.keys)
            kary_b.update_batch(second.keys)
            changes = dict(kary_b.change_detection(kary_a, threshold))
            true_deltas = {
                key: abs(counts_second.get(key, 0) - counts_first.get(key, 0))
                for key in changes
            }
            # Restrict to detected *true* heavy changers (see fig11).
            real_changes = {
                key: value
                for key, value in changes.items()
                if true_deltas.get(key, 0) > threshold
            }
            row["kary_change_error_pct"] = 100 * mean_relative_error(
                real_changes, true_deltas
            )
            result.rows.append(row)
    result.notes.append(
        "Paper shape: Nitro errors converge by 8-16M packets; converged "
        "Nitro+Count-Min beats vanilla CM (sampling corrects its +bias)."
    )
    return result


def run_fig12a(scale: float = 0.25, seed: int = 0) -> ExperimentResult:
    return _accuracy_panel("Figure 12a", 2 * 2**20, scale, seed)


def run_fig12b(scale: float = 0.25, seed: int = 0) -> ExperimentResult:
    return _accuracy_panel("Figure 12b", 200 * 1024, scale, seed)


def run_fig12c(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Proven convergence time vs sampling rate (Figure 12c).

    Two L2-growth sources: the paper's published CAIDA anchors (exact
    closed-form reproduction), and a fit *measured* from this
    repository's synthetic CAIDA-like trace (``scale`` controls its
    length) -- the same methodology applied to our own workload.
    """
    from repro.analysis.empirical import fit_l2_growth, l2_growth_curve

    result = ExperimentResult(
        name="Figure 12c",
        description="Guaranteed convergence time (packets until Theorem 2 "
        "applies) vs geometric sampling rate, CAIDA L2 growth fit.",
    )
    measured_keys = caida_like(
        scaled(400_000, scale), n_flows=scaled(100_000, scale, 1000), seed=seed
    ).keys
    fits = {
        "paper CAIDA anchors": caida_l2_growth_coefficient(),
        "measured (synthetic CAIDA)": fit_l2_growth(l2_growth_curve(measured_keys)),
    }
    for source, (coefficient, exponent) in fits.items():
        for error_target in (0.01, 0.03, 0.05):
            for rate_pct in (2, 4, 6, 8, 10):
                packets = guaranteed_convergence_packets(
                    error_target, rate_pct / 100.0, coefficient, exponent
                )
                result.rows.append(
                    {
                        "l2_growth_source": source,
                        "error_target_pct": 100 * error_target,
                        "sampling_rate_pct": rate_pct,
                        "convergence_packets": packets,
                    }
                )
    result.notes.append(
        "Paper shape: higher sampling rate and looser error target converge "
        "sooner; the 1% target needs ~100M packets at small rates."
    )
    return result


def run(scale: float = 0.25, seed: int = 0):
    return run_fig12a(scale, seed), run_fig12b(scale, seed), run_fig12c(1.0, seed)


if __name__ == "__main__":
    for panel in run():
        print_result(panel)
        print()
