"""Figure 9: memory/throughput trade-off and component ablation.

(a) Throughput vs memory for 3% and 5% error targets: with NitroSketch,
more memory permits a smaller sampling probability (Theorem 2:
``p = 8 eps^-2 / w``), so throughput climbs with memory -- until the
sketch outgrows the LLC and cache misses claw the gain back.

(b) Improvement breakdown for UnivMon: vanilla -> +AVX hashing ->
+counter-array sampling -> +batched geometric sampling -> +reduced heap
updates.  Counter-array sampling is the biggest single win, exactly as
the paper reports.
"""

from __future__ import annotations

from repro.core import nitro_univmon
from repro.experiments.common import (
    UNIVMON_DEPTH,
    UNIVMON_LEVELS,
    scaled,
    simulate,
    vanilla_monitor,
)
from repro.experiments.report import ExperimentResult, print_result
from repro.switchsim import CostModel, CycleCosts, IntegrationMode, OVSDPDKPipeline
from repro.switchsim.daemon import MeasurementDaemon
from repro.switchsim.simulator import SwitchSimulator
from repro.traffic import caida_like, min_sized_stress

#: Speedup AVX gives hashing in the paper's implementation (per-lane
#: amortisation of xxhash over 8 keys).
SIMD_HASH_SPEEDUP = 2.2

#: Memory sweep of Figure 9a, bytes.
MEMORY_POINTS = tuple(m * 2**20 for m in (1, 2, 4, 8, 12, 16))


def _univmon_with_memory(total_bytes: int, probability: float, seed: int):
    """A Nitro-UnivMon whose total counter memory is ``total_bytes``."""
    width = max(64, total_bytes // (UNIVMON_LEVELS * UNIVMON_DEPTH * 4))
    return nitro_univmon(
        levels=UNIVMON_LEVELS,
        depth=UNIVMON_DEPTH,
        widths=width,
        k=100,
        probability=probability,
        seed=seed,
    )


def run_fig9a(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    """Throughput vs memory for error targets (Figure 9a)."""
    trace = min_sized_stress(
        scaled(1_000_000, scale), n_flows=scaled(100_000, scale, 1000), seed=seed
    )
    result = ExperimentResult(
        name="Figure 9a",
        description="NitroSketch+UnivMon throughput (Mpps) vs memory for 3%/5% "
        "error targets on 40G OVS-DPDK (p = 8/(eps^2 w), Theorem 2).",
    )
    for epsilon in (0.05, 0.03):
        for memory in MEMORY_POINTS:
            level_width = max(64, memory // (UNIVMON_LEVELS * UNIVMON_DEPTH * 4))
            probability = min(1.0, 8.0 / (epsilon * epsilon * level_width))
            monitor = _univmon_with_memory(memory, probability, seed)
            sim = simulate(
                OVSDPDKPipeline(),
                monitor,
                trace,
                mode=IntegrationMode.ALL_IN_ONE,
                name="nitro-univmon",
            )
            result.rows.append(
                {
                    "error_target_pct": 100 * epsilon,
                    "memory_mb": memory / 2**20,
                    "probability": probability,
                    "packet_rate_mpps": sim.capacity_mpps,
                }
            )
    result.notes.append(
        "Paper shape: throughput rises with memory (smaller p affordable); "
        "the 3% curve needs more memory than the 5% curve for the same rate."
    )
    return result


def run_fig9b(scale: float = 0.02, seed: int = 0) -> ExperimentResult:
    """Component ablation (Figure 9b)."""
    trace = caida_like(
        scaled(1_000_000, scale), n_flows=scaled(100_000, scale, 1000), seed=seed
    )
    result = ExperimentResult(
        name="Figure 9b",
        description="UnivMon throughput (Gbps, CAIDA @ 40G OVS-DPDK AIO) as "
        "NitroSketch components are applied cumulatively.",
    )
    simd_costs = CycleCosts(hash=CycleCosts().hash / SIMD_HASH_SPEEDUP)
    probability = 0.01

    def measure(monitor, cost_model, extra_probe_per_packet: bool):
        daemon = MeasurementDaemon(
            monitor, IntegrationMode.ALL_IN_ONE, name="ablation", use_batch=False
        )
        simulator = SwitchSimulator(OVSDPDKPipeline(), daemon, cost_model=cost_model)
        sim = simulator.run(trace, offered_gbps=40.0)
        if extra_probe_per_packet:
            # Without the reduced-heap optimisation every packet still
            # probes the top-keys table; add that cost back in.
            probes = daemon.ops.packets - getattr(monitor, "packets_sampled", 0)
            extra_cycles = max(probes, 0) * cost_model.costs.table_lookup
            per_packet = (
                sim.switch_cycles_per_packet
                + sim.sketch_cycles_per_packet
                + extra_cycles / max(daemon.ops.packets, 1)
            )
            capacity = cost_model.costs.clock_ghz * 1e9 / per_packet / 1e6
            from repro.metrics.throughput import mpps_to_gbps

            achieved = min(sim.offered_mpps, capacity)
            return mpps_to_gbps(achieved, trace.mean_packet_size), capacity
        return sim.achieved_gbps, sim.capacity_mpps

    stages = []
    stages.append(("UnivMon (vanilla)", vanilla_monitor("univmon", seed=seed), CostModel(), False))
    stages.append(("+AVX2 hashing", vanilla_monitor("univmon", seed=seed), CostModel(simd_costs), False))
    stages.append(
        (
            # Idea A alone: per-level wrapping with per-row coin flips
            # (the whole-structure integration is geometric-only).
            "+Counter array sampling",
            nitro_univmon(
                probability=probability,
                seed=seed,
                sampling="bernoulli",
                integration="per_level",
            ),
            CostModel(simd_costs),
            True,
        )
    )
    stages.append(
        (
            "+Batched geometric",
            nitro_univmon(probability=probability, seed=seed),
            CostModel(simd_costs),
            True,
        )
    )
    stages.append(
        (
            "+Reduce heap update",
            nitro_univmon(probability=probability, seed=seed),
            CostModel(simd_costs),
            False,
        )
    )
    for label, monitor, cost_model, extra_probe in stages:
        gbps, capacity = measure(monitor, cost_model, extra_probe)
        result.rows.append(
            {
                "configuration": label,
                "throughput_gbps": gbps,
                "capacity_mpps": capacity,
            }
        )
    result.notes.append(
        "Paper shape: cumulative gains reaching 40G; the paper credits "
        "counter-array sampling with the largest jump, while in this cost "
        "model the batched-geometric stage is (the Bernoulli realisation "
        "still pays d coin flips per packet)."
    )
    return result


def run(scale: float = 0.02, seed: int = 0):
    return run_fig9a(scale, seed), run_fig9b(scale, seed)


if __name__ == "__main__":
    for panel in run():
        print_result(panel)
        print()
