"""Empirical validation of Theorem 2's accuracy guarantee.

Monte-Carlo check that AlwaysLineRate NitroSketch with
``w = 8 eps^-2 p^-1`` and ``d = ceil(log2 1/delta)`` keeps
``Pr[|est - f_x| > eps * L2] <= delta`` once ``L2 >= 8 eps^-2 p^-1``
(the convergence requirement).  Runs many independent seeds and reports
the observed violation rate per flow class against ``delta``.
"""

from __future__ import annotations

import math

from repro.analysis.theory import l2_convergence_requirement, linerate_width, sketch_depth
from repro.core import NitroConfig, NitroSketch
from repro.experiments.report import ExperimentResult, print_result
from repro.sketches import CountSketch
from repro.traffic import zipf_keys
from repro.traffic.flows import true_counts


def run(
    scale: float = 1.0,
    seed: int = 0,
    epsilon: float = 0.15,
    delta: float = 0.125,
    probability: float = 0.1,
    trials: int = 40,
) -> ExperimentResult:
    """Run ``trials`` independent sketches and measure the error tail."""
    width = linerate_width(epsilon, probability)
    depth = sketch_depth(delta)
    n_packets = max(5000, int(60000 * scale))
    keys = zipf_keys(n_packets, 2000, 1.2, seed=seed)
    counts = true_counts(keys)
    l2 = math.sqrt(sum(v * v for v in counts.values()))
    requirement = l2_convergence_requirement(epsilon, probability)

    ranked = sorted(counts.items(), key=lambda item: -item[1])
    probes = {
        "top-1": [ranked[0][0]],
        "top-10": [key for key, _ in ranked[:10]],
        "medium": [key for key, _ in ranked[50:80]],
        "mice": [key for key, _ in ranked[-200:-100]],
    }

    violations = {name: 0 for name in probes}
    samples = {name: 0 for name in probes}
    for trial in range(trials):
        nitro = NitroSketch(
            CountSketch(depth, width, seed=1000 + trial),
            NitroConfig(probability=probability, top_k=0, seed=1000 + trial),
        )
        nitro.update_batch(keys)
        for name, probe_keys in probes.items():
            for key in probe_keys:
                samples[name] += 1
                if abs(nitro.query(int(key)) - counts[key]) > epsilon * l2:
                    violations[name] += 1

    result = ExperimentResult(
        name="Theorem 2 validation",
        description="Empirical Pr[|est - f| > eps*L2] vs the delta bound "
        "(eps=%.2f, delta=%.3f, p=%.2f, w=%d, d=%d, %d trials)."
        % (epsilon, delta, probability, width, depth, trials),
    )
    for name in probes:
        rate = violations[name] / max(samples[name], 1)
        result.rows.append(
            {
                "flow_class": name,
                "violation_rate": rate,
                "delta_bound": delta,
                "within_bound": rate <= delta,
            }
        )
    result.notes.append(
        "Stream L2 = %.0f vs convergence requirement %.0f (guarantee %s)."
        % (l2, requirement, "active" if l2 >= requirement else "NOT yet active")
    )
    result.notes.append(
        "Theorem 2 is a tail bound: observed violation rates should sit "
        "well below delta for every flow class."
    )
    return result


if __name__ == "__main__":
    print_result(run())
