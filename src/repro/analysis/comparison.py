"""Appendix-B space comparison: NitroSketch vs uniform packet sampling.

Theorem 12 of the paper: feeding a uniformly ``p``-sampled stream into a
Count Sketch requires

    w = Omega( eps^-2 p^-1  +  eps^-2 p^-1.5 m^-0.5 sqrt(log 1/delta) )

counters per row (so ``Omega(eps^-2 p^-1 log 1/delta +
eps^-2 p^-1.5 m^-0.5 log^1.5 1/delta)`` total), whereas NitroSketch needs
only ``O(eps^-2 p^-1 log 1/delta)`` total.  The asymptotic gap is a
multiplicative ``log 1/delta`` factor in the worst case.

These functions evaluate both bounds (with unit constants, since the
paper states them asymptotically) so benches can plot the analytical gap
alongside the measured accuracy gap.
"""

from __future__ import annotations

import math


def uniform_sampling_space_counters(
    epsilon: float, delta: float, probability: float, stream_length: float
) -> float:
    """Theorem 12 lower bound on total counters for uniform sampling."""
    if stream_length <= 0:
        raise ValueError("stream length must be positive")
    if not 0 < probability <= 1:
        raise ValueError("probability must be in (0, 1]")
    log_term = math.log(1.0 / delta)
    first = (epsilon**-2) * (probability**-1) * log_term
    second = (
        (epsilon**-2)
        * (probability**-1.5)
        * (stream_length**-0.5)
        * (log_term**1.5)
    )
    return first + second


def one_array_space_counters(epsilon: float, delta: float) -> float:
    """Strawman-1 (one-array Count Sketch) counters: ``eps^-2 / delta``."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    return (epsilon**-2) / delta


def space_ratio_uniform_vs_nitro(
    epsilon: float, delta: float, probability: float, stream_length: float
) -> float:
    """How much more space uniform sampling needs than NitroSketch.

    Ratio of the Theorem-12 bound to NitroSketch's
    ``eps^-2 p^-1 log(1/delta)`` (unit constants).  Always >= 1, and grows
    as ``sqrt(log(1/delta) / (p * m))`` dominates.
    """
    nitro = (epsilon**-2) * (probability**-1) * math.log(1.0 / delta)
    uniform = uniform_sampling_space_counters(epsilon, delta, probability, stream_length)
    return uniform / nitro
