"""NitroSketch theory: sizing rules and convergence math (Section 5).

Every formula here is stated in the paper:

* **Theorem 1** (Nitro + Count-Min, eps*L1): ``d = log2(1/delta)``,
  ``w = 4 / eps``, valid once ``L1 >= c * eps^-2 p^-1 sqrt(log 1/delta)``.
* **Theorem 2** (AlwaysLineRate Nitro + Count Sketch, eps*L2):
  ``w = 8 eps^-2 p^-1``, ``d = O(log 1/delta)``, valid once
  ``L2 >= 8 eps^-2 p^-1``.
* **Theorem 5 / Lemma 6** (AlwaysCorrect): ``w = 11 eps^-2 p^-1`` and the
  data-plane convergence test (Algorithm 1 line 11):
  ``T = 121 (1 + eps sqrt(p)) eps^-4 p^-2``, checked as
  ``median_i sum_y C_{i,y}^2 > T``.
* **Convergence time in practice** (end of Section 5): the CAIDA trace's
  L2 grows roughly like ``a * sqrt(m)`` on heavy-tailed traffic, so the
  packet count needed to reach ``L2 >= 8 eps^-2 p^-1`` can be predicted
  from a trace's fitted L2 growth -- used for Figure 12(c).
"""

from __future__ import annotations

import math


def _validate_eps_delta_p(epsilon: float, delta: float, probability: float) -> None:
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1), got %r" % (epsilon,))
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1), got %r" % (delta,))
    if not 0 < probability <= 1:
        raise ValueError("probability must be in (0, 1], got %r" % (probability,))


def sketch_depth(delta: float) -> int:
    """Rows needed for failure probability ``delta``: ``ceil(log2 1/delta)``."""
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1), got %r" % (delta,))
    return max(1, int(math.ceil(math.log2(1.0 / delta))))


def countmin_width(epsilon: float) -> int:
    """Theorem 1 width for Nitro + Count-Min: ``w = 4 / eps``."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1), got %r" % (epsilon,))
    return int(math.ceil(4.0 / epsilon))


def linerate_width(epsilon: float, probability: float) -> int:
    """Theorem 2 width for AlwaysLineRate Nitro: ``w = 8 eps^-2 p^-1``."""
    _validate_eps_delta_p(epsilon, 0.5, probability)
    return int(math.ceil(8.0 / (epsilon * epsilon * probability)))


def alwayscorrect_width(epsilon: float, probability: float) -> int:
    """Theorem 5 width for AlwaysCorrect Nitro: ``w = 11 eps^-2 p^-1``."""
    _validate_eps_delta_p(epsilon, 0.5, probability)
    return int(math.ceil(11.0 / (epsilon * epsilon * probability)))


def convergence_threshold(epsilon: float, probability: float) -> float:
    """AlwaysCorrect convergence threshold (Algorithm 1 line 11).

    ``T = 121 (1 + eps sqrt(p)) eps^-4 p^-2``.  Once the median row sum of
    squared counters exceeds T, Lemma 6 guarantees
    ``L2 >= 11 eps^-2 p^-1`` with probability ``1 - delta`` and sampling
    can begin.
    """
    _validate_eps_delta_p(epsilon, 0.5, probability)
    return (
        121.0
        * (1.0 + epsilon * math.sqrt(probability))
        / (epsilon**4 * probability**2)
    )


def l2_convergence_requirement(epsilon: float, probability: float) -> float:
    """Minimum stream L2 for Theorem 2 to apply: ``8 eps^-2 p^-1``."""
    _validate_eps_delta_p(epsilon, 0.5, probability)
    return 8.0 / (epsilon * epsilon * probability)


def guaranteed_convergence_packets(
    epsilon: float,
    probability: float,
    l2_growth_coefficient: float,
    l2_growth_exponent: float = 0.5,
) -> float:
    """Packets until guaranteed convergence on a trace with fitted L2 growth.

    Models the trace's second norm as ``L2(m) = a * m**b`` (the paper
    cites CAIDA 2016: L2 ~= 1.28e6 at 10M packets and 1.03e7 at 100M,
    i.e. ``b ~= 0.9``; pure uniform traffic has ``b = 0.5``).  Solves
    ``L2(m) >= 8 eps^-2 p^-1`` for ``m``.
    """
    if l2_growth_coefficient <= 0:
        raise ValueError("growth coefficient must be positive")
    if l2_growth_exponent <= 0:
        raise ValueError("growth exponent must be positive")
    requirement = l2_convergence_requirement(epsilon, probability)
    return (requirement / l2_growth_coefficient) ** (1.0 / l2_growth_exponent)


def caida_l2_growth_coefficient() -> tuple:
    """The (a, b) fit of ``L2 = a * m**b`` to the paper's CAIDA anchors.

    Section 5 reports L2 ~= 1.28e6 at m = 10M and ~= 1.03e7 at m = 100M.
    Returns the exact two-point power-law fit.
    """
    m1, l1 = 10e6, 1.28e6
    m2, l2 = 100e6, 1.03e7
    exponent = math.log(l2 / l1) / math.log(m2 / m1)
    coefficient = l1 / (m1**exponent)
    return coefficient, exponent


def l1_error_bound(epsilon: float, l1_norm: float) -> float:
    """Theorem 1 point-query error bound: ``eps * L1``.

    With Count-Min-style (unsigned) counters, every estimate is within
    ``eps * ||f||_1`` of truth with probability ``1 - delta`` -- the
    bound the live :class:`~repro.telemetry.audit.GuaranteeMonitor`
    tracks for unsigned sketches, using the shadow auditor's exact
    stream mass as ``L1``.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1), got %r" % (epsilon,))
    if l1_norm < 0:
        raise ValueError("l1_norm must be >= 0, got %r" % (l1_norm,))
    return epsilon * l1_norm


def l2_error_bound(epsilon: float, l2_squared: float) -> float:
    """Theorem 2/5 point-query error bound: ``eps * L2``.

    With Count-Sketch-style (signed) counters the guarantee is against
    the second norm; live monitoring estimates ``L2^2`` with the
    median-row ``sum C^2`` AMS statistic the AlwaysCorrect controller
    already maintains (:meth:`CanonicalSketch.l2_squared_estimate`).
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must be in (0, 1), got %r" % (epsilon,))
    if l2_squared < 0:
        raise ValueError("l2_squared must be >= 0, got %r" % (l2_squared,))
    return epsilon * math.sqrt(l2_squared)


def nitro_space_counters(epsilon: float, delta: float, probability: float) -> int:
    """Total NitroSketch counters: ``O(eps^-2 p^-1 log 1/delta)``."""
    _validate_eps_delta_p(epsilon, delta, probability)
    return linerate_width(epsilon, probability) * sketch_depth(delta)


def expected_sampled_rows_per_packet(depth: int, probability: float) -> float:
    """Expected bottleneck operations per packet under row sampling: ``d*p``.

    This is the quantity NitroSketch drives below 1 (paper: "the expected
    number of sampled counter arrays per packet is dp = o(1)").
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    if not 0 < probability <= 1:
        raise ValueError("probability must be in (0, 1]")
    return depth * probability
