"""Closed-form theory from the paper (Section 5, Appendices A and B).

:mod:`repro.analysis.theory` parameterises the NitroSketch guarantees
(Theorems 1, 2 and 5) -- sketch sizing, convergence thresholds, and
convergence-time predictions -- and :mod:`repro.analysis.comparison`
implements the Appendix-B space bounds for uniform packet sampling so the
benches can contrast the two analytically as well as empirically.
"""

from repro.analysis.theory import (
    linerate_width,
    alwayscorrect_width,
    countmin_width,
    sketch_depth,
    convergence_threshold,
    l2_convergence_requirement,
    guaranteed_convergence_packets,
    nitro_space_counters,
    expected_sampled_rows_per_packet,
)
from repro.analysis.empirical import (
    l2_of_prefix,
    l2_growth_curve,
    fit_l2_growth,
    measured_convergence_packets,
)
from repro.analysis.comparison import (
    uniform_sampling_space_counters,
    one_array_space_counters,
    space_ratio_uniform_vs_nitro,
)

__all__ = [
    "linerate_width",
    "alwayscorrect_width",
    "countmin_width",
    "sketch_depth",
    "convergence_threshold",
    "l2_convergence_requirement",
    "guaranteed_convergence_packets",
    "nitro_space_counters",
    "expected_sampled_rows_per_packet",
    "uniform_sampling_space_counters",
    "one_array_space_counters",
    "space_ratio_uniform_vs_nitro",
    "l2_of_prefix",
    "l2_growth_curve",
    "fit_l2_growth",
    "measured_convergence_packets",
]
