"""Empirical L2-growth measurement (Section 5's "convergence time in
practice").

The paper anchors its convergence predictions in measured CAIDA L2
values ("the first 10M source IPs ... has a second norm of L2 ~ 1.28e6
while 100M packets gives L2 ~ 1.03e7").  This module produces the same
kind of anchors for any trace: the L2 of growing prefixes, a two-point
or least-squares power-law fit ``L2(m) = a * m**b``, and the resulting
guaranteed-convergence packet counts -- so Figure 12c can be driven by
*your* traffic instead of the paper's constants.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.theory import guaranteed_convergence_packets


def l2_of_prefix(keys: "np.ndarray", length: int) -> float:
    """The L2 norm of the first ``length`` packets' frequency vector."""
    if length <= 0:
        return 0.0
    prefix = np.asarray(keys)[:length]
    _, counts = np.unique(prefix, return_counts=True)
    return float(np.sqrt(np.sum(counts.astype(np.float64) ** 2)))


def l2_growth_curve(
    keys: "np.ndarray", points: int = 8
) -> List[Tuple[int, float]]:
    """(packets, L2) at geometrically spaced prefixes of the stream."""
    total = len(keys)
    if total < 2:
        raise ValueError("need at least 2 packets to measure growth")
    lengths = np.unique(
        np.geomspace(max(total // 2**points, 16), total, num=points).astype(int)
    )
    return [(int(length), l2_of_prefix(keys, int(length))) for length in lengths]


def fit_l2_growth(curve: Sequence[Tuple[int, float]]) -> Tuple[float, float]:
    """Least-squares fit of ``L2 = a * m**b`` in log space.

    Returns ``(a, b)``.  ``b`` is 0.5 for uniform traffic and approaches
    1.0 as a few flows dominate (the paper's CAIDA fit gives b ~ 0.9).
    """
    usable = [(m, l2) for m, l2 in curve if m > 0 and l2 > 0]
    if len(usable) < 2:
        raise ValueError("need at least two positive (m, L2) points to fit")
    log_m = np.log([m for m, _ in usable])
    log_l2 = np.log([l2 for _, l2 in usable])
    exponent, intercept = np.polyfit(log_m, log_l2, 1)
    return float(math.exp(intercept)), float(exponent)


def measured_convergence_packets(
    keys: "np.ndarray", epsilon: float, probability: float
) -> float:
    """Guaranteed-convergence packets predicted from a trace's own L2 fit."""
    coefficient, exponent = fit_l2_growth(l2_growth_curve(keys))
    return guaranteed_convergence_packets(epsilon, probability, coefficient, exponent)
