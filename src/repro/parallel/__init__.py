"""True multi-core data plane: shared-memory parallel ingest.

The single-core kernels (BENCH_kernels.json) are a per-core ceiling;
real software-sketch throughput is won on the parallel ingest
architecture.  This package is that architecture:

* :mod:`repro.parallel.shard` -- RSS flow-hash shard assignment (same
  hash as :class:`~repro.switchsim.MultiCoreSimulator`, so modeled and
  measured runs shard identically) and epoch windowing;
* :mod:`repro.parallel.mailbox` -- lock-free seqlock mailboxes in
  ``multiprocessing.shared_memory`` carrying CRC-checked NSKW epoch
  frames from workers to the parent;
* :mod:`repro.parallel.engine` -- the
  :class:`~repro.parallel.engine.ParallelIngestEngine`: worker
  processes ingesting disjoint shards under a ``merge`` (private
  monitor, bit-exact epoch merge) or ``shared`` (shared-memory counter
  banks) strategy, with crash recovery and corruption detection;
* :mod:`repro.parallel.factories` -- picklable monitor factories
  honouring the per-shard seed-derivation contract.

``nitrosketch selfcheck --suite parallel`` proves the engine against
its in-process sequential oracle; ``nitrosketch parallel`` and
``python -m repro.experiments.parallel_scaling`` measure it.
"""

from repro.parallel.engine import (
    ParallelIngestEngine,
    ParallelRunResult,
    ShardCorruptionError,
    WorkerCrashError,
    WorkerSpec,
    WorkerStats,
)
from repro.parallel.factories import NitroFactory, VanillaFactory
from repro.parallel.mailbox import (
    EpochMailbox,
    MailboxTimeout,
    parallel_unavailable_reason,
)
from repro.parallel.shard import (
    MERGE_SHARD,
    RSS_SALT,
    epoch_bounds,
    rss_assignments,
    shard_counts,
)

__all__ = [
    "ParallelIngestEngine",
    "ParallelRunResult",
    "WorkerSpec",
    "WorkerStats",
    "WorkerCrashError",
    "ShardCorruptionError",
    "NitroFactory",
    "VanillaFactory",
    "EpochMailbox",
    "MailboxTimeout",
    "parallel_unavailable_reason",
    "MERGE_SHARD",
    "RSS_SALT",
    "rss_assignments",
    "shard_counts",
    "epoch_bounds",
]
