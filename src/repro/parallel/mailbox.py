"""Lock-free epoch hand-off: seqlock mailboxes in shared memory.

Each worker owns one single-producer/single-consumer mailbox through
which it publishes its per-epoch NSKW frame to the parent.  The
protocol is a classic sequence-numbered seqlock plus an explicit ack
slot for flow control:

* header (eight int64 slots, 64 bytes)::

      SEQ    writer-owned sequence number; odd while a write is in
             flight, even when the payload is stable
      ACK    reader-owned: highest epoch the parent has consumed
             (-1 initially) -- the writer's flow-control signal
      LEN    payload length in bytes
      EPOCH  epoch number the payload describes
      FINAL  1 when this is the worker's last frame

* writer: wait until ``ACK >= epoch - 1`` (the parent consumed the
  previous frame, so overwriting is safe), bump SEQ to odd, copy the
  payload, publish LEN/EPOCH/FINAL, bump SEQ to even.
* reader: snapshot SEQ; if even and unseen, copy the payload out and
  re-check SEQ -- an unchanged sequence proves the copy was not torn.
  Acking is a separate step so the parent can CRC-validate the frame
  *before* releasing the slot.

No locks, no semaphores: one writer, one reader, and the payload is a
CRC-checked NSKW frame, so even a torn read that slipped past the
seqlock (it cannot, but defense in depth is cheap) would be rejected at
decode time.  The mailbox survives its writer crashing mid-publish: a
respawned worker re-normalises SEQ to odd before writing, so a
half-written frame is never observed as stable.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised via parallel_unavailable_reason
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Header layout (int64 slot indices).
_SEQ, _ACK, _LEN, _EPOCH, _FINAL = 0, 1, 2, 3, 4
_HEADER_BYTES = 64
_POLL_SECONDS = 0.0002


class MailboxTimeout(RuntimeError):
    """A publish or consume exceeded its deadline."""


def parallel_unavailable_reason() -> Optional[str]:
    """Why the parallel engine cannot run here, or None when it can.

    ``multiprocessing.shared_memory`` needs a POSIX shm mount (or the
    Windows equivalent); sandboxes and some containers lack it.  Callers
    (tests, selfcheck) skip gracefully on a non-None reason.
    """
    if _shared_memory is None:
        return "multiprocessing.shared_memory is not importable"
    try:
        probe = _shared_memory.SharedMemory(create=True, size=8)
    except Exception as exc:  # OSError, PermissionError, FileNotFoundError
        return "shared memory unavailable: %s" % (exc,)
    try:
        probe.close()
        probe.unlink()
    except Exception:
        pass
    return None


def create_block(nbytes: int):
    """Create a shared-memory block (parent side; parent must unlink)."""
    if _shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is not available")
    return _shared_memory.SharedMemory(create=True, size=max(1, nbytes))


def attach_block(name: str):
    """Attach to an existing block (child side).

    Workers share the parent's resource-tracker process, whose name
    cache is a set: the attach-side duplicate registration is a no-op
    and the parent's single ``unlink`` clears it.  Workers therefore
    must NOT unregister (that would steal the parent's entry and make
    the final unlink complain), and must not unlink -- the creating
    side owns the segment's lifetime.
    """
    if _shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is not available")
    return _shared_memory.SharedMemory(name=name)


class EpochMailbox:
    """One worker's seqlock mailbox (see module docstring).

    The parent constructs with :meth:`create` and eventually calls
    :meth:`destroy`; workers attach by name with :meth:`attach` and only
    :meth:`close`.
    """

    def __init__(self, shm, capacity: int, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self.capacity = capacity
        self._header = np.frombuffer(shm.buf, dtype=np.int64, count=8)
        self._payload = np.frombuffer(
            shm.buf, dtype=np.uint8, offset=_HEADER_BYTES, count=capacity
        )
        # Reader-side bookkeeping (meaningless on the writer side).
        self._consumed_seq = 0
        self._pending_seq = 0

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, capacity: int) -> "EpochMailbox":
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        shm = create_block(_HEADER_BYTES + capacity)
        mailbox = cls(shm, capacity, owner=True)
        mailbox._header[:] = 0
        mailbox._header[_ACK] = -1
        return mailbox

    @classmethod
    def attach(cls, name: str, capacity: int) -> "EpochMailbox":
        return cls(attach_block(name), capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        # Views into shm.buf must die before close() or it raises.
        self._header = None
        self._payload = None
        self._shm.close()

    def destroy(self) -> None:
        if not self._owner:
            raise RuntimeError("only the creating side may destroy a mailbox")
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    # -- writer side -----------------------------------------------------------

    def publish(
        self,
        payload: bytes,
        epoch: int,
        final: bool = False,
        timeout: float = 120.0,
    ) -> float:
        """Publish one epoch frame; blocks until the previous was acked.

        Returns the flow-control wait in seconds (time spent blocked on
        the parent's ack of the previous frame) -- the back-pressure
        signal the profiler's ``mailbox_publish`` stage reports.
        """
        if len(payload) > self.capacity:
            raise ValueError(
                "payload of %d bytes exceeds mailbox capacity %d"
                % (len(payload), self.capacity)
            )
        wait_start = time.perf_counter()
        deadline = wait_start + timeout
        while int(self._header[_ACK]) < epoch - 1:
            if time.perf_counter() > deadline:
                raise MailboxTimeout(
                    "parent never acked epoch %d (ack=%d)"
                    % (epoch - 1, int(self._header[_ACK]))
                )
            time.sleep(_POLL_SECONDS)
        waited = time.perf_counter() - wait_start
        seq = int(self._header[_SEQ])
        # Next odd value: +1 from even (normal), +2 from odd (a previous
        # writer died mid-publish; never step through even mid-write).
        self._header[_SEQ] = seq + (1 if seq % 2 == 0 else 2)
        self._payload[: len(payload)] = np.frombuffer(payload, dtype=np.uint8)
        self._header[_LEN] = len(payload)
        self._header[_EPOCH] = epoch
        self._header[_FINAL] = 1 if final else 0
        self._header[_SEQ] += 1  # even: stable
        return waited

    # -- reader side -----------------------------------------------------------

    def poll(self) -> Optional[Tuple[bytes, int, bool]]:
        """Non-blocking read of a new stable frame; None when absent.

        Does *not* ack: call :meth:`ack` after the frame validated, so a
        corrupt frame never releases the slot it would be merged from.
        """
        seq = int(self._header[_SEQ])
        if seq % 2 == 1 or seq == self._consumed_seq:
            return None
        length = int(self._header[_LEN])
        epoch = int(self._header[_EPOCH])
        final = bool(self._header[_FINAL])
        payload = bytes(self._payload[:length])
        if int(self._header[_SEQ]) != seq:
            return None  # torn: writer restarted mid-copy; retry later
        self._pending_seq = seq
        return payload, epoch, final

    def ack(self, epoch: int) -> None:
        """Mark the last polled frame consumed; unblocks the writer."""
        self._consumed_seq = self._pending_seq
        self._header[_ACK] = epoch
