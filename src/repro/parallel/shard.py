"""RSS flow-hash sharding and epoch slicing for the parallel data plane.

A multi-queue NIC distributes packets to receive queues by hashing the
flow 5-tuple (RSS); every packet of a flow lands on one queue, so the
per-queue sketch stays per-flow-consistent and shard merges never split
a flow's counts across hash disagreements.  This module reproduces that
assignment in software with the same ``MultiplyShiftHash(workers,
rss_seed ^ RSS_SALT)`` the :class:`~repro.switchsim.MultiCoreSimulator`
uses -- the modeled simulator and the measured engine shard a trace
*identically*, so their results are directly comparable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.hashing.families import MultiplyShiftHash

#: Salt mixed into the RSS seed; matches ``MultiCoreSimulator`` so both
#: the cost-model path and the measured path produce the same shards.
RSS_SALT = 0x2552

#: Shard-id sentinel handed to a monitor factory when constructing the
#: control plane's merge base: the monitor that only ever receives
#: merges and never ingests.  Factories must return a monitor built
#: from the *base* seed for it (see ``NitroConfig.for_shard``).
MERGE_SHARD = -1

#: RSS queue counts fit in a byte on every NIC this models; keeping the
#: assignment array uint8 makes the shared input block 8x smaller than
#: the keys it annotates.
MAX_WORKERS = 255


def rss_assignments(
    keys: "np.ndarray", workers: int, rss_seed: int = 0
) -> "np.ndarray":
    """Per-packet worker assignment (uint8) by RSS flow hash.

    Deterministic in (keys, workers, rss_seed); all packets of a flow
    map to the same worker.
    """
    if not 1 <= workers <= MAX_WORKERS:
        raise ValueError(
            "workers must be in [1, %d], got %d" % (MAX_WORKERS, workers)
        )
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if workers == 1:
        return np.zeros(len(keys), dtype=np.uint8)
    rss = MultiplyShiftHash(workers, rss_seed ^ RSS_SALT)
    return rss.batch(keys).astype(np.uint8)


def shard_counts(assignments: "np.ndarray", workers: int) -> "np.ndarray":
    """Packets per worker under an assignment vector."""
    return np.bincount(assignments, minlength=workers).astype(np.int64)


def epoch_bounds(
    n_packets: int, epoch_packets: Optional[int]
) -> List[Tuple[int, int]]:
    """Split ``[0, n_packets)`` into epoch [start, stop) windows.

    ``epoch_packets=None`` (or a window at least as large as the trace)
    means one epoch.  An empty trace still gets one empty epoch so the
    hand-off protocol runs end to end -- workers always publish at least
    one (final) frame, which is what lets the parent distinguish "no
    traffic" from "worker died before reporting".
    """
    if epoch_packets is not None and epoch_packets < 1:
        raise ValueError("epoch_packets must be >= 1, got %d" % epoch_packets)
    if n_packets <= 0:
        return [(0, 0)]
    if epoch_packets is None or epoch_packets >= n_packets:
        return [(0, n_packets)]
    return [
        (start, min(start + epoch_packets, n_packets))
        for start in range(0, n_packets, epoch_packets)
    ]
