"""The parallel ingest engine: multiprocess workers over RSS shards.

This is the repo's real multi-core data plane.  ``N`` worker processes
each own one RSS flow-hash shard of a trace and ingest it through the
same fused batch kernels the single-core path uses; per epoch, each
worker publishes a CRC-checked NSKW frame through its lock-free
:class:`~repro.parallel.mailbox.EpochMailbox`, and the parent merges the
shards into one monitor -- the paper's control plane "periodically
receives sketching data from the data plane module" (Section 6), here
with the data plane actually spread across processes.

Two strategies, both verified against an in-process sequential oracle
(:meth:`ParallelIngestEngine.run_sequential`):

``merge``
    Each worker runs a *private* monitor and ships its full serialized
    state per epoch; the parent merges via the bit-exact-verified
    ``merge`` methods.  Deterministic: parallel output is byte-identical
    to the sequential oracle, independent of scheduling, because every
    worker's sampler stream is private and derived from (seed, shard).

``shared``
    Workers scatter-add into per-worker counter banks inside one
    ``multiprocessing.shared_memory`` block (each worker owns a disjoint
    bank, so no locks and no atomics are needed); the parent combines
    with ``banks.sum(axis=0)``.  For vanilla sketches this is bit-exact
    against a single sketch over the whole trace (integral float64 adds
    commute exactly below 2**53); for NitroSketch it lands inside the
    Theorem-2 envelope.  Epoch frames carry metadata only, so the
    hand-off cost is independent of sketch size.

Fault handling: a worker that dies mid-epoch (any nonzero exit) is
respawned -- from its last published frame under ``merge`` (bit-exact
resume, the frame *is* a checkpoint) or from a zeroed bank under
``shared`` (exact replay of its shard) -- and a frame whose CRC fails
raises :class:`ShardCorruptionError` rather than merging garbage.

Throughput accounting is honest about the host (see
:class:`ParallelRunResult`): per-worker busy time is measured with both
wall and CPU clocks, and the aggregate-of-shards rate is reported next
to the end-to-end wall rate instead of being passed off as it.
"""

from __future__ import annotations

import math
import os
import sys
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.control.export import deserialize_epoch_frame, serialize_epoch_frame
from repro.faults.inject import FrameCorruptionPlan, WorkerCrashPlan, flip_bytes
from repro.kernels.scatter import shared_counter_banks
from repro.parallel.mailbox import (
    EpochMailbox,
    MailboxTimeout,
    attach_block,
    create_block,
    parallel_unavailable_reason,
)
from repro.parallel.shard import MERGE_SHARD, epoch_bounds, rss_assignments
from repro.telemetry import NULL_TELEMETRY
from repro.telemetry.profile import NULL_PROFILER
from repro.telemetry.spans import Span, make_span_id, make_trace_id

STRATEGIES = ("merge", "shared")


class WorkerCrashError(RuntimeError):
    """A worker died and the restart budget is exhausted."""

    def __init__(self, worker: int, exitcode: Optional[int], restarts: int) -> None:
        super().__init__(
            "worker %d died (exit code %r) after %d restart(s); restart "
            "budget exhausted" % (worker, exitcode, restarts)
        )
        self.worker = worker
        self.exitcode = exitcode
        self.restarts = restarts


class ShardCorruptionError(RuntimeError):
    """A worker's epoch frame failed validation; its shard is suspect."""

    def __init__(self, worker: int, epoch: int, reason: str) -> None:
        super().__init__(
            "corrupt epoch frame from worker %d at epoch %d: %s"
            % (worker, epoch, reason)
        )
        self.worker = worker
        self.epoch = epoch


# ---------------------------------------------------------------------------
# Worker side.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs, picklable under ``spawn``."""

    factory: Callable[[int], Any]
    worker: int
    workers: int
    strategy: str
    keys_name: str
    assign_name: str
    n_packets: int
    mailbox_name: str
    mailbox_capacity: int
    batch_size: int
    epoch_packets: Optional[int]
    reset_per_epoch: bool
    depth: int
    width: int
    bank_name: Optional[str] = None
    start_epoch: int = 0
    resume_frame: Optional[bytes] = None
    crash_plan: Optional[WorkerCrashPlan] = None
    corruption_plan: Optional[FrameCorruptionPlan] = None
    publish_timeout: float = 120.0
    #: Stable identity of the run; each epoch's trace id is derived from
    #: it, so a respawned worker reproduces its predecessor's span ids.
    trace_parts: Optional[Tuple] = None


def _fresh_stats() -> Dict[str, float]:
    return {
        "packets": 0,
        "batches": 0,
        "busy_wall": 0.0,
        "busy_cpu": 0.0,
        "publish_wait": 0.0,
    }


def _stats_from_meta(meta: Dict[str, Any]) -> Dict[str, float]:
    return {
        "packets": int(meta.get("packets_total", 0)),
        "batches": int(meta.get("batches_total", 0)),
        "busy_wall": float(meta.get("busy_wall_seconds", 0.0)),
        "busy_cpu": float(meta.get("busy_cpu_seconds", 0.0)),
        "publish_wait": float(meta.get("publish_wait_seconds", 0.0)),
    }


def _epoch_shard_keys(
    keys: "np.ndarray",
    assignments: "np.ndarray",
    worker: int,
    bounds: Tuple[int, int],
) -> "np.ndarray":
    start, stop = bounds
    window = keys[start:stop]
    return window[assignments[start:stop] == worker]


def _ingest_epoch(
    monitor,
    shard_keys: "np.ndarray",
    batch_size: int,
    stats: Dict[str, float],
    crash_at_batch: Optional[int] = None,
    crash_exit_code: int = 0,
) -> None:
    """Ingest one epoch's shard in batches, timing only the ingest.

    Shared verbatim by worker processes and the sequential oracle so the
    two paths perform the *same* ``update_batch`` call sequence -- the
    bit-exactness claim rests on that.  ``crash_at_batch`` (fault
    injection) hard-exits before that batch runs; a value past the last
    batch crashes after ingest but before the frame is published.
    """
    n = len(shard_keys)
    batches = int(math.ceil(n / batch_size)) if n else 0
    for index in range(batches):
        if crash_at_batch is not None and index == crash_at_batch:
            os._exit(crash_exit_code)
        chunk = shard_keys[index * batch_size : (index + 1) * batch_size]
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        monitor.update_batch(chunk)
        stats["busy_wall"] += time.perf_counter() - wall0
        stats["busy_cpu"] += time.process_time() - cpu0
        stats["packets"] += len(chunk)
        stats["batches"] += 1
    if crash_at_batch is not None and crash_at_batch >= batches:
        os._exit(crash_exit_code)


def _owned_sketch(monitor):
    """The canonical sketch whose counter grid a monitor owns."""
    return monitor.sketch if hasattr(monitor, "sketch") else monitor


def _frame_meta(
    worker: int,
    epoch: int,
    n_epochs: int,
    packets_epoch: int,
    stats: Dict[str, float],
    monitor,
    strategy: str,
) -> Dict[str, Any]:
    meta: Dict[str, Any] = {
        "worker": worker,
        "epoch": epoch,
        "epochs": n_epochs,
        "packets_epoch": int(packets_epoch),
        "packets_total": int(stats["packets"]),
        "batches_total": int(stats["batches"]),
        "busy_wall_seconds": float(stats["busy_wall"]),
        "busy_cpu_seconds": float(stats["busy_cpu"]),
        "publish_wait_seconds": float(stats.get("publish_wait", 0.0)),
        "final": epoch == n_epochs - 1,
    }
    if strategy == "shared":
        # Counter state travels through the shared banks; everything the
        # merge base cannot recover from counters rides in the meta.
        sketch = _owned_sketch(monitor)
        if hasattr(sketch, "total"):
            meta["sketch_total"] = float(sketch.total)
        if hasattr(monitor, "packets_sampled"):
            meta["packets_sampled"] = int(monitor.packets_sampled)
        topk = getattr(monitor, "topk", None)
        if topk is not None:
            meta["topk_keys"] = [int(key) for key in topk.keys()]
    return meta


def _worker_main(spec: WorkerSpec) -> None:
    """Process entry point: ingest my shard, publish per-epoch frames."""
    keys_shm = assign_shm = bank_shm = mailbox = None
    try:
        keys_shm = attach_block(spec.keys_name)
        assign_shm = attach_block(spec.assign_name)
        keys = np.frombuffer(keys_shm.buf, dtype=np.int64, count=spec.n_packets)
        assignments = np.frombuffer(
            assign_shm.buf, dtype=np.uint8, count=spec.n_packets
        )
        mailbox = EpochMailbox.attach(spec.mailbox_name, spec.mailbox_capacity)

        if spec.resume_frame is not None:
            meta, monitor = deserialize_epoch_frame(spec.resume_frame)
            if monitor is None:
                raise RuntimeError("resume frame carries no monitor state")
            stats = _stats_from_meta(meta)
        else:
            monitor = spec.factory(spec.worker)
            stats = _fresh_stats()

        if spec.strategy == "shared":
            bank_shm = attach_block(spec.bank_name)
            banks = shared_counter_banks(
                bank_shm.buf, spec.workers, spec.depth, spec.width
            )
            bank = banks[spec.worker]
            sketch = _owned_sketch(monitor)
            if sketch.counters.shape != bank.shape:
                raise RuntimeError(
                    "factory sketch is %r, bank is %r"
                    % (sketch.counters.shape, bank.shape)
                )
            # Own my bank: zero it (a respawn replays from scratch) and
            # rebind the counter grid so every scatter-add of the fused
            # kernels lands in shared memory.  Bank slices of the 3-D
            # block are C-contiguous, so the flat fast path survives.
            bank[:] = 0.0
            sketch.counters = bank

        bounds = epoch_bounds(spec.n_packets, spec.epoch_packets)
        n_epochs = len(bounds)
        # The publish span of epoch e is only measurable after e's frame
        # left; it rides in frame e+1 (the final epoch's is never shipped).
        pending_publish_span: Optional[Dict[str, Any]] = None
        for epoch in range(spec.start_epoch, n_epochs):
            shard_keys = _epoch_shard_keys(
                keys, assignments, spec.worker, bounds[epoch]
            )
            crash_at = None
            exit_code = 0
            plan = spec.crash_plan
            if plan is not None and plan.worker == spec.worker and plan.epoch == epoch:
                batches = int(math.ceil(len(shard_keys) / spec.batch_size))
                crash_at = int(batches * plan.fraction)
                exit_code = plan.exit_code
            ingest_wall0 = time.time()
            ingest_perf0 = time.perf_counter()
            _ingest_epoch(
                monitor, shard_keys, spec.batch_size, stats, crash_at, exit_code
            )
            ingest_duration = time.perf_counter() - ingest_perf0
            meta = _frame_meta(
                spec.worker,
                epoch,
                n_epochs,
                len(shard_keys),
                stats,
                monitor,
                spec.strategy,
            )
            trace_id = ingest_span_id = None
            if spec.trace_parts is not None:
                trace_id = make_trace_id(*spec.trace_parts, epoch)
                epoch_span_id = make_span_id(trace_id, "epoch")
                ingest_span_id = make_span_id(trace_id, "worker.ingest", spec.worker)
                spans = [
                    Span(
                        trace_id=trace_id,
                        span_id=ingest_span_id,
                        parent_id=epoch_span_id,
                        name="worker.ingest",
                        start=ingest_wall0,
                        duration=ingest_duration,
                        fields={
                            "worker": spec.worker,
                            "shard": spec.worker,
                            "epoch": epoch,
                            "packets": int(len(shard_keys)),
                        },
                    ).as_dict()
                ]
                if pending_publish_span is not None:
                    spans.append(pending_publish_span)
                meta["trace"] = {
                    "trace_id": trace_id,
                    "epoch_span_id": epoch_span_id,
                    "span_id": ingest_span_id,
                    "spans": spans,
                }
            payload = serialize_epoch_frame(
                meta, monitor if spec.strategy == "merge" else None
            )
            corruption = spec.corruption_plan
            if (
                corruption is not None
                and corruption.worker == spec.worker
                and corruption.epoch == epoch
            ):
                payload = flip_bytes(payload, corruption.count, corruption.seed)
            publish_wall0 = time.time()
            publish_perf0 = time.perf_counter()
            waited = mailbox.publish(
                payload,
                epoch,
                final=(epoch == n_epochs - 1),
                timeout=spec.publish_timeout,
            )
            stats["publish_wait"] += waited
            if trace_id is not None:
                pending_publish_span = Span(
                    trace_id=trace_id,
                    span_id=make_span_id(trace_id, "mailbox.publish", spec.worker),
                    parent_id=ingest_span_id,
                    name="mailbox.publish",
                    start=publish_wall0,
                    duration=time.perf_counter() - publish_perf0,
                    fields={
                        "worker": spec.worker,
                        "epoch": epoch,
                        "wait_seconds": round(waited, 6),
                    },
                ).as_dict()
            if spec.strategy == "merge" and spec.reset_per_epoch:
                monitor.reset()
    except Exception:
        traceback.print_exc(file=sys.stderr)
        sys.stderr.flush()
        os._exit(1)
    # Hard-exit instead of returning: under fork the child inherited the
    # parent's SharedMemory handles and numpy views, and interpreter
    # shutdown would trip over their __del__ (exported buffer pointers).
    # The kernel reclaims every mapping on exit; nothing needs closing.
    sys.stdout.flush()
    sys.stderr.flush()
    os._exit(0)


# ---------------------------------------------------------------------------
# Results.
# ---------------------------------------------------------------------------


@dataclass
class WorkerStats:
    """Measured per-worker accounting, from the worker's final frame."""

    worker: int
    packets: int
    batches: int
    epochs: int
    busy_wall_seconds: float
    busy_cpu_seconds: float
    restarts: int = 0
    #: Seconds spent blocked in mailbox flow control (back-pressure).
    publish_wait_seconds: float = 0.0

    @property
    def busy_mpps(self) -> float:
        """Packets over measured wall time spent inside ingest calls."""
        if self.busy_wall_seconds <= 0:
            return 0.0
        return self.packets / self.busy_wall_seconds / 1e6

    @property
    def cpu_mpps(self) -> float:
        """Packets over measured CPU seconds -- the per-core capacity."""
        if self.busy_cpu_seconds <= 0:
            return 0.0
        return self.packets / self.busy_cpu_seconds / 1e6


@dataclass
class ParallelRunResult:
    """One measured parallel (or sequential-oracle) ingest run.

    Every rate here is *measured*, never modeled, and each one says what
    clock it came from:

    * :attr:`wall_mpps` -- trace packets over end-to-end wall seconds
      (spawn to final merge).  On a machine with >= workers free cores
      this is the headline number; on a smaller host the workers
      time-slice and it degrades toward single-core throughput.
    * :attr:`aggregate_cpu_mpps` -- sum over workers of shard packets
      over that worker's measured *CPU* seconds.  This is the DPDK-style
      per-core capacity aggregate: immune to time-slicing, it equals the
      wall aggregate exactly when every worker owns a core, and is the
      scaling number BENCH_parallel.json gates on.
    * :attr:`aggregate_busy_mpps` -- same sum over per-worker busy
      *wall* seconds (includes involuntary preemption).
    """

    strategy: str
    workers: int
    packets: int
    epochs: int
    wall_seconds: float
    worker_stats: List[WorkerStats]
    monitor: Any
    restarts: int = 0
    host_cpus: int = field(default_factory=lambda: os.cpu_count() or 1)
    start_method: str = "fork"

    @property
    def wall_mpps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.packets / self.wall_seconds / 1e6

    @property
    def aggregate_cpu_mpps(self) -> float:
        return sum(stats.cpu_mpps for stats in self.worker_stats)

    @property
    def aggregate_busy_mpps(self) -> float:
        return sum(stats.busy_mpps for stats in self.worker_stats)

    def speedup_vs(self, baseline: "ParallelRunResult") -> float:
        """Aggregate per-core capacity ratio against a baseline run."""
        base = baseline.aggregate_cpu_mpps
        if base <= 0:
            return 0.0
        return self.aggregate_cpu_mpps / base


# ---------------------------------------------------------------------------
# Shard combination (shared by the parallel and sequential paths).
# ---------------------------------------------------------------------------


def _merge_monitors(factory: Callable[[int], Any], monitors: List[Any]):
    """Merge per-shard monitors into a fresh base, in worker order."""
    base = factory(MERGE_SHARD)
    for monitor in monitors:
        if monitor is not None:
            base.merge(monitor)
    return base


def _combine_shared(
    factory: Callable[[int], Any],
    banks: "np.ndarray",
    metas: List[Dict[str, Any]],
):
    """Rebuild the merged monitor from per-worker counter banks + metas."""
    base = factory(MERGE_SHARD)
    sketch = _owned_sketch(base)
    sketch.counters = banks.sum(axis=0)
    if hasattr(sketch, "total"):
        sketch.total = float(
            sum(meta.get("sketch_total", 0.0) for meta in metas)
        )
    if hasattr(base, "packets_seen"):
        base.packets_seen = int(sum(meta["packets_total"] for meta in metas))
    if hasattr(base, "packets_sampled"):
        base.packets_sampled = int(
            sum(meta.get("packets_sampled", 0) for meta in metas)
        )
    topk = getattr(base, "topk", None)
    if topk is not None:
        candidates = sorted(
            {key for meta in metas for key in meta.get("topk_keys", [])}
        )
        if candidates:
            estimates = sketch.query_batch(np.asarray(candidates, dtype=np.int64))
            for key, estimate in zip(candidates, estimates.tolist()):
                topk.offer(int(key), float(estimate))
    return base


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------


class ParallelIngestEngine:
    """Run a monitor factory over a trace with N parallel workers.

    Parameters
    ----------
    monitor_factory:
        ``factory(shard_id) -> monitor``; must be picklable under the
        ``spawn`` start method (see :mod:`repro.parallel.factories`) and
        must honour the seeding contract: identical sketch seeds across
        shards, per-shard sampler streams, and
        :data:`~repro.parallel.shard.MERGE_SHARD` for the merge base.
    workers:
        Shard/process count (RSS queue count).
    strategy:
        ``"merge"`` or ``"shared"`` (see module docstring).
    epoch_packets:
        Epoch window in packets (``merge`` only); None means one epoch.
    reset_per_epoch:
        ``merge`` only: workers reset their monitor after each publish,
        so each merged epoch monitor covers exactly one epoch -- the
        :class:`~repro.control.ControlPlane` per-epoch semantics.
    max_restarts:
        Total worker-respawn budget before
        :class:`WorkerCrashError` (default: ``workers``).
    deadline_seconds:
        Per-frame wait budget in the parent; guards against a hung
        worker wedging the whole run.
    crash_plan / corruption_plan:
        Deterministic fault injection (see :mod:`repro.faults.inject`);
        production runs leave both None.
    alerts:
        Optional :class:`~repro.telemetry.alerts.AlertManager`.  After
        every run's worker-level signals are fanned into telemetry
        (restarts, corrupt frames, per-worker rates), the manager runs
        one evaluation round, so rules such as ``worker_crash_loop``
        fire off the same data the ``nitrosketch top`` panel shows.
    """

    def __init__(
        self,
        monitor_factory: Callable[[int], Any],
        workers: int = 2,
        strategy: str = "merge",
        epoch_packets: Optional[int] = None,
        batch_size: int = 16384,
        rss_seed: int = 0,
        reset_per_epoch: bool = False,
        telemetry=NULL_TELEMETRY,
        profiler=NULL_PROFILER,
        max_restarts: Optional[int] = None,
        deadline_seconds: float = 120.0,
        start_method: Optional[str] = None,
        crash_plan: Optional[WorkerCrashPlan] = None,
        corruption_plan: Optional[FrameCorruptionPlan] = None,
        alerts=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        if strategy not in STRATEGIES:
            raise ValueError(
                "strategy must be one of %s, got %r" % (STRATEGIES, strategy)
            )
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1, got %d" % batch_size)
        if strategy == "shared" and epoch_packets is not None:
            raise ValueError(
                "the shared strategy is single-epoch (counter banks are "
                "cumulative); epoch_packets only applies to 'merge'"
            )
        if strategy == "shared" and reset_per_epoch:
            raise ValueError("reset_per_epoch only applies to 'merge'")
        self.monitor_factory = monitor_factory
        self.workers = workers
        self.strategy = strategy
        self.epoch_packets = epoch_packets
        self.batch_size = batch_size
        self.rss_seed = rss_seed
        self.reset_per_epoch = reset_per_epoch
        self.telemetry = telemetry
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.max_restarts = workers if max_restarts is None else max_restarts
        self.deadline_seconds = deadline_seconds
        self.start_method = start_method
        self.crash_plan = crash_plan
        self.corruption_plan = corruption_plan
        self.alerts = alerts

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _as_keys(trace) -> "np.ndarray":
        keys = trace.keys if hasattr(trace, "keys") else trace
        return np.ascontiguousarray(keys, dtype=np.int64)

    def _context(self):
        import multiprocessing

        if self.start_method is not None:
            return multiprocessing.get_context(self.start_method)
        if "fork" in multiprocessing.get_all_start_methods():
            # fork is the cheap path and the only one that accepts
            # closure factories; spawn-only platforms need picklable
            # factories (repro.parallel.factories).
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _trace_parts(self, n_packets: int) -> Tuple:
        """The run identity every epoch trace id is derived from.

        Pure function of the configuration, so :meth:`run`,
        :meth:`run_sequential` and any crash-recovery respawn of the
        same run all produce identical trace/span ids.
        """
        return (
            "nitrosketch",
            self.strategy,
            self.workers,
            self.rss_seed,
            n_packets,
            self.epoch_packets,
        )

    def _probe_geometry(self) -> Tuple[int, int, int]:
        """(depth, width, mailbox capacity) from a probe monitor."""
        probe = self.monitor_factory(MERGE_SHARD)
        sketch = _owned_sketch(probe)
        counters = getattr(sketch, "counters", None)
        if counters is None or counters.ndim != 2:
            raise TypeError(
                "the parallel engine needs a monitor owning a 2-D counter "
                "grid; %r does not" % (type(probe).__name__,)
            )
        meta = _frame_meta(0, 0, 1, 0, _fresh_stats(), probe, self.strategy)
        payload = serialize_epoch_frame(
            meta, probe if self.strategy == "merge" else None
        )
        # 2x the empty-state frame plus fixed headroom covers top-k
        # growth and longer JSON numerals; counter sections are fixed
        # size, so this cannot be outgrown.
        capacity = max(1 << 16, 2 * len(payload) + (1 << 18))
        return sketch.counters.shape[0], sketch.counters.shape[1], capacity

    # -- the measured parallel path --------------------------------------------

    def run(
        self,
        trace,
        assignments: Optional["np.ndarray"] = None,
        on_epoch: Optional[Callable[[int, Any, List[Dict[str, Any]]], None]] = None,
    ) -> ParallelRunResult:
        """Ingest ``trace`` with real worker processes; return the merge.

        ``assignments`` overrides the RSS shard map (must match the one
        used by any companion modeled run); ``on_epoch(epoch, merged,
        metas)`` delivers each epoch's merged monitor as it lands --
        the control-plane hand-off hook.
        """
        reason = parallel_unavailable_reason()
        if reason is not None:
            raise RuntimeError("parallel engine unavailable: %s" % reason)
        keys = self._as_keys(trace)
        n_packets = len(keys)
        if assignments is None:
            assignments = rss_assignments(keys, self.workers, self.rss_seed)
        else:
            assignments = np.ascontiguousarray(assignments, dtype=np.uint8)
            if len(assignments) != n_packets:
                raise ValueError(
                    "assignments length %d != trace length %d"
                    % (len(assignments), n_packets)
                )
        depth, width, capacity = self._probe_geometry()
        bounds = epoch_bounds(n_packets, self.epoch_packets)
        n_epochs = len(bounds)
        context = self._context()

        keys_shm = create_block(max(8, keys.nbytes))
        assign_shm = create_block(max(1, assignments.nbytes))
        keys_view = np.frombuffer(keys_shm.buf, dtype=np.int64, count=n_packets)
        keys_view[:] = keys
        assign_view = np.frombuffer(
            assign_shm.buf, dtype=np.uint8, count=n_packets
        )
        assign_view[:] = assignments
        bank_shm = None
        banks = None
        if self.strategy == "shared":
            bank_shm = create_block(self.workers * depth * width * 8)
            banks = shared_counter_banks(bank_shm.buf, self.workers, depth, width)
            banks[:] = 0.0
        mailboxes = [EpochMailbox.create(capacity) for _ in range(self.workers)]

        base_specs = [
            WorkerSpec(
                factory=self.monitor_factory,
                worker=worker,
                workers=self.workers,
                strategy=self.strategy,
                keys_name=keys_shm.name,
                assign_name=assign_shm.name,
                n_packets=n_packets,
                mailbox_name=mailboxes[worker].name,
                mailbox_capacity=capacity,
                batch_size=self.batch_size,
                epoch_packets=self.epoch_packets,
                reset_per_epoch=self.reset_per_epoch,
                depth=depth,
                width=width,
                bank_name=bank_shm.name if bank_shm is not None else None,
                crash_plan=self.crash_plan,
                corruption_plan=self.corruption_plan,
                publish_timeout=self.deadline_seconds,
                trace_parts=self._trace_parts(n_packets),
            )
            for worker in range(self.workers)
        ]
        self._procs: List[Any] = []
        self._mailboxes = mailboxes
        self._restart_counts = [0] * self.workers
        self._resume_frames: List[Optional[bytes]] = [None] * self.workers
        self._base_specs = base_specs
        self._spawn_context = context

        wall_start = time.perf_counter()
        for spec in base_specs:
            self._spawn(spec)

        final_metas: List[Optional[Dict[str, Any]]] = [None] * self.workers
        merged = None
        trace_parts = self._trace_parts(n_packets)
        span_sink = getattr(self.telemetry, "spans", None)
        try:
            for epoch in range(n_epochs):
                trace_id = make_trace_id(*trace_parts, epoch)
                epoch_span = self.telemetry.start_span(
                    "epoch",
                    trace_id=trace_id,
                    span_id=make_span_id(trace_id, "epoch"),
                    epoch=epoch,
                    workers=self.workers,
                )
                epoch_metas: List[Dict[str, Any]] = []
                epoch_monitors: List[Any] = []
                with epoch_span:
                    for worker in range(self.workers):
                        meta, monitor = self._await_frame(worker, epoch, epoch_span)
                        epoch_metas.append(meta)
                        epoch_monitors.append(monitor)
                        if meta.get("final"):
                            final_metas[worker] = meta
                        trace_block = meta.get("trace")
                        if span_sink is not None and isinstance(trace_block, dict):
                            span_sink.record_dicts(trace_block.get("spans", ()))
                    merge_span = epoch_span.child(
                        "merge",
                        span_id=make_span_id(trace_id, "merge"),
                        epoch=epoch,
                    )
                    with merge_span:
                        merge_perf0 = time.perf_counter()
                        if self.strategy == "merge":
                            merged = _merge_monitors(
                                self.monitor_factory, epoch_monitors
                            )
                        else:
                            merged = _combine_shared(
                                self.monitor_factory, banks, epoch_metas
                            )
                        self.profiler.observe(
                            "merge", time.perf_counter() - merge_perf0
                        )
                    if on_epoch is not None:
                        on_epoch(epoch, merged, list(epoch_metas))
            for proc in self._procs:
                proc.join(timeout=10.0)
            wall_seconds = time.perf_counter() - wall_start
        finally:
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
            keys_view = None
            assign_view = None
            banks = None
            for mailbox in mailboxes:
                mailbox.destroy()
            for shm in (keys_shm, assign_shm, bank_shm):
                if shm is not None:
                    shm.close()
                    shm.unlink()

        worker_stats = [
            self._stats_for(worker, final_metas[worker], n_epochs)
            for worker in range(self.workers)
        ]
        result = ParallelRunResult(
            strategy=self.strategy,
            workers=self.workers,
            packets=n_packets,
            epochs=n_epochs,
            wall_seconds=wall_seconds,
            worker_stats=worker_stats,
            monitor=merged,
            restarts=sum(self._restart_counts),
            start_method=context.get_start_method(),
        )
        from repro.telemetry.fanin import record_parallel_run

        record_parallel_run(self.telemetry, result)
        if self.alerts is not None:
            self.alerts.evaluate()
        return result

    def _spawn(self, spec: WorkerSpec) -> None:
        proc = self._spawn_context.Process(
            target=_worker_main, args=(spec,), daemon=True
        )
        proc.start()
        while len(self._procs) <= spec.worker:
            self._procs.append(None)
        self._procs[spec.worker] = proc

    def _await_frame(
        self, worker: int, epoch: int, epoch_span=None
    ) -> Tuple[Dict[str, Any], Any]:
        """Block until ``worker`` delivers ``epoch``'s validated frame.

        Handles the two failure modes: a dead worker is respawned from
        its last good frame (``merge``) or from scratch (``shared``)
        within the restart budget, and a frame failing CRC raises
        :class:`ShardCorruptionError` -- it is never acked, never
        merged.  ``epoch_span`` (an :class:`~repro.telemetry.spans.ActiveSpan`)
        receives a ``frame.crc`` child covering decode/CRC-check/ack.
        """
        mailbox = self._mailboxes[worker]
        deadline = time.perf_counter() + self.deadline_seconds
        while True:
            got = mailbox.poll()
            if got is not None:
                payload, frame_epoch, _final = got
                if frame_epoch != epoch:
                    raise RuntimeError(
                        "protocol error: worker %d published epoch %d while "
                        "the parent awaited %d" % (worker, frame_epoch, epoch)
                    )
                crc_span = (
                    epoch_span.child(
                        "frame.crc",
                        span_id=make_span_id(
                            epoch_span.trace_id, "frame.crc", worker
                        ),
                        worker=worker,
                        epoch=epoch,
                    )
                    if epoch_span is not None
                    else None
                )
                ack_perf0 = time.perf_counter()
                try:
                    if crc_span is not None:
                        with crc_span:
                            crc_span.annotate(bytes=len(payload))
                            meta, monitor = deserialize_epoch_frame(payload)
                            mailbox.ack(frame_epoch)
                    else:
                        meta, monitor = deserialize_epoch_frame(payload)
                        mailbox.ack(frame_epoch)
                except ValueError as exc:
                    self.telemetry.count(
                        "parallel_corrupt_frames_total", worker=str(worker)
                    )
                    self.telemetry.event(
                        "parallel.corrupt_frame",
                        worker=worker,
                        epoch=epoch,
                        reason=str(exc),
                    )
                    raise ShardCorruptionError(worker, epoch, str(exc)) from exc
                ack_seconds = time.perf_counter() - ack_perf0
                self.telemetry.observe(
                    "parallel_mailbox_ack_seconds", ack_seconds, worker=str(worker)
                )
                self.profiler.observe("mailbox_ack", ack_seconds)
                if self.strategy == "merge" and not self.reset_per_epoch:
                    # A cumulative frame is a checkpoint: keep the bytes
                    # so a later crash resumes bit-exactly from here.
                    self._resume_frames[worker] = payload
                return meta, monitor
            proc = self._procs[worker]
            if proc.exitcode is not None:
                self._restart(worker, epoch, proc.exitcode)
                deadline = time.perf_counter() + self.deadline_seconds
                continue
            if time.perf_counter() > deadline:
                raise MailboxTimeout(
                    "worker %d delivered no frame for epoch %d within %.0fs"
                    % (worker, epoch, self.deadline_seconds)
                )
            time.sleep(0.0005)

    def _restart(self, worker: int, epoch: int, exitcode: Optional[int]) -> None:
        self._restart_counts[worker] += 1
        if self._restart_counts[worker] > self.max_restarts:
            raise WorkerCrashError(worker, exitcode, self._restart_counts[worker] - 1)
        if self.strategy == "shared":
            # The dead worker owned its bank exclusively; the respawn
            # zeroes it and replays the whole shard -- exact recovery.
            start_epoch, resume = 0, None
        elif self.reset_per_epoch:
            # Frames are per-epoch; a fresh monitor equals a reset one
            # (the reset-equals-fresh contract), so replay this epoch.
            start_epoch, resume = epoch, None
        else:
            # Resume from the last published cumulative frame: the
            # worker replays exactly the epochs the parent never saw.
            start_epoch, resume = epoch, self._resume_frames[worker]
        spec = replace(
            self._base_specs[worker],
            start_epoch=start_epoch,
            resume_frame=resume,
            crash_plan=None,
        )
        self.telemetry.count("parallel_worker_restarts_total", worker=str(worker))
        self.telemetry.event(
            "parallel.worker_restart",
            worker=worker,
            epoch=epoch,
            exitcode=exitcode,
            resumed="frame" if resume is not None else "scratch",
        )
        self._spawn(spec)

    def _stats_for(
        self, worker: int, meta: Optional[Dict[str, Any]], n_epochs: int
    ) -> WorkerStats:
        stats = _stats_from_meta(meta or {})
        return WorkerStats(
            worker=worker,
            packets=int(stats["packets"]),
            batches=int(stats["batches"]),
            epochs=n_epochs,
            busy_wall_seconds=stats["busy_wall"],
            busy_cpu_seconds=stats["busy_cpu"],
            restarts=self._restart_counts[worker],
            publish_wait_seconds=stats["publish_wait"],
        )

    # -- the sequential oracle --------------------------------------------------

    def run_sequential(
        self,
        trace,
        assignments: Optional["np.ndarray"] = None,
        on_epoch: Optional[Callable[[int, Any, List[Dict[str, Any]]], None]] = None,
    ) -> ParallelRunResult:
        """The same computation, in-process, one shard at a time.

        Identical sharding, identical factories, identical batch
        boundaries, identical merge order -- the differential oracle the
        parallel path is checked against.  ``merge`` output is
        byte-exact equal to :meth:`run`'s; ``shared`` output is
        bit-exact for vanilla sketches and envelope-equal for Nitro.
        """
        keys = self._as_keys(trace)
        n_packets = len(keys)
        if assignments is None:
            assignments = rss_assignments(keys, self.workers, self.rss_seed)
        else:
            assignments = np.ascontiguousarray(assignments, dtype=np.uint8)
        bounds = epoch_bounds(n_packets, self.epoch_packets)
        n_epochs = len(bounds)
        monitors = [self.monitor_factory(worker) for worker in range(self.workers)]
        stats_list = [_fresh_stats() for _ in range(self.workers)]

        wall_start = time.perf_counter()
        merged = None
        final_metas: List[Optional[Dict[str, Any]]] = [None] * self.workers
        trace_parts = self._trace_parts(n_packets)
        for epoch in range(n_epochs):
            trace_id = make_trace_id(*trace_parts, epoch)
            epoch_span = self.telemetry.start_span(
                "epoch",
                trace_id=trace_id,
                span_id=make_span_id(trace_id, "epoch"),
                epoch=epoch,
                workers=self.workers,
            )
            epoch_metas: List[Dict[str, Any]] = []
            with epoch_span:
                for worker in range(self.workers):
                    shard_keys = _epoch_shard_keys(
                        keys, assignments, worker, bounds[epoch]
                    )
                    ingest_span = epoch_span.child(
                        "worker.ingest",
                        span_id=make_span_id(trace_id, "worker.ingest", worker),
                        worker=worker,
                        shard=worker,
                        epoch=epoch,
                        packets=int(len(shard_keys)),
                    )
                    with ingest_span:
                        _ingest_epoch(
                            monitors[worker],
                            shard_keys,
                            self.batch_size,
                            stats_list[worker],
                        )
                    meta = _frame_meta(
                        worker,
                        epoch,
                        n_epochs,
                        len(shard_keys),
                        stats_list[worker],
                        monitors[worker],
                        self.strategy,
                    )
                    epoch_metas.append(meta)
                    if meta.get("final"):
                        final_metas[worker] = meta
                merge_span = epoch_span.child(
                    "merge", span_id=make_span_id(trace_id, "merge"), epoch=epoch
                )
                with merge_span:
                    merge_perf0 = time.perf_counter()
                    if self.strategy == "merge":
                        merged = _merge_monitors(self.monitor_factory, monitors)
                        if self.reset_per_epoch:
                            for monitor in monitors:
                                monitor.reset()
                    else:
                        banks = np.stack(
                            [_owned_sketch(monitor).counters for monitor in monitors]
                        )
                        merged = _combine_shared(
                            self.monitor_factory, banks, epoch_metas
                        )
                    self.profiler.observe("merge", time.perf_counter() - merge_perf0)
                if on_epoch is not None:
                    on_epoch(epoch, merged, list(epoch_metas))
        wall_seconds = time.perf_counter() - wall_start

        worker_stats = [
            WorkerStats(
                worker=worker,
                packets=int(stats_list[worker]["packets"]),
                batches=int(stats_list[worker]["batches"]),
                epochs=n_epochs,
                busy_wall_seconds=stats_list[worker]["busy_wall"],
                busy_cpu_seconds=stats_list[worker]["busy_cpu"],
            )
            for worker in range(self.workers)
        ]
        return ParallelRunResult(
            strategy=self.strategy,
            workers=self.workers,
            packets=n_packets,
            epochs=n_epochs,
            wall_seconds=wall_seconds,
            worker_stats=worker_stats,
            monitor=merged,
            start_method="inline",
        )
