"""Picklable monitor factories for parallel workers.

A worker process (re)builds its monitor from a factory, so factories
must survive pickling under the ``spawn`` start method -- closures and
lambdas do not.  These are frozen dataclasses: pure data, importable by
module path, and deterministic.

The seeding contract is the one shard merging requires:

* the *sketch* seed is identical across shards -- hash functions must
  agree or ``merge`` would sum counters that index different flows;
* the *sampler* seed is derived per shard via
  :meth:`NitroConfig.for_shard` -- each worker draws an independent
  geometric stream, deterministically, so a run is reproducible and a
  respawned worker replays its exact stream;
* the :data:`~repro.parallel.shard.MERGE_SHARD` sentinel keeps the base
  seed: the merge base never ingests, it only receives merges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NitroConfig
from repro.core.nitro import NitroSketch
from repro.sketches.countmin import CountMinSketch
from repro.sketches.countsketch import CountSketch
from repro.sketches.kary import KArySketch

_SKETCHES = {
    "countmin": CountMinSketch,
    "countsketch": CountSketch,
    "kary": KArySketch,
}


@dataclass(frozen=True)
class VanillaFactory:
    """Per-shard vanilla canonical sketch (no sampling, no RNG state).

    Every shard gets the *same* seed: vanilla sketches are
    deterministic, and identical hash functions are exactly what makes
    the shard merge (counter summation) bit-exact against a single
    sketch that ingested the whole trace.
    """

    sketch: str = "countmin"
    depth: int = 5
    width: int = 10000
    seed: int = 0

    def __call__(self, shard_id: int):
        cls = _SKETCHES.get(self.sketch)
        if cls is None:
            raise ValueError(
                "unknown sketch %r (choose from %s)"
                % (self.sketch, sorted(_SKETCHES))
            )
        return cls(self.depth, self.width, self.seed)


@dataclass(frozen=True)
class NitroFactory:
    """Per-shard :class:`NitroSketch` with a derived sampler stream."""

    sketch: str = "countsketch"
    depth: int = 5
    width: int = 10000
    probability: float = 0.05
    top_k: int = 100
    seed: int = 0

    def __call__(self, shard_id: int) -> NitroSketch:
        cls = _SKETCHES.get(self.sketch)
        if cls is None:
            raise ValueError(
                "unknown sketch %r (choose from %s)"
                % (self.sketch, sorted(_SKETCHES))
            )
        config = NitroConfig(
            probability=self.probability, top_k=self.top_k, seed=self.seed
        ).for_shard(shard_id)
        return NitroSketch(cls(self.depth, self.width, self.seed), config)
