"""First-class observability for the NitroSketch stack.

The paper's whole argument is operational -- a sampling-probability
ladder that moves every 100 ms epoch, a convergence condition that
crosses once, cycles that migrate between pipeline stages -- and this
package makes those observable *while they happen* instead of only via
post-hoc :class:`~repro.metrics.opcount.OpCounter` totals:

* :mod:`repro.telemetry.registry` -- labeled counters, gauges and
  log-bucketed histograms (:class:`MetricsRegistry`);
* :mod:`repro.telemetry.tracer` -- a bounded ring buffer of structured
  events with JSONL export (:class:`Tracer`);
* :mod:`repro.telemetry.exposition` -- Prometheus text format, JSON
  snapshots, and an optional stdlib HTTP endpoint;
* :mod:`repro.telemetry.audit` -- live accuracy auditing: a shadow
  ground-truth reservoir (:class:`~repro.telemetry.audit.ShadowAuditor`)
  and the Theorem 1/2/5 guarantee tracker
  (:class:`~repro.telemetry.audit.GuaranteeMonitor`).  Imported lazily
  (it needs NumPy);
* :mod:`repro.telemetry.health` -- a rule engine over metric snapshots
  (:class:`HealthEvaluator`) feeding the server's ``/health`` route;
* :mod:`repro.telemetry.dashboard` -- the ``nitrosketch top`` live
  terminal dashboard;
* :mod:`repro.telemetry.spans` -- cross-process distributed-tracing
  spans with deterministic ids (:class:`SpanTracer`), reassembled into
  per-epoch trees spanning the multi-process data plane;
* :mod:`repro.telemetry.profile` -- the sampled per-stage latency
  profiler (:class:`~repro.telemetry.profile.StageProfiler`) with
  histogram quantiles and flamegraph-compatible collapsed stacks;
* :mod:`repro.telemetry.history` -- a bounded, downsampling time-series
  ring of registry snapshots (:class:`HistoryStore`) behind the
  ``/history`` route;
* :mod:`repro.telemetry.alerts` -- the alert plane: declarative rules
  (threshold/for-duration/hysteresis/burn-rate) over snapshots and
  history windows, a per-labelset state machine and the
  :class:`AlertManager` behind ``/alerts`` and ``/rules``;
* :mod:`repro.telemetry.notify` -- notification sinks (log, JSONL,
  webhook, in-memory) with delivery-failure accounting;
* :mod:`repro.telemetry.anomaly` -- sketch-driven traffic-anomaly
  detectors (K-ary change score, entropy-collapse DDoS onset/offset,
  heavy-hitter churn) feeding the alert rules.  Imported lazily (it
  needs NumPy).

The :class:`Telemetry` facade bundles one registry and one tracer and is
what instrumented components hold.  Mirroring the ``NullOps`` pattern of
:mod:`repro.metrics.opcount`, the default sink everywhere is
:data:`NULL_TELEMETRY` -- a stateless no-op whose calls cost one Python
method dispatch, so accuracy-only paths pay (almost) nothing.  Attach a
real :class:`Telemetry` to a component (``nitro.telemetry = tele``) to
light it up.

See ``docs/OBSERVABILITY.md`` for the metric and event catalogue.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.telemetry.registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    log_buckets,
)
from repro.telemetry.tracer import TraceEvent, Tracer, parse_jsonl, read_jsonl
from repro.telemetry.spans import (
    NULL_ACTIVE_SPAN,
    Span,
    SpanTracer,
    build_trace_tree,
    make_span_id,
    make_trace_id,
    parse_spans_jsonl,
    render_span_tree,
)
from repro.telemetry.history import HistoryStore
from repro.telemetry.alerts import (
    ALERT_STATES,
    AlertManager,
    AlertRule,
    AlertStatus,
    BurnRateRule,
    Condition,
    ManualClock,
    ThresholdRule,
)
from repro.telemetry.notify import (
    JsonlSink,
    LogSink,
    MemorySink,
    Notification,
    NotificationSink,
    WebhookReceiver,
    WebhookSink,
)
from repro.telemetry.exposition import (
    TelemetryServer,
    render_json,
    render_prometheus,
    snapshot,
    start_http_server,
)

#: Canonical help strings for the metrics this repository emits, so every
#: creation site agrees on the ``# HELP`` text without repeating it.
METRIC_HELP: Dict[str, str] = {
    "nitro_sampling_probability": "Current NitroSketch per-slot sampling probability p.",
    "nitro_probability_changes_total": "Sampling-probability transitions, by reason.",
    "nitro_convergence_total": "AlwaysCorrect convergence-threshold crossings.",
    "nitro_convergence_checks_total": "AlwaysCorrect convergence-test evaluations.",
    "nitro_epochs_total": "AlwaysLineRate rate-measurement epoch rollovers.",
    "nitro_packets_total": "Packets ingested by NitroSketch, by code path.",
    "nitro_sampled_packets_total": "Packets that triggered at least one counter update.",
    "nitro_geometric_draws_total": "Geometric(p) skip-counter draws.",
    "nitro_geometric_gap_slots": "Distribution of geometric inter-sample gaps (slots).",
    "pipeline_stage_seconds": "Wall-clock time per switch-pipeline stage per batch.",
    "pipeline_batches_total": "Batches forwarded, by platform.",
    "ovs_emc_hits_total": "OVS Exact Match Cache hits.",
    "ovs_emc_misses_total": "OVS Exact Match Cache misses.",
    "ovs_upcalls_total": "OVS OpenFlow slow-path consultations.",
    "daemon_batches_total": "Batches ingested by the measurement daemon.",
    "daemon_packets_total": "Packets offered to the measurement daemon.",
    "daemon_ingest_seconds": "Wall-clock time per daemon batch ingest.",
    "control_epochs_total": "Control-plane epochs evaluated.",
    "control_epoch_seconds": "Wall-clock time per control-plane epoch.",
    "control_task_seconds": "Wall-clock time per measurement-task evaluation.",
    "control_task_detected_flows": "Flows detected by the last task evaluation.",
    "simulator_capacity_mpps": "Simulated bottleneck-thread capacity.",
    "simulator_achieved_mpps": "Simulated achieved forwarding rate.",
    "simulator_cpu_share": "Simulated per-component CPU share at the achieved rate.",
    "opcounter": "OpCounter tallies bridged from the operation-accounting layer.",
    "audit_rounds_total": "Shadow-audit rounds performed.",
    "audit_tracked_flows": "Flows in the shadow ground-truth reservoir.",
    "audit_total_weight": "Exact total stream mass seen by the auditor (L1).",
    "audit_sample_rate": "Flow-inclusion probability of the shadow reservoir.",
    "audit_relative_error": "Observed relative error of sketch answers, by statistic.",
    "audit_absolute_error": "Observed absolute error of sketch answers, by statistic.",
    "audit_error_bound": "Live theoretical error bound (eps*L1 or eps*L2).",
    "audit_bound_ratio": "Observed worst error as a fraction of the theoretical bound.",
    "audit_guarantee_violations_total": "Guarantee-bound violations detected.",
    "audit_guarantee_violations": "Cumulative violations (gauge; 0 = checked and clean).",
    "daemon_queue_depth": "Batches waiting in the measurement daemon's ingest queue.",
    "health_status": "Health rule verdicts: 0 = ok, 1 = warn, 2 = fail.",
    "checkpoint_writes_total": "Monitor checkpoints written to disk.",
    "checkpoint_bytes_total": "Cumulative checkpoint bytes written.",
    "checkpoint_restores_total": "Successful checkpoint restores.",
    "checkpoint_restore_failures_total": "Checkpoint files rejected (CRC/format) on restore.",
    "checkpoint_last_sequence": "Sequence number of the newest checkpoint written.",
    "checkpoint_size_bytes": "Size of the newest checkpoint frame.",
    "daemon_checkpoint_age_batches": "Batches ingested since the daemon's last checkpoint.",
    "control_checkpoint_age_epochs": "Epochs since the control plane's last checkpoint.",
    "tracer_dropped_events_total": "Trace events evicted from the ring buffer.",
    "stage_seconds": "Wall-clock time per profiled ingest-pipeline stage.",
    "parallel_workers": "Worker processes in the last parallel run.",
    "parallel_host_cpus": "Host CPU count seen by the parallel engine.",
    "parallel_worker_packets_total": "Packets ingested, by worker.",
    "parallel_worker_batches_total": "Batches ingested, by worker.",
    "parallel_worker_busy_seconds": "Per-run busy wall seconds, by worker.",
    "parallel_worker_cpu_mpps": "Per-core CPU-clock throughput, by worker.",
    "parallel_worker_restarts": "Crash-recovery respawns in the last run, by worker.",
    "parallel_worker_restarts_total": "Crash-recovery respawns, by worker.",
    "parallel_corrupt_frames_total": "Epoch frames rejected on CRC/format, by worker.",
    "parallel_mailbox_ack_seconds": "Parent-side frame decode+CRC+ack time, by worker.",
    "parallel_mailbox_publish_wait_seconds": "Worker-side publish flow-control stall, by worker.",
    "parallel_wall_mpps": "End-to-end wall-clock rate of the last parallel run.",
    "parallel_aggregate_cpu_mpps": "Sum of per-worker CPU-clock rates.",
    "parallel_aggregate_busy_mpps": "Sum of per-worker busy-wall rates.",
    "ALERTS": "Alert states: 1 on the current state of each alert, 0 elsewhere.",
    "alerts_transitions_total": "Alert state-machine transitions, by alert and target state.",
    "alerts_evaluations_total": "Alert-rule evaluation rounds.",
    "notifications_sent_total": "Alert notifications delivered, by sink.",
    "notifications_failed_total": "Alert notification delivery failures, by sink.",
    "anomaly_change_score": "Largest single-flow epoch-over-epoch change as a fraction of epoch traffic.",
    "anomaly_heavy_changers": "Flows whose epoch-over-epoch change exceeds the change-share threshold.",
    "anomaly_entropy_bits": "Estimated flow-size entropy of the last epoch (bits).",
    "anomaly_entropy_baseline_bits": "EMA baseline of epoch entropy (frozen during detected collapse).",
    "anomaly_entropy_drop": "Fractional entropy drop vs baseline (DDoS-onset signal).",
    "anomaly_hh_churn": "Jaccard distance between successive epochs' heavy-hitter sets.",
    "anomaly_epoch_packets": "Packets carried by the last detector epoch.",
    "anomaly_epochs_total": "Epochs observed by the anomaly detectors.",
    "window_epochs_spanned": "Epoch sketches currently merged into the sliding window.",
    "window_epochs_rotated": "Epoch rotations performed by the sliding window.",
    "window_packets": "Packets covered by the sliding window (ring + in-progress epoch).",
    "window_memory_bytes": "Counter bytes held across every epoch sketch in the window.",
    "window_heavy_hitters": "Flows above the heavy-hitter share of the window's packets.",
    "window_entropy_bits": "Estimated flow-size entropy over the sliding window (bits).",
    "daemon_batches_dropped_total": "Batches rejected by the daemon's bounded ingest queue.",
    "service_tenants_active": "Tenants currently resident in the monitoring service.",
    "service_tenants_created_total": "Tenant namespaces created by the monitoring service.",
    "service_tenants_evicted_total": "Tenants evicted from the service, by reason.",
    "service_tenants_restored_total": "Tenants restored from checkpoint by the service.",
    "service_memory_bytes": "Estimated sketch bytes resident across all tenants.",
    "service_connections_total": "Ingest connections accepted by the service.",
    "service_connections_active": "Ingest connections currently open.",
    "service_frames_total": "Ingest wire frames processed, by outcome.",
    "service_ingest_packets_total": "Packets accepted over the wire, by tenant.",
    "service_ingest_batches_total": "Batches accepted over the wire, by tenant.",
    "service_dropped_batches_total": "Batches dropped under backpressure, by tenant.",
    "service_queries_total": "Query-plane HTTP requests, by endpoint.",
    "service_query_seconds": "Wall-clock time per query-plane request.",
    "service_queue_depth": "Queued batches awaiting drain, by tenant.",
    "service_tenant_memory_bytes": "Estimated sketch bytes resident, by tenant.",
}


class _Span:
    """Times a block and records it into a histogram on exit."""

    __slots__ = ("_telemetry", "_name", "_labels", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, labels: Dict[str, str]) -> None:
        self._telemetry = telemetry
        self._name = name
        self._labels = labels

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._telemetry.observe(
            self._name, time.perf_counter() - self._start, **self._labels
        )


class Telemetry:
    """One registry + one tracer: the sink instrumented components hold.

    All methods are dynamic-name conveniences over the registry --
    families are created on first use with canonical help text from
    :data:`METRIC_HELP` and label names taken (sorted) from the call's
    keyword arguments, so every call site for a metric must use the same
    label keys.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        spans: Optional[SpanTracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        #: The span recorder behind :meth:`start_span` and ``/spans``.
        self.spans = spans if spans is not None else SpanTracer()
        self._tracer_dropped_seen = self.tracer.dropped

    # -- metrics ------------------------------------------------------------

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment counter ``name`` (creating it on first use)."""
        with self.registry.lock:
            family = self.registry.counter(
                name, METRIC_HELP.get(name, ""), tuple(sorted(labels))
            )
            (family.labels(**labels) if labels else family.labels()).inc(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge ``name`` to ``value``."""
        with self.registry.lock:
            family = self.registry.gauge(
                name, METRIC_HELP.get(name, ""), tuple(sorted(labels))
            )
            (family.labels(**labels) if labels else family.labels()).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> None:
        """Record ``value`` into histogram ``name`` (buckets fixed at creation)."""
        with self.registry.lock:
            family = self.registry.histogram(
                name, METRIC_HELP.get(name, ""), tuple(sorted(labels)), buckets
            )
            (family.labels(**labels) if labels else family.labels()).observe(value)

    def atomic(self):
        """Context manager grouping several metric writes into one
        atomic unit with respect to exposition.

        A scrape (``/metrics`` or ``/json``) renders under the registry
        lock, so sibling updates wrapped in ``with telemetry.atomic():``
        are observed all-or-nothing -- e.g. the daemon's
        ``daemon_batches_total`` / ``daemon_packets_total`` pair can
        never be seen with one incremented and the other not.
        """
        return self.registry.lock

    def span(self, name: str, **labels) -> _Span:
        """Context manager timing a block into histogram ``name``."""
        return _Span(self, name, labels)

    # -- events -------------------------------------------------------------

    def event(self, name: str, **fields) -> None:
        """Record one structured event into the tracer ring.

        Ring evictions are surfaced as the ``tracer_dropped_events_total``
        counter -- silent drops would otherwise be invisible until
        someone noticed a hole in an exported trace.
        """
        self.tracer.record(name, **fields)
        dropped = self.tracer.dropped
        if dropped != self._tracer_dropped_seen:
            delta = dropped - self._tracer_dropped_seen
            self._tracer_dropped_seen = dropped
            if delta > 0:
                self.count("tracer_dropped_events_total", delta)

    # -- spans --------------------------------------------------------------

    def start_span(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        **fields,
    ):
        """Open a distributed-tracing span (see :mod:`repro.telemetry.spans`)."""
        return self.spans.start_span(
            name, trace_id=trace_id, parent_id=parent_id, span_id=span_id, **fields
        )

    # -- bridges ------------------------------------------------------------

    def record_ops(self, ops, **labels) -> None:
        """Surface an :class:`~repro.metrics.opcount.OpCounter`'s tallies.

        Each category becomes one ``opcounter{category=...}`` gauge
        sample (gauges, not counters, because ``OpCounter`` objects are
        reset at will by their owners).  Extra labels -- typically
        ``component`` -- distinguish sinks.
        """
        for category, value in ops.as_dict().items():
            self.gauge("opcounter", value, category=category, **labels)

    # -- exposition shortcuts ----------------------------------------------

    def render_prometheus(self) -> str:
        return render_prometheus(self.registry)

    def render_json(self) -> str:
        return render_json(self.registry, self.tracer)

    def snapshot(self) -> Dict:
        return snapshot(self.registry, self.tracer)


class _NullSpan:
    """Shared do-nothing context manager (no clock reads)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """No-op sink with the :class:`Telemetry` recording interface.

    The default ``telemetry`` attribute everywhere, mirroring
    :class:`repro.metrics.opcount.NullOps`: accuracy-only paths pay one
    no-op method call per hook and nothing else (no clock reads, no
    allocation beyond the kwargs dict).
    """

    __slots__ = ()
    enabled = False

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        pass

    def gauge(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, buckets=None, **labels) -> None:
        pass

    def span(self, name: str, **labels) -> _NullSpan:
        return _NULL_SPAN

    def atomic(self) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields) -> None:
        pass

    def start_span(self, name: str, trace_id=None, parent_id=None, span_id=None, **fields):
        return NULL_ACTIVE_SPAN

    def record_ops(self, ops, **labels) -> None:
        pass


#: Shared no-op sink; safe because :class:`NullTelemetry` is stateless.
NULL_TELEMETRY = NullTelemetry()


__all__ = [
    "ALERT_STATES",
    "AlertManager",
    "AlertRule",
    "AlertStatus",
    "BurnRateRule",
    "Condition",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "HistoryStore",
    "JsonlSink",
    "LogSink",
    "METRIC_HELP",
    "ManualClock",
    "MemorySink",
    "Notification",
    "NotificationSink",
    "ThresholdRule",
    "WebhookReceiver",
    "WebhookSink",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_ACTIVE_SPAN",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TelemetryServer",
    "TraceEvent",
    "Tracer",
    "build_trace_tree",
    "log_buckets",
    "make_span_id",
    "make_trace_id",
    "parse_jsonl",
    "parse_spans_jsonl",
    "read_jsonl",
    "render_json",
    "render_prometheus",
    "render_span_tree",
    "snapshot",
    "start_http_server",
]
