"""First-class observability for the NitroSketch stack.

The paper's whole argument is operational -- a sampling-probability
ladder that moves every 100 ms epoch, a convergence condition that
crosses once, cycles that migrate between pipeline stages -- and this
package makes those observable *while they happen* instead of only via
post-hoc :class:`~repro.metrics.opcount.OpCounter` totals:

* :mod:`repro.telemetry.registry` -- labeled counters, gauges and
  log-bucketed histograms (:class:`MetricsRegistry`);
* :mod:`repro.telemetry.tracer` -- a bounded ring buffer of structured
  events with JSONL export (:class:`Tracer`);
* :mod:`repro.telemetry.exposition` -- Prometheus text format, JSON
  snapshots, and an optional stdlib HTTP endpoint;
* :mod:`repro.telemetry.audit` -- live accuracy auditing: a shadow
  ground-truth reservoir (:class:`~repro.telemetry.audit.ShadowAuditor`)
  and the Theorem 1/2/5 guarantee tracker
  (:class:`~repro.telemetry.audit.GuaranteeMonitor`).  Imported lazily
  (it needs NumPy);
* :mod:`repro.telemetry.health` -- a rule engine over metric snapshots
  (:class:`HealthEvaluator`) feeding the server's ``/health`` route;
* :mod:`repro.telemetry.dashboard` -- the ``nitrosketch top`` live
  terminal dashboard.

The :class:`Telemetry` facade bundles one registry and one tracer and is
what instrumented components hold.  Mirroring the ``NullOps`` pattern of
:mod:`repro.metrics.opcount`, the default sink everywhere is
:data:`NULL_TELEMETRY` -- a stateless no-op whose calls cost one Python
method dispatch, so accuracy-only paths pay (almost) nothing.  Attach a
real :class:`Telemetry` to a component (``nitro.telemetry = tele``) to
light it up.

See ``docs/OBSERVABILITY.md`` for the metric and event catalogue.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from repro.telemetry.registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    log_buckets,
)
from repro.telemetry.tracer import TraceEvent, Tracer, parse_jsonl, read_jsonl
from repro.telemetry.exposition import (
    TelemetryServer,
    render_json,
    render_prometheus,
    snapshot,
    start_http_server,
)

#: Canonical help strings for the metrics this repository emits, so every
#: creation site agrees on the ``# HELP`` text without repeating it.
METRIC_HELP: Dict[str, str] = {
    "nitro_sampling_probability": "Current NitroSketch per-slot sampling probability p.",
    "nitro_probability_changes_total": "Sampling-probability transitions, by reason.",
    "nitro_convergence_total": "AlwaysCorrect convergence-threshold crossings.",
    "nitro_convergence_checks_total": "AlwaysCorrect convergence-test evaluations.",
    "nitro_epochs_total": "AlwaysLineRate rate-measurement epoch rollovers.",
    "nitro_packets_total": "Packets ingested by NitroSketch, by code path.",
    "nitro_sampled_packets_total": "Packets that triggered at least one counter update.",
    "nitro_geometric_draws_total": "Geometric(p) skip-counter draws.",
    "nitro_geometric_gap_slots": "Distribution of geometric inter-sample gaps (slots).",
    "pipeline_stage_seconds": "Wall-clock time per switch-pipeline stage per batch.",
    "pipeline_batches_total": "Batches forwarded, by platform.",
    "ovs_emc_hits_total": "OVS Exact Match Cache hits.",
    "ovs_emc_misses_total": "OVS Exact Match Cache misses.",
    "ovs_upcalls_total": "OVS OpenFlow slow-path consultations.",
    "daemon_batches_total": "Batches ingested by the measurement daemon.",
    "daemon_packets_total": "Packets offered to the measurement daemon.",
    "daemon_ingest_seconds": "Wall-clock time per daemon batch ingest.",
    "control_epochs_total": "Control-plane epochs evaluated.",
    "control_epoch_seconds": "Wall-clock time per control-plane epoch.",
    "control_task_seconds": "Wall-clock time per measurement-task evaluation.",
    "control_task_detected_flows": "Flows detected by the last task evaluation.",
    "simulator_capacity_mpps": "Simulated bottleneck-thread capacity.",
    "simulator_achieved_mpps": "Simulated achieved forwarding rate.",
    "simulator_cpu_share": "Simulated per-component CPU share at the achieved rate.",
    "opcounter": "OpCounter tallies bridged from the operation-accounting layer.",
    "audit_rounds_total": "Shadow-audit rounds performed.",
    "audit_tracked_flows": "Flows in the shadow ground-truth reservoir.",
    "audit_total_weight": "Exact total stream mass seen by the auditor (L1).",
    "audit_sample_rate": "Flow-inclusion probability of the shadow reservoir.",
    "audit_relative_error": "Observed relative error of sketch answers, by statistic.",
    "audit_absolute_error": "Observed absolute error of sketch answers, by statistic.",
    "audit_error_bound": "Live theoretical error bound (eps*L1 or eps*L2).",
    "audit_bound_ratio": "Observed worst error as a fraction of the theoretical bound.",
    "audit_guarantee_violations_total": "Guarantee-bound violations detected.",
    "audit_guarantee_violations": "Cumulative violations (gauge; 0 = checked and clean).",
    "daemon_queue_depth": "Batches waiting in the measurement daemon's ingest queue.",
    "health_status": "Health rule verdicts: 0 = ok, 1 = warn, 2 = fail.",
    "checkpoint_writes_total": "Monitor checkpoints written to disk.",
    "checkpoint_bytes_total": "Cumulative checkpoint bytes written.",
    "checkpoint_restores_total": "Successful checkpoint restores.",
    "checkpoint_restore_failures_total": "Checkpoint files rejected (CRC/format) on restore.",
    "checkpoint_last_sequence": "Sequence number of the newest checkpoint written.",
    "checkpoint_size_bytes": "Size of the newest checkpoint frame.",
    "daemon_checkpoint_age_batches": "Batches ingested since the daemon's last checkpoint.",
    "control_checkpoint_age_epochs": "Epochs since the control plane's last checkpoint.",
}


class _Span:
    """Times a block and records it into a histogram on exit."""

    __slots__ = ("_telemetry", "_name", "_labels", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, labels: Dict[str, str]) -> None:
        self._telemetry = telemetry
        self._name = name
        self._labels = labels

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._telemetry.observe(
            self._name, time.perf_counter() - self._start, **self._labels
        )


class Telemetry:
    """One registry + one tracer: the sink instrumented components hold.

    All methods are dynamic-name conveniences over the registry --
    families are created on first use with canonical help text from
    :data:`METRIC_HELP` and label names taken (sorted) from the call's
    keyword arguments, so every call site for a metric must use the same
    label keys.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    # -- metrics ------------------------------------------------------------

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment counter ``name`` (creating it on first use)."""
        family = self.registry.counter(
            name, METRIC_HELP.get(name, ""), tuple(sorted(labels))
        )
        (family.labels(**labels) if labels else family.labels()).inc(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set gauge ``name`` to ``value``."""
        family = self.registry.gauge(
            name, METRIC_HELP.get(name, ""), tuple(sorted(labels))
        )
        (family.labels(**labels) if labels else family.labels()).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> None:
        """Record ``value`` into histogram ``name`` (buckets fixed at creation)."""
        family = self.registry.histogram(
            name, METRIC_HELP.get(name, ""), tuple(sorted(labels)), buckets
        )
        (family.labels(**labels) if labels else family.labels()).observe(value)

    def span(self, name: str, **labels) -> _Span:
        """Context manager timing a block into histogram ``name``."""
        return _Span(self, name, labels)

    # -- events -------------------------------------------------------------

    def event(self, name: str, **fields) -> None:
        """Record one structured event into the tracer ring."""
        self.tracer.record(name, **fields)

    # -- bridges ------------------------------------------------------------

    def record_ops(self, ops, **labels) -> None:
        """Surface an :class:`~repro.metrics.opcount.OpCounter`'s tallies.

        Each category becomes one ``opcounter{category=...}`` gauge
        sample (gauges, not counters, because ``OpCounter`` objects are
        reset at will by their owners).  Extra labels -- typically
        ``component`` -- distinguish sinks.
        """
        for category, value in ops.as_dict().items():
            self.gauge("opcounter", value, category=category, **labels)

    # -- exposition shortcuts ----------------------------------------------

    def render_prometheus(self) -> str:
        return render_prometheus(self.registry)

    def render_json(self) -> str:
        return render_json(self.registry, self.tracer)

    def snapshot(self) -> Dict:
        return snapshot(self.registry, self.tracer)


class _NullSpan:
    """Shared do-nothing context manager (no clock reads)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """No-op sink with the :class:`Telemetry` recording interface.

    The default ``telemetry`` attribute everywhere, mirroring
    :class:`repro.metrics.opcount.NullOps`: accuracy-only paths pay one
    no-op method call per hook and nothing else (no clock reads, no
    allocation beyond the kwargs dict).
    """

    __slots__ = ()
    enabled = False

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        pass

    def gauge(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, buckets=None, **labels) -> None:
        pass

    def span(self, name: str, **labels) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields) -> None:
        pass

    def record_ops(self, ops, **labels) -> None:
        pass


#: Shared no-op sink; safe because :class:`NullTelemetry` is stateless.
NULL_TELEMETRY = NullTelemetry()


__all__ = [
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "METRIC_HELP",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "TelemetryServer",
    "TraceEvent",
    "Tracer",
    "log_buckets",
    "parse_jsonl",
    "read_jsonl",
    "render_json",
    "render_prometheus",
    "snapshot",
    "start_http_server",
]
