"""Per-worker metrics fan-in for the parallel data plane.

Worker processes cannot share a :class:`~repro.telemetry.Telemetry`
instance (it is in-process state), so each worker accounts for itself
inside its epoch-frame metadata and the parent fans the numbers into
the session's telemetry sink here -- one flat namespace, labeled by
worker id, exactly like a multi-queue NIC exports per-queue counters.
"""

from __future__ import annotations


def record_parallel_run(telemetry, result) -> None:
    """Fan one :class:`~repro.parallel.ParallelRunResult` into a sink.

    Emits per-worker counters/gauges (labeled ``worker=<id>``), the
    aggregate measured rates, and one ``parallel.run`` event carrying
    the run's shape -- enough for the dashboard to show per-queue skew
    and for health rules to watch restart counts.
    """
    telemetry.gauge("parallel_workers", result.workers)
    telemetry.gauge("parallel_host_cpus", result.host_cpus)
    for stats in result.worker_stats:
        label = str(stats.worker)
        telemetry.count("parallel_worker_packets_total", stats.packets, worker=label)
        telemetry.count("parallel_worker_batches_total", stats.batches, worker=label)
        telemetry.observe(
            "parallel_worker_busy_seconds", stats.busy_wall_seconds, worker=label
        )
        telemetry.gauge("parallel_worker_cpu_mpps", stats.cpu_mpps, worker=label)
        telemetry.gauge("parallel_worker_restarts", stats.restarts, worker=label)
        telemetry.observe(
            "parallel_mailbox_publish_wait_seconds",
            stats.publish_wait_seconds,
            worker=label,
        )
    telemetry.gauge("parallel_wall_mpps", result.wall_mpps)
    telemetry.gauge("parallel_aggregate_cpu_mpps", result.aggregate_cpu_mpps)
    telemetry.gauge("parallel_aggregate_busy_mpps", result.aggregate_busy_mpps)
    telemetry.event(
        "parallel.run",
        strategy=result.strategy,
        workers=result.workers,
        packets=result.packets,
        epochs=result.epochs,
        restarts=result.restarts,
        wall_seconds=result.wall_seconds,
        wall_mpps=result.wall_mpps,
        aggregate_cpu_mpps=result.aggregate_cpu_mpps,
        start_method=result.start_method,
    )


def record_service_state(telemetry, service) -> None:
    """Fan one :class:`~repro.service.MonitoringService`'s tenant table
    into the sink.

    Point-in-time gauges only (the wire path owns the counters): the
    tenant-table totals plus per-tenant queue depth and sketch memory,
    labeled ``tenant=<id>`` exactly like the per-worker parallel gauges
    -- the ``nitrosketch top`` tenants panel and the Prometheus scrape
    read the same families.
    """
    stats = service.tenants.stats()
    with telemetry.atomic():
        telemetry.gauge("service_tenants_active", stats["tenants"])
        telemetry.gauge("service_memory_bytes", stats["memory_bytes"])
        telemetry.gauge(
            "service_connections_active", service.connections_active
        )
    for state in service.tenants.states():
        with state.lock:
            depth = state.daemon.queue_depth
            memory = state.daemon.memory_bytes()
        with telemetry.atomic():
            telemetry.gauge("service_queue_depth", depth, tenant=state.name)
            telemetry.gauge(
                "service_tenant_memory_bytes", memory, tenant=state.name
            )
