"""A self-contained instrumented run for smoke tests and the CLI.

``run_demo`` drives the full stack the README's operational story is
about -- an AlwaysCorrect NitroSketch (Count Sketch substrate) riding a
VPP graph pipeline behind a measurement daemon, then a short control-
plane epoch loop -- with one :class:`~repro.telemetry.Telemetry` sink
attached everywhere.  ``validate`` then checks the snapshot contains
every metric and event the run must have produced; the CI smoke job
(``nitrosketch telemetry --demo``) fails if it does not.

This module is imported lazily by the CLI so that importing
:mod:`repro.telemetry` itself stays NumPy-free.
"""

from __future__ import annotations

from typing import Dict, List

#: Metric families the demo run must populate (acceptance criteria).
REQUIRED_METRICS = (
    "nitro_sampling_probability",
    "nitro_probability_changes_total",
    "nitro_convergence_total",
    "nitro_convergence_checks_total",
    "nitro_packets_total",
    "nitro_sampled_packets_total",
    "pipeline_batches_total",
    "pipeline_stage_seconds",
    "daemon_batches_total",
    "daemon_ingest_seconds",
    "control_epochs_total",
    "control_task_seconds",
    "simulator_capacity_mpps",
    "opcounter",
)

#: Event names the demo trace must contain.
REQUIRED_EVENTS = (
    "nitro.convergence",
    "nitro.p_change",
    "control.epoch",
    "control.task",
    "simulate.run",
)

#: Metric families the alerting demo must populate.
REQUIRED_ALERT_METRICS = (
    "ALERTS",
    "alerts_transitions_total",
    "alerts_evaluations_total",
    "notifications_sent_total",
    "anomaly_entropy_bits",
    "anomaly_entropy_drop",
    "anomaly_change_score",
    "anomaly_hh_churn",
    "anomaly_epochs_total",
    "daemon_batches_total",
)

#: The lifecycle the demo's entropy_collapse alert must walk, in order.
ALERT_LIFECYCLE = (
    ("inactive", "pending"),
    ("pending", "firing"),
    ("firing", "resolved"),
)

#: Metric families an audited run must additionally populate.
REQUIRED_AUDIT_METRICS = (
    "audit_rounds_total",
    "audit_tracked_flows",
    "audit_total_weight",
    "audit_sample_rate",
    "audit_relative_error",
    "audit_absolute_error",
    "audit_error_bound",
    "audit_bound_ratio",
    "audit_guarantee_violations",
)


def run_demo(telemetry, packets: int = 100_000, seed: int = 7) -> Dict[str, object]:
    """Run the instrumented demo pipeline; returns a summary dict."""
    from repro.control import ControlPlane, HeavyHitterTask
    from repro.core import NitroSketch, nitro_countsketch
    from repro.core.config import NitroConfig, NitroMode
    from repro.sketches import CountSketch
    from repro.switchsim import MeasurementDaemon, SwitchSimulator, VPPPipeline
    from repro.traffic import caida_like

    trace = caida_like(packets, n_flows=max(200, packets // 20), seed=seed)

    # Data plane: AlwaysCorrect Nitro Count Sketch behind a VPP graph.
    # epsilon is deliberately loose so the convergence threshold T is
    # crossable within a smoke-test-sized trace.
    config = NitroConfig(
        probability=0.1,
        epsilon=0.5,
        mode=NitroMode.ALWAYS_CORRECT,
        convergence_check_period=1000,
        top_k=100,
        seed=seed,
    )
    nitro = NitroSketch(CountSketch(5, 4096, seed=seed), config)
    daemon = MeasurementDaemon(nitro, name="nitro-cs")
    simulator = SwitchSimulator(VPPPipeline(), daemon, telemetry=telemetry)
    result = simulator.run(trace)

    # Control plane: a short epoch loop with a heavy-hitter task.
    task = HeavyHitterTask(0.005)
    task.telemetry = telemetry
    plane = ControlPlane(
        lambda epoch: nitro_countsketch(probability=0.1, top_k=100, seed=seed),
        [task],
        score=False,
        telemetry=telemetry,
    )
    epochs = plane.run_epochs(trace, epoch_packets=max(packets // 4, 1))

    return {
        "packets": packets,
        "converged": nitro.converged,
        "converged_at_packet": (
            nitro.correctness.converged_at_packet if nitro.correctness else None
        ),
        "probability": nitro.probability,
        "achieved_mpps": result.achieved_mpps,
        "epochs": len(epochs),
    }


def run_audited_demo(
    telemetry,
    packets: int = 50_000,
    seed: int = 7,
    corrupt: bool = False,
) -> Dict[str, object]:
    """Run the demo pipeline with a live shadow auditor attached.

    The same VPP + AlwaysCorrect Nitro Count Sketch stack as
    :func:`run_demo`, but a :class:`~repro.telemetry.audit.ShadowAuditor`
    + :class:`~repro.telemetry.audit.GuaranteeMonitor` ride the daemon:
    every ingested batch is mirrored into exact shadow truth, and a final
    guarantee check compares observed worst error against the Theorem 2/5
    ``eps * L2`` bound.  With ``corrupt=True`` the sketch's counters are
    smashed after ingest (simulating memory corruption / a broken
    implementation) so the check **must** record a violation -- the CI
    smoke's negative path.
    """
    from repro.core import NitroSketch
    from repro.core.config import NitroConfig, NitroMode
    from repro.sketches import CountSketch
    from repro.switchsim import MeasurementDaemon, SwitchSimulator, VPPPipeline
    from repro.telemetry.audit import GuaranteeMonitor, ShadowAuditor
    from repro.traffic import caida_like

    trace = caida_like(packets, n_flows=max(200, packets // 20), seed=seed)
    config = NitroConfig(
        probability=0.1,
        epsilon=0.5,
        mode=NitroMode.ALWAYS_CORRECT,
        convergence_check_period=1000,
        top_k=100,
        seed=seed,
    )
    nitro = NitroSketch(CountSketch(5, 4096, seed=seed), config)
    auditor = ShadowAuditor(capacity=256, seed=seed, telemetry=telemetry)
    guard = GuaranteeMonitor(auditor, nitro)
    daemon = MeasurementDaemon(nitro, name="nitro-cs", auditor=guard)
    simulator = SwitchSimulator(VPPPipeline(), daemon, telemetry=telemetry)
    result = simulator.run(trace)

    if corrupt:
        # Wipe the counter arrays (a mid-run memory loss).  Additive or
        # multiplicative smashing cannot reliably trip the check: the
        # Count Sketch median cancels constant offsets, and the eps*L2
        # bound is read from the same counters, so scaling them scales
        # the bound identically.  Zeroing deflates the bound to 0 while
        # every estimate's error becomes the flow's exact truth -- a
        # guaranteed violation (and an infinite error/bound ratio, which
        # exercises the non-finite exposition path end to end).
        nitro.sketch.counters[:] = 0.0
    report = guard.check()

    return {
        "packets": packets,
        "corrupted": corrupt,
        "converged": nitro.converged,
        "probability": nitro.probability,
        "achieved_mpps": result.achieved_mpps,
        "tracked_flows": auditor.tracked_flows,
        "guarantee": report.guarantee,
        "bound": report.bound,
        "observed_max_error": report.observed_max_error,
        "ratio": report.ratio,
        "violated": report.violated,
        "violations": guard.violations,
        "mean_relative_error": report.audit.mean_relative_error,
    }


def run_alert_demo(
    telemetry,
    packets: int = 60_000,
    seed: int = 7,
    epochs: int = 12,
    webhook_url=None,
    on_transition=None,
    on_ready=None,
):
    """Replay the DDoS-onset trace through an alerting daemon.

    The end-to-end proof of ISSUE 8: a :class:`MeasurementDaemon`
    carrying a NitroSketch K-ary monitor ingests
    :func:`~repro.telemetry.anomaly.ddos_onset_trace`; at every epoch
    boundary the sketch-driven detectors update the ``anomaly_*``
    gauges and the default rule set is evaluated.  The attack window
    collapses flow entropy, so the ``entropy_collapse`` alert must walk
    inactive → pending → firing, deliver notifications (to the
    in-memory sink and, when ``webhook_url`` is given, over HTTP), and
    resolve after the attack stops.  A :class:`ManualClock` pins every
    transition timestamp, so the run is deterministic under ``seed``.

    Returns a summary dict that also carries the live objects
    (``manager``, ``history``, ``detectors``, ``daemon``) so the CLI
    can serve them after the run.
    """
    from repro.core import nitro_kary
    from repro.switchsim import MeasurementDaemon
    from repro.telemetry import (
        AlertManager,
        HistoryStore,
        ManualClock,
        MemorySink,
        WebhookSink,
    )
    from repro.telemetry.anomaly import (
        SketchAnomalyDetectors,
        ddos_onset_trace,
        default_alert_rules,
    )
    from repro.traffic.replay import Batch

    trace = ddos_onset_trace(packets, seed=seed)
    detectors = SketchAnomalyDetectors(telemetry=telemetry)
    history = HistoryStore()
    memory = MemorySink()
    sinks = [memory]
    webhook = None
    if webhook_url:
        webhook = WebhookSink(webhook_url)
        sinks.append(webhook)
    manager = AlertManager(
        telemetry,
        rules=default_alert_rules(epoch_seconds=1.0),
        history=history,
        sinks=sinks,
        # Evaluation i (= epoch i) happens at exactly t = i seconds.
        clock=ManualClock(),
        # Keep resolved alerts visible for post-run HTTP probes.
        resolved_retention=1e9,
        on_transition=on_transition,
    )
    monitor = nitro_kary(
        depth=5, width=8192, probability=0.25, top_k=64, seed=seed
    )
    daemon = MeasurementDaemon(
        monitor,
        name="alert-demo",
        telemetry=telemetry,
        anomaly=detectors,
        alerts=manager,
        epoch_batches=4,
    )
    if on_ready is not None:
        # Hand the live objects out before ingest starts, so a caller
        # can attach them to an already-running TelemetryServer and
        # probe /alerts over HTTP at the instant a transition happens.
        on_ready(
            {
                "manager": manager,
                "history": history,
                "detectors": detectors,
                "daemon": daemon,
            }
        )
    n_batches = epochs * daemon.epoch_batches
    step = max(len(trace) // n_batches, 1)
    for index in range(n_batches):
        piece = trace.slice(index * step, (index + 1) * step)
        if len(piece) == 0:
            break
        daemon.ingest(
            Batch(keys=piece.keys, sizes=piece.sizes, timestamps=piece.timestamps)
        )
    daemon.epoch_boundary()  # trailing partial epoch, if any

    entropy_transitions = [
        (event["from"], event["to"])
        for event in manager.transitions
        if event["alert"] == "entropy_collapse"
    ]
    return {
        "packets": len(trace),
        "seed": seed,
        "epochs": daemon.epochs_completed,
        "entropy_transitions": entropy_transitions,
        "transitions": list(manager.transitions),
        "fired": ("pending", "firing") in entropy_transitions,
        "resolved": ("firing", "resolved") in entropy_transitions,
        "notifications": list(memory.notifications),
        "signals": detectors.last_signals,
        "manager": manager,
        "history": history,
        "detectors": detectors,
        "daemon": daemon,
        "memory_sink": memory,
        "webhook_sink": webhook,
    }


def validate_alert_demo(
    telemetry, summary, expect_webhook: bool = False
) -> List[str]:
    """Check an alert-demo run hit every acceptance point."""
    problems = []
    for name in REQUIRED_ALERT_METRICS:
        if name not in telemetry.registry:
            problems.append("missing metric family: %s" % name)
    # The entropy alert must walk the full lifecycle, in order.
    sequence = list(summary["entropy_transitions"])
    cursor = 0
    for expected in ALERT_LIFECYCLE:
        try:
            cursor = sequence.index(expected, cursor) + 1
        except ValueError:
            problems.append(
                "entropy_collapse never made the %s -> %s transition "
                "(saw %r)" % (expected[0], expected[1], sequence)
            )
    states = {"firing": 0, "resolved": 0}
    for notification in summary["notifications"]:
        if notification.alert == "entropy_collapse":
            states[notification.state] = states.get(notification.state, 0) + 1
    if not states["firing"]:
        problems.append("no firing notification for entropy_collapse")
    if not states["resolved"]:
        problems.append("no resolved notification for entropy_collapse")
    if not telemetry.tracer.events("alert.transition"):
        problems.append("missing trace event: alert.transition")
    if not telemetry.tracer.events("anomaly.epoch"):
        problems.append("missing trace event: anomaly.epoch")
    webhook = summary.get("webhook_sink")
    if expect_webhook:
        if webhook is None:
            problems.append("webhook sink was not attached")
        elif webhook.sent == 0:
            problems.append(
                "webhook delivered nothing (failed=%d, last_error=%s)"
                % (webhook.failed, webhook.last_error)
            )
        elif webhook.failed:
            problems.append("webhook had %d delivery failure(s)" % webhook.failed)
    return problems


def validate_audit(telemetry, expect_violation: bool = False) -> List[str]:
    """Check an audited run's snapshot; returns problem strings."""
    problems = []
    for name in REQUIRED_AUDIT_METRICS:
        if name not in telemetry.registry:
            problems.append("missing metric family: %s" % name)
    violations = telemetry.tracer.events("audit.violation")
    if expect_violation and not violations:
        problems.append("corrupted sketch did not fire audit.violation")
    if not expect_violation and violations:
        problems.append(
            "clean run fired audit.violation %d time(s)" % len(violations)
        )
    return problems


def validate(telemetry) -> List[str]:
    """Check the demo's snapshot is complete; returns problem strings."""
    problems = []
    for name in REQUIRED_METRICS:
        if name not in telemetry.registry:
            problems.append("missing metric family: %s" % name)
    for name in REQUIRED_EVENTS:
        if not telemetry.tracer.events(name):
            problems.append("missing trace event: %s" % name)
    convergences = telemetry.tracer.events("nitro.convergence")
    if len(convergences) > 1:
        problems.append(
            "nitro.convergence fired %d times (expected once)" % len(convergences)
        )
    for event in convergences:
        if "packets" not in event.fields:
            problems.append("nitro.convergence event lacks a packet index")
    return problems
