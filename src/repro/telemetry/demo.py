"""A self-contained instrumented run for smoke tests and the CLI.

``run_demo`` drives the full stack the README's operational story is
about -- an AlwaysCorrect NitroSketch (Count Sketch substrate) riding a
VPP graph pipeline behind a measurement daemon, then a short control-
plane epoch loop -- with one :class:`~repro.telemetry.Telemetry` sink
attached everywhere.  ``validate`` then checks the snapshot contains
every metric and event the run must have produced; the CI smoke job
(``nitrosketch telemetry --demo``) fails if it does not.

This module is imported lazily by the CLI so that importing
:mod:`repro.telemetry` itself stays NumPy-free.
"""

from __future__ import annotations

from typing import Dict, List

#: Metric families the demo run must populate (acceptance criteria).
REQUIRED_METRICS = (
    "nitro_sampling_probability",
    "nitro_probability_changes_total",
    "nitro_convergence_total",
    "nitro_convergence_checks_total",
    "nitro_packets_total",
    "nitro_sampled_packets_total",
    "pipeline_batches_total",
    "pipeline_stage_seconds",
    "daemon_batches_total",
    "daemon_ingest_seconds",
    "control_epochs_total",
    "control_task_seconds",
    "simulator_capacity_mpps",
    "opcounter",
)

#: Event names the demo trace must contain.
REQUIRED_EVENTS = (
    "nitro.convergence",
    "nitro.p_change",
    "control.epoch",
    "control.task",
    "simulate.run",
)


def run_demo(telemetry, packets: int = 100_000, seed: int = 7) -> Dict[str, object]:
    """Run the instrumented demo pipeline; returns a summary dict."""
    from repro.control import ControlPlane, HeavyHitterTask
    from repro.core import NitroSketch, nitro_countsketch
    from repro.core.config import NitroConfig, NitroMode
    from repro.sketches import CountSketch
    from repro.switchsim import MeasurementDaemon, SwitchSimulator, VPPPipeline
    from repro.traffic import caida_like

    trace = caida_like(packets, n_flows=max(200, packets // 20), seed=seed)

    # Data plane: AlwaysCorrect Nitro Count Sketch behind a VPP graph.
    # epsilon is deliberately loose so the convergence threshold T is
    # crossable within a smoke-test-sized trace.
    config = NitroConfig(
        probability=0.1,
        epsilon=0.5,
        mode=NitroMode.ALWAYS_CORRECT,
        convergence_check_period=1000,
        top_k=100,
        seed=seed,
    )
    nitro = NitroSketch(CountSketch(5, 4096, seed=seed), config)
    daemon = MeasurementDaemon(nitro, name="nitro-cs")
    simulator = SwitchSimulator(VPPPipeline(), daemon, telemetry=telemetry)
    result = simulator.run(trace)

    # Control plane: a short epoch loop with a heavy-hitter task.
    task = HeavyHitterTask(0.005)
    task.telemetry = telemetry
    plane = ControlPlane(
        lambda epoch: nitro_countsketch(probability=0.1, top_k=100, seed=seed),
        [task],
        score=False,
        telemetry=telemetry,
    )
    epochs = plane.run_epochs(trace, epoch_packets=max(packets // 4, 1))

    return {
        "packets": packets,
        "converged": nitro.converged,
        "converged_at_packet": (
            nitro.correctness.converged_at_packet if nitro.correctness else None
        ),
        "probability": nitro.probability,
        "achieved_mpps": result.achieved_mpps,
        "epochs": len(epochs),
    }


def validate(telemetry) -> List[str]:
    """Check the demo's snapshot is complete; returns problem strings."""
    problems = []
    for name in REQUIRED_METRICS:
        if name not in telemetry.registry:
            problems.append("missing metric family: %s" % name)
    for name in REQUIRED_EVENTS:
        if not telemetry.tracer.events(name):
            problems.append("missing trace event: %s" % name)
    convergences = telemetry.tracer.events("nitro.convergence")
    if len(convergences) > 1:
        problems.append(
            "nitro.convergence fired %d times (expected once)" % len(convergences)
        )
    for event in convergences:
        if "packets" not in event.fields:
            problems.append("nitro.convergence event lacks a packet index")
    return problems
