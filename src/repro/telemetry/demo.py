"""A self-contained instrumented run for smoke tests and the CLI.

``run_demo`` drives the full stack the README's operational story is
about -- an AlwaysCorrect NitroSketch (Count Sketch substrate) riding a
VPP graph pipeline behind a measurement daemon, then a short control-
plane epoch loop -- with one :class:`~repro.telemetry.Telemetry` sink
attached everywhere.  ``validate`` then checks the snapshot contains
every metric and event the run must have produced; the CI smoke job
(``nitrosketch telemetry --demo``) fails if it does not.

This module is imported lazily by the CLI so that importing
:mod:`repro.telemetry` itself stays NumPy-free.
"""

from __future__ import annotations

from typing import Dict, List

#: Metric families the demo run must populate (acceptance criteria).
REQUIRED_METRICS = (
    "nitro_sampling_probability",
    "nitro_probability_changes_total",
    "nitro_convergence_total",
    "nitro_convergence_checks_total",
    "nitro_packets_total",
    "nitro_sampled_packets_total",
    "pipeline_batches_total",
    "pipeline_stage_seconds",
    "daemon_batches_total",
    "daemon_ingest_seconds",
    "control_epochs_total",
    "control_task_seconds",
    "simulator_capacity_mpps",
    "opcounter",
)

#: Event names the demo trace must contain.
REQUIRED_EVENTS = (
    "nitro.convergence",
    "nitro.p_change",
    "control.epoch",
    "control.task",
    "simulate.run",
)

#: Metric families an audited run must additionally populate.
REQUIRED_AUDIT_METRICS = (
    "audit_rounds_total",
    "audit_tracked_flows",
    "audit_total_weight",
    "audit_sample_rate",
    "audit_relative_error",
    "audit_absolute_error",
    "audit_error_bound",
    "audit_bound_ratio",
    "audit_guarantee_violations",
)


def run_demo(telemetry, packets: int = 100_000, seed: int = 7) -> Dict[str, object]:
    """Run the instrumented demo pipeline; returns a summary dict."""
    from repro.control import ControlPlane, HeavyHitterTask
    from repro.core import NitroSketch, nitro_countsketch
    from repro.core.config import NitroConfig, NitroMode
    from repro.sketches import CountSketch
    from repro.switchsim import MeasurementDaemon, SwitchSimulator, VPPPipeline
    from repro.traffic import caida_like

    trace = caida_like(packets, n_flows=max(200, packets // 20), seed=seed)

    # Data plane: AlwaysCorrect Nitro Count Sketch behind a VPP graph.
    # epsilon is deliberately loose so the convergence threshold T is
    # crossable within a smoke-test-sized trace.
    config = NitroConfig(
        probability=0.1,
        epsilon=0.5,
        mode=NitroMode.ALWAYS_CORRECT,
        convergence_check_period=1000,
        top_k=100,
        seed=seed,
    )
    nitro = NitroSketch(CountSketch(5, 4096, seed=seed), config)
    daemon = MeasurementDaemon(nitro, name="nitro-cs")
    simulator = SwitchSimulator(VPPPipeline(), daemon, telemetry=telemetry)
    result = simulator.run(trace)

    # Control plane: a short epoch loop with a heavy-hitter task.
    task = HeavyHitterTask(0.005)
    task.telemetry = telemetry
    plane = ControlPlane(
        lambda epoch: nitro_countsketch(probability=0.1, top_k=100, seed=seed),
        [task],
        score=False,
        telemetry=telemetry,
    )
    epochs = plane.run_epochs(trace, epoch_packets=max(packets // 4, 1))

    return {
        "packets": packets,
        "converged": nitro.converged,
        "converged_at_packet": (
            nitro.correctness.converged_at_packet if nitro.correctness else None
        ),
        "probability": nitro.probability,
        "achieved_mpps": result.achieved_mpps,
        "epochs": len(epochs),
    }


def run_audited_demo(
    telemetry,
    packets: int = 50_000,
    seed: int = 7,
    corrupt: bool = False,
) -> Dict[str, object]:
    """Run the demo pipeline with a live shadow auditor attached.

    The same VPP + AlwaysCorrect Nitro Count Sketch stack as
    :func:`run_demo`, but a :class:`~repro.telemetry.audit.ShadowAuditor`
    + :class:`~repro.telemetry.audit.GuaranteeMonitor` ride the daemon:
    every ingested batch is mirrored into exact shadow truth, and a final
    guarantee check compares observed worst error against the Theorem 2/5
    ``eps * L2`` bound.  With ``corrupt=True`` the sketch's counters are
    smashed after ingest (simulating memory corruption / a broken
    implementation) so the check **must** record a violation -- the CI
    smoke's negative path.
    """
    from repro.core import NitroSketch
    from repro.core.config import NitroConfig, NitroMode
    from repro.sketches import CountSketch
    from repro.switchsim import MeasurementDaemon, SwitchSimulator, VPPPipeline
    from repro.telemetry.audit import GuaranteeMonitor, ShadowAuditor
    from repro.traffic import caida_like

    trace = caida_like(packets, n_flows=max(200, packets // 20), seed=seed)
    config = NitroConfig(
        probability=0.1,
        epsilon=0.5,
        mode=NitroMode.ALWAYS_CORRECT,
        convergence_check_period=1000,
        top_k=100,
        seed=seed,
    )
    nitro = NitroSketch(CountSketch(5, 4096, seed=seed), config)
    auditor = ShadowAuditor(capacity=256, seed=seed, telemetry=telemetry)
    guard = GuaranteeMonitor(auditor, nitro)
    daemon = MeasurementDaemon(nitro, name="nitro-cs", auditor=guard)
    simulator = SwitchSimulator(VPPPipeline(), daemon, telemetry=telemetry)
    result = simulator.run(trace)

    if corrupt:
        # Wipe the counter arrays (a mid-run memory loss).  Additive or
        # multiplicative smashing cannot reliably trip the check: the
        # Count Sketch median cancels constant offsets, and the eps*L2
        # bound is read from the same counters, so scaling them scales
        # the bound identically.  Zeroing deflates the bound to 0 while
        # every estimate's error becomes the flow's exact truth -- a
        # guaranteed violation (and an infinite error/bound ratio, which
        # exercises the non-finite exposition path end to end).
        nitro.sketch.counters[:] = 0.0
    report = guard.check()

    return {
        "packets": packets,
        "corrupted": corrupt,
        "converged": nitro.converged,
        "probability": nitro.probability,
        "achieved_mpps": result.achieved_mpps,
        "tracked_flows": auditor.tracked_flows,
        "guarantee": report.guarantee,
        "bound": report.bound,
        "observed_max_error": report.observed_max_error,
        "ratio": report.ratio,
        "violated": report.violated,
        "violations": guard.violations,
        "mean_relative_error": report.audit.mean_relative_error,
    }


def validate_audit(telemetry, expect_violation: bool = False) -> List[str]:
    """Check an audited run's snapshot; returns problem strings."""
    problems = []
    for name in REQUIRED_AUDIT_METRICS:
        if name not in telemetry.registry:
            problems.append("missing metric family: %s" % name)
    violations = telemetry.tracer.events("audit.violation")
    if expect_violation and not violations:
        problems.append("corrupted sketch did not fire audit.violation")
    if not expect_violation and violations:
        problems.append(
            "clean run fired audit.violation %d time(s)" % len(violations)
        )
    return problems


def validate(telemetry) -> List[str]:
    """Check the demo's snapshot is complete; returns problem strings."""
    problems = []
    for name in REQUIRED_METRICS:
        if name not in telemetry.registry:
            problems.append("missing metric family: %s" % name)
    for name in REQUIRED_EVENTS:
        if not telemetry.tracer.events(name):
            problems.append("missing trace event: %s" % name)
    convergences = telemetry.tracer.events("nitro.convergence")
    if len(convergences) > 1:
        problems.append(
            "nitro.convergence fired %d times (expected once)" % len(convergences)
        )
    for event in convergences:
        if "packets" not in event.fields:
            problems.append("nitro.convergence event lacks a packet index")
    return problems
