"""Live accuracy auditing: shadow ground truth vs the running sketch.

The paper's guarantees (Theorems 1/2/5) say the sketch's answers stay
within ``eps * L1`` (Count-Min) or ``eps * L2`` (Count Sketch) even
while sampling at ``p << 1`` -- but nothing in a running system checks
that.  This module turns the guarantee into a live, alertable signal:

* :class:`ShadowAuditor` keeps a **uniform reservoir of flows with
  exact counts** alongside any monitor.  Membership is decided by a
  salted hash of the key (distinct/hash sampling, Gibbons' style): a
  flow is tracked iff ``h(key) < threshold``, and when the reservoir
  outgrows its capacity the threshold halves and the now-unqualified
  flows are evicted.  Because qualification depends only on the key,
  every packet of a tracked flow is counted from its first appearance,
  so the surviving reservoir holds *exact* per-flow truth -- a uniform
  sample over distinct flows, unbiased by flow size.
* :meth:`ShadowAuditor.audit` queries the monitored sketch for every
  reservoir key and exports observed mean / p50 / p90 / p99 / max
  relative error as gauges (the queries are **not** billed to the
  monitor's :class:`~repro.metrics.opcount.OpCounter`, so audited and
  unaudited runs keep identical data-plane op accounts).
* :class:`GuaranteeMonitor` computes the live theoretical bound --
  ``eps * L1`` from the auditor's exact stream mass for unsigned
  (Count-Min-style) sketches, ``eps * L2`` via the median-row
  ``sum C^2`` AMS estimate for signed ones -- compares it against the
  observed worst absolute error, and emits ``audit.violation`` /
  ``audit.drift`` tracer events when the guarantee breaks or the
  error/bound ratio trends up.

Everything records through the usual :class:`~repro.telemetry.Telemetry`
facade and defaults to :data:`~repro.telemetry.NULL_TELEMETRY`, so an
un-audited run stays bit-identical to the seed behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.theory import l1_error_bound, l2_error_bound
from repro.metrics.accuracy import relative_error
from repro.metrics.opcount import NULL_OPS
from repro.telemetry import NULL_TELEMETRY

#: Salt multiplier for the reservoir's key hash (splitmix64's constant).
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)
_HASH_SHIFT = np.uint64(31)
_FULL_RANGE = 2**64


def _mix(keys: "np.ndarray", salt: int) -> "np.ndarray":
    """Cheap 64-bit mix of ``keys`` (vectorised, overflow-wrapping)."""
    if keys.dtype == np.int64:  # free reinterpret; astype would copy
        keys = keys.view(np.uint64)
    with np.errstate(over="ignore"):
        h = keys.astype(np.uint64, copy=False) + np.uint64(salt & 0xFFFFFFFFFFFFFFFF)
        h = h * _HASH_MULTIPLIER
        h ^= h >> _HASH_SHIFT
        h = h * _HASH_MULTIPLIER
    return h


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (p = fraction in [0,1])."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(math.ceil(fraction * len(ordered))) - 1))
    return ordered[rank]


@dataclass
class AuditReport:
    """Observed error statistics from one audit round."""

    tracked_flows: int
    total_weight: float
    mean_relative_error: float
    p50_relative_error: float
    p90_relative_error: float
    p99_relative_error: float
    max_relative_error: float
    mean_absolute_error: float
    max_absolute_error: float
    #: The reservoir key with the worst absolute error (None when empty).
    worst_key: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "tracked_flows": self.tracked_flows,
            "total_weight": self.total_weight,
            "mean_relative_error": self.mean_relative_error,
            "p50_relative_error": self.p50_relative_error,
            "p90_relative_error": self.p90_relative_error,
            "p99_relative_error": self.p99_relative_error,
            "max_relative_error": self.max_relative_error,
            "mean_absolute_error": self.mean_absolute_error,
            "max_absolute_error": self.max_absolute_error,
            "worst_key": self.worst_key,
        }


class ShadowAuditor:
    """Exact ground truth for a uniform sample of flows.

    Parameters
    ----------
    capacity:
        Upper bound on reservoir size.  When crossed, the hash threshold
        halves (each surviving flow keeps its exact count).
    seed:
        Salt for the membership hash; different seeds sample different
        flow subsets.
    telemetry:
        Observability sink (defaults to the free null sink).
    component:
        Label distinguishing this auditor's metric samples.
    """

    def __init__(
        self,
        capacity: int = 256,
        seed: int = 0,
        telemetry=NULL_TELEMETRY,
        component: str = "audit",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        self.capacity = capacity
        self.seed = seed
        self.telemetry = telemetry
        self.component = component
        #: Exact counts for the tracked flows.
        self.truth: Dict[int, float] = {}
        #: Exact total stream mass (the L1 norm of the frequency vector).
        self.total_weight = 0.0
        self.packets_observed = 0
        self.audits = 0
        # Track-everything threshold; halves on reservoir overflow.
        self._threshold = _FULL_RANGE

    # -- sampling state -----------------------------------------------------

    @property
    def sample_rate(self) -> float:
        """Current flow-inclusion probability (1.0 until first overflow)."""
        return self._threshold / _FULL_RANGE

    @property
    def tracked_flows(self) -> int:
        return len(self.truth)

    def estimated_flow_count(self) -> float:
        """Unbiased distinct-flow estimate: tracked / sample_rate."""
        return len(self.truth) / self.sample_rate

    # -- ingest -------------------------------------------------------------

    def observe(self, key: int, weight: float = 1.0) -> None:
        """Account one packet of flow ``key`` (scalar path)."""
        self.packets_observed += 1
        self.total_weight += weight
        h = int(_mix(np.asarray([key]), self.seed)[0])
        if h < self._threshold:
            self.truth[key] = self.truth.get(key, 0.0) + weight
            if len(self.truth) > self.capacity:
                self._shrink()

    def observe_batch(self, keys: "np.ndarray", weights: Optional["np.ndarray"] = None) -> None:
        """Account a packet batch (the daemon's vectorised path)."""
        keys = np.asarray(keys)
        count = len(keys)
        if count == 0:
            return
        self.packets_observed += count
        if weights is None:
            self.total_weight += float(count)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            self.total_weight += float(np.sum(weights))
        if self._threshold == _FULL_RANGE:  # np.uint64 cannot hold 2**64
            selected = keys
            selected_weights = weights
        else:
            mask = _mix(keys, self.seed) < np.uint64(self._threshold)
            if not mask.any():
                return
            selected = keys[mask]
            selected_weights = None if weights is None else weights[mask]
        # Once the threshold settles, ``selected`` is a small fraction of
        # the batch -- a direct dict fold beats np.unique's sort there.
        truth = self.truth
        get = truth.get
        if selected_weights is None:
            for key in selected.tolist():
                truth[key] = get(key, 0.0) + 1.0
        else:
            for key, mass in zip(selected.tolist(), selected_weights.tolist()):
                truth[key] = get(key, 0.0) + mass
        if len(truth) > self.capacity:
            self._shrink()

    def _shrink(self) -> None:
        """Halve the hash threshold until the reservoir fits again."""
        while len(self.truth) > self.capacity:
            self._threshold //= 2
            if self._threshold == 0:  # pragma: no cover - 64 halvings
                self._threshold = 1
            keys = np.fromiter(self.truth, dtype=np.int64, count=len(self.truth))
            keep = _mix(keys, self.seed) < np.uint64(self._threshold)
            self.truth = {
                int(key): self.truth[int(key)] for key in keys[keep].tolist()
            }

    # -- auditing -----------------------------------------------------------

    def audit(self, monitor) -> AuditReport:
        """Query ``monitor`` for every reservoir key; export error gauges.

        ``monitor`` is anything with ``query(key)`` (``query_batch`` is
        used when available, directly or via a wrapped ``.sketch``).
        The queries run with the monitor's op accounting suspended so an
        audited run keeps the exact op tallies of an unaudited one.
        """
        self.audits += 1
        keys = list(self.truth)
        estimates = self._query_all(monitor, keys)
        rel: List[float] = []
        abs_errors: List[float] = []
        worst_key: Optional[int] = None
        worst_abs = -1.0
        for key, estimate in zip(keys, estimates):
            true = self.truth[key]
            rel.append(relative_error(estimate, true))
            error = abs(estimate - true)
            abs_errors.append(error)
            if error > worst_abs:
                worst_abs = error
                worst_key = key
        ordered = sorted(rel)
        report = AuditReport(
            tracked_flows=len(keys),
            total_weight=self.total_weight,
            mean_relative_error=sum(rel) / len(rel) if rel else 0.0,
            p50_relative_error=_percentile(ordered, 0.50),
            p90_relative_error=_percentile(ordered, 0.90),
            p99_relative_error=_percentile(ordered, 0.99),
            max_relative_error=ordered[-1] if ordered else 0.0,
            mean_absolute_error=(
                sum(abs_errors) / len(abs_errors) if abs_errors else 0.0
            ),
            max_absolute_error=max(abs_errors) if abs_errors else 0.0,
            worst_key=worst_key,
        )
        self._export(report)
        return report

    def _query_all(self, monitor, keys: List[int]) -> List[float]:
        if not keys:
            return []
        # Suspend op accounting: audits are control-plane reads and must
        # not perturb the data plane's operation tallies.
        previous_ops = getattr(monitor, "ops", None)
        if previous_ops is not None:
            monitor.ops = NULL_OPS
        try:
            batcher = getattr(monitor, "query_batch", None)
            if batcher is None:
                inner = getattr(monitor, "sketch", None)
                batcher = getattr(inner, "query_batch", None)
            if batcher is not None:
                return [float(v) for v in batcher(np.asarray(keys, dtype=np.int64))]
            return [float(monitor.query(key)) for key in keys]
        finally:
            if previous_ops is not None:
                monitor.ops = previous_ops

    def _export(self, report: AuditReport) -> None:
        telemetry = self.telemetry
        component = self.component
        telemetry.count("audit_rounds_total", component=component)
        telemetry.gauge("audit_tracked_flows", report.tracked_flows, component=component)
        telemetry.gauge("audit_total_weight", report.total_weight, component=component)
        telemetry.gauge("audit_sample_rate", self.sample_rate, component=component)
        for stat, value in (
            ("mean", report.mean_relative_error),
            ("p50", report.p50_relative_error),
            ("p90", report.p90_relative_error),
            ("p99", report.p99_relative_error),
            ("max", report.max_relative_error),
        ):
            telemetry.gauge(
                "audit_relative_error", value, component=component, stat=stat
            )
        telemetry.gauge(
            "audit_absolute_error",
            report.mean_absolute_error,
            component=component,
            stat="mean",
        )
        telemetry.gauge(
            "audit_absolute_error",
            report.max_absolute_error,
            component=component,
            stat="max",
        )

    def reset(self) -> None:
        """Forget all truth and restore the track-everything threshold."""
        self.truth.clear()
        self.total_weight = 0.0
        self.packets_observed = 0
        self._threshold = _FULL_RANGE


@dataclass
class GuaranteeReport:
    """One guarantee check: observed error vs the live theoretical bound."""

    guarantee: str
    epsilon: float
    bound: float
    observed_max_error: float
    ratio: float
    violated: bool
    audit: AuditReport = field(repr=False, default=None)

    def as_dict(self) -> Dict[str, object]:
        return {
            "guarantee": self.guarantee,
            "epsilon": self.epsilon,
            "bound": self.bound,
            "observed_max_error": self.observed_max_error,
            "ratio": self.ratio,
            "violated": self.violated,
        }


class GuaranteeMonitor:
    """Tracks the live accuracy guarantee of a (Nitro-)sketch monitor.

    Parameters
    ----------
    auditor:
        The :class:`ShadowAuditor` holding exact truth for the stream.
    monitor:
        The monitored estimator -- a :class:`~repro.core.NitroSketch`
        or any canonical sketch.  Signedness picks the guarantee:
        unsigned (Count-Min-style) sketches get the Theorem 1
        ``eps * L1`` bound with the auditor's exact stream mass;
        signed (Count Sketch / K-ary) get the Theorem 2/5 ``eps * L2``
        bound via the median-row ``sum C^2`` AMS estimate the
        AlwaysCorrect controller already maintains.
    epsilon:
        Accuracy target; defaults to ``monitor.config.epsilon`` when the
        monitor carries a NitroConfig.
    check_interval_packets:
        Run a check automatically every this many observed packets
        (via :meth:`observe_batch`); ``0`` disables auto-checks.
    drift_ratio / drift_window:
        Emit an ``audit.drift`` event when the error/bound ratio has
        risen for ``drift_window`` consecutive checks and sits above
        ``drift_ratio`` -- the early-warning signal before an outright
        violation.
    """

    def __init__(
        self,
        auditor: ShadowAuditor,
        monitor,
        epsilon: Optional[float] = None,
        guarantee: Optional[str] = None,
        check_interval_packets: int = 0,
        drift_ratio: float = 0.5,
        drift_window: int = 3,
        telemetry=None,
    ) -> None:
        self.auditor = auditor
        self.monitor = monitor
        config = getattr(monitor, "config", None)
        if epsilon is None:
            epsilon = getattr(config, "epsilon", None)
        if epsilon is None:
            raise ValueError(
                "epsilon required (monitor carries no NitroConfig to read it from)"
            )
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1), got %r" % (epsilon,))
        self.epsilon = float(epsilon)
        if guarantee is None:
            guarantee = "l2" if self._sketch_of(monitor).signed else "l1"
        if guarantee not in ("l1", "l2"):
            raise ValueError("guarantee must be 'l1' or 'l2', got %r" % (guarantee,))
        self.guarantee = guarantee
        if drift_window < 2:
            raise ValueError("drift_window must be >= 2")
        self.check_interval_packets = check_interval_packets
        self.drift_ratio = drift_ratio
        self.drift_window = drift_window
        self.telemetry = telemetry if telemetry is not None else auditor.telemetry
        self.violations = 0
        self.checks = 0
        self.last_report: Optional[GuaranteeReport] = None
        self._ratio_history: List[float] = []
        self._packets_since_check = 0
        self._drift_alerted = False

    @staticmethod
    def _sketch_of(monitor):
        return getattr(monitor, "sketch", monitor)

    # -- ingest passthrough -------------------------------------------------

    def observe(self, key: int, weight: float = 1.0) -> None:
        self.auditor.observe(key, weight)
        self._packets_since_check += 1
        self._maybe_check()

    def observe_batch(self, keys: "np.ndarray", weights: Optional["np.ndarray"] = None) -> None:
        self.auditor.observe_batch(keys, weights)
        self._packets_since_check += len(np.asarray(keys))
        self._maybe_check()

    def _maybe_check(self) -> None:
        if (
            self.check_interval_packets > 0
            and self._packets_since_check >= self.check_interval_packets
        ):
            self.check()

    # -- the bound ----------------------------------------------------------

    def bound(self) -> float:
        """The live theoretical error bound for the current stream."""
        if self.guarantee == "l1":
            return l1_error_bound(self.epsilon, self.auditor.total_weight)
        sketch = self._sketch_of(self.monitor)
        return l2_error_bound(self.epsilon, max(sketch.l2_squared_estimate(), 0.0))

    def check(self) -> GuaranteeReport:
        """Audit now: observed worst error vs the theoretical bound."""
        self._packets_since_check = 0
        self.checks += 1
        audit = self.auditor.audit(self.monitor)
        bound = self.bound()
        observed = audit.max_absolute_error
        if bound > 0:
            ratio = observed / bound
        else:
            ratio = 0.0 if observed == 0 else math.inf
        violated = observed > bound
        report = GuaranteeReport(
            guarantee=self.guarantee,
            epsilon=self.epsilon,
            bound=bound,
            observed_max_error=observed,
            ratio=ratio,
            violated=violated,
            audit=audit,
        )
        self.last_report = report
        self._export(report)
        self._track_drift(ratio)
        return report

    def _export(self, report: GuaranteeReport) -> None:
        telemetry = self.telemetry
        component = self.auditor.component
        labels = {"component": component, "guarantee": self.guarantee}
        telemetry.gauge("audit_error_bound", report.bound, **labels)
        telemetry.gauge("audit_bound_ratio", report.ratio, component=component)
        if report.violated:
            self.violations += 1
            telemetry.count(
                "audit_guarantee_violations_total", component=component
            )
            telemetry.event(
                "audit.violation",
                component=component,
                guarantee=self.guarantee,
                epsilon=self.epsilon,
                bound=report.bound,
                observed=report.observed_max_error,
                worst_key=report.audit.worst_key,
                tracked_flows=report.audit.tracked_flows,
            )
        # Violations (cumulative) are exported even when zero so health
        # rules can distinguish "never checked" from "checked and clean".
        telemetry.gauge(
            "audit_guarantee_violations", self.violations, component=component
        )

    def _track_drift(self, ratio: float) -> None:
        history = self._ratio_history
        history.append(ratio)
        del history[: -self.drift_window]
        if len(history) < self.drift_window:
            return
        rising = all(a < b for a, b in zip(history, history[1:]))
        if rising and ratio > self.drift_ratio:
            if not self._drift_alerted:
                self._drift_alerted = True
                self.telemetry.event(
                    "audit.drift",
                    component=self.auditor.component,
                    ratio=ratio,
                    window=self.drift_window,
                    drift_ratio=self.drift_ratio,
                )
        else:
            self._drift_alerted = False

    def reset(self) -> None:
        """Clear truth, history and counters (keeps the configuration)."""
        self.auditor.reset()
        self.violations = 0
        self.checks = 0
        self.last_report = None
        self._ratio_history = []
        self._packets_since_check = 0
        self._drift_alerted = False
