"""The alert plane: declarative rules over live telemetry.

PRs 2-7 built recording -- metrics, traces, audits, health verdicts,
history.  This module closes the loop by *deciding*: a set of
:class:`AlertRule` objects is evaluated against snapshots (and, through
:class:`~repro.telemetry.history.HistoryStore` windows, against recent
history), and a per-``(alert, labelset)`` state machine turns raw
conditions into operator-grade alerts:

::

    inactive ──condition──▶ pending ──held for `for_seconds`──▶ firing
        ▲                      │                                  │
        └──────cleared─────────┘                cleared (hysteresis)
        ▲                                                         ▼
        └────────retention expired──────────────────────────── resolved
                                       (re-activation ▶ pending/firing)

Semantics follow Prometheus/Alertmanager where they exist:

* **for-duration** -- a condition must hold continuously for
  ``for_seconds`` before the alert fires (``pending`` in between);
* **hysteresis** -- a firing alert resolves only once the value crosses
  the rule's *clear* threshold, not merely dips under the firing one,
  so a series oscillating around the threshold cannot flap;
* **burn rate** -- :class:`BurnRateRule` compares the windowed mean of
  an error-budget ratio (the PR-3 ``audit_bound_ratio`` from the
  GuaranteeMonitor) against the budget over a long *and* a short
  window, the multi-window SRE pattern: the long window gives
  confidence, the short window gives fast resolution;
* **dedup + repeat-interval** -- :class:`AlertManager` notifies sinks
  once per firing/resolved transition and re-notifies a still-firing
  alert only every ``repeat_interval`` seconds.

Every transition is recorded three ways: an ``alert.transition`` tracer
event, an ``alerts_transitions_total{alertname,to}`` counter, and a
bounded in-memory transition log exportable as JSONL (the golden-file
format under ``tests/golden/``).  Current state is exported as the
Prometheus-conventional ``ALERTS{alertname,alertstate,severity,
labelset}`` gauge family -- one sample per (alert, state) with value 1
for the current state and 0 otherwise, because registry gauge children
are never deleted.

Determinism is a design requirement (the demo and golden tests depend
on it): the manager reads its clock exactly once per :meth:`~
AlertManager.evaluate` call, so injecting :class:`ManualClock` makes
every transition timestamp and for-duration decision reproducible.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.exposition import snapshot as snapshot_of
from repro.telemetry.notify import Notification, NotificationSink

__all__ = [
    "ALERT_STATES",
    "AlertManager",
    "AlertRule",
    "AlertStatus",
    "BurnRateRule",
    "Condition",
    "ManualClock",
    "ThresholdRule",
    "labelset_key",
    "metric_samples",
]

#: Every state the per-labelset machine can be in, in display order.
ALERT_STATES = ("inactive", "pending", "firing", "resolved")

_OPS: Dict[str, Callable[[float, float], bool]] = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


class ManualClock:
    """A deterministic clock: advances ``step`` seconds per call.

    Inject as ``AlertManager(clock=ManualClock())`` so evaluation ``i``
    happens at exactly ``start + i * step`` -- the demo and the golden
    transition tests rely on this.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self._now = float(start)
        self.step = float(step)

    def __call__(self) -> float:
        now = self._now
        self._now += self.step
        return now

    def peek(self) -> float:
        """The time the next call will return (no advance)."""
        return self._now


def labelset_key(labels: Dict[str, str]) -> str:
    """Canonical ``k=v,...`` string for a condition's labelset."""
    return ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels))


def metric_samples(
    snap: Dict, metric: str, labels: Optional[Dict[str, str]] = None
) -> List[Tuple[Dict[str, str], float]]:
    """Every scalar sample of one family, as ``(labels, value)`` pairs.

    Unlike :func:`repro.telemetry.health.sample_value` this does *not*
    aggregate: threshold rules alert per labelset (one alert per worker,
    per daemon, ...).  ``labels`` filters by subset match.
    """
    family = snap.get("metrics", {}).get(metric)
    if family is None:
        return []
    wanted = labels or {}
    out: List[Tuple[Dict[str, str], float]] = []
    for sample in family.get("samples", ()):
        sample_labels = sample.get("labels", {})
        if not all(sample_labels.get(k) == v for k, v in wanted.items()):
            continue
        value = sample.get("value")
        if isinstance(value, str):  # non-finite encoded for JSON
            value = float(value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        if value is None:  # histogram sample; not a scalar
            continue
        out.append((dict(sample_labels), float(value)))
    return out


@dataclass
class Condition:
    """One rule's verdict for one labelset at one instant.

    ``active`` and ``cleared`` are distinct on purpose -- the gap
    between them is the hysteresis band: a firing alert stays firing
    while ``not cleared`` even after ``active`` goes false.
    """

    labels: Dict[str, str]
    value: Optional[float]
    active: bool
    cleared: bool
    detail: str = ""


class AlertRule:
    """Base class: evaluate a snapshot (+history) into conditions."""

    def __init__(
        self,
        name: str,
        for_seconds: float = 0.0,
        severity: str = "warning",
        description: str = "",
    ) -> None:
        if not name:
            raise ValueError("alert rule needs a name")
        if for_seconds < 0:
            raise ValueError("for_seconds must be >= 0, got %r" % (for_seconds,))
        self.name = name
        self.for_seconds = float(for_seconds)
        self.severity = severity
        self.description = description

    def evaluate(
        self, snap: Dict, history, now: float
    ) -> List[Condition]:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": type(self).__name__,
            "for_seconds": self.for_seconds,
            "severity": self.severity,
            "description": self.description,
        }


class ThresholdRule(AlertRule):
    """Alert when a metric sample crosses a threshold.

    One condition per matching labelset (so ``parallel_worker_restarts``
    alerts per worker).  ``clear_threshold`` sets the hysteresis band:
    with ``op=">="`` the alert activates at ``value >= threshold`` and
    clears only at ``value < clear_threshold``; ``None`` means no band
    (cleared whenever not active).  An absent metric/series yields no
    condition, which the manager treats as cleared.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        threshold: float,
        op: str = ">=",
        clear_threshold: Optional[float] = None,
        labels: Optional[Dict[str, str]] = None,
        for_seconds: float = 0.0,
        severity: str = "warning",
        description: str = "",
    ) -> None:
        super().__init__(name, for_seconds, severity, description)
        if op not in _OPS:
            raise ValueError("op must be one of %s, got %r" % (sorted(_OPS), op))
        if clear_threshold is not None:
            rising = op in (">", ">=")
            if rising and clear_threshold > threshold:
                raise ValueError(
                    "clear_threshold must be <= threshold for op %r" % op
                )
            if not rising and clear_threshold < threshold:
                raise ValueError(
                    "clear_threshold must be >= threshold for op %r" % op
                )
        self.metric = metric
        self.threshold = float(threshold)
        self.op = op
        self.clear_threshold = (
            None if clear_threshold is None else float(clear_threshold)
        )
        self.labels = dict(labels) if labels else {}

    def evaluate(self, snap: Dict, history, now: float) -> List[Condition]:
        compare = _OPS[self.op]
        conditions = []
        for labels, value in metric_samples(snap, self.metric, self.labels):
            active = compare(value, self.threshold)
            if self.clear_threshold is None:
                cleared = not active
            else:
                cleared = not compare(value, self.clear_threshold)
            conditions.append(
                Condition(
                    labels=labels,
                    value=value,
                    active=active,
                    cleared=cleared,
                    detail="%s = %.6g (%s %.6g)"
                    % (self.metric, value, self.op, self.threshold),
                )
            )
        return conditions

    def describe(self) -> Dict[str, object]:
        payload = super().describe()
        payload.update(
            {
                "metric": self.metric,
                "op": self.op,
                "threshold": self.threshold,
                "clear_threshold": self.clear_threshold,
                "labels": dict(self.labels),
            }
        )
        return payload


class BurnRateRule(AlertRule):
    """Multi-window burn rate over an error budget (SRE pattern).

    ``metric`` is a ratio-like series (canonically the PR-3
    ``audit_bound_ratio``: observed error as a fraction of the
    Theorem 1/2/5 bound); ``budget`` is how much of it the operator is
    willing to spend (1.0 = "anything under the proven bound").  The
    burn rate of a window is ``mean(window) / budget``; the alert
    activates when **both** the long and the short window burn at
    ``factor`` or more, and clears (hysteresis) once the short window
    cools below ``factor`` -- long window for confidence, short window
    for fast onset/offset.  Needs a :class:`HistoryStore`; without one
    (or before any samples exist) the rule reports nothing.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        budget: float = 1.0,
        long_seconds: float = 600.0,
        short_seconds: float = 60.0,
        factor: float = 1.0,
        labels: Optional[Dict[str, str]] = None,
        for_seconds: float = 0.0,
        severity: str = "critical",
        description: str = "",
    ) -> None:
        super().__init__(name, for_seconds, severity, description)
        if budget <= 0:
            raise ValueError("budget must be positive, got %r" % (budget,))
        if not 0 < short_seconds <= long_seconds:
            raise ValueError("need 0 < short_seconds <= long_seconds")
        self.metric = metric
        self.budget = float(budget)
        self.long_seconds = float(long_seconds)
        self.short_seconds = float(short_seconds)
        self.factor = float(factor)
        self.labels = dict(labels) if labels else {}

    def evaluate(self, snap: Dict, history, now: float) -> List[Condition]:
        if history is None:
            return []
        long_window = history.window(
            self.metric, self.long_seconds, now=now, **self.labels
        )
        short_window = history.window(
            self.metric, self.short_seconds, now=now, **self.labels
        )
        if not long_window or not short_window:
            return []
        long_burn = sum(v for _, v in long_window) / len(long_window) / self.budget
        short_burn = (
            sum(v for _, v in short_window) / len(short_window) / self.budget
        )
        active = long_burn >= self.factor and short_burn >= self.factor
        cleared = short_burn < self.factor
        return [
            Condition(
                labels=dict(self.labels),
                value=short_burn,
                active=active,
                cleared=cleared,
                detail="burn rate long=%.3f short=%.3f (budget %.3g, factor %.3g)"
                % (long_burn, short_burn, self.budget, self.factor),
            )
        ]

    def describe(self) -> Dict[str, object]:
        payload = super().describe()
        payload.update(
            {
                "metric": self.metric,
                "budget": self.budget,
                "long_seconds": self.long_seconds,
                "short_seconds": self.short_seconds,
                "factor": self.factor,
                "labels": dict(self.labels),
            }
        )
        return payload


@dataclass
class AlertStatus:
    """Runtime state of one (alert, labelset) pair."""

    name: str
    labels: Dict[str, str]
    severity: str
    state: str = "inactive"
    #: When the current state was entered.
    since: float = 0.0
    #: When the underlying condition last went active (for-duration anchor).
    active_since: Optional[float] = None
    value: Optional[float] = None
    detail: str = ""
    last_notified: Optional[float] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "alert": self.name,
            "labels": dict(self.labels),
            "severity": self.severity,
            "state": self.state,
            "since": self.since,
            "active_since": self.active_since,
            "value": self.value,
            "detail": self.detail,
        }


class AlertManager:
    """Evaluates rules, runs the state machine, exports, notifies.

    Parameters
    ----------
    telemetry:
        The :class:`~repro.telemetry.Telemetry` whose registry is both
        the input (snapshots) and the output (``ALERTS`` gauges,
        transition/notification counters).
    rules:
        The :class:`AlertRule` set; names must be unique.
    history:
        Optional :class:`~repro.telemetry.history.HistoryStore`.  When
        present every :meth:`evaluate` records its snapshot into it
        (set ``record_history=False`` if something else owns the
        recording cadence) and burn-rate rules read windows from it.
    sinks:
        :class:`~repro.telemetry.notify.NotificationSink` objects;
        attached sinks report their delivery accounting into the same
        registry.
    repeat_interval:
        Seconds between re-notifications of a still-firing alert
        (0 disables re-notification; transitions always notify).
    resolved_retention:
        Seconds a resolved alert stays visible before expiring back to
        inactive.
    clock:
        Called exactly once per :meth:`evaluate`; inject
        :class:`ManualClock` for determinism.  Defaults to
        ``time.monotonic``: for-duration anchors, burn-rate history
        windows, repeat-notification pacing and resolved-retention all
        measure *elapsed* time, and a wall clock stepped backwards or
        forwards by NTP would instantly promote pending alerts to
        firing (or mask a real burn).  Wall-clock time is used only for
        display/JSONL timestamps (see ``wall_clock``).
    wall_clock:
        Timestamp source for human-facing output (notification
        timestamps).  Defaults to ``time.time`` when ``clock`` is the
        default monotonic clock; when a custom ``clock`` is injected
        (tests, demos) it defaults to that same clock so golden
        transcripts stay deterministic.  Never consulted for state-
        machine arithmetic.
    on_transition:
        Optional callback receiving each transition dict as it happens
        (the demo uses it to probe HTTP routes at the firing instant).
    """

    def __init__(
        self,
        telemetry,
        rules: Sequence[AlertRule],
        history=None,
        sinks: Sequence[NotificationSink] = (),
        repeat_interval: float = 300.0,
        resolved_retention: float = 900.0,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Optional[Callable[[], float]] = None,
        record_history: bool = True,
        transitions_capacity: int = 1024,
        on_transition: Optional[Callable[[Dict], None]] = None,
    ) -> None:
        self.telemetry = telemetry
        self.rules = list(rules)
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError("alert rule names must be unique: %r" % (names,))
        self.history = history
        self.sinks = list(sinks)
        for sink in self.sinks:
            sink.telemetry = telemetry
        self.repeat_interval = float(repeat_interval)
        self.resolved_retention = float(resolved_retention)
        self.clock = clock
        # A custom state-machine clock (ManualClock in tests/demos)
        # doubles as the display clock unless one is given explicitly:
        # calling a second independent clock would break determinism.
        if wall_clock is not None:
            self.wall_clock = wall_clock
        elif clock is time.monotonic:
            self.wall_clock = time.time
        else:
            self.wall_clock = clock
        self.record_history = record_history
        self.on_transition = on_transition
        #: (alert name, labelset key) -> AlertStatus.  Entries are kept
        #: after deactivation so their ALERTS gauges stay zeroed.
        self._states: Dict[Tuple[str, str], AlertStatus] = {}
        self.evaluations = 0
        self.transitions_total = 0
        self.transitions: Deque[Dict] = deque(maxlen=transitions_capacity)

    def add_sink(self, sink: NotificationSink) -> None:
        sink.telemetry = self.telemetry
        self.sinks.append(sink)

    # -- evaluation ---------------------------------------------------------

    def evaluate(
        self, snap: Optional[Dict] = None, now: Optional[float] = None
    ) -> List[Dict]:
        """One evaluation round; returns the transitions it caused."""
        now = self.clock() if now is None else float(now)
        if snap is None:
            snap = snapshot_of(self.telemetry.registry)
        if self.history is not None and self.record_history:
            self.history.record(snap, timestamp=now)
        events: List[Dict] = []
        for rule in self.rules:
            seen: set = set()
            for cond in rule.evaluate(snap, self.history, now):
                key = (rule.name, labelset_key(cond.labels))
                seen.add(key)
                state = self._state_for(rule.name, cond.labels, rule.severity)
                events.extend(self._advance(state, cond, rule.for_seconds, now))
            # A labelset the rule stopped reporting (series vanished,
            # metric family gone) reads as fully cleared.
            for (name, _), state in list(self._states.items()):
                if name != rule.name:
                    continue
                if (name, labelset_key(state.labels)) in seen:
                    continue
                if state.state in ("pending", "firing"):
                    gone = Condition(
                        labels=state.labels,
                        value=None,
                        active=False,
                        cleared=True,
                        detail="series absent",
                    )
                    events.extend(self._advance(state, gone, rule.for_seconds, now))
        events.extend(self._housekeeping(now))
        self.evaluations += 1
        self.telemetry.count("alerts_evaluations_total")
        self._export()
        return events

    def _state_for(
        self, name: str, labels: Dict[str, str], severity: str
    ) -> AlertStatus:
        key = (name, labelset_key(labels))
        state = self._states.get(key)
        if state is None:
            state = AlertStatus(name=name, labels=dict(labels), severity=severity)
            self._states[key] = state
        return state

    def _advance(
        self, state: AlertStatus, cond: Condition, for_seconds: float, now: float
    ) -> List[Dict]:
        """Run one step of the state machine for one condition."""
        if cond.value is not None:
            state.value = cond.value
        if cond.detail:
            state.detail = cond.detail
        current = state.state
        if cond.active:
            if state.active_since is None:
                state.active_since = now
        else:
            state.active_since = None

        if current in ("inactive", "resolved"):
            if cond.active:
                if for_seconds > 0 and now - state.active_since < for_seconds:
                    return self._transition(state, "pending", now, notify=False)
                return self._transition(state, "firing", now, notify=True)
        elif current == "pending":
            if not cond.active:
                return self._transition(state, "inactive", now, notify=False)
            if now - state.active_since >= for_seconds:
                return self._transition(state, "firing", now, notify=True)
        elif current == "firing":
            if cond.cleared:
                return self._transition(state, "resolved", now, notify=True)
        return []

    def _housekeeping(self, now: float) -> List[Dict]:
        """Resolved-retention expiry and repeat-interval re-notification."""
        events: List[Dict] = []
        for state in self._states.values():
            if (
                state.state == "resolved"
                and now - state.since >= self.resolved_retention
            ):
                events.extend(
                    self._transition(state, "inactive", now, notify=False)
                )
            elif (
                state.state == "firing"
                and self.repeat_interval > 0
                and state.last_notified is not None
                and now - state.last_notified >= self.repeat_interval
            ):
                self._notify(state, "firing", now)
        return events

    def _wall(self, now: float) -> float:
        """Display timestamp for an event happening at state-clock ``now``.

        When the display clock is the state-machine clock itself (a
        single injected ManualClock), ``now`` is reused rather than
        advancing the clock a second time.
        """
        if self.wall_clock is self.clock:
            return now
        return self.wall_clock()

    def _transition(
        self, state: AlertStatus, to: str, now: float, notify: bool
    ) -> List[Dict]:
        event = {
            # Wall-clock for humans reading the JSONL; all state-machine
            # arithmetic (since/active_since/last_notified) stays on the
            # monotonic ``now``.
            "time": self._wall(now),
            "alert": state.name,
            "labels": dict(state.labels),
            "from": state.state,
            "to": to,
            "value": state.value,
            "detail": state.detail,
        }
        state.state = to
        state.since = now
        self.transitions_total += 1
        self.transitions.append(event)
        self.telemetry.count("alerts_transitions_total", alertname=state.name, to=to)
        self.telemetry.event(
            "alert.transition",
            alert=state.name,
            labels=labelset_key(state.labels),
            previous=event["from"],
            state=to,
            value=state.value,
            detail=state.detail,
        )
        # Export this alert's gauges before any callback or sink runs:
        # an on_transition hook probing /metrics at the firing instant
        # must already see ALERTS{...,alertstate="firing"} 1.
        labelset = labelset_key(state.labels)
        for name in ALERT_STATES:
            self.telemetry.gauge(
                "ALERTS",
                1.0 if name == to else 0.0,
                alertname=state.name,
                alertstate=name,
                severity=state.severity,
                labelset=labelset,
            )
        if notify and to in ("firing", "resolved"):
            self._notify(state, to, now)
        if self.on_transition is not None:
            self.on_transition(event)
        return [event]

    def _notify(self, state: AlertStatus, notif_state: str, now: float) -> None:
        notification = Notification(
            alert=state.name,
            state=notif_state,
            severity=state.severity,
            labels=dict(state.labels),
            value=state.value,
            detail=state.detail,
            timestamp=self._wall(now),
        )
        for sink in self.sinks:
            sink.notify(notification)
        state.last_notified = now

    # -- externally-driven alerts (the health bridge) -----------------------

    def set_state(
        self,
        name: str,
        target: str,
        severity: str = "warning",
        labels: Optional[Dict[str, str]] = None,
        value: Optional[float] = None,
        detail: str = "",
        now: Optional[float] = None,
    ) -> List[Dict]:
        """Drive one alert to a target level from outside the rule set.

        ``target`` is ``inactive`` / ``pending`` / ``firing``.  Used by
        :meth:`observe_health`, where another evaluator (the PR-3
        :class:`~repro.telemetry.health.HealthEvaluator`) already made
        the ok/warn/fail decision: ``fail`` maps to firing *immediately*
        so ``/health``'s 503 and the firing alert can never disagree,
        ``warn`` parks the alert in pending, ``ok`` stands it down
        (firing resolves, pending deactivates).
        """
        if target not in ("inactive", "pending", "firing"):
            raise ValueError("target must be inactive/pending/firing, got %r" % target)
        now = self.clock() if now is None else float(now)
        state = self._state_for(name, labels or {}, severity)
        if value is not None:
            state.value = value
        if detail:
            state.detail = detail
        events: List[Dict] = []
        current = state.state
        if target == "firing":
            if current != "firing":
                state.active_since = now
                events.extend(self._transition(state, "firing", now, notify=True))
        elif target == "pending":
            if current == "firing":
                # The condition eased below fail: resolve the firing
                # alert first, then hold it pending -- both steps in one
                # call so the health/alert invariant holds immediately.
                events.extend(self._transition(state, "resolved", now, notify=True))
            if state.state in ("inactive", "resolved"):
                state.active_since = now
                events.extend(self._transition(state, "pending", now, notify=False))
        else:  # inactive
            state.active_since = None
            if current == "firing":
                events.extend(self._transition(state, "resolved", now, notify=True))
            elif current == "pending":
                events.extend(self._transition(state, "inactive", now, notify=False))
        self._export()
        return events

    def observe_health(self, results, now: Optional[float] = None) -> List[Dict]:
        """Mirror :class:`HealthEvaluator` rule results into alerts.

        Each health rule becomes a ``health_<rule>`` alert so the two
        subsystems share one state, one exposition and one notification
        path (satellite: ``/health`` 503 ⇔ a firing ``health_*`` alert).
        """
        now = self.clock() if now is None else float(now)
        target_of = {"ok": "inactive", "warn": "pending", "fail": "firing"}
        events: List[Dict] = []
        for result in results:
            events.extend(
                self.set_state(
                    "health_" + result.name,
                    target_of.get(result.status, "firing"),
                    severity="critical",
                    value=result.value,
                    detail=result.detail,
                    now=now,
                )
            )
        return events

    # -- export / introspection ---------------------------------------------

    def _export(self) -> None:
        """Write the ALERTS gauge family: 1 for current state, 0 others.

        Registry gauge children cannot be deleted, so a state an alert
        has left must be zeroed, not removed -- scraping sees exactly
        one ``1`` per (alertname, labelset).
        """
        for state in self._states.values():
            labelset = labelset_key(state.labels)
            for name in ALERT_STATES:
                self.telemetry.gauge(
                    "ALERTS",
                    1.0 if name == state.state else 0.0,
                    alertname=state.name,
                    alertstate=name,
                    severity=state.severity,
                    labelset=labelset,
                )

    def states(self) -> List[AlertStatus]:
        """Every tracked (alert, labelset) status, stable order."""
        return [self._states[key] for key in sorted(self._states)]

    def active(self) -> List[AlertStatus]:
        """Statuses not currently inactive (the dashboard panel's feed)."""
        return [state for state in self.states() if state.state != "inactive"]

    def firing(self) -> List[AlertStatus]:
        return [state for state in self.states() if state.state == "firing"]

    def as_dict(self) -> Dict[str, object]:
        """JSON-able dump for the ``/alerts`` route."""
        return {
            "evaluations": self.evaluations,
            "transitions_total": self.transitions_total,
            "firing": [state.as_dict() for state in self.firing()],
            "states": [state.as_dict() for state in self.states()],
            "recent_transitions": list(self.transitions)[-50:],
            "sinks": [sink.as_dict() for sink in self.sinks],
        }

    def describe_rules(self) -> List[Dict[str, object]]:
        """JSON-able rule catalogue for the ``/rules`` route."""
        return [rule.describe() for rule in self.rules]

    def transitions_jsonl(self) -> str:
        """The transition log as JSONL (golden-file format)."""
        return "".join(
            json.dumps(event, sort_keys=True) + "\n" for event in self.transitions
        )
