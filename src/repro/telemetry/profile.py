"""Continuous per-stage profiling of the ingest hot path.

"An Evaluation of Software Sketches" shows that software-sketch cost is
dominated by a handful of micro-stages -- hashing, sampling, scatter --
whose relative weight shifts with workload.  This module measures that
decomposition *live*: a :class:`StageProfiler` rides the batch ingest
path and times each stage of the :data:`STAGES` taxonomy into the
``stage_seconds{stage=...}`` histogram family of the attached
:class:`~repro.telemetry.Telemetry` sink.

Cost control is the whole design: ``sample_every=N`` profiles only
every Nth batch (the other N-1 batches pay exactly one integer
increment and one comparison), and within a sampled batch each stage
costs two ``perf_counter`` reads.  ``scripts/check_perf.py`` gates the
whole thing -- spans + profiling on vs off -- at <= 1.10x.

Reading the data back:

* :func:`histogram_quantile` -- a p50/p95/p99 estimator over the
  registry's log-bucketed :class:`~repro.telemetry.registry.HistogramChild`
  counts (log-linear interpolation inside the winning bucket, which is
  the right interpolant for geometric buckets);
* :func:`stage_summary` -- per-stage count/mean/p50/p95/p99 rows;
* :func:`collapsed_stacks` -- the ``frame;frame;frame value`` text
  format every flamegraph renderer (flamegraph.pl, speedscope, pyroscope)
  ingests, weighted by total microseconds per stage.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.registry import HistogramChild, MetricsRegistry, log_buckets

__all__ = [
    "STAGES",
    "STAGE_METRIC",
    "STAGE_BUCKETS",
    "StageProfiler",
    "NULL_PROFILER",
    "histogram_quantile",
    "stage_summary",
    "collapsed_stacks",
    "render_stage_table",
]

#: The stage taxonomy of the ingest pipeline (docs/OBSERVABILITY.md).
#: ``geometric_skip``  -- drawing geometric gaps / selecting sampled slots
#: ``row_hash``        -- bucket+sign hashing of the sampled slots
#: ``scatter``         -- counter scatter-adds
#: ``exact_update``    -- the exact (p=1 / warm-up) full-batch update
#: ``query``           -- sketch queries on the ingest path (top-k offers)
#: ``checkpoint``      -- serializing + persisting monitor state
#: ``mailbox_publish`` -- worker-side frame publish incl. flow-control wait
#: ``mailbox_ack``     -- parent-side frame decode/CRC-check/ack
#: ``merge``           -- parent-side shard merge at an epoch boundary
STAGES: Tuple[str, ...] = (
    "geometric_skip",
    "row_hash",
    "scatter",
    "exact_update",
    "query",
    "checkpoint",
    "mailbox_publish",
    "mailbox_ack",
    "merge",
)

#: The histogram family stage timings land in.
STAGE_METRIC = "stage_seconds"

#: ~60ns .. ~0.26s in powers of two: stage timings are microseconds-ish,
#: so the default powers-of-four time buckets would be too coarse for a
#: p99 read.
STAGE_BUCKETS: List[float] = log_buckets(2.0**-24, 0.25, factor=2.0)


class _StageTimer:
    """Context manager timing one stage of a sampled batch."""

    __slots__ = ("_profiler", "_stage", "_t0")

    def __init__(self, profiler: "StageProfiler", stage: str) -> None:
        self._profiler = profiler
        self._stage = stage

    def __enter__(self) -> "_StageTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.observe(self._stage, time.perf_counter() - self._t0)


class _NullStageTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullStageTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_STAGE_TIMER = _NullStageTimer()


class StageProfiler:
    """Samples per-stage wall time into a telemetry sink.

    Parameters
    ----------
    telemetry:
        The :class:`~repro.telemetry.Telemetry` sink whose registry
        receives the ``stage_seconds{stage=...}`` histograms.
    sample_every:
        Profile every Nth batch (default 16).  ``1`` profiles every
        batch; the check_perf tracing-overhead gate runs with the
        default.
    component:
        Extra label distinguishing co-resident profiled components
        (e.g. ``nitro`` vs ``daemon``); empty string omits the label.

    The hot-path surface is two calls: :meth:`tick` once per batch
    (returns whether this batch is profiled) and :meth:`stage` around
    each stage (a no-op timer when the batch is not sampled).
    Components hold ``profiler = None`` by default and guard with one
    ``is not None`` test, mirroring the ``NULL_TELEMETRY`` idiom.
    """

    enabled = True

    def __init__(self, telemetry, sample_every: int = 16, component: str = "") -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1, got %d" % sample_every)
        self.telemetry = telemetry
        self.sample_every = sample_every
        self.component = component
        self.active = False
        self.batches_seen = 0
        self.batches_profiled = 0

    def tick(self) -> bool:
        """Advance the batch counter; True when this batch is profiled."""
        self.active = self.batches_seen % self.sample_every == 0
        self.batches_seen += 1
        if self.active:
            self.batches_profiled += 1
        return self.active

    def stage(self, name: str):
        """Timer for one stage; free when the batch is not sampled."""
        if not self.active:
            return _NULL_STAGE_TIMER
        return _StageTimer(self, name)

    def observe(self, stage: str, seconds: float) -> None:
        """Record one stage duration unconditionally (epoch-grade stages
        -- checkpoint, merge, mailbox -- bypass batch sampling)."""
        if self.component:
            self.telemetry.observe(
                STAGE_METRIC, seconds, buckets=STAGE_BUCKETS,
                stage=stage, component=self.component,
            )
        else:
            self.telemetry.observe(
                STAGE_METRIC, seconds, buckets=STAGE_BUCKETS, stage=stage
            )


class _NullProfiler:
    """Shared no-op profiler (for call sites that prefer attribute style)."""

    __slots__ = ()
    enabled = False
    active = False
    sample_every = 0

    def tick(self) -> bool:
        return False

    def stage(self, name: str):
        return _NULL_STAGE_TIMER

    def observe(self, stage: str, seconds: float) -> None:
        pass


NULL_PROFILER = _NullProfiler()


# ---------------------------------------------------------------------------
# Reading the histograms back: quantiles, summaries, flamegraph text.
# ---------------------------------------------------------------------------


def histogram_quantile(child: HistogramChild, q: float) -> float:
    """Estimate the ``q``-quantile of a log-bucketed histogram.

    Standard cumulative-bucket walk with log-linear interpolation inside
    the winning bucket (linear interpolation in log space matches the
    geometric bucket layout).  Returns ``nan`` on an empty histogram;
    a quantile landing in the ``+Inf`` bucket returns the last finite
    bound (the histogram cannot resolve beyond it).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1], got %r" % (q,))
    total = child.count
    if total == 0:
        return float("nan")
    rank = q * total
    cumulative = 0
    for index, count in enumerate(child.counts):
        cumulative += count
        if cumulative >= rank and count > 0:
            if index >= len(child.buckets):
                return float(child.buckets[-1])
            upper = child.buckets[index]
            lower = child.buckets[index - 1] if index > 0 else upper / 2.0
            fraction = (rank - (cumulative - count)) / count
            return float(
                math.exp(
                    math.log(lower) + fraction * (math.log(upper) - math.log(lower))
                )
            )
    return float(child.buckets[-1]) if child.buckets else float("nan")


def stage_summary(
    registry: MetricsRegistry,
    metric: str = STAGE_METRIC,
    quantiles: Sequence[float] = (0.5, 0.95, 0.99),
) -> Dict[str, Dict[str, float]]:
    """Per-stage timing rows from the registry's stage histograms.

    Returns ``{stage: {"count", "total", "mean", "p50", "p95", "p99"}}``
    (one row per distinct (stage [, component]) label set; the key is
    ``component/stage`` when a component label is present).
    """
    family = registry.get(metric)
    if family is None or family.kind != "histogram":
        return {}
    out: Dict[str, Dict[str, float]] = {}
    for values, child in family.children():
        labels = family.label_dict(values)
        stage = labels.get("stage", "?")
        component = labels.get("component", "")
        key = "%s/%s" % (component, stage) if component else stage
        row: Dict[str, float] = {
            "count": float(child.count),
            "total": float(child.sum),
            "mean": child.sum / child.count if child.count else float("nan"),
        }
        for q in quantiles:
            row["p%g" % (100 * q)] = histogram_quantile(child, q)
        out[key] = row
    return out


def collapsed_stacks(
    registry: MetricsRegistry,
    metric: str = STAGE_METRIC,
    root: str = "nitrosketch",
) -> str:
    """Flamegraph-compatible collapsed-stack lines from stage histograms.

    One line per stage: ``root;component;stage <microseconds>`` --
    the integer-weighted semicolon format ``flamegraph.pl`` and
    speedscope consume.  Stages with zero accumulated time are omitted
    (a zero-weight frame renders as nothing anyway).
    """
    summary = stage_summary(registry, metric=metric, quantiles=())
    lines = []
    for key in sorted(summary):
        micros = int(round(summary[key]["total"] * 1e6))
        if micros <= 0:
            continue
        frames = [root] + key.split("/")
        lines.append("%s %d" % (";".join(frames), micros))
    return "\n".join(lines) + ("\n" if lines else "")


def render_stage_table(
    registry: MetricsRegistry, metric: str = STAGE_METRIC
) -> str:
    """Human-readable per-stage latency table for ``nitrosketch profile``."""
    summary = stage_summary(registry, metric=metric)
    if not summary:
        return "(no stage samples recorded)\n"
    header = "%-28s %8s %10s %10s %10s %10s %10s" % (
        "stage", "count", "total", "mean", "p50", "p95", "p99",
    )
    lines = [header, "-" * len(header)]

    def fmt(seconds: float) -> str:
        if seconds != seconds:
            return "-"
        if seconds >= 1.0:
            return "%.2fs" % seconds
        if seconds >= 1e-3:
            return "%.2fms" % (seconds * 1e3)
        if seconds >= 1e-6:
            return "%.1fµs" % (seconds * 1e6)
        return "%.0fns" % (seconds * 1e9)

    for key, row in sorted(summary.items(), key=lambda item: -item[1]["total"]):
        lines.append(
            "%-28s %8d %10s %10s %10s %10s %10s"
            % (
                key,
                int(row["count"]),
                fmt(row["total"]),
                fmt(row["mean"]),
                fmt(row["p50"]),
                fmt(row["p95"]),
                fmt(row["p99"]),
            )
        )
    return "\n".join(lines) + "\n"
