"""Notification sinks for the alert plane.

An :class:`~repro.telemetry.alerts.AlertManager` turns metric snapshots
into alert-state transitions; this module is where those transitions
leave the process.  Every sink implements one method --
:meth:`NotificationSink.notify` -- and the base class wraps delivery
with **failure accounting**: ``sent`` / ``failed`` counts and the last
error string, mirrored into ``notifications_sent_total`` /
``notifications_failed_total`` counters (labeled by sink) when a
telemetry object is attached.  A dead webhook must be visible in the
same ``/metrics`` page as the alert it failed to deliver.

Sinks (all stdlib-only, per the repo's no-new-dependencies rule):

* :class:`LogSink` -- one human-readable line per notification to a
  stream (stderr by default);
* :class:`JsonlSink` -- append-only JSONL file, one notification per
  line (the durable audit trail);
* :class:`WebhookSink` -- ``http.client`` POST of the notification JSON
  to a URL, success iff a 2xx response arrives within the timeout;
* :class:`MemorySink` -- in-process list, for tests and the demo.

:class:`WebhookReceiver` is the matching test double: a stdlib HTTP
server collecting POSTed bodies, used by ``nitrosketch alerts --demo``
to prove end-to-end delivery.
"""

from __future__ import annotations

import json
import sys
import threading
from dataclasses import dataclass, field
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, TextIO
from urllib.parse import urlsplit

__all__ = [
    "Notification",
    "NotificationSink",
    "LogSink",
    "JsonlSink",
    "WebhookSink",
    "MemorySink",
    "WebhookReceiver",
]


@dataclass
class Notification:
    """One alert-plane message: an alert fired, re-fired, or resolved."""

    alert: str
    state: str  # "firing" or "resolved"
    severity: str
    labels: Dict[str, str] = field(default_factory=dict)
    value: Optional[float] = None
    detail: str = ""
    timestamp: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "alert": self.alert,
            "state": self.state,
            "severity": self.severity,
            "labels": dict(self.labels),
            "value": self.value,
            "detail": self.detail,
            "timestamp": self.timestamp,
        }

    def render(self) -> str:
        """One-line human form, e.g. ``[FIRING] entropy_collapse ...``."""
        labels = (
            " " + ",".join("%s=%s" % (k, v) for k, v in sorted(self.labels.items()))
            if self.labels
            else ""
        )
        value = "" if self.value is None else " value=%.6g" % self.value
        return "[%s] %s (%s)%s%s -- %s" % (
            self.state.upper(),
            self.alert,
            self.severity,
            labels,
            value,
            self.detail,
        )


class NotificationSink:
    """Base class: delivery with sent/failed accounting.

    Subclasses implement :meth:`_deliver`; :meth:`notify` catches any
    exception so one dead sink can never take down the evaluation loop,
    and mirrors the tallies into telemetry when ``telemetry`` is set
    (the :class:`~repro.telemetry.alerts.AlertManager` sets it on
    attach).
    """

    #: Label value for the per-sink counters; subclasses override.
    kind = "sink"

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or self.kind
        self.sent = 0
        self.failed = 0
        self.last_error: Optional[str] = None
        #: Set by the owning AlertManager; NULL-safe to leave as None.
        self.telemetry = None

    def notify(self, notification: Notification) -> bool:
        """Deliver one notification; returns True on success."""
        try:
            self._deliver(notification)
        except Exception as exc:  # accounting, not crashing, is the contract
            self.failed += 1
            self.last_error = "%s: %s" % (type(exc).__name__, exc)
            if self.telemetry is not None:
                self.telemetry.count("notifications_failed_total", sink=self.name)
            return False
        self.sent += 1
        if self.telemetry is not None:
            self.telemetry.count("notifications_sent_total", sink=self.name)
        return True

    def _deliver(self, notification: Notification) -> None:  # pragma: no cover
        raise NotImplementedError

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "sent": self.sent,
            "failed": self.failed,
            "last_error": self.last_error,
        }


class LogSink(NotificationSink):
    """Writes one rendered line per notification to a text stream."""

    kind = "log"

    def __init__(self, stream: Optional[TextIO] = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.stream = stream if stream is not None else sys.stderr

    def _deliver(self, notification: Notification) -> None:
        self.stream.write(notification.render() + "\n")
        self.stream.flush()


class JsonlSink(NotificationSink):
    """Appends one JSON object per notification to a file."""

    kind = "jsonl"

    def __init__(self, path: str, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.path = path
        self._lock = threading.Lock()

    def _deliver(self, notification: Notification) -> None:
        line = json.dumps(notification.as_dict(), sort_keys=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")


class MemorySink(NotificationSink):
    """Collects notifications in a list (tests, demos)."""

    kind = "memory"

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.notifications: List[Notification] = []

    def _deliver(self, notification: Notification) -> None:
        self.notifications.append(notification)


class WebhookSink(NotificationSink):
    """POSTs the notification JSON to an HTTP URL via ``http.client``.

    Success requires a 2xx status within ``timeout`` seconds; anything
    else (connection refused, timeout, 500, non-http scheme) counts as a
    delivery failure.  Deliberately minimal -- no retries, no TLS -- the
    repo-side contract is accounting, the operator-side contract is any
    alertmanager-compatible receiver.
    """

    kind = "webhook"

    def __init__(self, url: str, timeout: float = 2.0, name: Optional[str] = None) -> None:
        super().__init__(name)
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError("WebhookSink needs an http:// URL, got %r" % (url,))
        self.url = url
        self.timeout = timeout
        self._host = parts.hostname
        self._port = parts.port or 80
        self._path = parts.path or "/"
        if parts.query:
            self._path += "?" + parts.query

    def _deliver(self, notification: Notification) -> None:
        body = json.dumps(notification.as_dict(), sort_keys=True).encode("utf-8")
        conn = HTTPConnection(self._host, self._port, timeout=self.timeout)
        try:
            conn.request(
                "POST",
                self._path,
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            response.read()
            if not 200 <= response.status < 300:
                raise RuntimeError("webhook returned HTTP %d" % response.status)
        finally:
            conn.close()


class WebhookReceiver:
    """A stdlib HTTP server that collects POSTed JSON bodies.

    The demo's (and tests') far end of :class:`WebhookSink`: start it on
    an ephemeral port, point a sink at :attr:`url`, and assert on
    :attr:`received` afterwards.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.received: List[Dict] = []
        self._lock = threading.Lock()
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length)
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except ValueError:
                    payload = {"raw": raw.decode("utf-8", "replace")}
                with outer._lock:
                    outer.received.append(payload)
                data = b'{"ok": true}\n'
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *args) -> None:
                pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return "http://%s:%d/" % (host, port)

    def start(self) -> "WebhookReceiver":
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="webhook-receiver", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "WebhookReceiver":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
